//! The automated triage usage model (§8): every incoming bug report is passed
//! through ESD; reports whose synthesized executions are identical (or fail
//! identically) are flagged as duplicates.
//!
//! Run with: `cargo run --example bug_triage`

use esd::core::{same_bug, BugReport, TriageResult};
use esd::workloads::{capture_coredump, real_bugs::ls_injected};
use esd::EsdOptions;

fn main() {
    let esd = EsdOptions::builder().synthesizer();
    // Two independent reports of the ls1 bug and one report of the ls2 bug.
    let ls1_a = ls_injected(1);
    let ls1_b = ls_injected(1);
    let ls2 = ls_injected(2);

    let mut executions = Vec::new();
    for w in [&ls1_a, &ls1_b, &ls2] {
        let dump = capture_coredump(w, 5).expect("report captured");
        let report =
            esd.synthesize(&w.program, &BugReport::from_coredump(dump)).expect("synthesized");
        executions.push((w.name.clone(), report.execution));
    }

    for i in 0..executions.len() {
        for j in (i + 1)..executions.len() {
            let verdict = same_bug(&executions[i].1, &executions[j].1);
            println!("{} vs {}: {:?}", executions[i].0, executions[j].0, verdict);
            if executions[i].0 == executions[j].0 {
                assert_ne!(verdict, TriageResult::Different);
            }
        }
    }
}
