//! The debugging service: many bug reports, one machine.
//!
//! The paper's end state is a service developers submit bug reports to; ESD
//! synthesizes a failing execution for each one. This example is that
//! service in miniature: four different workload bugs — two deadlocks and
//! two crashes — are submitted to a [`JobExecutor`], drained concurrently
//! under a round-robin fairness policy while the service reports progress,
//! and every synthesized execution is then replayed deterministically.
//!
//! Run with: `cargo run --release --example debug_service`

use esd::playback::play;
use esd::workloads::real_bugs::{ghttpd_log_overflow, paste_invalid_free, sqlite_recursive_lock};
use esd::workloads::{listing1, Workload};
use esd::{EsdOptions, JobExecutor, JobPhase, JobSpec, JobVerdict};

fn main() {
    // Four bug reports arrive at the service.
    let reports: Vec<Workload> =
        vec![sqlite_recursive_lock(), paste_invalid_free(), ghttpd_log_overflow(), listing1()];

    // Small slices so the batch visibly interleaves: every job advances a
    // little before any job gets its next turn.
    let mut executor = JobExecutor::round_robin().slice_rounds(64);
    let handles: Vec<_> = reports
        .iter()
        .map(|w| {
            let handle = executor.submit(
                JobSpec::new(&w.name, &w.program, w.goal())
                    .options(EsdOptions::builder().max_steps(8_000_000).build()),
            );
            println!("submitted job #{} — {} ({:?})", handle.id(), w.name, w.kind);
            handle
        })
        .collect();

    // Drain the whole batch, reporting service-level progress every so many
    // dispatched slices. All four searches advance interleaved: no job waits
    // for another to finish.
    let mut dispatched = 0u64;
    while executor.run_slice() {
        dispatched += 1;
        if dispatched.is_multiple_of(8) {
            let stats = executor.stats();
            println!(
                "  ... {} slices dispatched, {} running, {} finished",
                stats.slices_dispatched, stats.running, stats.finished
            );
        }
    }

    // Every job is terminal: print the service's per-job report and replay
    // each synthesized execution.
    let stats = executor.stats();
    println!(
        "\n{:<10} {:>10} {:>10} {:>12} {:>10}",
        "job", "slices", "rounds", "wall [ms]", "replays"
    );
    let mut all_reproduced = true;
    for (w, handle) in reports.iter().zip(handles) {
        let outcome = executor.take(handle).expect("an idle executor finished every job");
        assert_eq!(
            outcome.verdict,
            JobVerdict::Found,
            "{}: the service must synthesize every reported bug",
            w.name
        );
        let report = outcome.report().expect("Found jobs carry a report");
        let replay = play(&w.program, &report.execution);
        all_reproduced &= replay.reproduced;
        println!(
            "{:<10} {:>10} {:>10} {:>12.1} {:>10}",
            outcome.label,
            outcome.slices,
            outcome.rounds,
            outcome.wall.as_secs_f64() * 1000.0,
            if replay.reproduced { "yes" } else { "NO" },
        );
    }
    assert_eq!(stats.finished, 4);
    assert!(stats.jobs.iter().all(|j| j.phase == JobPhase::Finished));
    assert!(all_reproduced, "every synthesized execution must replay its failure");
    println!("\nall {} bugs synthesized and replayed deterministically", stats.finished);
}
