//! Debugging a failure caused by a data race: an unsynchronized counter
//! update makes a final assertion fail only under an adverse interleaving.
//! ESD is pointed at the failed assertion (the place where the inconsistency
//! is detected, as in §3.1) and race-directed preemptions are enabled.
//!
//! Run with: `cargo run --example race_debugging`

use esd::ir::{CmpOp, Loc, ProgramBuilder};
use esd::playback::play;
use esd::{EsdOptions, GoalSpec};

fn main() {
    // Two workers do counter = counter + 1 without holding the lock.
    let mut pb = ProgramBuilder::new("racy_counter");
    let counter = pb.global("counter", 1);
    let worker = pb.declare("worker", 1);
    pb.define(worker, |f| {
        let cp = f.addr_global(counter);
        let v = f.load(cp);
        f.yield_now();
        let v1 = f.add(v, 1);
        f.store(cp, v1);
        f.ret_void();
    });
    let mut assert_loc = None;
    let main_id = pb.declare("main", 0);
    pb.define(main_id, |f| {
        let t1 = f.spawn(worker, 1);
        let t2 = f.spawn(worker, 2);
        f.join(t1);
        f.join(t2);
        let cp = f.addr_global(counter);
        let v = f.load(cp);
        let ok = f.cmp(CmpOp::Eq, v, 2);
        assert_loc = Some(Loc::new(main_id, f.current_block(), f.next_inst_idx()));
        f.assert(ok, "both increments must be visible");
        f.ret_void();
    });
    let program = pb.finish("main");

    let goal = GoalSpec::Crash { loc: assert_loc.unwrap() };
    let esd = EsdOptions::builder().with_race_detection(true).synthesizer();
    match esd.synthesize_goal(&program, goal, true) {
        Ok(report) => {
            println!(
                "race-induced assertion failure synthesized in {:.2?} ({} races flagged)",
                report.elapsed, report.stats.races_flagged
            );
            let replay = play(&program, &report.execution);
            println!("playback reproduced the failure: {}", replay.reproduced);
        }
        Err(e) => println!("synthesis did not reach the assertion within budget: {e:?}"),
    }
}
