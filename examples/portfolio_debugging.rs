//! Which search frontier wins on this bug? Race them.
//!
//! A [`Portfolio`] time-slices one synthesis session per search frontier —
//! proximity, DFS, BFS, random and the batched beam — round-robin over the
//! same job (one shared static phase) and stops at the first synthesized
//! execution. The losers are cancelled, but their partial statistics are
//! kept, so a single run answers the Figure-2 question "which frontier
//! wins?" without N sequential full searches.
//!
//! Run with: `cargo run --release --example portfolio_debugging`

use esd::playback::play;
use esd::workloads::real_bugs::sqlite_recursive_lock;
use esd::{EsdOptions, Portfolio};

fn main() {
    let workload = sqlite_recursive_lock();
    println!("program under debug: {}", workload.program.name);
    println!("goal (from the bug report): {:?}\n", workload.goal());

    // No explicit members: the portfolio races its default frontier set
    // {proximity, dfs, bfs, random, beam}. Small slices keep the race fair:
    // every member advances a little before anyone can claim the win.
    let portfolio =
        Portfolio::new(EsdOptions::builder().max_steps(4_000_000).build()).slice_rounds(100);
    let result = portfolio.run(&workload.program, workload.goal());

    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>14}",
        "member", "outcome", "rounds", "steps", "states"
    );
    for member in &result.members {
        println!(
            "{:<12} {:>12} {:>10} {:>10} {:>14}",
            member.label,
            format!("{:?}", member.outcome),
            member.rounds,
            member.stats.steps,
            member.stats.states_created,
        );
    }

    match &result.winner {
        Some(winner) => {
            println!("\nwinner: {} (member #{})", winner.label, winner.member);
            let replay = play(&workload.program, &winner.report.execution);
            println!("winning execution replays the deadlock: {}", replay.reproduced);
        }
        None => println!("\nno member synthesized the failure within its budget"),
    }
}
