//! The multi-threaded beam engine: same execution, less wall-clock.
//!
//! A `FrontierKind::Beam` frontier selects the `width` states closest to the
//! reported failure and commits to advancing all of them before re-ranking —
//! which makes the beam a natural unit of parallelism: the engine hands the
//! batch to a pool of worker steppers (each with its own solver) and merges
//! the results back in deterministic batch order. The thread count is
//! therefore *unobservable*: this example runs the same synthesis job
//! single-threaded and multi-threaded, checks the two execution files are
//! byte-identical, and reports the wall-clock difference.
//!
//! Run with: `cargo run --release --example parallel_debugging`
//! (`ESD_THREADS=<n>` picks the parallel thread count, default all cores;
//! `ESD_BPF_BRANCHES=<n>` sizes the workload, default 512)

use esd::playback::play;
use esd::workloads::{generate_bpf, BpfConfig};
use esd::{EsdOptions, FrontierKind};
use std::time::Instant;

fn main() {
    // A beam workload heavy enough for threading to matter: a BPF program
    // with hundreds of input-dependent branches (Figure 3's x-axis), whose
    // feasibility checks dominate each micro-step.
    let branches =
        std::env::var("ESD_BPF_BRANCHES").ok().and_then(|s| s.parse().ok()).unwrap_or(512u32);
    let workload = generate_bpf(&BpfConfig { branches, ..Default::default() });
    println!("program under debug: {} ({} branches)", workload.program.name, branches);
    println!("goal (from the bug report): {:?}\n", workload.goal());

    let threads = std::env::var("ESD_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(0usize); // 0 = all available cores
    let parallelism = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    };

    let options = |threads: usize| {
        EsdOptions::builder()
            .max_steps(20_000_000)
            .frontier(FrontierKind::Beam { width: 16 })
            .threads(threads)
            .synthesizer()
    };

    let start = Instant::now();
    let solo = options(1)
        .synthesize_goal(&workload.program, workload.goal(), false)
        .expect("single-threaded beam synthesis succeeds");
    let solo_time = start.elapsed();

    let start = Instant::now();
    let parallel = options(threads)
        .synthesize_goal(&workload.program, workload.goal(), false)
        .expect("multi-threaded beam synthesis succeeds");
    let parallel_time = start.elapsed();

    println!("{:<22} {:>12} {:>12} {:>14}", "run", "time [s]", "steps", "solver calls");
    for (label, time, report) in [
        ("threads=1", solo_time, &solo),
        (&format!("threads={parallelism}"), parallel_time, &parallel),
    ] {
        println!(
            "{:<22} {:>12.2} {:>12} {:>14}",
            label,
            time.as_secs_f64(),
            report.stats.steps,
            report.stats.solver_queries
        );
    }

    assert_eq!(
        solo.execution.to_json(),
        parallel.execution.to_json(),
        "the thread count must not change the synthesized execution"
    );
    println!("\nexecution files byte-identical: yes");
    println!(
        "speedup: {:.2}x on {} workers",
        solo_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-9),
        parallelism
    );

    let replay = play(&workload.program, &parallel.execution);
    println!("synthesized execution replays the failure: {}", replay.reproduced);
    assert!(replay.reproduced);
}
