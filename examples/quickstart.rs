//! Quickstart: reproduce the paper's Listing-1 deadlock from scratch.
//!
//! 1. Build the Listing-1 program (two threads, a deadlock that needs both
//!    specific inputs and an adverse schedule).
//! 2. Ask ESD to synthesize an execution that reaches the reported deadlock.
//! 3. Play the synthesized execution back deterministically.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Set `ESD_FRONTIER=dfs|bfs|random|proximity` to swap the search frontier
//! the synthesizer uses (see `examples/frontier_comparison.rs` for a
//! side-by-side run).

use esd::playback::play;
use esd::workloads::listing1;
use esd::EsdOptions;

fn main() {
    let workload = listing1();
    println!("program under debug: {}", workload.program.name);
    println!("goal (from the bug report): {:?}", workload.goal());

    let frontier = std::env::var("ESD_FRONTIER")
        .ok()
        .map(|s| s.parse().expect("ESD_FRONTIER must be dfs|bfs|random|proximity|beam[:width]"))
        .unwrap_or_default();
    let esd = EsdOptions::builder().frontier(frontier).synthesizer();
    let report = esd
        .synthesize_goal(&workload.program, workload.goal(), false)
        .expect("ESD synthesizes the Listing-1 deadlock");
    println!(
        "synthesized in {:.2?} ({} search steps, {} states)",
        report.elapsed, report.stats.steps, report.stats.states_created
    );
    for input in &report.execution.inputs {
        println!("  input t{} #{} ({:?}) = {}", input.thread, input.seq, input.source, input.value);
    }
    println!(
        "  schedule: {} segments, {} context switches",
        report.execution.schedule.segments.len(),
        report.execution.schedule.context_switches()
    );

    let replay = play(&workload.program, &report.execution);
    println!("playback reproduced the deadlock: {}", replay.reproduced);
}
