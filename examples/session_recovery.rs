//! Durable sessions: survive a debugging-service crash mid-synthesis.
//!
//! 1. Start a durable [`JobExecutor`]: every scheduling decision is
//!    journaled write-ahead, and a full checkpoint is written every few
//!    slices (`checkpoint_every`).
//! 2. Submit two synthesis jobs and run part of the batch.
//! 3. "Crash" — drop the live executor cold, exactly what `kill -9` leaves
//!    behind: the last checkpoint plus the journal tail.
//! 4. Recover with [`JobExecutor::recover`]: the checkpoint is loaded, the
//!    journaled decisions are replayed through the same fairness policy,
//!    and the batch finishes as if the crash never happened — same
//!    execution files, same statistics.
//!
//! Run with: `cargo run --example session_recovery`

use esd::workloads::genbug::{generate, GenConfig, InjectedBugKind};
use esd::workloads::real_bugs::paste_invalid_free;
use esd::{EsdOptions, FrontierKind, JobExecutor, JobSpec};

fn main() {
    let dir = std::env::temp_dir().join("esd-session-recovery");
    let _ = std::fs::remove_dir_all(&dir);

    // A durable executor: journal + checkpoint live under `dir`.
    let mut executor = JobExecutor::round_robin()
        .slice_rounds(64)
        .checkpoint_every(4)
        .durable_dir(&dir)
        .expect("durable directory is writable");

    // Two jobs: the paper's `paste` invalid free on a beam frontier, and a
    // generated corpus bug on the default proximity frontier.
    let paste = paste_invalid_free();
    executor.submit(
        JobSpec::new(&paste.name, &paste.program, paste.goal()).options(
            EsdOptions::builder()
                .max_steps(2_000_000)
                .frontier(FrontierKind::Beam { width: 16 })
                .build(),
        ),
    );
    let genbug = generate(&GenConfig::new(2, InjectedBugKind::CrashOnPath)).to_workload();
    executor.submit(
        JobSpec::new(&genbug.name, &genbug.program, genbug.goal())
            .options(EsdOptions::builder().max_steps(2_000_000).build()),
    );

    // Run part of the batch, then crash.
    for _ in 0..7 {
        executor.run_slice();
    }
    let before = executor.stats();
    println!(
        "crashing after {} slices ({} search rounds dispatched)...",
        before.slices_dispatched, before.rounds_dispatched
    );
    drop(executor); // the crash: only the durable directory survives

    // Recovery: reduce(snapshot, journal) rebuilds the executor exactly.
    let mut recovered = JobExecutor::recover(&dir).expect("recovery succeeds");
    let after = recovered.stats();
    println!(
        "recovered at {} slices ({} search rounds) — resuming",
        after.slices_dispatched, after.rounds_dispatched
    );
    recovered.run_until_idle();

    for job in recovered.stats().jobs {
        let outcome = recovered.take(job.handle).expect("finished job has an outcome");
        match outcome.report() {
            Some(report) => println!(
                "{}: {:?} after {} rounds — {} inputs, {} context switches",
                outcome.label,
                outcome.verdict,
                outcome.rounds,
                report.execution.inputs.len(),
                report.execution.schedule.context_switches()
            ),
            None => {
                println!("{}: {:?} after {} rounds", outcome.label, outcome.verdict, outcome.rounds)
            }
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
