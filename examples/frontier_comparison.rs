//! Compares the pluggable search frontiers on the paper's Listing-1 deadlock:
//! the same synthesis goal is given to ESD's proximity-guided frontier and to
//! the DFS / BFS / random baselines, and the amount of exploration each needs
//! is printed side by side.
//!
//! Listing 1 is tiny, so every frontier succeeds here (an undirected search
//! can even get lucky and win); the proximity frontier's advantage — the
//! paper's Figure-2/Figure-3 gap — shows up on the larger real-bug analogs
//! and BPF sweeps, where the undirected frontiers hit the exploration cap.
//! Run `fig2 dfs`, `fig2 bfs`, `fig2 proximity` from `esd-bench` to see it.
//!
//! Run with: `cargo run --release --example frontier_comparison`

use esd::symex::FrontierKind;
use esd::workloads::listing1;
use esd::EsdOptions;

fn main() {
    let workload = listing1();
    println!("program under debug: {}", workload.program.name);
    println!("goal (from the bug report): {:?}\n", workload.goal());
    println!("{:<12} {:>10} {:>10} {:>12}", "frontier", "steps", "states", "outcome");

    for frontier in [
        FrontierKind::Proximity,
        FrontierKind::Dfs,
        FrontierKind::Bfs,
        FrontierKind::Random,
        FrontierKind::beam(),
    ] {
        let esd = EsdOptions::builder().frontier(frontier).max_steps(2_000_000).synthesizer();
        match esd.synthesize_goal(&workload.program, workload.goal(), false) {
            Ok(report) => println!(
                "{:<12} {:>10} {:>10} {:>12}",
                frontier.to_string(),
                report.stats.steps,
                report.stats.states_created,
                "synthesized"
            ),
            Err(e) => {
                println!(
                    "{:<12} {:>10} {:>10} {:>12}",
                    frontier.to_string(),
                    "-",
                    "-",
                    format!("{e:?}")
                )
            }
        }
    }
}
