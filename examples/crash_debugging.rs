//! Debugging a crash from a production coredump: the ghttpd-style buffer
//! overflow. The failure is first captured at the (simulated) end-user site,
//! then ESD re-creates it from the coredump alone, and the developer replays
//! it under the debugger façade with a breakpoint on the overflowing store.
//!
//! Run with: `cargo run --example crash_debugging`

use esd::core::BugReport;
use esd::playback::Debugger;
use esd::workloads::{capture_coredump, real_bugs::ghttpd_log_overflow};
use esd::EsdOptions;

fn main() {
    let workload = ghttpd_log_overflow();
    let dump = capture_coredump(&workload, 5).expect("the overflow crashes at the user site");
    println!("coredump: {}", dump.summary());

    let esd = EsdOptions::builder().synthesizer();
    let report = esd
        .synthesize(&workload.program, &BugReport::from_coredump(dump))
        .expect("ESD synthesizes the overflow");
    println!("synthesized {} in {:.2?}", report.execution.fault_tag, report.elapsed);

    let mut dbg = Debugger::new(&workload.program, report.execution.clone());
    dbg.break_at(workload.goal_locs[0]);
    let (hits, result) = dbg.run();
    println!("breakpoint on the overflowing store hit {} time(s)", hits.len());
    println!("failure reproduced under the debugger: {}", result.reproduced);
}
