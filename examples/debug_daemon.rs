//! Debugging as a service, over a socket: the daemon and its client.
//!
//! `examples/debug_service.rs` embeds the executor; this example splits it
//! in two. A [`Daemon`] owns an [`InProcessService`] (a cross-job parallel
//! [`JobExecutor`]: slice batches dispatched to a worker pool) and serves
//! the hand-rolled framed wire protocol on a Unix-domain socket. A
//! [`RemoteClient`] — the same [`Service`] trait, so the code below would
//! run unchanged against the embedded backend — submits two bug reports: a
//! real-bug analog (the `paste` invalid free) and a generated data race run
//! with race-directed preemptions. It streams the first job's progress
//! events live, polls both to completion, takes the outcomes, and replays
//! the winning executions deterministically.
//!
//! Run with: `cargo run --release --example debug_daemon`

use esd::playback::play;
use esd::workloads::genbug::{generate, GenConfig, InjectedBugKind};
use esd::workloads::real_bugs::paste_invalid_free;
use esd::workloads::Workload;
use esd::{
    Daemon, EsdOptions, InProcessService, JobExecutor, JobRequest, JobVerdict, ProgressUpdate,
    RemoteClient, Service,
};
use std::time::Duration;

fn main() {
    // -- Server side -------------------------------------------------------
    // An executor with the parallel knobs on: up to 2 jobs' slices per
    // batch, executed on 2 pool threads. The pool changes wall time only —
    // the synthesized executions are byte-identical at any size.
    let service = InProcessService::new(
        JobExecutor::round_robin().slice_rounds(8).batch_width(2).pool_size(2),
    )
    .max_pending(16);
    let sock = std::env::temp_dir().join(format!("esd_daemon_{}.sock", std::process::id()));
    let mut daemon = Daemon::bind_uds(&sock, service).expect("bind the UDS socket");
    println!("daemon listening on {}", sock.display());
    let server = std::thread::spawn(move || daemon.run().expect("daemon run loop"));

    // -- Client side -------------------------------------------------------
    let mut client = RemoteClient::connect_uds(&sock).expect("connect to the daemon");

    // Two bug reports arrive at the service: a crash and a data race.
    let paste: Workload = paste_invalid_free();
    let race: Workload = generate(&GenConfig::new(7, InjectedBugKind::DataRace)).to_workload();
    let paste_ticket = client
        .submit(
            JobRequest::new(&paste.name, &paste.program, paste.goal())
                .options(EsdOptions::builder().max_steps(8_000_000).build()),
        )
        .expect("submit the paste job");
    let race_ticket =
        client
            .submit(JobRequest::new(&race.name, &race.program, race.goal()).options(
                EsdOptions::builder().max_steps(8_000_000).with_race_detection(true).build(),
            ))
            .expect("submit the race job");
    println!(
        "submitted #{} ({}) and #{} ({})",
        paste_ticket.id, paste.name, race_ticket.id, race.name
    );

    // Stream the paste job's progress live on a dedicated connection while
    // polling both tickets to their terminal states.
    let mut subscription = client.subscribe(paste_ticket).expect("subscribe");
    loop {
        for update in subscription.drain().expect("event stream") {
            match update {
                ProgressUpdate::Progress { event } => println!(
                    "  #{} ... {} rounds, {} steps, {} live states",
                    paste_ticket.id, event.rounds, event.steps, event.live_states
                ),
                ProgressUpdate::Done { status } => {
                    println!("  #{} done: {status:?}", paste_ticket.id)
                }
            }
        }
        let paste_done = client.poll(paste_ticket).expect("poll").is_terminal();
        let race_done = client.poll(race_ticket).expect("poll").is_terminal();
        if paste_done && race_done && subscription.finished() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    // Take both outcomes over the wire and replay the winners locally.
    for (workload, ticket) in [(&paste, paste_ticket), (&race, race_ticket)] {
        let outcome = client.take(ticket).expect("take").expect("terminal job");
        assert_eq!(outcome.verdict, JobVerdict::Found, "{}", workload.name);
        let report = outcome.report().expect("Found jobs carry a report");
        let replay = play(&workload.program, &report.execution);
        assert!(replay.reproduced, "{}: the synthesized execution must replay", workload.name);
        println!(
            "#{} {}: synthesized in {} rounds, {} context switches, replays deterministically",
            ticket.id,
            workload.name,
            outcome.rounds,
            report.execution.schedule.context_switches()
        );
    }

    client.shutdown_server().expect("shut the daemon down");
    server.join().expect("daemon thread");
    println!("daemon shut down cleanly");
}
