//! Inspecting the static race-pair candidate set: the same racy-counter
//! program as `examples/race_debugging.rs`, but before synthesizing we print
//! what the static phase already knows — which loads/stores may touch
//! shared memory, which pairs of them can race (may-happen-in-parallel with
//! no common lock), and which yields are therefore worth a preemption fork.
//! The synthesis then runs with candidate-gated preemption pruning on (the
//! default), so every preemption the search pays for is one of the printed
//! pairs.
//!
//! Run with: `cargo run --example race_candidates`

use esd::analysis::StaticAnalysis;
use esd::ir::{CmpOp, Loc, ProgramBuilder};
use esd::{EsdOptions, GoalSpec};

fn main() {
    // Two workers do counter = counter + 1 without holding the lock.
    let mut pb = ProgramBuilder::new("racy_counter");
    let counter = pb.global("counter", 1);
    let worker = pb.declare("worker", 1);
    pb.define(worker, |f| {
        let cp = f.addr_global(counter);
        let v = f.load(cp);
        f.yield_now();
        let v1 = f.add(v, 1);
        f.store(cp, v1);
        f.ret_void();
    });
    let mut assert_loc = None;
    let main_id = pb.declare("main", 0);
    pb.define(main_id, |f| {
        let t1 = f.spawn(worker, 1);
        let t2 = f.spawn(worker, 2);
        f.join(t1);
        f.join(t2);
        let cp = f.addr_global(counter);
        let v = f.load(cp);
        let ok = f.cmp(CmpOp::Eq, v, 2);
        assert_loc = Some(Loc::new(main_id, f.current_block(), f.next_inst_idx()));
        f.assert(ok, "both increments must be visible");
        f.ret_void();
    });
    let program = pb.finish("main");
    let goal_loc = assert_loc.unwrap();

    // The static phase computes points-to, may-happen-in-parallel and
    // locksets once per goal; the candidate set falls out of their join.
    let analysis = StaticAnalysis::compute_multi(&program, &[goal_loc]);
    let rc = &analysis.race_candidates;
    let at = |loc: Loc| format!("{}:bb{}:{}", program.func(loc.func).name, loc.block.0, loc.idx);

    println!("may-shared accesses:");
    for access in analysis.points_to.accesses.iter().filter(|a| a.may_shared) {
        println!("  {} {}", if access.is_write { "store at" } else { "load  at" }, at(access.loc));
    }
    println!(
        "\nrace-pair candidates ({} of {} yields relevant):",
        rc.relevant_yields.len(),
        rc.all_yields.len()
    );
    for c in &rc.candidates {
        println!("  {} <-> {}  (no common lock)", at(c.access_a), at(c.access_b));
    }

    // Synthesize with candidate-gated pruning on (the default): preemption
    // forks happen only at the accesses and yields printed above.
    let esd =
        EsdOptions::builder().with_race_detection(true).race_candidate_pruning(true).synthesizer();
    match esd.synthesize_goal(&program, GoalSpec::Crash { loc: goal_loc }, true) {
        Ok(report) => println!(
            "\nsynthesized in {:.2?}: {} states forked, {} preemption forks \
             pruned by the candidate set",
            report.elapsed, report.stats.states_created, report.stats.preemptions_pruned_static
        ),
        Err(e) => println!("\nsynthesis did not reach the assertion within budget: {e:?}"),
    }
}
