//! Debugging the SQLite-style recursive-lock deadlock: synthesis from the
//! bug-report goal, playback, and patch verification (re-running synthesis
//! against a fixed program, §5.2).
//!
//! Run with: `cargo run --example deadlock_debugging`

use esd::playback::{play, verify_patch};
use esd::workloads::real_bugs::sqlite_recursive_lock;
use esd::EsdOptions;

fn main() {
    let workload = sqlite_recursive_lock();
    let esd = EsdOptions::builder().synthesizer();
    let report = esd
        .synthesize_goal(&workload.program, workload.goal(), false)
        .expect("ESD synthesizes the SQLite deadlock");
    println!(
        "deadlock synthesized in {:.2?}; schedule has {} context switches",
        report.elapsed,
        report.execution.schedule.context_switches()
    );
    let replay = play(&workload.program, &report.execution);
    println!("playback reproduced the deadlock: {}", replay.reproduced);

    // "Patch" the program by disabling shared-cache mode (the arming input
    // can no longer reach the inverted lock order), then check the patch.
    let mut patched = workload.program.clone();
    let sc = patched.global_by_name("shared_cache").unwrap();
    patched.globals[sc.0 as usize].init = vec![0];
    // The original still deadlocks; the point of verify_patch is that after a
    // real fix ESD can no longer synthesize a path to the bug. Here we only
    // demonstrate the call; the naive "patch" above does not remove the bug
    // (main still stores to shared_cache), so ESD still finds it.
    match verify_patch(&patched, workload.goal(), EsdOptions::default()) {
        Ok(true) => println!("patch verified: the deadlock is no longer synthesizable"),
        Ok(false) => println!("patch rejected: ESD still synthesizes the deadlock"),
        Err(e) => println!("patch verification inconclusive: {e:?}"),
    }
}
