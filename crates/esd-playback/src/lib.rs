//! The ESD playback environment (`esdplay`, §5).
//!
//! Playback takes the program and a synthesized execution file and steers a
//! fresh concrete execution into following the synthesized inputs and thread
//! schedule, deterministically re-creating the reported failure. Developers
//! can observe every step (the [`debugger`] façade models attaching gdb),
//! repeat the execution as many times as needed, and — after applying a fix —
//! re-run synthesis to confirm the bug is no longer reachable
//! ([`verify_patch`]).

// Documentation enforcement (see ARCHITECTURE.md, "Documentation policy"):
// every public item must carry rustdoc.
#![deny(missing_docs)]

pub mod debugger;
pub mod player;

pub use debugger::{BreakpointHit, Debugger};
pub use player::{play, play_with_observer, PlaybackResult};

use esd_core::{Esd, EsdOptions, SynthesisError};
use esd_ir::Program;
use esd_symex::GoalSpec;

/// Re-runs synthesis against the (patched) program to check whether the bug
/// is still reachable: "If ESD can no longer synthesize an execution that
/// triggers the bug, then the patch can be considered successful" (§5.2).
///
/// Returns `Ok(true)` if the patch holds (no execution to the goal exists
/// within the search budget), `Ok(false)` if ESD still synthesizes a failing
/// execution, and `Err` if the search ran out of budget without a verdict.
pub fn verify_patch(
    patched: &Program,
    goal: GoalSpec,
    options: EsdOptions,
) -> Result<bool, SynthesisError> {
    let esd = Esd::new(options);
    match esd.synthesize_goal(patched, goal, false) {
        Ok(_) => Ok(false),
        Err(SynthesisError::Exhausted) => Ok(true),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_core::BugReport;
    use esd_ir::{CmpOp, Loc, ProgramBuilder};

    #[test]
    fn verify_patch_distinguishes_fixed_from_unfixed_programs() {
        // Buggy version: crashes when input == 5.
        let build = |fixed: bool| {
            let mut pb = ProgramBuilder::new(if fixed { "fixed" } else { "buggy" });
            let mut loc = None;
            pb.function("main", 0, |f| {
                let x = f.getchar();
                let c = f.cmp(CmpOp::Eq, x, 5);
                let bug = f.new_block("bug");
                let ok = f.new_block("ok");
                f.cond_br(c, bug, ok);
                f.switch_to(bug);
                if fixed {
                    // The patch handles the case gracefully.
                    f.output(5);
                } else {
                    let z = f.konst(0);
                    loc = Some(Loc::new(esd_ir::FuncId(0), bug, f.next_inst_idx()));
                    let v = f.load(z);
                    f.output(v);
                }
                f.ret_void();
                f.switch_to(ok);
                f.ret_void();
            });
            (pb.finish("main"), loc)
        };
        let (buggy, loc) = build(false);
        let (fixed, _) = build(true);
        let goal = GoalSpec::Crash { loc: loc.unwrap() };
        assert_eq!(verify_patch(&buggy, goal.clone(), EsdOptions::default()), Ok(false));
        assert_eq!(verify_patch(&fixed, goal, EsdOptions::default()), Ok(true));
    }

    #[test]
    fn synthesized_crash_replays_deterministically() {
        // End to end: production failure -> coredump -> synthesis -> playback
        // reproduces the same fault, repeatedly.
        let mut pb = ProgramBuilder::new("replay");
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let y = f.getchar();
            let sum = f.add(x, y);
            let c = f.cmp(CmpOp::Eq, sum, 77);
            let bug = f.new_block("bug");
            let ok = f.new_block("ok");
            f.cond_br(c, bug, ok);
            f.switch_to(bug);
            let z = f.konst(0);
            let v = f.load(z);
            f.output(v);
            f.ret_void();
            f.switch_to(ok);
            f.output(1);
            f.ret_void();
        });
        let p = pb.finish("main");
        // Production failure with 40 + 37.
        let dump = esd_core::stress_test(
            &p,
            &esd_core::StressConfig {
                runs: 1,
                fixed_inputs: Some(vec![
                    ((esd_ir::ThreadId(0), 0), 40),
                    ((esd_ir::ThreadId(0), 1), 37),
                ]),
                ..Default::default()
            },
        )
        .failure
        .expect("production run fails");
        let esd = Esd::with_defaults();
        let result = esd.synthesize(&p, &BugReport::from_coredump(dump)).unwrap();
        for _ in 0..3 {
            let pr = play(&p, &result.execution);
            assert!(pr.reproduced, "playback must reproduce the synthesized fault");
        }
    }
}
