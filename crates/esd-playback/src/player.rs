//! Deterministic replay of a synthesized execution file.

use esd_concurrency::SegmentStop;
use esd_core::SynthesizedExecution;
use esd_ir::{
    interp::{InterpreterConfig, MapInputs, SchedulerKind, StepResult},
    ExecOutcome, Interpreter, Loc, Program, ThreadId,
};

/// Cap on the number of attempts to drive one schedule segment (defends
/// against malformed execution files).
const SEGMENT_STEP_CAP: u64 = 2_000_000;

/// The outcome of a playback run.
#[derive(Debug, Clone)]
pub struct PlaybackResult {
    /// How the replayed execution ended.
    pub outcome: ExecOutcome,
    /// True if the replay ended in the same kind of failure the execution
    /// file promises.
    pub reproduced: bool,
    /// Instructions executed during playback.
    pub steps: u64,
}

/// Replays `exec` against `program`, invoking `observer` before every
/// instruction with the interpreter state, the scheduled thread and the
/// location about to execute. The observer is what the debugger façade (and
/// breakpoints) hook into.
pub fn play_with_observer<F>(
    program: &Program,
    exec: &SynthesizedExecution,
    mut observer: F,
) -> PlaybackResult
where
    F: FnMut(&Interpreter<'_>, ThreadId, Loc),
{
    let inputs = MapInputs::from_entries(exec.input_map());
    let mut interp = Interpreter::new(program, Box::new(inputs));
    let mut final_outcome: Option<ExecOutcome> = None;

    'schedule: for seg in &exec.schedule.segments {
        let tid = ThreadId(seg.thread);
        if tid.0 as usize >= interp.threads().len() {
            break;
        }
        let mut executed = 0u64;
        let mut attempts = 0u64;
        loop {
            attempts += 1;
            if attempts > SEGMENT_STEP_CAP {
                break;
            }
            match seg.stop {
                SegmentStop::Steps(n) if executed >= n => break,
                _ => {}
            }
            if let Some(loc) = interp.current_loc(tid) {
                observer(&interp, tid, loc);
            }
            match interp.step_thread(tid) {
                StepResult::Continue => {
                    executed += 1;
                }
                StepResult::Blocked => {
                    if matches!(seg.stop, SegmentStop::Blocked) {
                        break;
                    }
                    // A Steps segment that blocks early: move on to the next
                    // segment (the synthesizer's counting treats the blocking
                    // attempt as the segment end too).
                    break;
                }
                StepResult::ThreadFinished => {
                    break;
                }
                StepResult::ProgramExit { code } => {
                    final_outcome = Some(ExecOutcome::Exit { code });
                    break 'schedule;
                }
                StepResult::Fault(dump) => {
                    final_outcome = Some(ExecOutcome::Fault(dump));
                    break 'schedule;
                }
            }
        }
    }

    // The schedule has been consumed (or ended early). For hang bugs the
    // program is now deadlocked; for crash bugs the fault usually fired
    // inside the schedule. Otherwise let the program run on freely.
    let outcome = match final_outcome {
        Some(o) => o,
        None => {
            if let Some(dump) = interp.detect_deadlock() {
                ExecOutcome::Fault(Box::new(dump))
            } else {
                interp
                    .run(&InterpreterConfig {
                        max_steps: SEGMENT_STEP_CAP,
                        scheduler: SchedulerKind::RoundRobin { quantum: 64 },
                        record_trace: false,
                    })
                    .outcome
            }
        }
    };

    let reproduced = match &outcome {
        ExecOutcome::Fault(dump) => dump.fault.tag() == exec.fault_tag,
        _ => false,
    };
    PlaybackResult { reproduced, steps: interp.steps(), outcome }
}

/// Replays `exec` against `program` without observing individual steps.
pub fn play(program: &Program, exec: &SynthesizedExecution) -> PlaybackResult {
    play_with_observer(program, exec, |_, _, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_concurrency::Schedule;
    use esd_core::execfile::InputEntry;
    use esd_ir::{CmpOp, InputSource, ProgramBuilder};

    /// Hand-written execution file for a tiny crash program: playback must
    /// follow it and reproduce the fault.
    #[test]
    fn handcrafted_execution_file_replays() {
        let mut pb = ProgramBuilder::new("tiny");
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let c = f.cmp(CmpOp::Eq, x, 9);
            let bug = f.new_block("bug");
            let ok = f.new_block("ok");
            f.cond_br(c, bug, ok);
            f.switch_to(bug);
            let z = f.konst(0);
            let v = f.load(z);
            f.output(v);
            f.ret_void();
            f.switch_to(ok);
            f.ret_void();
        });
        let p = pb.finish("main");
        let mut schedule = Schedule::new();
        schedule.push(0, SegmentStop::Steps(16));
        let exec = SynthesizedExecution {
            program: "tiny".into(),
            fault_tag: "segfault".into(),
            fault_loc: None,
            inputs: vec![InputEntry { thread: 0, seq: 0, source: InputSource::Stdin, value: 9 }],
            schedule,
        };
        let r = play(&p, &exec);
        assert!(r.reproduced);
        assert!(r.outcome.is_fault());

        // With the wrong input the fault is not reproduced.
        let mut wrong = exec.clone();
        wrong.inputs[0].value = 3;
        let r = play(&p, &wrong);
        assert!(!r.reproduced);
    }

    #[test]
    fn observer_sees_every_scheduled_instruction() {
        let mut pb = ProgramBuilder::new("obs");
        pb.function("main", 0, |f| {
            f.nop();
            f.nop();
            f.output(1);
            f.ret_void();
        });
        let p = pb.finish("main");
        let mut schedule = Schedule::new();
        schedule.push(0, SegmentStop::Steps(4));
        let exec = SynthesizedExecution {
            program: "obs".into(),
            fault_tag: "none".into(),
            fault_loc: None,
            inputs: vec![],
            schedule,
        };
        let mut seen = Vec::new();
        let r = play_with_observer(&p, &exec, |_, tid, loc| seen.push((tid, loc)));
        assert_eq!(seen.len(), 4);
        assert!(seen.iter().all(|(tid, _)| *tid == ThreadId(0)));
        assert!(matches!(r.outcome, ExecOutcome::Exit { .. }));
    }
}
