//! A gdb-style façade over playback: breakpoints, step observation, and
//! inspection of program state at interesting points.
//!
//! The original ESD lets developers attach gdb to the played-back native
//! process; here the "debugger" drives the interpreter through the
//! synthesized schedule and reports where breakpoints were hit, with
//! snapshots of requested global variables at each hit.

use crate::player::{play_with_observer, PlaybackResult};
use esd_core::SynthesizedExecution;
use esd_ir::{Loc, Program, Ptr, ThreadId, Value};
use std::collections::HashSet;

/// One breakpoint hit during playback.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakpointHit {
    /// The breakpoint location.
    pub loc: Loc,
    /// The thread that was about to execute it.
    pub thread: ThreadId,
    /// Values of the watched globals at the time of the hit, in the order
    /// they were registered with [`Debugger::watch_global`].
    pub watched: Vec<(String, Option<Value>)>,
    /// How many instructions had been executed when the hit occurred.
    pub at_step: u64,
}

/// A simple debugger over the playback environment.
pub struct Debugger<'p> {
    program: &'p Program,
    execution: SynthesizedExecution,
    breakpoints: HashSet<Loc>,
    watched_globals: Vec<String>,
}

impl<'p> Debugger<'p> {
    /// Creates a debugger session for `program` and a synthesized execution.
    pub fn new(program: &'p Program, execution: SynthesizedExecution) -> Self {
        Debugger { program, execution, breakpoints: HashSet::new(), watched_globals: Vec::new() }
    }

    /// Sets a breakpoint at a location.
    pub fn break_at(&mut self, loc: Loc) -> &mut Self {
        self.breakpoints.insert(loc);
        self
    }

    /// Registers a global variable whose value is captured at every
    /// breakpoint hit.
    pub fn watch_global(&mut self, name: &str) -> &mut Self {
        self.watched_globals.push(name.to_string());
        self
    }

    /// Runs the whole synthesized execution, collecting breakpoint hits.
    /// Like re-running a program under gdb, this can be called repeatedly
    /// and yields the same hits every time (deterministic playback).
    pub fn run(&self) -> (Vec<BreakpointHit>, PlaybackResult) {
        let mut hits = Vec::new();
        let result = play_with_observer(self.program, &self.execution, |interp, tid, loc| {
            if self.breakpoints.contains(&loc) {
                let watched = self
                    .watched_globals
                    .iter()
                    .map(|name| {
                        let value = self.program.global_by_name(name).and_then(|gid| {
                            // Globals are allocated in program order, so
                            // the id equals the allocation index.
                            interp.mem.object(find_global_obj(interp, gid.0)).map(|o| o.data[0])
                        });
                        (name.clone(), value)
                    })
                    .collect();
                hits.push(BreakpointHit { loc, thread: tid, watched, at_step: interp.steps() });
            }
        });
        (hits, result)
    }
}

/// Globals are allocated first, in declaration order, so the `i`-th global's
/// object id is `i + 1` (object ids start at 1).
fn find_global_obj(_interp: &esd_ir::Interpreter<'_>, index: u32) -> esd_ir::ObjId {
    esd_ir::ObjId(index as u64 + 1)
}

/// Convenience: the pointer to the first word of the `i`-th global.
pub fn global_ptr(index: u32) -> Ptr {
    Ptr::to(esd_ir::ObjId(index as u64 + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_concurrency::{Schedule, SegmentStop};
    use esd_core::execfile::InputEntry;
    use esd_ir::{CmpOp, InputSource, ProgramBuilder};

    fn program_and_exec() -> (Program, SynthesizedExecution, Loc) {
        let mut pb = ProgramBuilder::new("dbg");
        let counter = pb.global("counter", 1);
        let mut bp = None;
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let gp = f.addr_global(counter);
            f.store(gp, x);
            bp = Some(Loc::new(esd_ir::FuncId(0), f.current_block(), f.next_inst_idx()));
            let v = f.load(gp);
            let ok = f.cmp(CmpOp::Lt, v, 100);
            f.assert(ok, "counter too large");
            f.ret_void();
        });
        let p = pb.finish("main");
        let mut schedule = Schedule::new();
        schedule.push(0, SegmentStop::Steps(10));
        let exec = SynthesizedExecution {
            program: "dbg".into(),
            fault_tag: "assert-failure".into(),
            fault_loc: None,
            inputs: vec![InputEntry { thread: 0, seq: 0, source: InputSource::Stdin, value: 123 }],
            schedule,
        };
        (p, exec, bp.unwrap())
    }

    #[test]
    fn breakpoints_fire_and_watch_globals() {
        let (p, exec, bp) = program_and_exec();
        let mut dbg = Debugger::new(&p, exec);
        dbg.break_at(bp).watch_global("counter");
        let (hits, result) = dbg.run();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].loc, bp);
        assert_eq!(hits[0].watched[0].1, Some(Value::Int(123)));
        assert!(result.reproduced, "the assert failure is reproduced");
    }

    #[test]
    fn playback_is_repeatable_across_debugger_runs() {
        let (p, exec, bp) = program_and_exec();
        let mut dbg = Debugger::new(&p, exec);
        dbg.break_at(bp).watch_global("counter");
        let (h1, _) = dbg.run();
        let (h2, _) = dbg.run();
        assert_eq!(h1, h2, "deterministic playback yields identical hits");
    }

    #[test]
    fn no_breakpoints_means_no_hits() {
        let (p, exec, _) = program_and_exec();
        let dbg = Debugger::new(&p, exec);
        let (hits, result) = dbg.run();
        assert!(hits.is_empty());
        assert!(result.outcome.is_fault());
    }
}
