//! Sources of concrete program input for the interpreter.
//!
//! At the end-user site the program runs with whatever inputs the user
//! provides; during playback the inputs are exactly the concrete values the
//! synthesizer solved for. Both are modeled by the [`InputProvider`] trait.
//! Inputs are keyed by `(thread, per-thread sequence number)`: given the same
//! schedule, each thread reads its inputs in a deterministic order, so this
//! key uniquely identifies each read during replay.

use crate::inst::InputSource;
use crate::types::ThreadId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Serves the words returned by `Input` instructions.
pub trait InputProvider {
    /// Returns the word for the `seq`-th input read performed by `thread`,
    /// reading from `source`.
    fn read(&mut self, thread: ThreadId, seq: u32, source: &InputSource) -> i64;
}

/// Returns zero for every input (a bland default for smoke runs).
#[derive(Debug, Default, Clone)]
pub struct ZeroInputs;

impl InputProvider for ZeroInputs {
    fn read(&mut self, _thread: ThreadId, _seq: u32, _source: &InputSource) -> i64 {
        0
    }
}

/// Returns uniformly random printable-ish bytes; used by the stress-testing
/// baseline (§7.2 "random input testing").
#[derive(Debug, Clone)]
pub struct RandomInputs {
    rng: StdRng,
    /// Inclusive range of generated values.
    pub lo: i64,
    /// Inclusive upper bound of generated values.
    pub hi: i64,
}

impl RandomInputs {
    /// Creates a provider generating values in `[lo, hi]` from `seed`.
    pub fn new(seed: u64, lo: i64, hi: i64) -> Self {
        RandomInputs { rng: StdRng::seed_from_u64(seed), lo, hi }
    }

    /// Creates a provider generating printable ASCII bytes.
    pub fn ascii(seed: u64) -> Self {
        Self::new(seed, 0, 127)
    }
}

impl InputProvider for RandomInputs {
    fn read(&mut self, _thread: ThreadId, _seq: u32, _source: &InputSource) -> i64 {
        self.rng.gen_range(self.lo..=self.hi)
    }
}

/// Serves inputs from an explicit map, falling back to a default; this is the
/// playback-side provider fed from a synthesized execution file.
#[derive(Debug, Clone, Default)]
pub struct MapInputs {
    map: HashMap<(ThreadId, u32), i64>,
    /// Value returned for reads not present in the map.
    pub default: i64,
}

impl MapInputs {
    /// Creates an empty map provider with default value 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a provider from `(thread, seq) -> value` entries.
    pub fn from_entries(entries: impl IntoIterator<Item = ((ThreadId, u32), i64)>) -> Self {
        MapInputs { map: entries.into_iter().collect(), default: 0 }
    }

    /// Inserts or overwrites one entry.
    pub fn set(&mut self, thread: ThreadId, seq: u32, value: i64) {
        self.map.insert((thread, seq), value);
    }

    /// Number of explicit entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no explicit entries are present.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl InputProvider for MapInputs {
    fn read(&mut self, thread: ThreadId, seq: u32, _source: &InputSource) -> i64 {
        *self.map.get(&(thread, seq)).unwrap_or(&self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_inputs_always_zero() {
        let mut z = ZeroInputs;
        assert_eq!(z.read(ThreadId(0), 0, &InputSource::Stdin), 0);
        assert_eq!(z.read(ThreadId(3), 9, &InputSource::Env("x".into())), 0);
    }

    #[test]
    fn random_inputs_stay_in_range_and_are_seeded() {
        let mut a = RandomInputs::new(42, 5, 9);
        let mut b = RandomInputs::new(42, 5, 9);
        for i in 0..100 {
            let va = a.read(ThreadId(0), i, &InputSource::Stdin);
            let vb = b.read(ThreadId(0), i, &InputSource::Stdin);
            assert_eq!(va, vb, "same seed must give same stream");
            assert!((5..=9).contains(&va));
        }
    }

    #[test]
    fn map_inputs_use_entries_then_default() {
        let mut m = MapInputs::from_entries([((ThreadId(1), 0), 77)]);
        m.default = -1;
        m.set(ThreadId(1), 1, 88);
        assert_eq!(m.read(ThreadId(1), 0, &InputSource::Stdin), 77);
        assert_eq!(m.read(ThreadId(1), 1, &InputSource::Stdin), 88);
        assert_eq!(m.read(ThreadId(0), 0, &InputSource::Stdin), -1);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }
}
