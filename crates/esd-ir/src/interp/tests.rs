//! Interpreter tests: sequential semantics, memory safety detection,
//! threading, synchronization and deadlock detection.

use super::*;
use crate::builder::ProgramBuilder;
use crate::inst::{CmpOp, InputSource, Operand};
use crate::program::Program;

fn run_program(p: &Program) -> RunResult {
    let mut interp = Interpreter::new(p, Box::new(ZeroInputs));
    interp.run(&InterpreterConfig::default())
}

fn run_with_inputs(p: &Program, inputs: Box<dyn InputProvider>) -> RunResult {
    let mut interp = Interpreter::new(p, inputs);
    interp.run(&InterpreterConfig::default())
}

#[test]
fn arithmetic_and_output() {
    let mut pb = ProgramBuilder::new("arith");
    pb.function("main", 0, |f| {
        let a = f.konst(6);
        let b = f.konst(7);
        let c = f.mul(a, b);
        f.output(c);
        let d = f.sub(c, 2);
        f.output(d);
        f.ret(d);
    });
    let p = pb.finish("main");
    let r = run_program(&p);
    assert_eq!(r.outcome, ExecOutcome::Exit { code: 40 });
    assert_eq!(r.output, vec![42, 40]);
}

#[test]
fn conditional_branching_follows_input() {
    let mut pb = ProgramBuilder::new("branch");
    pb.function("main", 0, |f| {
        let x = f.getchar();
        let c = f.cmp(CmpOp::Eq, x, 'm' as i64);
        let yes = f.new_block("yes");
        let no = f.new_block("no");
        f.cond_br(c, yes, no);
        f.switch_to(yes);
        f.output(1);
        f.ret_void();
        f.switch_to(no);
        f.output(0);
        f.ret_void();
    });
    let p = pb.finish("main");

    let r =
        run_with_inputs(&p, Box::new(MapInputs::from_entries([((ThreadId(0), 0), 'm' as i64)])));
    assert_eq!(r.output, vec![1]);
    let r =
        run_with_inputs(&p, Box::new(MapInputs::from_entries([((ThreadId(0), 0), 'x' as i64)])));
    assert_eq!(r.output, vec![0]);
}

#[test]
fn function_calls_and_recursion() {
    let mut pb = ProgramBuilder::new("fact");
    let fact = pb.declare("fact", 1);
    pb.define(fact, |f| {
        let n = f.param(0);
        let is_small = f.cmp(CmpOp::Le, n, 1);
        let base = f.new_block("base");
        let rec = f.new_block("rec");
        f.cond_br(is_small, base, rec);
        f.switch_to(base);
        f.ret(1);
        f.switch_to(rec);
        let n1 = f.sub(n, 1);
        let sub = f.call(fact, vec![n1.into()]);
        let r = f.mul(n, sub);
        f.ret(r);
    });
    pb.function("main", 0, |f| {
        let r = f.call(fact, vec![Operand::Const(5)]);
        f.output(r);
        f.ret(r);
    });
    let p = pb.finish("main");
    let r = run_program(&p);
    assert_eq!(r.output, vec![120]);
    assert_eq!(r.outcome, ExecOutcome::Exit { code: 120 });
}

#[test]
fn locals_and_globals_load_store() {
    let mut pb = ProgramBuilder::new("mem");
    let g = pb.global_init("counter", 1, vec![10]);
    pb.function("main", 0, |f| {
        let l = f.local(2);
        let lp = f.addr_local(l);
        f.store(lp, 5);
        let gp = f.addr_global(g);
        let gv = f.load(gp);
        let lv = f.load(lp);
        let sum = f.add(gv, lv);
        f.store(gp, sum);
        let out = f.load(gp);
        f.output(out);
        f.ret_void();
    });
    let p = pb.finish("main");
    let r = run_program(&p);
    assert_eq!(r.output, vec![15]);
}

#[test]
fn null_dereference_produces_segfault_coredump() {
    let mut pb = ProgramBuilder::new("nullderef");
    pb.function("main", 0, |f| {
        let zero = f.konst(0);
        let v = f.load(zero);
        f.output(v);
        f.ret_void();
    });
    let p = pb.finish("main");
    let r = run_program(&p);
    let dump = r.outcome.coredump().expect("must fault");
    assert!(matches!(dump.fault, FaultKind::SegFault { .. }));
    assert_eq!(dump.faulting_thread, Some(ThreadId(0)));
    assert!(dump.faulting_loc.is_some());
    assert_eq!(dump.threads.len(), 1);
    assert_eq!(dump.threads[0].stack.last().unwrap().func_name, "main");
}

#[test]
fn buffer_overflow_is_out_of_bounds() {
    let mut pb = ProgramBuilder::new("overflow");
    pb.function("main", 0, |f| {
        let buf = f.alloc(4);
        let p = f.gep(buf, 4); // one past the end
        f.store(p, 1);
        f.ret_void();
    });
    let p = pb.finish("main");
    let r = run_program(&p);
    let dump = r.outcome.coredump().expect("must fault");
    assert!(matches!(dump.fault, FaultKind::OutOfBounds { off: 4, size: 4 }));
}

#[test]
fn invalid_free_and_double_free_detected() {
    let mut pb = ProgramBuilder::new("invalidfree");
    pb.function("main", 0, |f| {
        let l = f.local(1);
        let lp = f.addr_local(l);
        f.free(lp); // freeing a stack local is invalid
        f.ret_void();
    });
    let p = pb.finish("main");
    let r = run_program(&p);
    assert!(matches!(r.outcome.coredump().unwrap().fault, FaultKind::InvalidFree));

    let mut pb = ProgramBuilder::new("doublefree");
    pb.function("main", 0, |f| {
        let h = f.alloc(1);
        f.free(h);
        f.free(h);
        f.ret_void();
    });
    let p = pb.finish("main");
    let r = run_program(&p);
    assert!(matches!(r.outcome.coredump().unwrap().fault, FaultKind::DoubleFree));
}

#[test]
fn use_after_free_detected() {
    let mut pb = ProgramBuilder::new("uaf");
    pb.function("main", 0, |f| {
        let h = f.alloc(2);
        f.free(h);
        let v = f.load(h);
        f.output(v);
        f.ret_void();
    });
    let p = pb.finish("main");
    let r = run_program(&p);
    assert!(matches!(r.outcome.coredump().unwrap().fault, FaultKind::UseAfterFree));
}

#[test]
fn assert_failure_and_div_by_zero() {
    let mut pb = ProgramBuilder::new("assertfail");
    pb.function("main", 0, |f| {
        let zero = f.konst(0);
        f.assert(zero, "must not be zero");
        f.ret_void();
    });
    let p = pb.finish("main");
    let r = run_program(&p);
    match &r.outcome.coredump().unwrap().fault {
        FaultKind::AssertFailure { msg } => assert_eq!(msg, "must not be zero"),
        other => panic!("unexpected fault {other:?}"),
    }

    let mut pb = ProgramBuilder::new("divzero");
    pb.function("main", 0, |f| {
        let a = f.konst(7);
        let b = f.konst(0);
        let q = f.bin(crate::inst::BinOp::Div, a, b);
        f.output(q);
        f.ret_void();
    });
    let p = pb.finish("main");
    let r = run_program(&p);
    assert!(matches!(r.outcome.coredump().unwrap().fault, FaultKind::DivByZero));
}

#[test]
fn spawn_join_and_shared_counter() {
    let mut pb = ProgramBuilder::new("threads");
    let g = pb.global("counter", 1);
    let m = pb.global("lock", 1);
    let worker = pb.declare("worker", 1);
    pb.define(worker, |f| {
        let gp = f.addr_global(g);
        let mp = f.addr_global(m);
        f.lock(mp);
        let v = f.load(gp);
        let v1 = f.add(v, 1);
        f.store(gp, v1);
        f.unlock(mp);
        f.ret_void();
    });
    pb.function("main", 0, |f| {
        let t1 = f.spawn(worker, 0);
        let t2 = f.spawn(worker, 0);
        f.join(t1);
        f.join(t2);
        let gp = f.addr_global(g);
        let v = f.load(gp);
        f.output(v);
        f.ret_void();
    });
    let p = pb.finish("main");
    for seed in 0..5 {
        let mut interp = Interpreter::new(&p, Box::new(ZeroInputs));
        let r = interp.run(&InterpreterConfig {
            scheduler: SchedulerKind::Random { seed },
            ..Default::default()
        });
        assert_eq!(r.output, vec![2], "seed {seed}");
        assert_eq!(r.outcome, ExecOutcome::Exit { code: 0 });
    }
}

#[test]
fn classic_ab_ba_deadlock_is_detected() {
    // Thread 1: lock A; lock B. Thread 2: lock B; lock A. Under an adverse
    // schedule this deadlocks; the interpreter must detect the global stall
    // and produce a deadlock coredump listing both threads' waits.
    let mut pb = ProgramBuilder::new("abba");
    let a = pb.global("A", 1);
    let b = pb.global("B", 1);
    let t1 = pb.declare("locker_ab", 1);
    pb.define(t1, |f| {
        let ap = f.addr_global(a);
        let bp = f.addr_global(b);
        f.lock(ap);
        f.yield_now();
        f.lock(bp);
        f.unlock(bp);
        f.unlock(ap);
        f.ret_void();
    });
    let t2 = pb.declare("locker_ba", 1);
    pb.define(t2, |f| {
        let ap = f.addr_global(a);
        let bp = f.addr_global(b);
        f.lock(bp);
        f.yield_now();
        f.lock(ap);
        f.unlock(ap);
        f.unlock(bp);
        f.ret_void();
    });
    pb.function("main", 0, |f| {
        let h1 = f.spawn(t1, 0);
        let h2 = f.spawn(t2, 0);
        f.join(h1);
        f.join(h2);
        f.ret_void();
    });
    let p = pb.finish("main");

    // Drive the interleaving by hand: t1 acquires A, t2 acquires B, then
    // both block on the other lock and main blocks on join.
    let mut interp = Interpreter::new(&p, Box::new(ZeroInputs));
    // main: spawn, spawn (each one instruction).
    assert_eq!(interp.step_thread(ThreadId(0)), StepResult::Continue);
    assert_eq!(interp.step_thread(ThreadId(0)), StepResult::Continue);
    // t1: addr, addr, lock A, yield.
    for _ in 0..4 {
        assert_eq!(interp.step_thread(ThreadId(1)), StepResult::Continue);
    }
    // t2: addr, addr, lock B, yield.
    for _ in 0..4 {
        assert_eq!(interp.step_thread(ThreadId(2)), StepResult::Continue);
    }
    // t1 tries lock B -> blocked; t2 tries lock A -> blocked; main joins -> blocked.
    assert_eq!(interp.step_thread(ThreadId(1)), StepResult::Blocked);
    assert_eq!(interp.step_thread(ThreadId(2)), StepResult::Blocked);
    assert_eq!(interp.step_thread(ThreadId(0)), StepResult::Blocked);

    let dump = interp.detect_deadlock().expect("deadlock must be detected");
    assert!(matches!(dump.fault, FaultKind::Deadlock));
    let blocked = dump.mutex_blocked_threads();
    assert_eq!(blocked.len(), 2);
    for t in blocked {
        assert_eq!(t.held_locks.len(), 1);
        assert!(t.waiting_mutex.is_some());
    }
}

#[test]
fn condvar_producer_consumer() {
    let mut pb = ProgramBuilder::new("condvar");
    let flag = pb.global("flag", 1);
    let m = pb.global("m", 1);
    let cv = pb.global("cv", 1);
    let consumer = pb.declare("consumer", 1);
    pb.define(consumer, |f| {
        let fp = f.addr_global(flag);
        let mp = f.addr_global(m);
        let cp = f.addr_global(cv);
        f.lock(mp);
        let check = f.new_block("check");
        let wait_bb = f.new_block("wait");
        let done = f.new_block("done");
        f.br(check);
        f.switch_to(check);
        let v = f.load(fp);
        f.cond_br(v, done, wait_bb);
        f.switch_to(wait_bb);
        f.cond_wait(cp, mp);
        f.br(check);
        f.switch_to(done);
        f.output(99);
        f.unlock(mp);
        f.ret_void();
    });
    pb.function("main", 0, |f| {
        let t = f.spawn(consumer, 0);
        let fp = f.addr_global(flag);
        let mp = f.addr_global(m);
        let cp = f.addr_global(cv);
        f.lock(mp);
        f.store(fp, 1);
        f.cond_signal(cp);
        f.unlock(mp);
        f.join(t);
        f.ret_void();
    });
    let p = pb.finish("main");
    for seed in 0..8 {
        let mut interp = Interpreter::new(&p, Box::new(ZeroInputs));
        let r = interp.run(&InterpreterConfig {
            scheduler: SchedulerKind::Random { seed },
            max_steps: 100_000,
            ..Default::default()
        });
        assert_eq!(r.output, vec![99], "seed {seed}: outcome {:?}", r.outcome);
        assert_eq!(r.outcome, ExecOutcome::Exit { code: 0 });
    }
}

#[test]
fn unlock_without_holding_is_sync_misuse() {
    let mut pb = ProgramBuilder::new("badunlock");
    let m = pb.global("m", 1);
    pb.function("main", 0, |f| {
        let mp = f.addr_global(m);
        f.unlock(mp);
        f.ret_void();
    });
    let p = pb.finish("main");
    let r = run_program(&p);
    assert!(matches!(r.outcome.coredump().unwrap().fault, FaultKind::SyncMisuse { .. }));
}

#[test]
fn indirect_calls_resolve_and_bad_targets_fault() {
    let mut pb = ProgramBuilder::new("indirect");
    let double = pb.function("double", 1, |f| {
        let r = f.mul(f.param(0), 2);
        f.ret(r);
    });
    pb.function("main", 0, |f| {
        let fp = f.func_addr(double);
        let r = f.call_indirect(fp, vec![Operand::Const(21)]);
        f.output(r);
        let bad = f.konst(7);
        f.call_indirect(bad, vec![Operand::Const(0)]);
        f.ret_void();
    });
    let p = pb.finish("main");
    let r = run_program(&p);
    assert_eq!(r.output, vec![42]);
    assert!(matches!(r.outcome.coredump().unwrap().fault, FaultKind::BadIndirectCall { .. }));
}

#[test]
fn self_lock_without_recursion_deadlocks() {
    let mut pb = ProgramBuilder::new("selflock");
    let m = pb.global("m", 1);
    pb.function("main", 0, |f| {
        let mp = f.addr_global(m);
        f.lock(mp);
        f.lock(mp);
        f.unlock(mp);
        f.unlock(mp);
        f.ret_void();
    });
    let p = pb.finish("main");
    let r = run_program(&p);
    let dump = r.outcome.coredump().expect("self deadlock");
    assert!(matches!(dump.fault, FaultKind::Deadlock));
}

#[test]
fn step_limit_is_respected() {
    let mut pb = ProgramBuilder::new("loopy");
    pb.function("main", 0, |f| {
        let body = f.new_block("body");
        f.br(body);
        f.switch_to(body);
        f.nop();
        f.br(body);
    });
    let p = pb.finish("main");
    let mut interp = Interpreter::new(&p, Box::new(ZeroInputs));
    let r = interp.run(&InterpreterConfig { max_steps: 500, ..Default::default() });
    assert_eq!(r.outcome, ExecOutcome::StepLimit);
    assert!(r.steps >= 500);
}

#[test]
fn input_log_records_reads_in_order() {
    let mut pb = ProgramBuilder::new("inputs");
    pb.function("main", 0, |f| {
        let a = f.getchar();
        let b = f.input(InputSource::Env("MODE".into()));
        let s = f.add(a, b);
        f.output(s);
        f.ret_void();
    });
    let p = pb.finish("main");
    let mut interp = Interpreter::new(
        &p,
        Box::new(MapInputs::from_entries([((ThreadId(0), 0), 10), ((ThreadId(0), 1), 32)])),
    );
    let r = interp.run(&InterpreterConfig::default());
    assert_eq!(r.output, vec![42]);
    assert_eq!(interp.input_log, vec![(ThreadId(0), 0, 10), (ThreadId(0), 1, 32)]);
}

#[test]
fn random_scheduler_is_reproducible_per_seed() {
    let mut pb = ProgramBuilder::new("sched");
    let worker = pb.declare("w", 1);
    pb.define(worker, |f| {
        f.output(f.param(0));
        f.ret_void();
    });
    pb.function("main", 0, |f| {
        let a = f.spawn(worker, 1);
        let b = f.spawn(worker, 2);
        f.join(a);
        f.join(b);
        f.ret_void();
    });
    let p = pb.finish("main");
    let run = |seed| {
        let mut interp = Interpreter::new(&p, Box::new(ZeroInputs));
        interp.run(&InterpreterConfig {
            scheduler: SchedulerKind::Random { seed },
            record_trace: true,
            ..Default::default()
        })
    };
    let a1 = run(7);
    let a2 = run(7);
    assert_eq!(a1.output, a2.output);
    assert_eq!(a1.trace, a2.trace);
}

#[test]
fn paper_listing1_deadlock_program() {
    // The example from Listing 1 of the paper: two threads run
    // CriticalSection(); with mode==MOD_Y && idx==1 the first thread unlocks
    // M1 and re-locks it, creating a window for the classic deadlock.
    let p = listing1_program();
    // Inputs: getchar()='m', getenv("mode")[0]='Y' — the bug-enabling inputs.
    let inputs =
        MapInputs::from_entries([((ThreadId(0), 0), 'm' as i64), ((ThreadId(0), 1), 'Y' as i64)]);
    // Search over seeds for a schedule that deadlocks (stress testing); many
    // seeds will complete fine, which is exactly why the paper needs ESD.
    let mut deadlocked = false;
    for seed in 0..400 {
        let mut interp = Interpreter::new(&p, Box::new(inputs.clone()));
        let r = interp.run(&InterpreterConfig {
            scheduler: SchedulerKind::Random { seed },
            max_steps: 50_000,
            ..Default::default()
        });
        if let ExecOutcome::Fault(d) = &r.outcome {
            if matches!(d.fault, FaultKind::Deadlock) {
                deadlocked = true;
                assert!(d.mutex_blocked_threads().len() >= 2);
                break;
            }
        }
    }
    assert!(deadlocked, "some random schedule must expose the Listing-1 deadlock");
}

/// Builds the program of Listing 1 from the paper (also used by other
/// crates' tests through `esd-workloads`, which has its own richer copy).
fn listing1_program() -> Program {
    let mut pb = ProgramBuilder::new("listing1");
    let m1 = pb.global("M1", 1);
    let m2 = pb.global("M2", 1);
    let idx = pb.global("idx", 1);
    let mode = pb.global("mode", 1);

    let critical = pb.declare("critical_section", 1);
    pb.define(critical, |f| {
        let m1p = f.addr_global(m1);
        let m2p = f.addr_global(m2);
        f.lock(m1p);
        f.lock(m2p);
        let modep = f.addr_global(mode);
        let idxp = f.addr_global(idx);
        let mv = f.load(modep);
        let iv = f.load(idxp);
        let mode_y = f.cmp(CmpOp::Eq, mv, 1);
        let idx_1 = f.cmp(CmpOp::Eq, iv, 1);
        let both = f.bin(crate::inst::BinOp::And, mode_y, idx_1);
        let relock = f.new_block("relock");
        let rest = f.new_block("rest");
        f.cond_br(both, relock, rest);
        f.switch_to(relock);
        f.unlock(m1p);
        f.yield_now();
        f.lock(m1p);
        f.br(rest);
        f.switch_to(rest);
        f.unlock(m2p);
        f.unlock(m1p);
        f.ret_void();
    });

    pb.function("main", 0, |f| {
        let idxp = f.addr_global(idx);
        let modep = f.addr_global(mode);
        // if (getchar() == 'm') idx++;
        let c = f.getchar();
        let is_m = f.cmp(CmpOp::Eq, c, 'm' as i64);
        let inc = f.new_block("inc");
        let after_inc = f.new_block("after_inc");
        f.cond_br(is_m, inc, after_inc);
        f.switch_to(inc);
        let v = f.load(idxp);
        let v1 = f.add(v, 1);
        f.store(idxp, v1);
        f.br(after_inc);
        f.switch_to(after_inc);
        // if (getenv("mode")[0] == 'Y') mode = MOD_Y (1) else mode = MOD_Z (2)
        let e = f.getenv("mode");
        let is_y = f.cmp(CmpOp::Eq, e, 'Y' as i64);
        let yes = f.new_block("mode_y");
        let no = f.new_block("mode_z");
        let cont = f.new_block("cont");
        f.cond_br(is_y, yes, no);
        f.switch_to(yes);
        f.store(modep, 1);
        f.br(cont);
        f.switch_to(no);
        f.store(modep, 2);
        f.br(cont);
        f.switch_to(cont);
        let t1 = f.spawn(critical, 0);
        let t2 = f.spawn(critical, 0);
        f.join(t1);
        f.join(t2);
        f.ret_void();
    });
    pb.finish("main")
}
