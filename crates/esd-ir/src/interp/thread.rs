//! Threads, frames and synchronization-object state for the interpreter.

use crate::types::{BlockId, FuncId, Reg, ThreadId};
use crate::value::{ObjId, Ptr, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One activation record.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The function this frame executes.
    pub func: FuncId,
    /// Current basic block.
    pub block: BlockId,
    /// Index of the next instruction to execute within the block
    /// (`insts.len()` means the terminator).
    pub idx: u32,
    /// Virtual register file (uninitialized registers are `None`).
    pub regs: Vec<Option<Value>>,
    /// Objects backing the function's addressable locals.
    pub locals: Vec<ObjId>,
    /// Register of the caller that receives this frame's return value.
    pub ret_dst: Option<Reg>,
}

impl Frame {
    /// Creates a frame for `func` with `num_regs` registers, placing `args`
    /// in the low registers.
    pub fn new(
        func: FuncId,
        num_regs: u32,
        args: &[Value],
        locals: Vec<ObjId>,
        ret_dst: Option<Reg>,
    ) -> Self {
        let mut regs = vec![None; num_regs as usize];
        for (i, a) in args.iter().enumerate() {
            regs[i] = Some(*a);
        }
        Frame { func, block: BlockId(0), idx: 0, regs, locals, ret_dst }
    }
}

/// Why a thread is not currently runnable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadStatus {
    /// Ready to execute.
    Runnable,
    /// Blocked acquiring the mutex at this address.
    BlockedOnMutex(Ptr),
    /// Blocked waiting on the condition variable at this address (the mutex
    /// to re-acquire is carried in `cond_resume`).
    BlockedOnCond(Ptr),
    /// Blocked joining the given thread.
    BlockedOnJoin(ThreadId),
    /// The thread has returned from its start routine.
    Finished,
}

/// A single thread of the interpreted program.
#[derive(Debug, Clone)]
pub struct Thread {
    /// Thread identifier (0 = main).
    pub id: ThreadId,
    /// Call stack, innermost frame last.
    pub frames: Vec<Frame>,
    /// Scheduling status.
    pub status: ThreadStatus,
    /// Number of input words this thread has read so far.
    pub input_seq: u32,
    /// Mutexes currently held by this thread, in acquisition order.
    pub held_locks: Vec<Ptr>,
    /// Set when the thread was signaled while waiting on a condition
    /// variable and must re-acquire this mutex before continuing.
    pub cond_resume: Option<Ptr>,
    /// Value returned by the thread's start routine (available after
    /// `Finished`).
    pub return_value: Option<Value>,
}

impl Thread {
    /// Creates a runnable thread with a single initial frame.
    pub fn new(id: ThreadId, frame: Frame) -> Self {
        Thread {
            id,
            frames: vec![frame],
            status: ThreadStatus::Runnable,
            input_seq: 0,
            held_locks: Vec::new(),
            cond_resume: None,
            return_value: None,
        }
    }

    /// The innermost frame.
    pub fn top(&self) -> &Frame {
        self.frames.last().expect("thread has no frames")
    }

    /// The innermost frame, mutably.
    pub fn top_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("thread has no frames")
    }

    /// True if the thread can be scheduled.
    pub fn is_runnable(&self) -> bool {
        self.status == ThreadStatus::Runnable
    }

    /// True if the thread has terminated.
    pub fn is_finished(&self) -> bool {
        self.status == ThreadStatus::Finished
    }
}

/// State of a single mutex word.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MutexState {
    /// The thread currently holding the mutex, if any.
    pub holder: Option<ThreadId>,
    /// Threads blocked waiting to acquire it, in arrival order.
    pub waiters: Vec<ThreadId>,
}

/// State of a single condition-variable word.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CondState {
    /// Threads blocked in `cond_wait`, with the mutex each must re-acquire.
    pub waiters: Vec<(ThreadId, Ptr)>,
}

/// All synchronization-object state, keyed by the address of the mutex /
/// condition-variable word (mirroring pthreads, where the synchronization
/// object is identified by its address).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SyncState {
    /// Mutexes that have been touched so far.
    pub mutexes: HashMap<Ptr, MutexState>,
    /// Condition variables that have been touched so far.
    pub conds: HashMap<Ptr, CondState>,
}

impl SyncState {
    /// Returns (creating if needed) the mutex at `addr`.
    pub fn mutex_mut(&mut self, addr: Ptr) -> &mut MutexState {
        self.mutexes.entry(addr).or_default()
    }

    /// Returns (creating if needed) the condition variable at `addr`.
    pub fn cond_mut(&mut self, addr: Ptr) -> &mut CondState {
        self.conds.entry(addr).or_default()
    }

    /// Returns the holder of the mutex at `addr`, if it is held.
    pub fn holder_of(&self, addr: Ptr) -> Option<ThreadId> {
        self.mutexes.get(&addr).and_then(|m| m.holder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_places_args_in_low_registers() {
        let f = Frame::new(FuncId(0), 4, &[Value::Int(10), Value::Int(20)], vec![], None);
        assert_eq!(f.regs[0], Some(Value::Int(10)));
        assert_eq!(f.regs[1], Some(Value::Int(20)));
        assert_eq!(f.regs[2], None);
        assert_eq!(f.block, BlockId(0));
        assert_eq!(f.idx, 0);
    }

    #[test]
    fn thread_status_transitions_reflect_runnability() {
        let frame = Frame::new(FuncId(0), 0, &[], vec![], None);
        let mut t = Thread::new(ThreadId(1), frame);
        assert!(t.is_runnable());
        t.status = ThreadStatus::BlockedOnMutex(Ptr { obj: ObjId(1), off: 0 });
        assert!(!t.is_runnable());
        assert!(!t.is_finished());
        t.status = ThreadStatus::Finished;
        assert!(t.is_finished());
    }

    #[test]
    fn sync_state_creates_entries_on_demand() {
        let mut s = SyncState::default();
        let addr = Ptr { obj: ObjId(5), off: 0 };
        assert_eq!(s.holder_of(addr), None);
        s.mutex_mut(addr).holder = Some(ThreadId(2));
        assert_eq!(s.holder_of(addr), Some(ThreadId(2)));
        s.cond_mut(addr).waiters.push((ThreadId(1), addr));
        assert_eq!(s.conds[&addr].waiters.len(), 1);
    }
}
