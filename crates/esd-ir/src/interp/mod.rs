//! A concrete, multi-threaded interpreter for the IR.
//!
//! The interpreter serves three roles in the reproduction:
//!
//! 1. **The end-user site.** Running a workload program under a randomized
//!    scheduler with arbitrary inputs is how a failure "happens in
//!    production" and produces the [`CoreDump`] that seeds ESD.
//! 2. **The stress-testing baseline** of §7.2 (brute-force trial and error).
//! 3. **The playback substrate** of §5: the playback environment drives the
//!    interpreter thread-by-thread according to the synthesized schedule and
//!    feeds it the synthesized inputs, which must deterministically re-create
//!    the failure.
//!
//! The interpreter executes one thread at a time (a serialized execution, as
//! in the paper's synthesis and serial playback modes); which thread runs
//! next is decided either by a built-in scheduler ([`Interpreter::run`]) or
//! by an external driver calling [`Interpreter::step_thread`] directly.

pub mod coredump;
pub mod inputs;
pub mod memory;
pub mod thread;

pub use coredump::{CoreDump, FaultKind, StackFrameInfo, ThreadDumpInfo};
pub use inputs::{InputProvider, MapInputs, RandomInputs, ZeroInputs};
pub use memory::{MemError, Memory, ObjKind, Object};
pub use thread::{CondState, Frame, MutexState, SyncState, Thread, ThreadStatus};

use crate::inst::{BinOp, Callee, CmpOp, Inst, Operand, Terminator};
use crate::program::Program;
use crate::types::{FuncId, Loc, Reg, ThreadId};
use crate::value::{Ptr, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Base offset of function "addresses" produced by `FuncAddr`, so that small
/// integers (and null) are never valid indirect-call targets.
pub const FUNC_ADDR_BASE: i64 = 0x1000;

/// Maximum call-stack depth before the interpreter reports a stack overflow.
pub const MAX_STACK_DEPTH: usize = 4096;

/// Maximum number of threads a program may create.
pub const MAX_THREADS: usize = 256;

/// Maximum size (in words) of a single heap allocation.
pub const MAX_ALLOC_WORDS: i64 = 1 << 20;

/// Which built-in scheduler [`Interpreter::run`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Run each thread for up to `quantum` instructions, then rotate.
    RoundRobin {
        /// Scheduling quantum in instructions.
        quantum: u32,
    },
    /// Pick a uniformly random runnable thread before every instruction —
    /// the scheduler used by the stress-testing baseline.
    Random {
        /// PRNG seed (same seed ⇒ same schedule).
        seed: u64,
    },
}

/// Configuration for [`Interpreter::run`].
#[derive(Debug, Clone, Copy)]
pub struct InterpreterConfig {
    /// Abort after this many instructions.
    pub max_steps: u64,
    /// The built-in scheduler to use.
    pub scheduler: SchedulerKind,
    /// Record the context-switch trace in the result.
    pub record_trace: bool,
}

impl Default for InterpreterConfig {
    fn default() -> Self {
        InterpreterConfig {
            max_steps: 1_000_000,
            scheduler: SchedulerKind::RoundRobin { quantum: 64 },
            record_trace: false,
        }
    }
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecOutcome {
    /// The main thread returned.
    Exit {
        /// Value returned by `main` (0 if it returned void).
        code: i64,
    },
    /// A failure was detected; the coredump describes it.
    Fault(Box<CoreDump>),
    /// The step budget was exhausted.
    StepLimit,
}

impl ExecOutcome {
    /// Returns the coredump if the run faulted.
    pub fn coredump(&self) -> Option<&CoreDump> {
        match self {
            ExecOutcome::Fault(d) => Some(d),
            _ => None,
        }
    }

    /// True if the run ended in a failure.
    pub fn is_fault(&self) -> bool {
        matches!(self, ExecOutcome::Fault(_))
    }
}

/// The result of a full run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: ExecOutcome,
    /// Number of instructions executed.
    pub steps: u64,
    /// Everything the program wrote via `output`.
    pub output: Vec<i64>,
    /// Context-switch trace: `(step, thread switched to)`, only populated
    /// when [`InterpreterConfig::record_trace`] is set.
    pub trace: Vec<(u64, ThreadId)>,
}

/// The result of stepping a single thread once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepResult {
    /// The instruction executed; the thread remains runnable.
    Continue,
    /// The thread blocked (on a mutex, condition variable or join) without
    /// executing; pick another thread.
    Blocked,
    /// The thread's start routine returned; the thread is finished.
    ThreadFinished,
    /// The main thread returned; the program is done.
    ProgramExit {
        /// `main`'s return value.
        code: i64,
    },
    /// A failure was detected.
    Fault(Box<CoreDump>),
}

/// The concrete interpreter.
pub struct Interpreter<'p> {
    program: &'p Program,
    /// The object memory (public for debugger-style inspection).
    pub mem: Memory,
    threads: Vec<Thread>,
    sync: SyncState,
    globals: Vec<crate::value::ObjId>,
    inputs: Box<dyn InputProvider>,
    output: Vec<i64>,
    steps: u64,
    finished: Option<ExecOutcome>,
    /// Log of every input word served, as `(thread, seq, value)` — used by
    /// tests and by the record-style tooling.
    pub input_log: Vec<(ThreadId, u32, i64)>,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter for `program`, with inputs served by `inputs`.
    /// Globals are allocated and initialized, and the main thread is created
    /// at the entry function.
    pub fn new(program: &'p Program, inputs: Box<dyn InputProvider>) -> Self {
        let mut mem = Memory::new();
        let mut globals = Vec::with_capacity(program.globals.len());
        for (gi, g) in program.globals.iter().enumerate() {
            let mut data = vec![Value::Int(0); g.size as usize];
            for (i, v) in g.init.iter().enumerate() {
                data[i] = Value::Int(*v);
            }
            globals.push(mem.alloc_init(ObjKind::Global(crate::types::GlobalId(gi as u32)), data));
        }
        let entry_fn = program.func(program.entry);
        let mut locals = Vec::new();
        for size in &entry_fn.local_sizes {
            locals.push(mem.alloc(ObjKind::Local(ThreadId(0)), *size as usize));
        }
        let frame = Frame::new(program.entry, entry_fn.num_regs, &[], locals, None);
        let main = Thread::new(ThreadId(0), frame);
        Interpreter {
            program,
            mem,
            threads: vec![main],
            sync: SyncState::default(),
            globals,
            inputs,
            output: Vec::new(),
            steps: 0,
            finished: None,
            input_log: Vec::new(),
        }
    }

    /// The program being interpreted.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// All threads created so far.
    pub fn threads(&self) -> &[Thread] {
        &self.threads
    }

    /// The thread with the given id.
    pub fn thread(&self, tid: ThreadId) -> &Thread {
        &self.threads[tid.0 as usize]
    }

    /// Synchronization-object state (for inspection).
    pub fn sync(&self) -> &SyncState {
        &self.sync
    }

    /// Everything written via `output` so far.
    pub fn output(&self) -> &[i64] {
        &self.output
    }

    /// Number of instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Ids of all currently runnable threads.
    pub fn runnable_threads(&self) -> Vec<ThreadId> {
        self.threads.iter().filter(|t| t.is_runnable()).map(|t| t.id).collect()
    }

    /// True if at least one thread has not finished.
    pub fn has_unfinished_threads(&self) -> bool {
        self.threads.iter().any(|t| !t.is_finished())
    }

    /// The location of the instruction `tid` will execute next, or `None` if
    /// the thread has finished.
    pub fn current_loc(&self, tid: ThreadId) -> Option<Loc> {
        let t = &self.threads[tid.0 as usize];
        if t.is_finished() || t.frames.is_empty() {
            return None;
        }
        let f = t.top();
        Some(Loc { func: f.func, block: f.block, idx: f.idx })
    }

    /// True if no thread is runnable but some thread has not finished — i.e.
    /// every live thread is blocked on a mutex, condition variable or join.
    pub fn is_global_stall(&self) -> bool {
        self.runnable_threads().is_empty() && self.has_unfinished_threads()
    }

    /// The terminal outcome, once the program has exited or faulted.
    pub fn finished(&self) -> Option<&ExecOutcome> {
        self.finished.as_ref()
    }

    fn int_of(v: Value) -> i64 {
        match v {
            Value::Int(i) => i,
            // A pointer cast to an integer: a stable non-zero encoding.
            Value::Ptr(p) => 0x4000_0000_0000 + (p.obj.0 as i64) * 4096 + p.off,
        }
    }

    fn eval(&self, tid: ThreadId, op: Operand) -> Value {
        match op {
            Operand::Const(c) => Value::Int(c),
            Operand::Reg(r) => {
                self.threads[tid.0 as usize].top().regs[r.0 as usize].unwrap_or(Value::Int(0))
            }
        }
    }

    fn set_reg(&mut self, tid: ThreadId, r: Reg, v: Value) {
        self.threads[tid.0 as usize].top_mut().regs[r.0 as usize] = Some(v);
    }

    fn advance(&mut self, tid: ThreadId) {
        self.threads[tid.0 as usize].top_mut().idx += 1;
    }

    fn mem_fault_kind(err: MemError, addr: Value) -> FaultKind {
        match err {
            MemError::NotAPointer(v) => FaultKind::SegFault { addr: v },
            MemError::DanglingObject(_) => FaultKind::SegFault { addr },
            MemError::UseAfterFree(_) => FaultKind::UseAfterFree,
            MemError::OutOfBounds { off, size, .. } => FaultKind::OutOfBounds { off, size },
            MemError::InvalidFree(_) => FaultKind::InvalidFree,
            MemError::DoubleFree(_) => FaultKind::DoubleFree,
        }
    }

    /// Builds a coredump describing the given fault in the current state.
    pub fn make_coredump(
        &self,
        fault: FaultKind,
        faulting_thread: Option<ThreadId>,
        faulting_loc: Option<Loc>,
        fault_value: Option<Value>,
    ) -> CoreDump {
        let threads = self
            .threads
            .iter()
            .map(|t| {
                let stack = t
                    .frames
                    .iter()
                    .map(|f| StackFrameInfo {
                        func: f.func,
                        func_name: self.program.func(f.func).name.clone(),
                        block: f.block,
                        idx: f.idx,
                    })
                    .collect();
                let (waiting_mutex, waiting_cond, waiting_join) = match t.status {
                    ThreadStatus::BlockedOnMutex(m) => (Some(m), None, None),
                    ThreadStatus::BlockedOnCond(c) => (None, Some(c), None),
                    ThreadStatus::BlockedOnJoin(j) => (None, None, Some(j)),
                    _ => (None, None, None),
                };
                ThreadDumpInfo {
                    thread: t.id,
                    stack,
                    held_locks: t.held_locks.clone(),
                    waiting_mutex,
                    waiting_cond,
                    waiting_join,
                    finished: t.is_finished(),
                }
            })
            .collect();
        CoreDump {
            program_name: self.program.name.clone(),
            fault,
            faulting_thread,
            faulting_loc,
            fault_value,
            threads,
            steps: self.steps,
        }
    }

    fn fault(
        &mut self,
        fault: FaultKind,
        tid: ThreadId,
        loc: Loc,
        value: Option<Value>,
    ) -> StepResult {
        let dump = self.make_coredump(fault, Some(tid), Some(loc), value);
        self.finished = Some(ExecOutcome::Fault(Box::new(dump.clone())));
        StepResult::Fault(Box::new(dump))
    }

    /// Detects a global stall and, if present, records and returns the
    /// corresponding deadlock coredump.
    pub fn detect_deadlock(&mut self) -> Option<CoreDump> {
        if !self.is_global_stall() {
            return None;
        }
        let dump = self.make_coredump(FaultKind::Deadlock, None, None, None);
        self.finished = Some(ExecOutcome::Fault(Box::new(dump.clone())));
        Some(dump)
    }

    fn wake_mutex_waiters(&mut self, addr: Ptr) {
        let waiters = std::mem::take(&mut self.sync.mutex_mut(addr).waiters);
        for w in waiters {
            let t = &mut self.threads[w.0 as usize];
            if t.status == ThreadStatus::BlockedOnMutex(addr) {
                t.status = ThreadStatus::Runnable;
            }
        }
    }

    fn wake_joiners(&mut self, finished: ThreadId) {
        for t in &mut self.threads {
            if t.status == ThreadStatus::BlockedOnJoin(finished) {
                t.status = ThreadStatus::Runnable;
            }
        }
    }

    fn try_acquire(&mut self, tid: ThreadId, addr: Ptr) -> bool {
        let m = self.sync.mutex_mut(addr);
        if m.holder.is_none() {
            m.holder = Some(tid);
            self.threads[tid.0 as usize].held_locks.push(addr);
            true
        } else {
            if !m.waiters.contains(&tid) {
                m.waiters.push(tid);
            }
            self.threads[tid.0 as usize].status = ThreadStatus::BlockedOnMutex(addr);
            false
        }
    }

    fn push_call(
        &mut self,
        tid: ThreadId,
        target: FuncId,
        args: Vec<Value>,
        ret_dst: Option<Reg>,
        loc: Loc,
    ) -> Option<StepResult> {
        if self.threads[tid.0 as usize].frames.len() >= MAX_STACK_DEPTH {
            return Some(self.fault(FaultKind::SegFault { addr: Value::Int(-1) }, tid, loc, None));
        }
        let callee = self.program.func(target);
        let mut locals = Vec::with_capacity(callee.local_sizes.len());
        for size in &callee.local_sizes {
            locals.push(self.mem.alloc(ObjKind::Local(tid), *size as usize));
        }
        let frame = Frame::new(target, callee.num_regs, &args, locals, ret_dst);
        self.threads[tid.0 as usize].frames.push(frame);
        None
    }

    fn resolve_indirect(&self, value: Value) -> Option<FuncId> {
        let raw = value.as_int()?;
        let idx = raw.checked_sub(FUNC_ADDR_BASE)?;
        if idx >= 0 && (idx as usize) < self.program.functions.len() {
            Some(FuncId(idx as u32))
        } else {
            None
        }
    }

    /// Executes one instruction of thread `tid`.
    ///
    /// Calling this on a blocked thread re-attempts the blocking operation
    /// (so an external scheduler may simply retry); calling it on a finished
    /// thread returns [`StepResult::ThreadFinished`] without effect.
    pub fn step_thread(&mut self, tid: ThreadId) -> StepResult {
        if let Some(outcome) = &self.finished {
            return match outcome {
                ExecOutcome::Exit { code } => StepResult::ProgramExit { code: *code },
                ExecOutcome::Fault(d) => StepResult::Fault(d.clone()),
                ExecOutcome::StepLimit => StepResult::Blocked,
            };
        }
        let thread = &self.threads[tid.0 as usize];
        if thread.is_finished() {
            return StepResult::ThreadFinished;
        }
        // A blocked thread retries its blocking operation: make it runnable
        // for this attempt; it will re-block if the condition still holds.
        if !thread.is_runnable() {
            match thread.status {
                ThreadStatus::BlockedOnMutex(_) | ThreadStatus::BlockedOnJoin(_) => {
                    self.threads[tid.0 as usize].status = ThreadStatus::Runnable;
                }
                _ => return StepResult::Blocked,
            }
        }

        let frame = self.threads[tid.0 as usize].top();
        let func = self.program.func(frame.func);
        let block = func.block(frame.block);
        let loc = Loc { func: frame.func, block: frame.block, idx: frame.idx };
        self.steps += 1;

        if frame.idx as usize >= block.insts.len() {
            return self.exec_terminator(tid, loc, block.term.clone());
        }
        let inst = block.insts[frame.idx as usize].clone();
        self.exec_inst(tid, loc, inst)
    }

    fn exec_inst(&mut self, tid: ThreadId, loc: Loc, inst: Inst) -> StepResult {
        match inst {
            Inst::Const { dst, value } => {
                self.set_reg(tid, dst, Value::Int(value));
            }
            Inst::Bin { dst, op, a, b } => {
                let va = self.eval(tid, a);
                let vb = self.eval(tid, b);
                let result = match (va, op) {
                    (Value::Ptr(p), BinOp::Add) => Value::Ptr(p.add(Self::int_of(vb))),
                    (Value::Ptr(p), BinOp::Sub) => Value::Ptr(p.add(-Self::int_of(vb))),
                    _ => {
                        let ia = Self::int_of(va);
                        let ib = Self::int_of(vb);
                        let r = match op {
                            BinOp::Add => ia.wrapping_add(ib),
                            BinOp::Sub => ia.wrapping_sub(ib),
                            BinOp::Mul => ia.wrapping_mul(ib),
                            BinOp::Div => {
                                if ib == 0 {
                                    return self.fault(FaultKind::DivByZero, tid, loc, Some(vb));
                                }
                                ia.wrapping_div(ib)
                            }
                            BinOp::Rem => {
                                if ib == 0 {
                                    return self.fault(FaultKind::DivByZero, tid, loc, Some(vb));
                                }
                                ia.wrapping_rem(ib)
                            }
                            BinOp::And => ia & ib,
                            BinOp::Or => ia | ib,
                            BinOp::Xor => ia ^ ib,
                            BinOp::Shl => ia.wrapping_shl(ib as u32 & 63),
                            BinOp::Shr => ia.wrapping_shr(ib as u32 & 63),
                        };
                        Value::Int(r)
                    }
                };
                self.set_reg(tid, dst, result);
            }
            Inst::Cmp { dst, op, a, b } => {
                let va = self.eval(tid, a);
                let vb = self.eval(tid, b);
                let result = match op {
                    CmpOp::Eq => va.value_eq(vb),
                    CmpOp::Ne => !va.value_eq(vb),
                    _ => op.eval(Self::int_of(va), Self::int_of(vb)),
                };
                self.set_reg(tid, dst, Value::Int(result as i64));
            }
            Inst::AddrLocal { dst, local } => {
                let obj = self.threads[tid.0 as usize].top().locals[local.0 as usize];
                self.set_reg(tid, dst, Value::Ptr(Ptr::to(obj)));
            }
            Inst::AddrGlobal { dst, global } => {
                let obj = self.globals[global.0 as usize];
                self.set_reg(tid, dst, Value::Ptr(Ptr::to(obj)));
            }
            Inst::FuncAddr { dst, func } => {
                self.set_reg(tid, dst, Value::Int(FUNC_ADDR_BASE + func.0 as i64));
            }
            Inst::Alloc { dst, size } => {
                let n = Self::int_of(self.eval(tid, size)).clamp(0, MAX_ALLOC_WORDS) as usize;
                let obj = self.mem.alloc(ObjKind::Heap, n);
                self.set_reg(tid, dst, Value::Ptr(Ptr::to(obj)));
            }
            Inst::Free { ptr } => {
                let v = self.eval(tid, ptr);
                if let Err(e) = self.mem.free(v) {
                    return self.fault(Self::mem_fault_kind(e, v), tid, loc, Some(v));
                }
            }
            Inst::Load { dst, addr } => {
                let av = self.eval(tid, addr);
                let p = match Memory::as_address(av) {
                    Ok(p) => p,
                    Err(e) => return self.fault(Self::mem_fault_kind(e, av), tid, loc, Some(av)),
                };
                match self.mem.load(p) {
                    Ok(v) => self.set_reg(tid, dst, v),
                    Err(e) => return self.fault(Self::mem_fault_kind(e, av), tid, loc, Some(av)),
                }
            }
            Inst::Store { addr, value } => {
                let av = self.eval(tid, addr);
                let vv = self.eval(tid, value);
                let p = match Memory::as_address(av) {
                    Ok(p) => p,
                    Err(e) => return self.fault(Self::mem_fault_kind(e, av), tid, loc, Some(av)),
                };
                if let Err(e) = self.mem.store(p, vv) {
                    return self.fault(Self::mem_fault_kind(e, av), tid, loc, Some(av));
                }
            }
            Inst::Gep { dst, base, offset } => {
                let b = self.eval(tid, base);
                let o = Self::int_of(self.eval(tid, offset));
                let r = match b {
                    Value::Ptr(p) => Value::Ptr(p.add(o)),
                    Value::Int(i) => Value::Int(i.wrapping_add(o)),
                };
                self.set_reg(tid, dst, r);
            }
            Inst::Call { dst, callee, args } => {
                let target = match callee {
                    Callee::Direct(f) => f,
                    Callee::Indirect(op) => {
                        let v = self.eval(tid, op);
                        match self.resolve_indirect(v) {
                            Some(f) => f,
                            None => {
                                return self.fault(
                                    FaultKind::BadIndirectCall { target: v },
                                    tid,
                                    loc,
                                    Some(v),
                                )
                            }
                        }
                    }
                };
                let argv: Vec<Value> = args.iter().map(|a| self.eval(tid, *a)).collect();
                // Advance the caller past the call before pushing the callee
                // frame, so a later `Ret` only needs to write the result.
                self.advance(tid);
                if let Some(r) = self.push_call(tid, target, argv, dst, loc) {
                    return r;
                }
                return StepResult::Continue;
            }
            Inst::Input { dst, source } => {
                let seq = self.threads[tid.0 as usize].input_seq;
                self.threads[tid.0 as usize].input_seq += 1;
                let v = self.inputs.read(tid, seq, &source);
                self.input_log.push((tid, seq, v));
                self.set_reg(tid, dst, Value::Int(v));
            }
            Inst::Output { value } => {
                let v = Self::int_of(self.eval(tid, value));
                self.output.push(v);
            }
            Inst::Assert { cond, msg } => {
                let v = self.eval(tid, cond);
                if !v.truthy() {
                    return self.fault(FaultKind::AssertFailure { msg }, tid, loc, Some(v));
                }
            }
            Inst::MutexLock { mutex } => {
                let av = self.eval(tid, mutex);
                let p = match Memory::as_address(av) {
                    Ok(p) => p,
                    Err(e) => return self.fault(Self::mem_fault_kind(e, av), tid, loc, Some(av)),
                };
                if self.try_acquire(tid, p) {
                    self.advance(tid);
                    return StepResult::Continue;
                }
                return StepResult::Blocked;
            }
            Inst::MutexUnlock { mutex } => {
                let av = self.eval(tid, mutex);
                let p = match Memory::as_address(av) {
                    Ok(p) => p,
                    Err(e) => return self.fault(Self::mem_fault_kind(e, av), tid, loc, Some(av)),
                };
                if self.sync.holder_of(p) != Some(tid) {
                    return self.fault(
                        FaultKind::SyncMisuse {
                            what: "unlock of a mutex not held by this thread".into(),
                        },
                        tid,
                        loc,
                        Some(av),
                    );
                }
                self.sync.mutex_mut(p).holder = None;
                self.threads[tid.0 as usize].held_locks.retain(|h| *h != p);
                self.wake_mutex_waiters(p);
            }
            Inst::CondWait { cond, mutex } => {
                let cv = self.eval(tid, cond);
                let mv = self.eval(tid, mutex);
                let cp = match Memory::as_address(cv) {
                    Ok(p) => p,
                    Err(e) => return self.fault(Self::mem_fault_kind(e, cv), tid, loc, Some(cv)),
                };
                let mp = match Memory::as_address(mv) {
                    Ok(p) => p,
                    Err(e) => return self.fault(Self::mem_fault_kind(e, mv), tid, loc, Some(mv)),
                };
                if self.threads[tid.0 as usize].cond_resume == Some(mp) {
                    // Signaled earlier: complete the wait by re-acquiring the
                    // mutex (blocking if needed).
                    if self.try_acquire(tid, mp) {
                        self.threads[tid.0 as usize].cond_resume = None;
                        self.advance(tid);
                        return StepResult::Continue;
                    }
                    return StepResult::Blocked;
                }
                if self.sync.holder_of(mp) != Some(tid) {
                    return self.fault(
                        FaultKind::SyncMisuse {
                            what: "cond_wait without holding the mutex".into(),
                        },
                        tid,
                        loc,
                        Some(mv),
                    );
                }
                // Atomically release the mutex and block on the condition.
                self.sync.mutex_mut(mp).holder = None;
                self.threads[tid.0 as usize].held_locks.retain(|h| *h != mp);
                self.wake_mutex_waiters(mp);
                self.sync.cond_mut(cp).waiters.push((tid, mp));
                self.threads[tid.0 as usize].status = ThreadStatus::BlockedOnCond(cp);
                return StepResult::Blocked;
            }
            Inst::CondSignal { cond } => {
                let cv = self.eval(tid, cond);
                let cp = match Memory::as_address(cv) {
                    Ok(p) => p,
                    Err(e) => return self.fault(Self::mem_fault_kind(e, cv), tid, loc, Some(cv)),
                };
                let waiter = {
                    let c = self.sync.cond_mut(cp);
                    if c.waiters.is_empty() {
                        None
                    } else {
                        Some(c.waiters.remove(0))
                    }
                };
                if let Some((w, m)) = waiter {
                    let t = &mut self.threads[w.0 as usize];
                    t.cond_resume = Some(m);
                    t.status = ThreadStatus::Runnable;
                }
            }
            Inst::CondBroadcast { cond } => {
                let cv = self.eval(tid, cond);
                let cp = match Memory::as_address(cv) {
                    Ok(p) => p,
                    Err(e) => return self.fault(Self::mem_fault_kind(e, cv), tid, loc, Some(cv)),
                };
                let waiters = std::mem::take(&mut self.sync.cond_mut(cp).waiters);
                for (w, m) in waiters {
                    let t = &mut self.threads[w.0 as usize];
                    t.cond_resume = Some(m);
                    t.status = ThreadStatus::Runnable;
                }
            }
            Inst::ThreadSpawn { dst, func, arg } => {
                let target = match func {
                    Callee::Direct(f) => f,
                    Callee::Indirect(op) => {
                        let v = self.eval(tid, op);
                        match self.resolve_indirect(v) {
                            Some(f) => f,
                            None => {
                                return self.fault(
                                    FaultKind::BadIndirectCall { target: v },
                                    tid,
                                    loc,
                                    Some(v),
                                )
                            }
                        }
                    }
                };
                if self.threads.len() >= MAX_THREADS {
                    return self.fault(
                        FaultKind::SyncMisuse { what: "thread limit exceeded".into() },
                        tid,
                        loc,
                        None,
                    );
                }
                let av = self.eval(tid, arg);
                let new_tid = ThreadId(self.threads.len() as u32);
                let callee = self.program.func(target);
                let mut locals = Vec::with_capacity(callee.local_sizes.len());
                for size in &callee.local_sizes {
                    locals.push(self.mem.alloc(ObjKind::Local(new_tid), *size as usize));
                }
                let frame = Frame::new(target, callee.num_regs, &[av], locals, None);
                self.threads.push(Thread::new(new_tid, frame));
                self.set_reg(tid, dst, Value::Int(new_tid.0 as i64));
            }
            Inst::ThreadJoin { thread } => {
                let v = Self::int_of(self.eval(tid, thread));
                if v < 0 || v as usize >= self.threads.len() {
                    return self.fault(
                        FaultKind::SyncMisuse { what: format!("join of invalid thread id {v}") },
                        tid,
                        loc,
                        Some(Value::Int(v)),
                    );
                }
                let target = ThreadId(v as u32);
                if self.threads[target.0 as usize].is_finished() {
                    self.advance(tid);
                    return StepResult::Continue;
                }
                self.threads[tid.0 as usize].status = ThreadStatus::BlockedOnJoin(target);
                return StepResult::Blocked;
            }
            Inst::Yield | Inst::Nop => {}
        }
        self.advance(tid);
        StepResult::Continue
    }

    fn exec_terminator(&mut self, tid: ThreadId, loc: Loc, term: Terminator) -> StepResult {
        match term {
            Terminator::Br { target } => {
                let top = self.threads[tid.0 as usize].top_mut();
                top.block = target;
                top.idx = 0;
                StepResult::Continue
            }
            Terminator::CondBr { cond, then_bb, else_bb } => {
                let v = self.eval(tid, cond);
                let top = self.threads[tid.0 as usize].top_mut();
                top.block = if v.truthy() { then_bb } else { else_bb };
                top.idx = 0;
                StepResult::Continue
            }
            Terminator::Ret { value } => {
                let ret_val = value.map(|v| self.eval(tid, v));
                let frame = self.threads[tid.0 as usize].frames.pop().expect("ret without frame");
                for l in &frame.locals {
                    self.mem.kill_local(*l);
                }
                if self.threads[tid.0 as usize].frames.is_empty() {
                    // The thread's start routine returned.
                    self.threads[tid.0 as usize].status = ThreadStatus::Finished;
                    self.threads[tid.0 as usize].return_value = ret_val;
                    self.wake_joiners(tid);
                    if tid == ThreadId(0) {
                        let code = ret_val.map(Self::int_of).unwrap_or(0);
                        self.finished = Some(ExecOutcome::Exit { code });
                        return StepResult::ProgramExit { code };
                    }
                    return StepResult::ThreadFinished;
                }
                if let (Some(dst), Some(v)) = (frame.ret_dst, ret_val) {
                    self.set_reg(tid, dst, v);
                }
                StepResult::Continue
            }
            Terminator::Unreachable => self.fault(FaultKind::UnreachableExecuted, tid, loc, None),
        }
    }

    /// Runs the program to completion (or fault, deadlock, step limit) using
    /// the built-in scheduler from `config`.
    pub fn run(&mut self, config: &InterpreterConfig) -> RunResult {
        let mut rng = match config.scheduler {
            SchedulerKind::Random { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        let mut trace = Vec::new();
        let mut last_thread: Option<ThreadId> = None;
        let mut rr_cursor = 0usize;
        let mut quantum_left = 0u32;

        loop {
            if self.steps >= config.max_steps {
                return RunResult {
                    outcome: ExecOutcome::StepLimit,
                    steps: self.steps,
                    output: self.output.clone(),
                    trace,
                };
            }
            let runnable = self.runnable_threads();
            if runnable.is_empty() {
                if let Some(dump) = self.detect_deadlock() {
                    return RunResult {
                        outcome: ExecOutcome::Fault(Box::new(dump)),
                        steps: self.steps,
                        output: self.output.clone(),
                        trace,
                    };
                }
                // All threads finished without main exiting (cannot happen:
                // main finishing sets the outcome) — treat as exit 0.
                return RunResult {
                    outcome: ExecOutcome::Exit { code: 0 },
                    steps: self.steps,
                    output: self.output.clone(),
                    trace,
                };
            }
            let tid = match (&config.scheduler, &mut rng) {
                (SchedulerKind::Random { .. }, Some(rng)) => {
                    runnable[rng.gen_range(0..runnable.len())]
                }
                (SchedulerKind::RoundRobin { quantum }, _) => {
                    let keep_current = quantum_left > 0
                        && last_thread.map(|t| runnable.contains(&t)).unwrap_or(false);
                    if keep_current {
                        quantum_left -= 1;
                        last_thread.unwrap()
                    } else {
                        rr_cursor = (rr_cursor + 1) % runnable.len();
                        quantum_left = quantum.saturating_sub(1);
                        runnable[rr_cursor % runnable.len()]
                    }
                }
                _ => runnable[0],
            };
            if config.record_trace && last_thread != Some(tid) {
                trace.push((self.steps, tid));
            }
            last_thread = Some(tid);

            match self.step_thread(tid) {
                StepResult::Continue | StepResult::Blocked | StepResult::ThreadFinished => {}
                StepResult::ProgramExit { code } => {
                    return RunResult {
                        outcome: ExecOutcome::Exit { code },
                        steps: self.steps,
                        output: self.output.clone(),
                        trace,
                    };
                }
                StepResult::Fault(dump) => {
                    return RunResult {
                        outcome: ExecOutcome::Fault(dump),
                        steps: self.steps,
                        output: self.output.clone(),
                        trace,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests;
