//! Coredump capture: the failure artifact that a bug report carries and that
//! ESD's goal extraction (§3.1) consumes.
//!
//! The original system parses an ELF core file with gdb; this reproduction
//! captures the same *information content* directly from the interpreter at
//! the moment a failure is detected: the fault kind, the faulting
//! instruction, the offending value (e.g. the null pointer), and the final
//! call stack and lock-wait state of every thread.

use crate::types::{BlockId, FuncId, Loc, ThreadId};
use crate::value::{Ptr, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of failure terminated the execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Dereference of a non-pointer value (null or garbage integer).
    SegFault {
        /// The value that was dereferenced.
        addr: Value,
    },
    /// Access past the bounds of an object (buffer overflow / underflow).
    OutOfBounds {
        /// Offset that was accessed.
        off: i64,
        /// Size of the accessed object in words.
        size: usize,
    },
    /// Access to a freed object.
    UseAfterFree,
    /// `free` of something that is not a live heap allocation base pointer.
    InvalidFree,
    /// Second `free` of the same heap object.
    DoubleFree,
    /// Integer division or remainder by zero.
    DivByZero,
    /// A failed `assert`.
    AssertFailure {
        /// The assertion message.
        msg: String,
    },
    /// An `unreachable` terminator was executed.
    UnreachableExecuted,
    /// An indirect call or spawn through an invalid function address.
    BadIndirectCall {
        /// The value used as a function address.
        target: Value,
    },
    /// A synchronization misuse (e.g. unlocking a mutex not held).
    SyncMisuse {
        /// Human-readable description.
        what: String,
    },
    /// No thread can make progress: every live thread is blocked on a mutex,
    /// a condition variable, or a join (the paper's hang/deadlock class).
    Deadlock,
}

impl FaultKind {
    /// Returns true for hang-type failures (deadlocks) as opposed to crashes.
    pub fn is_hang(&self) -> bool {
        matches!(self, FaultKind::Deadlock)
    }

    /// A short, stable tag for reports and file names.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::SegFault { .. } => "segfault",
            FaultKind::OutOfBounds { .. } => "out-of-bounds",
            FaultKind::UseAfterFree => "use-after-free",
            FaultKind::InvalidFree => "invalid-free",
            FaultKind::DoubleFree => "double-free",
            FaultKind::DivByZero => "div-by-zero",
            FaultKind::AssertFailure { .. } => "assert-failure",
            FaultKind::UnreachableExecuted => "unreachable",
            FaultKind::BadIndirectCall { .. } => "bad-indirect-call",
            FaultKind::SyncMisuse { .. } => "sync-misuse",
            FaultKind::Deadlock => "deadlock",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::SegFault { addr } => write!(f, "segmentation fault (address {:?})", addr),
            FaultKind::OutOfBounds { off, size } => {
                write!(f, "out-of-bounds access (offset {} of {}-word object)", off, size)
            }
            FaultKind::AssertFailure { msg } => write!(f, "assertion failure: {}", msg),
            FaultKind::SyncMisuse { what } => write!(f, "synchronization misuse: {}", what),
            FaultKind::BadIndirectCall { target } => {
                write!(f, "indirect call through invalid target {:?}", target)
            }
            other => write!(f, "{}", other.tag()),
        }
    }
}

/// One frame of a thread's final call stack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackFrameInfo {
    /// The function.
    pub func: FuncId,
    /// The function's name (for human consumption; ids remain authoritative).
    pub func_name: String,
    /// Block of the frame's current instruction.
    pub block: BlockId,
    /// Instruction index of the frame's current instruction.
    pub idx: u32,
}

impl StackFrameInfo {
    /// The program location of this frame's current instruction.
    pub fn loc(&self) -> Loc {
        Loc { func: self.func, block: self.block, idx: self.idx }
    }
}

/// The final state of one thread as recorded in the coredump.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadDumpInfo {
    /// The thread.
    pub thread: ThreadId,
    /// Its call stack, outermost frame first (so the blocked/faulting frame
    /// is last, as in a gdb backtrace read bottom-up).
    pub stack: Vec<StackFrameInfo>,
    /// Mutex addresses the thread held at the time of the dump.
    pub held_locks: Vec<Ptr>,
    /// The mutex the thread was blocked acquiring, if any (the thread's
    /// "inner lock" in the paper's terminology).
    pub waiting_mutex: Option<Ptr>,
    /// The condition variable the thread was blocked on, if any.
    pub waiting_cond: Option<Ptr>,
    /// The thread the thread was blocked joining, if any.
    pub waiting_join: Option<ThreadId>,
    /// True if the thread had already terminated.
    pub finished: bool,
}

impl ThreadDumpInfo {
    /// Location of the innermost (blocked or faulting) frame, if any.
    pub fn innermost_loc(&self) -> Option<Loc> {
        self.stack.last().map(|f| f.loc())
    }
}

/// A coredump: everything a bug report carries about a failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreDump {
    /// Name of the failed program.
    pub program_name: String,
    /// The failure.
    pub fault: FaultKind,
    /// Thread in which the failure was detected (none for deadlocks, where
    /// every listed blocked thread participates).
    pub faulting_thread: Option<ThreadId>,
    /// Location of the faulting instruction, when applicable.
    pub faulting_loc: Option<Loc>,
    /// The offending value (e.g. the dereferenced null pointer, or the freed
    /// pointer), when applicable — the paper's condition "C" raw material.
    pub fault_value: Option<Value>,
    /// Final state of every thread.
    pub threads: Vec<ThreadDumpInfo>,
    /// Number of instructions executed before the failure (diagnostic only).
    pub steps: u64,
}

impl CoreDump {
    /// Returns the dump entry for `thread`, if present.
    pub fn thread(&self, thread: ThreadId) -> Option<&ThreadDumpInfo> {
        self.threads.iter().find(|t| t.thread == thread)
    }

    /// Threads that were blocked on a mutex at dump time (the candidate
    /// participants of a deadlock).
    pub fn mutex_blocked_threads(&self) -> Vec<&ThreadDumpInfo> {
        self.threads.iter().filter(|t| t.waiting_mutex.is_some()).collect()
    }

    /// A compact single-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} ({} threads, {} blocked on mutexes)",
            self.program_name,
            self.fault,
            self.threads.len(),
            self.mutex_blocked_threads().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ObjId;

    fn sample_dump() -> CoreDump {
        CoreDump {
            program_name: "prog".into(),
            fault: FaultKind::Deadlock,
            faulting_thread: None,
            faulting_loc: None,
            fault_value: None,
            threads: vec![
                ThreadDumpInfo {
                    thread: ThreadId(0),
                    stack: vec![StackFrameInfo {
                        func: FuncId(0),
                        func_name: "main".into(),
                        block: BlockId(1),
                        idx: 2,
                    }],
                    held_locks: vec![Ptr { obj: ObjId(1), off: 0 }],
                    waiting_mutex: Some(Ptr { obj: ObjId(2), off: 0 }),
                    waiting_cond: None,
                    waiting_join: None,
                    finished: false,
                },
                ThreadDumpInfo {
                    thread: ThreadId(1),
                    stack: vec![],
                    held_locks: vec![],
                    waiting_mutex: None,
                    waiting_cond: None,
                    waiting_join: None,
                    finished: true,
                },
            ],
            steps: 100,
        }
    }

    #[test]
    fn fault_kind_classification() {
        assert!(FaultKind::Deadlock.is_hang());
        assert!(!FaultKind::SegFault { addr: Value::Int(0) }.is_hang());
        assert_eq!(FaultKind::InvalidFree.tag(), "invalid-free");
    }

    #[test]
    fn fault_display_mentions_details() {
        let s = format!("{}", FaultKind::SegFault { addr: Value::Int(0) });
        assert!(s.contains("segmentation fault"));
        let s = format!("{}", FaultKind::AssertFailure { msg: "boom".into() });
        assert!(s.contains("boom"));
    }

    #[test]
    fn dump_queries() {
        let d = sample_dump();
        assert!(d.thread(ThreadId(0)).is_some());
        assert!(d.thread(ThreadId(7)).is_none());
        assert_eq!(d.mutex_blocked_threads().len(), 1);
        assert_eq!(
            d.thread(ThreadId(0)).unwrap().innermost_loc(),
            Some(Loc::new(FuncId(0), BlockId(1), 2))
        );
        assert!(d.summary().contains("deadlock"));
    }

    #[test]
    fn coredump_clone_and_equality() {
        let d = sample_dump();
        let e = d.clone();
        assert_eq!(d, e);
    }
}
