//! Object-granularity memory for the concrete interpreter.
//!
//! Memory is a collection of objects (globals, stack locals, heap blocks),
//! each a vector of word-sized [`Value`]s. Pointers name an object and a word
//! offset. Every load/store is bounds- and liveness-checked, which is how the
//! interpreter detects the memory-safety bug classes evaluated in the paper
//! (segmentation faults, buffer overflows, invalid/double frees).

use crate::types::{GlobalId, ThreadId};
use crate::value::{ObjId, Ptr, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What kind of storage an object is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjKind {
    /// A global variable.
    Global(GlobalId),
    /// A stack local belonging to a frame of the given thread.
    Local(ThreadId),
    /// A heap block created by `alloc`.
    Heap,
}

/// A memory object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Object {
    /// The object's words.
    pub data: Vec<Value>,
    /// Storage class.
    pub kind: ObjKind,
    /// True once the object has been freed (heap) or its frame popped
    /// (locals); accesses to freed objects fault.
    pub freed: bool,
}

/// Memory access errors, mapped to fault kinds by the interpreter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemError {
    /// Dereferenced a plain integer (including null).
    NotAPointer(Value),
    /// Pointer to an object that never existed (corrupted pointer).
    DanglingObject(ObjId),
    /// Access to an object that has been freed.
    UseAfterFree(ObjId),
    /// Offset outside the object bounds.
    OutOfBounds {
        /// The accessed object.
        obj: ObjId,
        /// The out-of-range word offset.
        off: i64,
        /// The object's size in words.
        size: usize,
    },
    /// `free` on something that is not a heap pointer to offset 0.
    InvalidFree(Value),
    /// `free` on an already-freed heap object.
    DoubleFree(ObjId),
}

/// The interpreter's memory.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    objects: HashMap<ObjId, Object>,
    next_id: u64,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory { objects: HashMap::new(), next_id: 1 }
    }

    /// Allocates a fresh object of `size` zero-initialized words.
    pub fn alloc(&mut self, kind: ObjKind, size: usize) -> ObjId {
        let id = ObjId(self.next_id);
        self.next_id += 1;
        self.objects.insert(id, Object { data: vec![Value::Int(0); size], kind, freed: false });
        id
    }

    /// Allocates an object with the given initial contents.
    pub fn alloc_init(&mut self, kind: ObjKind, data: Vec<Value>) -> ObjId {
        let id = ObjId(self.next_id);
        self.next_id += 1;
        self.objects.insert(id, Object { data, kind, freed: false });
        id
    }

    /// Returns the object behind `id`, if it exists (freed or not).
    pub fn object(&self, id: ObjId) -> Option<&Object> {
        self.objects.get(&id)
    }

    /// Number of live (non-freed) objects.
    pub fn live_objects(&self) -> usize {
        self.objects.values().filter(|o| !o.freed).count()
    }

    fn check(&self, ptr: Ptr) -> Result<(), MemError> {
        let obj = self.objects.get(&ptr.obj).ok_or(MemError::DanglingObject(ptr.obj))?;
        if obj.freed {
            return Err(MemError::UseAfterFree(ptr.obj));
        }
        if ptr.off < 0 || ptr.off as usize >= obj.data.len() {
            return Err(MemError::OutOfBounds { obj: ptr.obj, off: ptr.off, size: obj.data.len() });
        }
        Ok(())
    }

    /// Resolves a value used as an address into a pointer, rejecting plain
    /// integers (this is where null dereferences are caught).
    pub fn as_address(value: Value) -> Result<Ptr, MemError> {
        match value {
            Value::Ptr(p) => Ok(p),
            v => Err(MemError::NotAPointer(v)),
        }
    }

    /// Loads the word at `ptr`.
    pub fn load(&self, ptr: Ptr) -> Result<Value, MemError> {
        self.check(ptr)?;
        Ok(self.objects[&ptr.obj].data[ptr.off as usize])
    }

    /// Stores `value` at `ptr`.
    pub fn store(&mut self, ptr: Ptr, value: Value) -> Result<(), MemError> {
        self.check(ptr)?;
        self.objects.get_mut(&ptr.obj).unwrap().data[ptr.off as usize] = value;
        Ok(())
    }

    /// Frees a heap object. Freeing a non-heap object, an interior pointer,
    /// or an already-freed object is an error (the `paste` invalid-free bug
    /// class).
    pub fn free(&mut self, value: Value) -> Result<(), MemError> {
        let ptr = match value {
            Value::Ptr(p) => p,
            v => return Err(MemError::InvalidFree(v)),
        };
        let obj = self.objects.get_mut(&ptr.obj).ok_or(MemError::DanglingObject(ptr.obj))?;
        if ptr.off != 0 || obj.kind != ObjKind::Heap {
            return Err(MemError::InvalidFree(value));
        }
        if obj.freed {
            return Err(MemError::DoubleFree(ptr.obj));
        }
        obj.freed = true;
        Ok(())
    }

    /// Marks a stack-local object as dead when its frame is popped.
    pub fn kill_local(&mut self, id: ObjId) {
        if let Some(obj) = self.objects.get_mut(&id) {
            obj.freed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip() {
        let mut m = Memory::new();
        let o = m.alloc(ObjKind::Heap, 4);
        let p = Ptr { obj: o, off: 2 };
        m.store(p, Value::Int(7)).unwrap();
        assert_eq!(m.load(p).unwrap(), Value::Int(7));
        assert_eq!(m.load(Ptr { obj: o, off: 0 }).unwrap(), Value::Int(0));
    }

    #[test]
    fn out_of_bounds_is_detected() {
        let mut m = Memory::new();
        let o = m.alloc(ObjKind::Heap, 2);
        let err = m.load(Ptr { obj: o, off: 2 }).unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds { .. }));
        let err = m.store(Ptr { obj: o, off: -1 }, Value::Int(1)).unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds { .. }));
    }

    #[test]
    fn null_and_integer_dereference_rejected() {
        assert!(matches!(Memory::as_address(Value::Int(0)), Err(MemError::NotAPointer(_))));
        assert!(matches!(Memory::as_address(Value::Int(1234)), Err(MemError::NotAPointer(_))));
        let p = Ptr { obj: ObjId(1), off: 0 };
        assert_eq!(Memory::as_address(Value::Ptr(p)).unwrap(), p);
    }

    #[test]
    fn use_after_free_is_detected() {
        let mut m = Memory::new();
        let o = m.alloc(ObjKind::Heap, 1);
        m.free(Value::Ptr(Ptr::to(o))).unwrap();
        assert!(matches!(m.load(Ptr::to(o)), Err(MemError::UseAfterFree(_))));
    }

    #[test]
    fn invalid_and_double_free_detected() {
        let mut m = Memory::new();
        let g = m.alloc(ObjKind::Global(GlobalId(0)), 1);
        assert!(matches!(m.free(Value::Ptr(Ptr::to(g))), Err(MemError::InvalidFree(_))));
        assert!(matches!(m.free(Value::Int(5)), Err(MemError::InvalidFree(_))));
        let h = m.alloc(ObjKind::Heap, 1);
        assert!(matches!(
            m.free(Value::Ptr(Ptr { obj: h, off: 1 })),
            Err(MemError::InvalidFree(_))
        ));
        m.free(Value::Ptr(Ptr::to(h))).unwrap();
        assert!(matches!(m.free(Value::Ptr(Ptr::to(h))), Err(MemError::DoubleFree(_))));
    }

    #[test]
    fn live_object_count_tracks_frees() {
        let mut m = Memory::new();
        let a = m.alloc(ObjKind::Heap, 1);
        let _b = m.alloc(ObjKind::Heap, 1);
        assert_eq!(m.live_objects(), 2);
        m.free(Value::Ptr(Ptr::to(a))).unwrap();
        assert_eq!(m.live_objects(), 1);
    }

    #[test]
    fn kill_local_makes_pointers_dangle() {
        let mut m = Memory::new();
        let l = m.alloc(ObjKind::Local(ThreadId(0)), 1);
        m.kill_local(l);
        assert!(matches!(m.load(Ptr::to(l)), Err(MemError::UseAfterFree(_))));
    }
}
