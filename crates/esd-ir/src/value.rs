//! Runtime values: machine words and typed pointers into the object memory.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a memory object (a global, a stack local, or a heap block).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjId(pub u64);

/// A pointer: a memory object plus a word offset into it.
///
/// Offsets are signed so that pointer arithmetic can transiently move before
/// the start of an object; dereferencing an out-of-range offset is a fault.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ptr {
    /// The referenced object.
    pub obj: ObjId,
    /// Word offset within the object.
    pub off: i64,
}

impl Ptr {
    /// Creates a pointer to the start of `obj`.
    pub fn to(obj: ObjId) -> Self {
        Ptr { obj, off: 0 }
    }

    /// Returns this pointer displaced by `delta` words. Named after
    /// `<*const T>::add`, which it mirrors; it is not `std::ops::Add` because
    /// the displacement is a word count, not another pointer.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, delta: i64) -> Self {
        Ptr { obj: self.obj, off: self.off.wrapping_add(delta) }
    }
}

/// A runtime value: either a 64-bit integer or a pointer.
///
/// The integer zero doubles as the null pointer, as in C: dereferencing
/// `Value::Int(0)` (or any non-pointer integer) is a segmentation fault in
/// the interpreter and a reproducible crash goal for ESD.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A 64-bit machine word.
    Int(i64),
    /// A pointer into the object memory.
    Ptr(Ptr),
}

impl Value {
    /// The canonical null pointer value.
    pub const NULL: Value = Value::Int(0);

    /// Returns the integer payload, if this is an integer.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            Value::Ptr(_) => None,
        }
    }

    /// Returns the pointer payload, if this is a pointer.
    pub fn as_ptr(self) -> Option<Ptr> {
        match self {
            Value::Ptr(p) => Some(p),
            Value::Int(_) => None,
        }
    }

    /// Interprets the value as a boolean: zero integers are false, everything
    /// else (including all pointers) is true.
    pub fn truthy(self) -> bool {
        match self {
            Value::Int(i) => i != 0,
            Value::Ptr(_) => true,
        }
    }

    /// Returns true if the value is the integer zero (the null pointer).
    pub fn is_null(self) -> bool {
        matches!(self, Value::Int(0))
    }

    /// Structural equality used by `==` comparisons in the IR: integers
    /// compare by value, pointers compare by (object, offset), and an integer
    /// never equals a pointer except that 0 (null) never equals a valid
    /// pointer either — so the rule degenerates to `self == other`.
    pub fn value_eq(self, other: Value) -> bool {
        self == other
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<Ptr> for Value {
    fn from(p: Ptr) -> Self {
        Value::Ptr(p)
    }
}

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

impl fmt::Debug for Ptr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "&{:?}[{}]", self.obj, self.off)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{}", i),
            Value::Ptr(p) => write!(f, "{:?}", p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_falsy_and_null() {
        assert!(!Value::NULL.truthy());
        assert!(Value::NULL.is_null());
        assert!(Value::Int(1).truthy());
        assert!(!Value::Int(1).is_null());
    }

    #[test]
    fn pointers_are_truthy_and_not_null() {
        let p = Value::Ptr(Ptr::to(ObjId(3)));
        assert!(p.truthy());
        assert!(!p.is_null());
    }

    #[test]
    fn pointer_arithmetic_moves_offset_only() {
        let p = Ptr::to(ObjId(9));
        let q = p.add(5).add(-2);
        assert_eq!(q.obj, ObjId(9));
        assert_eq!(q.off, 3);
    }

    #[test]
    fn as_int_and_as_ptr_are_exclusive() {
        let i = Value::Int(7);
        let p = Value::Ptr(Ptr::to(ObjId(1)));
        assert_eq!(i.as_int(), Some(7));
        assert_eq!(i.as_ptr(), None);
        assert_eq!(p.as_int(), None);
        assert!(p.as_ptr().is_some());
    }

    #[test]
    fn value_eq_distinguishes_objects_and_offsets() {
        let a = Value::Ptr(Ptr { obj: ObjId(1), off: 0 });
        let b = Value::Ptr(Ptr { obj: ObjId(1), off: 1 });
        let c = Value::Ptr(Ptr { obj: ObjId(2), off: 0 });
        assert!(a.value_eq(a));
        assert!(!a.value_eq(b));
        assert!(!a.value_eq(c));
        assert!(!a.value_eq(Value::Int(0)));
    }
}
