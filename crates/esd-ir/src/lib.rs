//! A small register-based intermediate representation (IR) and concrete
//! multi-threaded interpreter, the substrate on which execution synthesis
//! operates.
//!
//! The original ESD system (Zamfir & Candea, EuroSys 2010) operates on LLVM
//! bitcode via a modified Klee. This crate provides the analogous substrate
//! for the Rust reproduction: programs are collections of functions made of
//! basic blocks of simple instructions, with word-granularity loads and
//! stores, calls (direct and indirect), environment inputs, and
//! synchronization intrinsics (mutexes, condition variables, thread spawn and
//! join). The granularity is exactly what the synthesis algorithms need:
//! a control-flow graph, data-flow through registers and memory, and
//! scheduler-visible synchronization points.
//!
//! The crate contains:
//!
//! * the IR itself ([`program`], [`inst`], [`value`]),
//! * a fluent [`builder`] used by the workload suite and by tests,
//! * a structural [`validate`] pass,
//! * a [`printer`] that renders programs in a readable textual form,
//! * a concrete, deterministic-or-randomized multi-threaded [`interp`]reter
//!   that detects memory-safety violations, assertion failures and deadlocks
//!   and captures a [`interp::CoreDump`] when a failure occurs.

// Documentation enforcement (see ARCHITECTURE.md, "Documentation policy"):
// every public item must carry rustdoc.
#![deny(missing_docs)]

pub mod builder;
pub mod inst;
pub mod interp;
pub mod printer;
pub mod program;
pub mod types;
pub mod validate;
pub mod value;

pub use builder::{FunctionBuilder, ProgramBuilder};
pub use inst::{BinOp, Callee, CmpOp, InputSource, Inst, Operand, Terminator};
pub use interp::{
    CoreDump, ExecOutcome, FaultKind, Interpreter, InterpreterConfig, RunResult, SchedulerKind,
    StackFrameInfo, ThreadDumpInfo,
};
pub use program::{BasicBlock, Function, Global, Program};
pub use types::{BlockId, FuncId, GlobalId, Loc, LocalId, Reg, ThreadId};
pub use value::{ObjId, Ptr, Value};
