//! Textual rendering of IR programs.
//!
//! The printer produces a stable, readable listing used in documentation, in
//! failure messages, and to estimate program size in source lines for the
//! Figure-4 experiment.

use crate::inst::{BinOp, Callee, CmpOp, Inst, Operand, Terminator};
use crate::program::{Function, Program};
use crate::types::BlockId;
use std::fmt::Write as _;

fn op_str(op: &Operand) -> String {
    format!("{:?}", op)
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
    }
}

fn cmpop_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn callee_str(program: &Program, callee: &Callee) -> String {
    match callee {
        Callee::Direct(f) => program.func(*f).name.clone(),
        Callee::Indirect(op) => format!("*{}", op_str(op)),
    }
}

fn inst_str(program: &Program, inst: &Inst) -> String {
    match inst {
        Inst::Const { dst, value } => format!("{:?} = const {}", dst, value),
        Inst::Bin { dst, op, a, b } => {
            format!("{:?} = {} {}, {}", dst, binop_str(*op), op_str(a), op_str(b))
        }
        Inst::Cmp { dst, op, a, b } => {
            format!("{:?} = cmp.{} {}, {}", dst, cmpop_str(*op), op_str(a), op_str(b))
        }
        Inst::AddrLocal { dst, local } => format!("{:?} = addr {:?}", dst, local),
        Inst::AddrGlobal { dst, global } => format!("{:?} = addr {:?}", dst, global),
        Inst::FuncAddr { dst, func } => {
            format!("{:?} = funcaddr @{}", dst, program.func(*func).name)
        }
        Inst::Alloc { dst, size } => format!("{:?} = alloc {}", dst, op_str(size)),
        Inst::Free { ptr } => format!("free {}", op_str(ptr)),
        Inst::Load { dst, addr } => format!("{:?} = load {}", dst, op_str(addr)),
        Inst::Store { addr, value } => format!("store {}, {}", op_str(addr), op_str(value)),
        Inst::Gep { dst, base, offset } => {
            format!("{:?} = gep {}, {}", dst, op_str(base), op_str(offset))
        }
        Inst::Call { dst, callee, args } => {
            let args: Vec<String> = args.iter().map(op_str).collect();
            match dst {
                Some(d) => {
                    format!("{:?} = call {}({})", d, callee_str(program, callee), args.join(", "))
                }
                None => format!("call {}({})", callee_str(program, callee), args.join(", ")),
            }
        }
        Inst::Input { dst, source } => format!("{:?} = input {:?}", dst, source),
        Inst::Output { value } => format!("output {}", op_str(value)),
        Inst::Assert { cond, msg } => format!("assert {}, {:?}", op_str(cond), msg),
        Inst::MutexLock { mutex } => format!("lock {}", op_str(mutex)),
        Inst::MutexUnlock { mutex } => format!("unlock {}", op_str(mutex)),
        Inst::CondWait { cond, mutex } => format!("condwait {}, {}", op_str(cond), op_str(mutex)),
        Inst::CondSignal { cond } => format!("condsignal {}", op_str(cond)),
        Inst::CondBroadcast { cond } => format!("condbroadcast {}", op_str(cond)),
        Inst::ThreadSpawn { dst, func, arg } => {
            format!("{:?} = spawn {}({})", dst, callee_str(program, func), op_str(arg))
        }
        Inst::ThreadJoin { thread } => format!("join {}", op_str(thread)),
        Inst::Yield => "yield".to_string(),
        Inst::Nop => "nop".to_string(),
    }
}

fn term_str(term: &Terminator) -> String {
    match term {
        Terminator::Br { target } => format!("br {:?}", target),
        Terminator::CondBr { cond, then_bb, else_bb } => {
            format!("condbr {}, {:?}, {:?}", op_str(cond), then_bb, else_bb)
        }
        Terminator::Ret { value: Some(v) } => format!("ret {}", op_str(v)),
        Terminator::Ret { value: None } => "ret".to_string(),
        Terminator::Unreachable => "unreachable".to_string(),
    }
}

fn block_label(f: &Function, id: BlockId) -> String {
    match &f.block(id).label {
        Some(l) => format!("{:?} ({})", id, l),
        None => format!("{:?}", id),
    }
}

/// Renders one function as text.
pub fn print_function(program: &Program, f: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fn {}({} params, {} regs, {} locals) {{",
        f.name,
        f.num_params,
        f.num_regs,
        f.local_sizes.len()
    );
    for bid in f.block_ids() {
        let block = f.block(bid);
        let _ = writeln!(out, "  {}:", block_label(f, bid));
        for inst in &block.insts {
            let _ = writeln!(out, "    {}", inst_str(program, inst));
        }
        let _ = writeln!(out, "    {}", term_str(&block.term));
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a whole program as text.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {} (entry: {})", program.name, program.func(program.entry).name);
    for g in &program.globals {
        let _ = writeln!(out, "global {} [{} words] = {:?}", g.name, g.size, g.init);
    }
    for f in &program.functions {
        out.push('\n');
        out.push_str(&print_function(program, f));
    }
    out
}

/// Number of text lines the printed program occupies — the "IR LOC" measure.
pub fn printed_loc(program: &Program) -> usize {
    print_program(program).lines().count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::InputSource;

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new("sample");
        let m = pb.global("m1", 1);
        pb.function("main", 0, |f| {
            let c = f.input(InputSource::Stdin);
            let mp = f.addr_global(m);
            f.lock(mp);
            f.output(c);
            f.unlock(mp);
            let done = f.new_block("done");
            f.br(done);
            f.switch_to(done);
            f.ret_void();
        });
        pb.finish("main")
    }

    #[test]
    fn printed_program_contains_key_constructs() {
        let p = sample();
        let text = print_program(&p);
        assert!(text.contains("program sample"));
        assert!(text.contains("global m1"));
        assert!(text.contains("fn main"));
        assert!(text.contains("lock"));
        assert!(text.contains("unlock"));
        assert!(text.contains("input Stdin"));
        assert!(text.contains("ret"));
    }

    #[test]
    fn printed_loc_counts_lines() {
        let p = sample();
        assert_eq!(printed_loc(&p), print_program(&p).lines().count());
        assert!(printed_loc(&p) > 5);
    }

    #[test]
    fn printer_is_deterministic() {
        let p = sample();
        assert_eq!(print_program(&p), print_program(&p));
    }
}
