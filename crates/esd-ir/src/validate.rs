//! Structural validation of IR programs.
//!
//! Validation catches malformed programs early (dangling block targets,
//! out-of-range registers, arity mismatches at direct call sites, …) so that
//! the interpreter and the symbolic engine can index unchecked-by-construction
//! data without defensive code at every step.
//!
//! Higher layers can hook additional semantic checks into validation via the
//! [`Preflight`] trait and [`validate_with`] — the lint registry in
//! `esd-analysis` plugs in this way without inverting the crate dependency.

use crate::inst::{Callee, Inst, Operand};
use crate::program::{Function, Program};
use crate::types::{BlockId, FuncId};
use std::fmt;

/// A single validation problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Function in which the problem was found (if applicable).
    pub func: Option<FuncId>,
    /// Block in which the problem was found (if applicable).
    pub block: Option<BlockId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.func, self.block) {
            (Some(fun), Some(bb)) => write!(f, "[{:?}:{:?}] {}", fun, bb, self.message),
            (Some(fun), None) => write!(f, "[{:?}] {}", fun, self.message),
            _ => write!(f, "{}", self.message),
        }
    }
}

/// An extra validation stage supplied by a higher layer (e.g. the lint
/// registry in `esd-analysis`): runs over a structurally valid program and
/// reports additional problems.
pub trait Preflight {
    /// Checks `program` and returns all problems found (empty = clean).
    fn run(&self, program: &Program) -> Vec<ValidationError>;
}

/// Validates a program structurally, then — only if the structure is sound,
/// so preflights may index blocks and registers unchecked — runs each
/// `preflight` and collects its problems too.
pub fn validate_with(
    program: &Program,
    preflights: &[&dyn Preflight],
) -> Result<(), Vec<ValidationError>> {
    validate(program)?;
    let errors: Vec<ValidationError> = preflights.iter().flat_map(|p| p.run(program)).collect();
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Validates a program, returning all problems found (empty vector = valid).
pub fn validate(program: &Program) -> Result<(), Vec<ValidationError>> {
    let mut errors = Vec::new();

    if program.functions.is_empty() {
        errors.push(ValidationError {
            func: None,
            block: None,
            message: "program has no functions".to_string(),
        });
    }
    if program.entry.0 as usize >= program.functions.len() {
        errors.push(ValidationError {
            func: None,
            block: None,
            message: format!("entry function {:?} out of range", program.entry),
        });
    } else if program.func(program.entry).num_params != 0 {
        errors.push(ValidationError {
            func: Some(program.entry),
            block: None,
            message: "entry function must take no parameters".to_string(),
        });
    }

    for (gi, g) in program.globals.iter().enumerate() {
        if g.init.len() > g.size as usize {
            errors.push(ValidationError {
                func: None,
                block: None,
                message: format!("global #{gi} {:?}: initializer longer than size", g.name),
            });
        }
        if g.size == 0 {
            errors.push(ValidationError {
                func: None,
                block: None,
                message: format!("global #{gi} {:?}: zero-sized", g.name),
            });
        }
    }

    for (fi, f) in program.functions.iter().enumerate() {
        let fid = FuncId(fi as u32);
        validate_function(program, fid, f, &mut errors);
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn validate_function(
    program: &Program,
    fid: FuncId,
    f: &Function,
    errors: &mut Vec<ValidationError>,
) {
    let mut err = |block: Option<BlockId>, message: String| {
        errors.push(ValidationError { func: Some(fid), block, message });
    };

    if f.blocks.is_empty() {
        err(None, "function has no blocks".to_string());
        return;
    }
    if f.num_params > f.num_regs {
        err(None, format!("num_params {} exceeds num_regs {}", f.num_params, f.num_regs));
    }

    let check_operand = |op: Operand| -> Option<String> {
        match op {
            Operand::Reg(r) if r.0 >= f.num_regs => {
                Some(format!("register {:?} out of range (num_regs = {})", r, f.num_regs))
            }
            _ => None,
        }
    };

    for (bi, block) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        for inst in &block.insts {
            if let Some(dst) = inst.def() {
                if dst.0 >= f.num_regs {
                    err(Some(bid), format!("destination {:?} out of range", dst));
                }
            }
            for op in inst.uses() {
                if let Some(msg) = check_operand(op) {
                    err(Some(bid), msg);
                }
            }
            match inst {
                Inst::AddrLocal { local, .. } if local.0 as usize >= f.local_sizes.len() => {
                    err(Some(bid), format!("local {:?} out of range", local));
                }
                Inst::AddrGlobal { global, .. } if global.0 as usize >= program.globals.len() => {
                    err(Some(bid), format!("global {:?} out of range", global));
                }
                Inst::FuncAddr { func, .. } if func.0 as usize >= program.functions.len() => {
                    err(Some(bid), format!("function address {:?} out of range", func));
                }
                Inst::Call { callee: Callee::Direct(target), args, .. } => {
                    if target.0 as usize >= program.functions.len() {
                        err(Some(bid), format!("call target {:?} out of range", target));
                    } else {
                        let callee_fn = program.func(*target);
                        if callee_fn.num_params as usize != args.len() {
                            err(
                                Some(bid),
                                format!(
                                    "call to {:?} passes {} args but it takes {}",
                                    callee_fn.name,
                                    args.len(),
                                    callee_fn.num_params
                                ),
                            );
                        }
                    }
                }
                Inst::ThreadSpawn { func: Callee::Direct(target), .. } => {
                    if target.0 as usize >= program.functions.len() {
                        err(Some(bid), format!("spawn target {:?} out of range", target));
                    } else if program.func(*target).num_params != 1 {
                        err(
                            Some(bid),
                            format!(
                                "spawned function {:?} must take exactly one parameter",
                                program.func(*target).name
                            ),
                        );
                    }
                }
                _ => {}
            }
        }
        for op in block.term.uses() {
            if let Some(msg) = check_operand(op) {
                err(Some(bid), msg);
            }
        }
        for succ in block.term.successors() {
            if succ.0 as usize >= f.blocks.len() {
                err(Some(bid), format!("branch target {:?} out of range", succ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{BinOp, Terminator};
    use crate::program::{BasicBlock, Global};
    use crate::types::Reg;

    fn valid_program() -> Program {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            let a = f.konst(1);
            f.output(a);
            f.ret_void();
        });
        pb.finish("main")
    }

    #[test]
    fn valid_program_passes() {
        assert!(validate(&valid_program()).is_ok());
    }

    #[test]
    fn out_of_range_register_is_reported() {
        let mut p = valid_program();
        p.functions[0].blocks[0].insts.push(Inst::Bin {
            dst: Reg(99),
            op: BinOp::Add,
            a: Operand::Reg(Reg(98)),
            b: Operand::Const(1),
        });
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("out of range")));
    }

    #[test]
    fn dangling_branch_target_is_reported() {
        let mut p = valid_program();
        p.functions[0].blocks[0].term = Terminator::Br { target: BlockId(7) };
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("branch target")));
    }

    #[test]
    fn call_arity_mismatch_is_reported() {
        let mut pb = ProgramBuilder::new("p");
        let callee = pb.function("callee", 2, |f| {
            let s = f.add(f.param(0), f.param(1));
            f.ret(s);
        });
        pb.function("main", 0, |f| {
            f.call(callee, vec![Operand::Const(1)]);
            f.ret_void();
        });
        let p = pb.finish("main");
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("passes 1 args")));
    }

    #[test]
    fn entry_with_params_is_rejected() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 1, |f| f.ret_void());
        let p = pb.finish("main");
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("no parameters")));
    }

    #[test]
    fn spawn_target_arity_checked() {
        let mut pb = ProgramBuilder::new("p");
        let worker = pb.function("worker", 2, |f| f.ret_void());
        pb.function("main", 0, |f| {
            f.spawn(worker, 0);
            f.ret_void();
        });
        let p = pb.finish("main");
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("exactly one parameter")));
    }

    #[test]
    fn oversized_global_initializer_is_reported() {
        let mut p = valid_program();
        p.globals.push(Global { name: "g".into(), size: 1, init: vec![1, 2, 3] });
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("initializer longer")));
    }

    #[test]
    fn function_without_blocks_is_reported() {
        let mut p = valid_program();
        p.functions.push(Function {
            name: "empty".into(),
            num_params: 0,
            num_regs: 0,
            local_sizes: vec![],
            blocks: vec![],
        });
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("no blocks")));
    }

    #[test]
    fn error_display_mentions_location() {
        let mut p = valid_program();
        p.functions[0].blocks.push(BasicBlock::new(None));
        p.functions[0].blocks[1].term = Terminator::Br { target: BlockId(42) };
        let errs = validate(&p).unwrap_err();
        let rendered = format!("{}", errs[0]);
        assert!(rendered.contains("f0"));
    }
}
