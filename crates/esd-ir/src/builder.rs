//! A fluent builder for constructing IR programs in Rust code.
//!
//! The workload suite (the real-bug analogs and the BPF generator) builds all
//! of its programs through this API, and so do most tests. The builder
//! allocates registers, locals and blocks, keeps track of the block currently
//! being filled, and panics on structurally invalid usage (appending to a
//! sealed block, finishing an unterminated function) so that mistakes are
//! caught at construction time rather than during synthesis.

use crate::inst::{BinOp, Callee, CmpOp, InputSource, Inst, Operand, Terminator};
use crate::program::{BasicBlock, Function, Global, Program};
use crate::types::{BlockId, FuncId, GlobalId, Loc, LocalId, Reg};

/// Builds a whole [`Program`].
pub struct ProgramBuilder {
    name: String,
    functions: Vec<Option<Function>>,
    func_names: Vec<String>,
    func_params: Vec<u32>,
    globals: Vec<Global>,
}

impl ProgramBuilder {
    /// Creates a builder for a program with the given name.
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            name: name.to_string(),
            functions: Vec::new(),
            func_names: Vec::new(),
            func_params: Vec::new(),
            globals: Vec::new(),
        }
    }

    /// Declares a function signature without a body, returning its id. Use
    /// this for mutual recursion or to obtain an id before defining the body
    /// with [`ProgramBuilder::define`].
    pub fn declare(&mut self, name: &str, num_params: u32) -> FuncId {
        assert!(!self.func_names.iter().any(|n| n == name), "duplicate function name {name:?}");
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(None);
        self.func_names.push(name.to_string());
        self.func_params.push(num_params);
        id
    }

    /// Defines the body of a previously declared function.
    pub fn define<F: FnOnce(&mut FunctionBuilder)>(&mut self, id: FuncId, build: F) {
        assert!(
            self.functions[id.0 as usize].is_none(),
            "function {:?} defined twice",
            self.func_names[id.0 as usize]
        );
        let mut fb = FunctionBuilder::new(
            id,
            self.func_names[id.0 as usize].clone(),
            self.func_params[id.0 as usize],
        );
        build(&mut fb);
        self.functions[id.0 as usize] = Some(fb.finish());
    }

    /// Declares and immediately defines a function.
    pub fn function<F: FnOnce(&mut FunctionBuilder)>(
        &mut self,
        name: &str,
        num_params: u32,
        build: F,
    ) -> FuncId {
        let id = self.declare(name, num_params);
        self.define(id, build);
        id
    }

    /// Adds a zero-initialized global of `size` words, returning its id.
    pub fn global(&mut self, name: &str, size: u32) -> GlobalId {
        self.global_init(name, size, vec![])
    }

    /// Adds a global of `size` words whose first `init.len()` words carry the
    /// given initial values.
    pub fn global_init(&mut self, name: &str, size: u32, init: Vec<i64>) -> GlobalId {
        assert!(!self.globals.iter().any(|g| g.name == name), "duplicate global name {name:?}");
        assert!(init.len() <= size as usize, "initializer longer than global {name:?}");
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Global { name: name.to_string(), size, init });
        id
    }

    /// Finalizes the program with the function named `entry` as entry point.
    ///
    /// # Panics
    ///
    /// Panics if any declared function lacks a body or the entry function
    /// does not exist.
    pub fn finish(self, entry: &str) -> Program {
        let functions: Vec<Function> = self
            .functions
            .into_iter()
            .enumerate()
            .map(|(i, f)| {
                f.unwrap_or_else(|| {
                    panic!("function {:?} declared but never defined", self.func_names[i])
                })
            })
            .collect();
        let entry_id = functions
            .iter()
            .position(|f| f.name == entry)
            .unwrap_or_else(|| panic!("entry function {entry:?} not found"));
        Program {
            name: self.name,
            functions,
            globals: self.globals,
            entry: FuncId(entry_id as u32),
        }
    }
}

/// Builds a single [`Function`], block by block.
pub struct FunctionBuilder {
    func: FuncId,
    name: String,
    num_params: u32,
    next_reg: u32,
    local_sizes: Vec<u32>,
    blocks: Vec<BasicBlock>,
    sealed: Vec<bool>,
    current: BlockId,
}

impl FunctionBuilder {
    fn new(func: FuncId, name: String, num_params: u32) -> Self {
        let entry = BasicBlock::new(Some("entry".to_string()));
        FunctionBuilder {
            func,
            name,
            num_params,
            next_reg: num_params,
            local_sizes: Vec::new(),
            blocks: vec![entry],
            sealed: vec![false],
            current: BlockId(0),
        }
    }

    /// The id of the function being built (the one `declare` returned).
    pub fn func_id(&self) -> FuncId {
        self.func
    }

    /// Returns the register holding the `i`-th parameter.
    pub fn param(&self, i: u32) -> Reg {
        assert!(i < self.num_params, "parameter index {i} out of range");
        Reg(i)
    }

    /// Allocates a fresh virtual register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Allocates an addressable local slot of `size` words.
    pub fn local(&mut self, size: u32) -> LocalId {
        let id = LocalId(self.local_sizes.len() as u32);
        self.local_sizes.push(size);
        id
    }

    /// Creates a new (empty, unterminated) block and returns its id. The
    /// current block is unchanged.
    pub fn new_block(&mut self, label: &str) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock::new(Some(label.to_string())));
        self.sealed.push(false);
        id
    }

    /// Makes `block` the target of subsequent instruction emissions.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(!self.sealed[block.0 as usize], "cannot switch to sealed block {:?}", block);
        self.current = block;
    }

    /// Returns the block currently being filled.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Returns the index the next emitted instruction will occupy in the
    /// current block (useful to compute a [`crate::Loc`] while building).
    pub fn next_inst_idx(&self) -> u32 {
        self.blocks[self.current.0 as usize].insts.len() as u32
    }

    /// The [`Loc`] the next emitted instruction will occupy — the
    /// builder-time form of "the goal is the instruction I am about to
    /// emit". Shorthand for
    /// `Loc::new(f.func_id(), f.current_block(), f.next_inst_idx())`.
    pub fn here(&self) -> Loc {
        Loc::new(self.func, self.current, self.next_inst_idx())
    }

    /// Emits a conditional diamond: branches on `cond` into fresh
    /// `{label}_t` / `{label}_e` blocks filled by the two closures, joins
    /// both into a fresh `{label}_j` block, and leaves the builder at the
    /// join. Returns the join block id.
    ///
    /// # Panics
    ///
    /// Panics (via [`FunctionBuilder::br`]) if either body terminates its
    /// block — the diamond owns both terminators.
    pub fn diamond(
        &mut self,
        label: &str,
        cond: impl Into<Operand>,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) -> BlockId {
        let then_bb = self.new_block(&format!("{label}_t"));
        let else_bb = self.new_block(&format!("{label}_e"));
        let join_bb = self.new_block(&format!("{label}_j"));
        self.cond_br(cond, then_bb, else_bb);
        self.switch_to(then_bb);
        then_body(self);
        self.br(join_bb);
        self.switch_to(else_bb);
        else_body(self);
        self.br(join_bb);
        self.switch_to(join_bb);
        join_bb
    }

    fn emit(&mut self, inst: Inst) {
        let cur = self.current.0 as usize;
        assert!(!self.sealed[cur], "emitting into sealed block {:?}", self.current);
        self.blocks[cur].insts.push(inst);
    }

    fn seal(&mut self, term: Terminator) {
        let cur = self.current.0 as usize;
        assert!(!self.sealed[cur], "block {:?} already terminated", self.current);
        self.blocks[cur].term = term;
        self.sealed[cur] = true;
    }

    // ---- value-producing instructions -------------------------------------

    /// Emits `dst = value` and returns `dst`.
    pub fn konst(&mut self, value: i64) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::Const { dst, value });
        dst
    }

    /// Emits a binary operation.
    pub fn bin(&mut self, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::Bin { dst, op, a: a.into(), b: b.into() });
        dst
    }

    /// Emits an addition.
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Add, a, b)
    }

    /// Emits a subtraction.
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Sub, a, b)
    }

    /// Emits a multiplication.
    pub fn mul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Mul, a, b)
    }

    /// Emits a comparison producing 0 or 1.
    pub fn cmp(&mut self, op: CmpOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::Cmp { dst, op, a: a.into(), b: b.into() });
        dst
    }

    /// Emits an equality comparison.
    pub fn eq(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.cmp(CmpOp::Eq, a, b)
    }

    /// Emits `dst = &local`.
    pub fn addr_local(&mut self, local: LocalId) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::AddrLocal { dst, local });
        dst
    }

    /// Emits `dst = &global`.
    pub fn addr_global(&mut self, global: GlobalId) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::AddrGlobal { dst, global });
        dst
    }

    /// Emits `dst = <address-of-function>` for indirect calls.
    pub fn func_addr(&mut self, func: FuncId) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::FuncAddr { dst, func });
        dst
    }

    /// Emits a heap allocation of `size` words.
    pub fn alloc(&mut self, size: impl Into<Operand>) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::Alloc { dst, size: size.into() });
        dst
    }

    /// Emits `free(ptr)`.
    pub fn free(&mut self, ptr: impl Into<Operand>) {
        self.emit(Inst::Free { ptr: ptr.into() });
    }

    /// Emits a word load.
    pub fn load(&mut self, addr: impl Into<Operand>) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::Load { dst, addr: addr.into() });
        dst
    }

    /// Emits a word store.
    pub fn store(&mut self, addr: impl Into<Operand>, value: impl Into<Operand>) {
        self.emit(Inst::Store { addr: addr.into(), value: value.into() });
    }

    /// Emits pointer arithmetic `dst = base + offset` (offset in words).
    pub fn gep(&mut self, base: impl Into<Operand>, offset: impl Into<Operand>) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::Gep { dst, base: base.into(), offset: offset.into() });
        dst
    }

    /// Emits a direct call whose result is used.
    pub fn call(&mut self, func: FuncId, args: Vec<Operand>) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::Call { dst: Some(dst), callee: Callee::Direct(func), args });
        dst
    }

    /// Emits a direct call whose result is discarded.
    pub fn call_void(&mut self, func: FuncId, args: Vec<Operand>) {
        self.emit(Inst::Call { dst: None, callee: Callee::Direct(func), args });
    }

    /// Emits an indirect call through a function-pointer operand.
    pub fn call_indirect(&mut self, target: impl Into<Operand>, args: Vec<Operand>) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::Call { dst: Some(dst), callee: Callee::Indirect(target.into()), args });
        dst
    }

    /// Emits an environment input read.
    pub fn input(&mut self, source: InputSource) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::Input { dst, source });
        dst
    }

    /// Emits a `getchar()`-style read from standard input.
    pub fn getchar(&mut self) -> Reg {
        self.input(InputSource::Stdin)
    }

    /// Emits a read of one character of the named environment variable.
    pub fn getenv(&mut self, name: &str) -> Reg {
        self.input(InputSource::Env(name.to_string()))
    }

    /// Emits a read of the `i`-th command-line argument word.
    pub fn arg(&mut self, i: u32) -> Reg {
        self.input(InputSource::Arg(i))
    }

    // ---- effect-only instructions ------------------------------------------

    /// Emits an output of one word.
    pub fn output(&mut self, value: impl Into<Operand>) {
        self.emit(Inst::Output { value: value.into() });
    }

    /// Emits an assertion.
    pub fn assert(&mut self, cond: impl Into<Operand>, msg: &str) {
        self.emit(Inst::Assert { cond: cond.into(), msg: msg.to_string() });
    }

    /// Emits `mutex_lock(mutex)`.
    pub fn lock(&mut self, mutex: impl Into<Operand>) {
        self.emit(Inst::MutexLock { mutex: mutex.into() });
    }

    /// Emits `mutex_unlock(mutex)`.
    pub fn unlock(&mut self, mutex: impl Into<Operand>) {
        self.emit(Inst::MutexUnlock { mutex: mutex.into() });
    }

    /// Emits `cond_wait(cond, mutex)`.
    pub fn cond_wait(&mut self, cond: impl Into<Operand>, mutex: impl Into<Operand>) {
        self.emit(Inst::CondWait { cond: cond.into(), mutex: mutex.into() });
    }

    /// Emits `cond_signal(cond)`.
    pub fn cond_signal(&mut self, cond: impl Into<Operand>) {
        self.emit(Inst::CondSignal { cond: cond.into() });
    }

    /// Emits `cond_broadcast(cond)`.
    pub fn cond_broadcast(&mut self, cond: impl Into<Operand>) {
        self.emit(Inst::CondBroadcast { cond: cond.into() });
    }

    /// Emits a thread spawn of `func(arg)` and returns the register holding
    /// the new thread id.
    pub fn spawn(&mut self, func: FuncId, arg: impl Into<Operand>) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::ThreadSpawn { dst, func: Callee::Direct(func), arg: arg.into() });
        dst
    }

    /// Emits a join on a thread id.
    pub fn join(&mut self, thread: impl Into<Operand>) {
        self.emit(Inst::ThreadJoin { thread: thread.into() });
    }

    /// Emits a voluntary yield.
    pub fn yield_now(&mut self) {
        self.emit(Inst::Yield);
    }

    /// Emits a no-op.
    pub fn nop(&mut self) {
        self.emit(Inst::Nop);
    }

    // ---- terminators --------------------------------------------------------

    /// Seals the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.seal(Terminator::Br { target });
    }

    /// Seals the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: impl Into<Operand>, then_bb: BlockId, else_bb: BlockId) {
        self.seal(Terminator::CondBr { cond: cond.into(), then_bb, else_bb });
    }

    /// Seals the current block with a void return.
    pub fn ret_void(&mut self) {
        self.seal(Terminator::Ret { value: None });
    }

    /// Seals the current block with a value return.
    pub fn ret(&mut self, value: impl Into<Operand>) {
        self.seal(Terminator::Ret { value: Some(value.into()) });
    }

    /// Seals the current block as unreachable.
    pub fn unreachable(&mut self) {
        self.seal(Terminator::Unreachable);
    }

    fn finish(self) -> Function {
        for (i, sealed) in self.sealed.iter().enumerate() {
            assert!(*sealed, "block bb{} of function {:?} has no terminator", i, self.name);
        }
        Function {
            name: self.name,
            num_params: self.num_params,
            num_regs: self.next_reg,
            local_sizes: self.local_sizes,
            blocks: self.blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn builds_a_straight_line_function() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            let a = f.konst(2);
            let b = f.konst(3);
            let c = f.add(a, b);
            f.output(c);
            f.ret(c);
        });
        let p = pb.finish("main");
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.func(p.entry).blocks.len(), 1);
        assert!(validate(&p).is_ok());
    }

    #[test]
    fn builds_branches_and_multiple_blocks() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let is_m = f.cmp(CmpOp::Eq, x, 'm' as i64);
            let then_bb = f.new_block("then");
            let else_bb = f.new_block("else");
            let done = f.new_block("done");
            f.cond_br(is_m, then_bb, else_bb);
            f.switch_to(then_bb);
            f.output(1);
            f.br(done);
            f.switch_to(else_bb);
            f.output(0);
            f.br(done);
            f.switch_to(done);
            f.ret_void();
        });
        let p = pb.finish("main");
        assert_eq!(p.func(p.entry).blocks.len(), 4);
        assert!(validate(&p).is_ok());
    }

    #[test]
    fn declare_then_define_supports_mutual_recursion() {
        let mut pb = ProgramBuilder::new("p");
        let even = pb.declare("even", 1);
        let odd = pb.declare("odd", 1);
        pb.define(even, |f| {
            let n = f.param(0);
            let is_zero = f.cmp(CmpOp::Eq, n, 0);
            let base = f.new_block("base");
            let rec = f.new_block("rec");
            f.cond_br(is_zero, base, rec);
            f.switch_to(base);
            f.ret(1);
            f.switch_to(rec);
            let n1 = f.sub(n, 1);
            let r = f.call(odd, vec![n1.into()]);
            f.ret(r);
        });
        pb.define(odd, |f| {
            let n = f.param(0);
            let is_zero = f.cmp(CmpOp::Eq, n, 0);
            let base = f.new_block("base");
            let rec = f.new_block("rec");
            f.cond_br(is_zero, base, rec);
            f.switch_to(base);
            f.ret(0);
            f.switch_to(rec);
            let n1 = f.sub(n, 1);
            let r = f.call(even, vec![n1.into()]);
            f.ret(r);
        });
        pb.function("main", 0, |f| {
            let r = f.call(even, vec![Operand::Const(4)]);
            f.assert(r, "4 must be even");
            f.ret_void();
        });
        let p = pb.finish("main");
        assert!(validate(&p).is_ok());
    }

    #[test]
    #[should_panic(expected = "no terminator")]
    fn unterminated_block_panics() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            f.konst(1);
            // missing terminator
        });
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_function_name_panics() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| f.ret_void());
        pb.declare("main", 0);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminator_panics() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            f.ret_void();
            f.ret_void();
        });
    }

    #[test]
    fn here_names_the_next_instruction() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            let entry_start = f.here();
            assert_eq!(entry_start, Loc::new(f.func_id(), f.current_block(), 0));
            let x = f.konst(1);
            assert_eq!(f.here().idx, 1, "here() advances with each emission");
            f.output(x);
            f.ret_void();
        });
        pb.finish("main");
    }

    #[test]
    fn diamond_joins_both_arms_and_leaves_the_builder_at_the_join() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let c = f.eq(x, 7);
            let join = f.diamond("d", c, |t| t.output(1), |e| e.output(0));
            assert_eq!(f.current_block(), join);
            f.ret_void();
        });
        let p = pb.finish("main");
        assert_eq!(p.func(p.entry).blocks.len(), 4, "entry + then + else + join");
        assert!(validate(&p).is_ok());
    }

    #[test]
    fn params_occupy_low_registers() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("f", 2, |f| {
            assert_eq!(f.param(0), Reg(0));
            assert_eq!(f.param(1), Reg(1));
            let s = f.add(f.param(0), f.param(1));
            assert!(s.0 >= 2);
            f.ret(s);
        });
        pb.function("main", 0, |f| f.ret_void());
        let p = pb.finish("main");
        assert!(validate(&p).is_ok());
    }
}
