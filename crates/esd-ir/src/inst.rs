//! The instruction set of the IR.
//!
//! Instructions are deliberately low level: word-granularity loads and
//! stores, explicit synchronization intrinsics, and explicit environment
//! inputs. This mirrors the properties of LLVM bitcode that the original ESD
//! relies on (word-level memory operations and scheduler-visible
//! synchronization calls, cf. §6.2 of the paper).

use crate::types::{BlockId, FuncId, GlobalId, LocalId, Reg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An operand: either a virtual register or an immediate integer constant.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// The current value of a virtual register.
    Reg(Reg),
    /// An immediate 64-bit constant.
    Const(i64),
}

impl Operand {
    /// Returns the register if this operand reads one.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Const(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(c: i64) -> Self {
        Operand::Const(c)
    }
}

/// Binary arithmetic and bitwise operators.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (division by zero faults).
    Div,
    /// Signed remainder (division by zero faults).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Shl,
    /// Arithmetic shift right (shift amount taken modulo 64).
    Shr,
}

/// Comparison operators; the result is the integer 1 (true) or 0 (false).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Debug)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-than-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-than-or-equal.
    Ge,
}

impl CmpOp {
    /// Returns the comparison with operands swapped (`a < b` ⟷ `b > a`).
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Returns the logical negation of the comparison.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Evaluates the comparison on concrete integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// The callee of a call instruction.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Callee {
    /// A direct call to a known function.
    Direct(FuncId),
    /// An indirect call through a register holding a function "address"
    /// (an integer equal to the target's [`FuncId`] index, as produced by
    /// [`Inst::FuncAddr`]).
    Indirect(Operand),
}

/// Sources of external, a-priori-unknown program input.
///
/// Every execution of an `Input` instruction produces one fresh word from the
/// environment. During synthesis these become unconstrained symbolic
/// variables ("ESD runs the program with symbolic inputs that are initially
/// unconstrained"); during concrete execution and playback they are served by
/// an input provider.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Debug)]
pub enum InputSource {
    /// A command-line argument word (`argv[i]`-style).
    Arg(u32),
    /// A character read from standard input (`getchar()`-style).
    Stdin,
    /// A character of the named environment variable (`getenv(name)[i]`).
    Env(String),
    /// A word received from the network.
    Net,
    /// A word read from a file with the given name.
    File(String),
}

/// A single non-terminator instruction.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = imm`.
    Const {
        /// Destination register.
        dst: Reg,
        /// The immediate value.
        value: i64,
    },
    /// `dst = a <op> b` on integers.
    Bin {
        /// Destination register.
        dst: Reg,
        /// The arithmetic/bitwise operator.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = (a <op> b) ? 1 : 0`.
    Cmp {
        /// Destination register.
        dst: Reg,
        /// The comparison operator.
        op: CmpOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = &local`.
    AddrLocal {
        /// Destination register.
        dst: Reg,
        /// The function-local slot whose address is taken.
        local: LocalId,
    },
    /// `dst = &global`.
    AddrGlobal {
        /// Destination register.
        dst: Reg,
        /// The global whose address is taken.
        global: GlobalId,
    },
    /// `dst = (integer "address" of function f)`, for indirect calls.
    FuncAddr {
        /// Destination register.
        dst: Reg,
        /// The function whose "address" is materialized.
        func: FuncId,
    },
    /// `dst = malloc(size)` — allocates a fresh heap object of `size` words.
    Alloc {
        /// Destination register (receives the new pointer).
        dst: Reg,
        /// Object size in words.
        size: Operand,
    },
    /// `free(ptr)` — frees a heap object; freeing anything else faults.
    Free {
        /// The pointer being freed.
        ptr: Operand,
    },
    /// `dst = *(addr)` — word load.
    Load {
        /// Destination register.
        dst: Reg,
        /// The address read from.
        addr: Operand,
    },
    /// `*(addr) = value` — word store.
    Store {
        /// The address written to.
        addr: Operand,
        /// The word stored.
        value: Operand,
    },
    /// `dst = base + offset` pointer arithmetic (offset in words).
    Gep {
        /// Destination register.
        dst: Reg,
        /// Base pointer.
        base: Operand,
        /// Offset in words.
        offset: Operand,
    },
    /// Call a function with arguments; the return value (if any) is written
    /// to `dst`.
    Call {
        /// Destination register for the return value, if used.
        dst: Option<Reg>,
        /// The called function (direct or computed).
        callee: Callee,
        /// Actual arguments.
        args: Vec<Operand>,
    },
    /// `dst = <one fresh word from the environment>`.
    Input {
        /// Destination register.
        dst: Reg,
        /// Which environment source serves the word.
        source: InputSource,
    },
    /// Emit a word to the program's output stream.
    Output {
        /// The word emitted.
        value: Operand,
    },
    /// Abort with an assertion failure if `cond` is false.
    Assert {
        /// The asserted condition (non-zero = pass).
        cond: Operand,
        /// Message reported when the assertion fails.
        msg: String,
    },
    /// `mutex_lock(mutex)` where `mutex` is the address of a mutex word.
    MutexLock {
        /// Address of the mutex word.
        mutex: Operand,
    },
    /// `mutex_unlock(mutex)`.
    MutexUnlock {
        /// Address of the mutex word.
        mutex: Operand,
    },
    /// `cond_wait(cond, mutex)` — atomically release `mutex` and block on
    /// `cond`; re-acquire `mutex` before returning.
    CondWait {
        /// Address of the condition-variable word.
        cond: Operand,
        /// Address of the released-and-reacquired mutex word.
        mutex: Operand,
    },
    /// `cond_signal(cond)` — wake one waiter.
    CondSignal {
        /// Address of the condition-variable word.
        cond: Operand,
    },
    /// `cond_broadcast(cond)` — wake all waiters.
    CondBroadcast {
        /// Address of the condition-variable word.
        cond: Operand,
    },
    /// `dst = spawn(func, arg)` — create a thread running `func(arg)`;
    /// returns the new thread's id.
    ThreadSpawn {
        /// Destination register (receives the thread id).
        dst: Reg,
        /// The spawned thread's entry function.
        func: Callee,
        /// The single argument passed to the entry function.
        arg: Operand,
    },
    /// `join(thread)` — block until the given thread id terminates.
    ThreadJoin {
        /// The joined thread's id.
        thread: Operand,
    },
    /// Voluntarily yield the processor (a scheduling point with no effect).
    Yield,
    /// No operation (used as padding by the BPF generator).
    Nop,
}

impl Inst {
    /// Returns the register written by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::AddrLocal { dst, .. }
            | Inst::AddrGlobal { dst, .. }
            | Inst::FuncAddr { dst, .. }
            | Inst::Alloc { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Gep { dst, .. }
            | Inst::Input { dst, .. }
            | Inst::ThreadSpawn { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Returns all operands read by this instruction.
    pub fn uses(&self) -> Vec<Operand> {
        match self {
            Inst::Const { .. }
            | Inst::AddrLocal { .. }
            | Inst::AddrGlobal { .. }
            | Inst::FuncAddr { .. }
            | Inst::Input { .. }
            | Inst::Yield
            | Inst::Nop => vec![],
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => vec![*a, *b],
            Inst::Alloc { size, .. } => vec![*size],
            Inst::Free { ptr } => vec![*ptr],
            Inst::Load { addr, .. } => vec![*addr],
            Inst::Store { addr, value } => vec![*addr, *value],
            Inst::Gep { base, offset, .. } => vec![*base, *offset],
            Inst::Call { callee, args, .. } => {
                let mut v: Vec<Operand> = args.clone();
                if let Callee::Indirect(op) = callee {
                    v.push(*op);
                }
                v
            }
            Inst::Output { value } => vec![*value],
            Inst::Assert { cond, .. } => vec![*cond],
            Inst::MutexLock { mutex } | Inst::MutexUnlock { mutex } => vec![*mutex],
            Inst::CondWait { cond, mutex } => vec![*cond, *mutex],
            Inst::CondSignal { cond } | Inst::CondBroadcast { cond } => vec![*cond],
            Inst::ThreadSpawn { func, arg, .. } => {
                let mut v = vec![*arg];
                if let Callee::Indirect(op) = func {
                    v.push(*op);
                }
                v
            }
            Inst::ThreadJoin { thread } => vec![*thread],
        }
    }

    /// Returns true if this instruction is a synchronization operation, i.e.
    /// one of the preemption points ESD considers for deadlock schedule
    /// synthesis (§4.1 of the paper).
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Inst::MutexLock { .. }
                | Inst::MutexUnlock { .. }
                | Inst::CondWait { .. }
                | Inst::CondSignal { .. }
                | Inst::CondBroadcast { .. }
                | Inst::ThreadSpawn { .. }
                | Inst::ThreadJoin { .. }
                | Inst::Yield
        )
    }

    /// Returns true if this instruction accesses shared memory (a load or a
    /// store), i.e. one of the preemption points relevant for data-race
    /// schedule synthesis (§4.2).
    pub fn is_mem_access(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }

    /// Returns true for instructions that read external input.
    pub fn is_input(&self) -> bool {
        matches!(self, Inst::Input { .. })
    }
}

/// A basic-block terminator.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Br {
        /// The jump target.
        target: BlockId,
    },
    /// Two-way conditional branch on a (possibly symbolic) condition.
    CondBr {
        /// The branched-on condition (non-zero = then).
        cond: Operand,
        /// Target when the condition is non-zero.
        then_bb: BlockId,
        /// Target when the condition is zero.
        else_bb: BlockId,
    },
    /// Return from the current function.
    Ret {
        /// The returned word, if the function returns one.
        value: Option<Operand>,
    },
    /// Marks statically unreachable code; executing it is a fault.
    Unreachable,
}

impl Terminator {
    /// Returns the possible successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br { target } => vec![*target],
            Terminator::CondBr { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Terminator::Ret { .. } | Terminator::Unreachable => vec![],
        }
    }

    /// Returns all operands read by the terminator.
    pub fn uses(&self) -> Vec<Operand> {
        match self {
            Terminator::CondBr { cond, .. } => vec![*cond],
            Terminator::Ret { value: Some(v) } => vec![*v],
            _ => vec![],
        }
    }
}

impl fmt::Debug for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{:?}", r),
            Operand::Const(c) => write!(f, "{}", c),
        }
    }
}

impl fmt::Debug for Callee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Callee::Direct(func) => write!(f, "{:?}", func),
            Callee::Indirect(op) => write!(f, "*{:?}", op),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_negate_is_involutive_and_correct() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.negate().negate(), op);
            for (a, b) in [(1, 2), (2, 1), (3, 3), (-5, 5)] {
                assert_eq!(op.eval(a, b), !op.negate().eval(a, b), "{:?} {} {}", op, a, b);
                assert_eq!(op.eval(a, b), op.swap().eval(b, a), "swap {:?} {} {}", op, a, b);
            }
        }
    }

    #[test]
    fn def_and_uses_are_consistent() {
        let i = Inst::Bin {
            dst: Reg(3),
            op: BinOp::Add,
            a: Operand::Reg(Reg(1)),
            b: Operand::Const(4),
        };
        assert_eq!(i.def(), Some(Reg(3)));
        assert_eq!(i.uses(), vec![Operand::Reg(Reg(1)), Operand::Const(4)]);

        let s = Inst::Store { addr: Operand::Reg(Reg(0)), value: Operand::Reg(Reg(1)) };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses().len(), 2);
    }

    #[test]
    fn call_uses_include_indirect_target() {
        let c = Inst::Call {
            dst: Some(Reg(0)),
            callee: Callee::Indirect(Operand::Reg(Reg(5))),
            args: vec![Operand::Const(1)],
        };
        assert!(c.uses().contains(&Operand::Reg(Reg(5))));
    }

    #[test]
    fn sync_and_memory_classification() {
        assert!(Inst::MutexLock { mutex: Operand::Const(0) }.is_sync());
        assert!(Inst::Yield.is_sync());
        assert!(!Inst::Nop.is_sync());
        assert!(Inst::Load { dst: Reg(0), addr: Operand::Const(0) }.is_mem_access());
        assert!(!Inst::Const { dst: Reg(0), value: 1 }.is_mem_access());
        assert!(Inst::Input { dst: Reg(0), source: InputSource::Stdin }.is_input());
    }

    #[test]
    fn terminator_successors() {
        let br = Terminator::Br { target: BlockId(2) };
        assert_eq!(br.successors(), vec![BlockId(2)]);
        let cbr = Terminator::CondBr {
            cond: Operand::Const(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(cbr.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Terminator::Ret { value: None }.successors().is_empty());
    }
}
