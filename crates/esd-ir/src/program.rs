//! Programs, functions, basic blocks and globals.

use crate::inst::{Inst, Terminator};
use crate::types::{BlockId, FuncId, GlobalId, Loc};
use serde::{Deserialize, Serialize};

/// A basic block: a straight-line sequence of instructions ended by a single
/// terminator.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Optional human-readable label (used by the pretty printer).
    pub label: Option<String>,
    /// The non-terminator instructions, in execution order.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
}

impl BasicBlock {
    /// Creates an empty block ending in `Unreachable` (the builder replaces
    /// the terminator when the block is sealed).
    pub fn new(label: Option<String>) -> Self {
        BasicBlock { label, insts: Vec::new(), term: Terminator::Unreachable }
    }

    /// Number of instructions including the terminator.
    pub fn len_with_term(&self) -> usize {
        self.insts.len() + 1
    }
}

/// A function: parameters, addressable locals, virtual registers and a CFG of
/// basic blocks. Block 0 is always the entry block.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Function name (unique within a program).
    pub name: String,
    /// Number of parameters; parameters arrive in registers `0..num_params`.
    pub num_params: u32,
    /// Number of virtual registers used by the function body.
    pub num_regs: u32,
    /// Sizes (in words) of each addressable local slot.
    pub local_sizes: Vec<u32>,
    /// The basic blocks; `BlockId(i)` indexes into this vector.
    pub blocks: Vec<BasicBlock>,
}

impl Function {
    /// Returns the block with the given id.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Returns the entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Iterates over all block ids of this function.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Total number of instructions (including terminators) in the function.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.len_with_term()).sum()
    }
}

/// A global variable: a named object of fixed size, with optional initial
/// values (missing words are zero-initialized).
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Global {
    /// Global name (unique within a program).
    pub name: String,
    /// Size in words.
    pub size: u32,
    /// Initial values for the first `init.len()` words.
    pub init: Vec<i64>,
}

/// A whole program: functions, globals and the entry point.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// Program name (used in reports).
    pub name: String,
    /// All functions; `FuncId(i)` indexes into this vector.
    pub functions: Vec<Function>,
    /// All globals; `GlobalId(i)` indexes into this vector.
    pub globals: Vec<Global>,
    /// The entry function (`main`).
    pub entry: FuncId,
}

// A compact summary, not the full listing — use the pretty printer for
// that. Exists so snapshot and journal types embedding a `Program` can
// derive `Debug`.
impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field("name", &self.name)
            .field("functions", &self.functions.len())
            .field("globals", &self.globals.len())
            .field("entry", &self.entry)
            .finish()
    }
}

impl Program {
    /// Returns the function with the given id.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Returns the global with the given id.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions.iter().position(|f| f.name == name).map(|i| FuncId(i as u32))
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals.iter().position(|g| g.name == name).map(|i| GlobalId(i as u32))
    }

    /// Iterates over all function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.functions.len() as u32).map(FuncId)
    }

    /// Total number of instructions (including terminators) in the program.
    pub fn num_insts(&self) -> usize {
        self.functions.iter().map(|f| f.num_insts()).sum()
    }

    /// Returns the instruction at `loc`, or `None` if `loc` designates the
    /// block terminator (or is out of range).
    pub fn inst_at(&self, loc: Loc) -> Option<&Inst> {
        let f = self.functions.get(loc.func.0 as usize)?;
        let b = f.blocks.get(loc.block.0 as usize)?;
        b.insts.get(loc.idx as usize)
    }

    /// Returns the terminator of the block designated by `loc`.
    pub fn term_at(&self, loc: Loc) -> Option<&Terminator> {
        let f = self.functions.get(loc.func.0 as usize)?;
        let b = f.blocks.get(loc.block.0 as usize)?;
        Some(&b.term)
    }

    /// Returns true if `loc` points at the terminator of its block.
    pub fn is_terminator_loc(&self, loc: Loc) -> bool {
        let f = &self.functions[loc.func.0 as usize];
        let b = &f.blocks[loc.block.0 as usize];
        loc.idx as usize == b.insts.len()
    }

    /// An estimate of the program's size in equivalent C source lines, used
    /// to report program sizes in KLOC like Figure 4 of the paper. Each IR
    /// instruction corresponds to roughly one source statement; blocks and
    /// functions contribute a small constant for braces and signatures.
    pub fn estimated_c_loc(&self) -> usize {
        let insts: usize = self.num_insts();
        let blocks: usize = self.functions.iter().map(|f| f.blocks.len()).sum();
        let funcs = self.functions.len();
        insts + blocks + 3 * funcs + 2 * self.globals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Operand;
    use crate::types::Reg;

    fn tiny_program() -> Program {
        let block = BasicBlock {
            label: Some("entry".into()),
            insts: vec![Inst::Const { dst: Reg(0), value: 42 }],
            term: Terminator::Ret { value: Some(Operand::Reg(Reg(0))) },
        };
        let f = Function {
            name: "main".into(),
            num_params: 0,
            num_regs: 1,
            local_sizes: vec![],
            blocks: vec![block],
        };
        Program { name: "tiny".into(), functions: vec![f], globals: vec![], entry: FuncId(0) }
    }

    #[test]
    fn lookup_by_name_finds_functions_and_globals() {
        let mut p = tiny_program();
        p.globals.push(Global { name: "g".into(), size: 2, init: vec![7] });
        assert_eq!(p.func_by_name("main"), Some(FuncId(0)));
        assert_eq!(p.func_by_name("nope"), None);
        assert_eq!(p.global_by_name("g"), Some(GlobalId(0)));
        assert_eq!(p.global_by_name("h"), None);
    }

    #[test]
    fn inst_at_and_terminator_classification() {
        let p = tiny_program();
        let l0 = Loc::new(FuncId(0), BlockId(0), 0);
        let l1 = Loc::new(FuncId(0), BlockId(0), 1);
        assert!(p.inst_at(l0).is_some());
        assert!(p.inst_at(l1).is_none());
        assert!(!p.is_terminator_loc(l0));
        assert!(p.is_terminator_loc(l1));
        assert!(p.term_at(l1).is_some());
    }

    #[test]
    fn instruction_counts_include_terminators() {
        let p = tiny_program();
        assert_eq!(p.num_insts(), 2);
        assert!(p.estimated_c_loc() >= p.num_insts());
    }
}
