//! Identifier newtypes used throughout the IR.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a function within a [`crate::Program`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// Identifies a basic block within a [`crate::Function`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// Identifies a virtual register within a function.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u32);

/// Identifies an addressable local variable slot within a function frame.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocalId(pub u32);

/// Identifies a global variable within a [`crate::Program`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GlobalId(pub u32);

/// Identifies a thread at run time. Thread 0 is always the main thread.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId(pub u32);

/// A program location: an instruction position inside a basic block.
///
/// `idx` ranges over `0..block.insts.len()` for ordinary instructions; the
/// value `block.insts.len()` denotes the block terminator. Locations are the
/// currency of bug reports (the faulting instruction), goals (`<B, C>` from
/// the paper, where B is the goal block and the location pins the exact
/// instruction), breakpoints and schedules.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Loc {
    /// Function containing the location.
    pub func: FuncId,
    /// Basic block containing the location.
    pub block: BlockId,
    /// Instruction index within the block (`insts.len()` = the terminator).
    pub idx: u32,
}

impl Loc {
    /// Creates a location from raw indices.
    pub fn new(func: FuncId, block: BlockId, idx: u32) -> Self {
        Loc { func, block, idx }
    }

    /// The location of the first instruction of a block.
    pub fn block_start(func: FuncId, block: BlockId) -> Self {
        Loc { func, block, idx: 0 }
    }
}

impl fmt::Debug for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Debug for LocalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$l{}", self.0)
    }
}

impl fmt::Debug for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@g{}", self.0)
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Debug for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}:{:?}:{}", self.func, self.block, self.idx)
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_ordering_is_lexicographic() {
        let a = Loc::new(FuncId(0), BlockId(0), 0);
        let b = Loc::new(FuncId(0), BlockId(0), 1);
        let c = Loc::new(FuncId(0), BlockId(1), 0);
        let d = Loc::new(FuncId(1), BlockId(0), 0);
        assert!(a < b && b < c && c < d);
    }

    #[test]
    fn loc_block_start_has_index_zero() {
        let l = Loc::block_start(FuncId(3), BlockId(7));
        assert_eq!(l.idx, 0);
        assert_eq!(l.func, FuncId(3));
        assert_eq!(l.block, BlockId(7));
    }

    #[test]
    fn debug_formatting_is_compact() {
        assert_eq!(format!("{:?}", FuncId(2)), "f2");
        assert_eq!(format!("{:?}", BlockId(4)), "bb4");
        assert_eq!(format!("{:?}", Reg(9)), "%9");
        assert_eq!(format!("{:?}", Loc::new(FuncId(1), BlockId(2), 3)), "f1:bb2:3");
    }
}
