//! Critical edges, intermediate goals and goal-relevance pruning
//! (the output of the paper's static phase, §3.2).
//!
//! * A **critical edge** is a CFG edge that *must* be followed on any path to
//!   the goal: at a conditional branch from which only one successor can
//!   still reach the goal block, that successor's edge is critical. During
//!   the dynamic phase, states that take the other edge are abandoned.
//! * An **intermediate goal** is a basic block that must execute for a
//!   critical edge to be traversable: a definition of one of the variables in
//!   the branch condition that (alone or in combination with definitions of
//!   the other variables) gives the condition its required value.
//! * The **relevance map** marks blocks of the goal's function from which the
//!   goal is no longer reachable; the search deprioritizes or abandons states
//!   stuck in irrelevant blocks.

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::reachdef::{eval_tri, global_stores, trace_operand, GlobalStore};
use esd_ir::{BlockId, FuncId, GlobalId, Loc, Operand, Program, Terminator};
use std::collections::{HashMap, HashSet};

/// A branch edge that every path to the goal must take.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalEdge {
    /// Function containing the branch.
    pub func: FuncId,
    /// Block whose terminator is the conditional branch.
    pub branch_block: BlockId,
    /// The successor that must be taken.
    pub required_succ: BlockId,
    /// The branch condition operand.
    pub cond: Operand,
    /// The value the condition must evaluate to (`true` = then-edge).
    pub required_value: bool,
}

/// A "must execute" block set: any one of the alternatives satisfies this
/// intermediate goal (alternatives are disjunctive; distinct
/// `IntermediateGoal`s are conjunctive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntermediateGoal {
    /// Candidate locations (each the location of a defining store).
    pub alternatives: Vec<Loc>,
    /// The global word whose definition this goal tracks.
    pub variable: (GlobalId, i64),
}

/// The result of the static phase for one goal.
#[derive(Debug, Clone)]
pub struct StaticGoalInfo {
    /// The goal the info was computed for.
    pub goal: Loc,
    /// Critical edges on the way to the goal (within the goal's function).
    pub critical_edges: Vec<CriticalEdge>,
    /// Intermediate goals derived from the critical edges' conditions.
    pub intermediate_goals: Vec<IntermediateGoal>,
    /// `relevant[f][b]` — false when a state whose innermost frame sits in
    /// block `b` of function `f` can no longer reach the goal without first
    /// returning to a caller.
    pub relevant: Vec<Vec<bool>>,
    /// Functions from which the goal's function is reachable through calls.
    pub goal_reaching_funcs: HashSet<FuncId>,
}

impl StaticGoalInfo {
    /// Runs the static phase for `goal`.
    pub fn compute(program: &Program, cfgs: &[Cfg], callgraph: &CallGraph, goal: Loc) -> Self {
        let goal_cfg = &cfgs[goal.func.0 as usize];
        let can_reach_goal = goal_cfg.can_reach(goal.block);
        let critical_edges = find_critical_edges(program, goal_cfg, goal, &can_reach_goal);
        let stores = global_stores(program);
        let intermediate_goals = derive_intermediate_goals(program, &critical_edges, &stores);
        let goal_reaching_funcs = callgraph.functions_reaching(goal.func);
        let relevant = compute_relevance(
            program,
            cfgs,
            callgraph,
            goal,
            &can_reach_goal,
            &goal_reaching_funcs,
        );
        StaticGoalInfo { goal, critical_edges, intermediate_goals, relevant, goal_reaching_funcs }
    }

    /// True if a state whose innermost frame is at `loc` should be abandoned
    /// because the goal is unreachable from there (unless it can return to a
    /// caller that can still reach the goal — the caller decides that).
    pub fn is_irrelevant_block(&self, loc: Loc) -> bool {
        !self.relevant[loc.func.0 as usize][loc.block.0 as usize]
    }

    /// Returns the critical edge at `branch_block` of the goal function, if
    /// one was identified.
    pub fn critical_edge_at(&self, func: FuncId, block: BlockId) -> Option<&CriticalEdge> {
        self.critical_edges.iter().find(|e| e.func == func && e.branch_block == block)
    }

    /// All intermediate-goal locations, flattened (used to set up the virtual
    /// priority queues of the dynamic phase).
    pub fn intermediate_goal_locs(&self) -> Vec<Vec<Loc>> {
        self.intermediate_goals.iter().map(|g| g.alternatives.clone()).collect()
    }

    /// Merges the static phase's results for *several* goal locations into
    /// one bundle — a multi-threaded goal (a deadlock report lists one
    /// blocked-lock location per deadlocked thread) needs guidance toward
    /// every location, not just the first:
    ///
    /// * **intermediate goals** are the union (each becomes its own virtual
    ///   queue, so proximity guidance covers every thread's lock site);
    /// * **critical edges** are the intersection — an edge is only "must
    ///   take" if every goal requires it (with a single goal this is the
    ///   identity, and the engine does not apply critical edges to deadlock
    ///   goals anyway);
    /// * a block is **relevant** if it is relevant for *any* goal, and the
    ///   goal-reaching function set is the union.
    ///
    /// `goal` (and the panic on an empty list) keep the single-goal shape:
    /// the first location stays the nominal primary goal.
    pub fn merge(infos: Vec<StaticGoalInfo>) -> StaticGoalInfo {
        let mut infos = infos.into_iter();
        let mut merged = infos.next().expect("at least one goal");
        for info in infos {
            merged.critical_edges.retain(|e| info.critical_edges.contains(e));
            for goal in info.intermediate_goals {
                if !merged.intermediate_goals.contains(&goal) {
                    merged.intermediate_goals.push(goal);
                }
            }
            for (f, blocks) in merged.relevant.iter_mut().enumerate() {
                for (b, relevant) in blocks.iter_mut().enumerate() {
                    *relevant = *relevant || info.relevant[f][b];
                }
            }
            merged.goal_reaching_funcs.extend(info.goal_reaching_funcs);
        }
        merged
    }
}

/// Walks backward from the goal block marking critical edges, in the style of
/// the paper: follow single-predecessor chains; at each predecessor whose
/// conditional branch has exactly one goal-reaching successor, mark that
/// edge.
fn find_critical_edges(
    program: &Program,
    cfg: &Cfg,
    goal: Loc,
    can_reach_goal: &[bool],
) -> Vec<CriticalEdge> {
    let function = program.func(goal.func);
    let mut edges = Vec::new();
    let mut visited = HashSet::new();
    let mut cur = goal.block;
    visited.insert(cur);
    loop {
        let preds = cfg.preds(cur);
        if preds.len() != 1 {
            break;
        }
        let p = preds[0];
        if !visited.insert(p) {
            break;
        }
        if let Terminator::CondBr { cond, then_bb, else_bb } = &function.block(p).term {
            let then_ok = can_reach_goal[then_bb.0 as usize];
            let else_ok = can_reach_goal[else_bb.0 as usize];
            if then_ok != else_ok {
                let required_succ = if then_ok { *then_bb } else { *else_bb };
                edges.push(CriticalEdge {
                    func: goal.func,
                    branch_block: p,
                    required_succ,
                    cond: *cond,
                    required_value: then_ok,
                });
            }
        }
        cur = p;
    }
    edges
}

const MAX_DEFS_PER_VAR: usize = 32;

/// Derives intermediate goals from critical-edge conditions: definitions of
/// the condition's global variables that give (or at least permit) the
/// condition its required value.
///
/// For each variable `v` in the condition of a critical edge:
///
/// * a constant definition `v = k` is **viable** if, with `v = k` and all
///   other variables unknown, the condition still *can* evaluate to the
///   required value (three-valued evaluation);
/// * if the variable's initial value is already viable, no intermediate goal
///   is emitted for it (executing a definition is not required);
/// * otherwise the viable definitions become the goal's (disjunctive)
///   alternatives; if there are none, every definition of the variable —
///   constant or not — is kept as a weak alternative. A wrong intermediate
///   goal only slows the search down, it never makes it unsound.
fn derive_intermediate_goals(
    program: &Program,
    critical_edges: &[CriticalEdge],
    stores: &[GlobalStore],
) -> Vec<IntermediateGoal> {
    let mut goals = Vec::new();
    for edge in critical_edges {
        let function = program.func(edge.func);
        let expr = trace_operand(function, edge.cond);
        let vars = expr.globals();
        if vars.is_empty() {
            continue;
        }

        // Viability of value `k` for variable `var`: with var = k and every
        // other variable unknown, can the condition still take the required
        // value?
        let viable = |var: (GlobalId, i64), value: i64| -> bool {
            let mut asg = HashMap::new();
            asg.insert(var, value);
            let t = eval_tri(&expr, &asg);
            if edge.required_value {
                !t.is_false()
            } else {
                !t.is_true()
            }
        };

        for var in &vars {
            let init = program.global(var.0).init.get(var.1 as usize).copied().unwrap_or(0);
            let var_stores: Vec<&GlobalStore> =
                stores.iter().filter(|s| s.target == *var).take(MAX_DEFS_PER_VAR).collect();

            if viable(*var, init) && var_stores.iter().all(|s| s.value.is_none()) {
                // The initial value already permits the condition and there is
                // no constant definition to prefer: no goal needed.
                continue;
            }
            let mut alternatives: Vec<Loc> = var_stores
                .iter()
                .filter(|s| match s.value {
                    Some(v) => viable(*var, v),
                    None => false,
                })
                .map(|s| s.loc)
                .collect();
            if alternatives.is_empty() {
                if viable(*var, init) {
                    // Initial value works; constant stores exist but none are
                    // required.
                    continue;
                }
                // Weak fallback: one of the variable's definitions (constant
                // or not) must execute for the condition to change.
                alternatives = var_stores.iter().map(|s| s.loc).collect();
            }
            alternatives.sort();
            alternatives.dedup();
            if !alternatives.is_empty() {
                goals.push(IntermediateGoal { alternatives, variable: *var });
            }
        }
    }
    // Deduplicate goals tracking the same variable with the same set.
    goals.sort_by_key(|g| (g.variable, g.alternatives.len()));
    goals.dedup();
    goals
}

/// Computes the per-function block relevance map.
fn compute_relevance(
    program: &Program,
    cfgs: &[Cfg],
    callgraph: &CallGraph,
    goal: Loc,
    can_reach_goal: &[bool],
    goal_reaching_funcs: &HashSet<FuncId>,
) -> Vec<Vec<bool>> {
    let mut relevant: Vec<Vec<bool>> =
        program.functions.iter().map(|f| vec![true; f.blocks.len()]).collect();
    // Only the goal's own function gets precise pruning: a block is relevant
    // if it can reach the goal block, or if it can reach a call into a
    // function from which the goal's function is reachable (a re-entrant
    // path), otherwise a state sitting there can only reach the goal by
    // returning first — which the proximity walk accounts for, so the block
    // itself is marked irrelevant.
    let f = goal.func;
    let cfg = &cfgs[f.0 as usize];
    let mut call_blocks: HashSet<BlockId> = HashSet::new();
    for site in callgraph.sites_of(f) {
        if site.targets.iter().any(|t| goal_reaching_funcs.contains(t)) {
            call_blocks.insert(site.loc.block);
        }
    }
    let mut reach_call = vec![false; cfg.num_blocks()];
    for cb in &call_blocks {
        for (bi, ok) in cfg.can_reach(*cb).iter().enumerate() {
            if *ok {
                reach_call[bi] = true;
            }
        }
    }
    for b in 0..cfg.num_blocks() {
        relevant[f.0 as usize][b] = can_reach_goal[b] || reach_call[b];
    }
    relevant
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::{BinOp, CmpOp, ProgramBuilder};

    /// A program shaped like the paper's Listing 1 `main`/`CriticalSection`
    /// condition: the goal sits behind `mode == 1 && idx == 1`.
    fn listing1_like() -> esd_ir::Program {
        let mut pb = ProgramBuilder::new("p");
        let mode = pb.global("mode", 1);
        let idx = pb.global("idx", 1);
        pb.function("main", 0, |f| {
            let modep = f.addr_global(mode);
            let idxp = f.addr_global(idx);
            // if (getchar() == 'm') idx++
            let c = f.getchar();
            let is_m = f.cmp(CmpOp::Eq, c, 'm' as i64);
            let inc = f.new_block("inc");
            let after = f.new_block("after");
            f.cond_br(is_m, inc, after);
            f.switch_to(inc);
            let v = f.load(idxp);
            let v1 = f.add(v, 1);
            f.store(idxp, v1);
            f.br(after);
            f.switch_to(after);
            // if (getenv == 'Y') mode = 1 else mode = 2
            let e = f.getenv("mode");
            let is_y = f.cmp(CmpOp::Eq, e, 'Y' as i64);
            let yes = f.new_block("yes");
            let no = f.new_block("no");
            let check = f.new_block("check");
            f.cond_br(is_y, yes, no);
            f.switch_to(yes);
            f.store(modep, 1);
            f.br(check);
            f.switch_to(no);
            f.store(modep, 2);
            f.br(check);
            f.switch_to(check);
            // if (mode == 1 && idx == 1) goal else other
            let mv = f.load(modep);
            let iv = f.load(idxp);
            let c1 = f.cmp(CmpOp::Eq, mv, 1);
            let c2 = f.cmp(CmpOp::Eq, iv, 1);
            let both = f.bin(BinOp::And, c1, c2);
            let goal_bb = f.new_block("goal");
            let other = f.new_block("other");
            f.cond_br(both, goal_bb, other);
            f.switch_to(goal_bb);
            f.output(1);
            f.ret_void();
            f.switch_to(other);
            f.ret_void();
        });
        pb.finish("main")
    }

    fn compute(p: &esd_ir::Program, goal: Loc) -> StaticGoalInfo {
        let cfgs: Vec<Cfg> = p.func_ids().map(|f| Cfg::build(p.func(f), f)).collect();
        let cg = CallGraph::build(p);
        StaticGoalInfo::compute(p, &cfgs, &cg, goal)
    }

    #[test]
    fn critical_edge_found_for_goal_behind_condition() {
        let p = listing1_like();
        let main = p.entry;
        let goal_bb = BlockId(6); // "goal"
        let info = compute(&p, Loc::new(main, goal_bb, 0));
        assert_eq!(info.critical_edges.len(), 1);
        let e = &info.critical_edges[0];
        assert_eq!(e.branch_block, BlockId(5)); // "check"
        assert_eq!(e.required_succ, goal_bb);
        assert!(e.required_value);
        assert!(info.critical_edge_at(main, BlockId(5)).is_some());
        assert!(info.critical_edge_at(main, BlockId(0)).is_none());
    }

    #[test]
    fn intermediate_goals_cover_mode_and_idx_definitions() {
        let p = listing1_like();
        let main = p.entry;
        let info = compute(&p, Loc::new(main, BlockId(6), 0));
        let mode = p.global_by_name("mode").unwrap();
        let idx = p.global_by_name("idx").unwrap();
        let mode_goal = info.intermediate_goals.iter().find(|g| g.variable.0 == mode);
        let idx_goal = info.intermediate_goals.iter().find(|g| g.variable.0 == idx);
        let mode_goal = mode_goal.expect("mode must have an intermediate goal");
        let idx_goal = idx_goal.expect("idx must have an intermediate goal");
        // mode's satisfying definition is the constant store `mode = 1` in
        // block "yes" (block 3); the store of 2 must not be an alternative.
        assert_eq!(mode_goal.alternatives.len(), 1);
        assert_eq!(mode_goal.alternatives[0].block, BlockId(3));
        // idx has only the non-constant `idx++` definition in block "inc".
        assert!(idx_goal.alternatives.iter().any(|l| l.block == BlockId(1)));
    }

    #[test]
    fn relevance_prunes_blocks_past_the_goal() {
        let p = listing1_like();
        let main = p.entry;
        let info = compute(&p, Loc::new(main, BlockId(6), 0));
        // The "other" block (7) cannot reach the goal.
        assert!(info.is_irrelevant_block(Loc::new(main, BlockId(7), 0)));
        // The entry and the goal itself are relevant.
        assert!(!info.is_irrelevant_block(Loc::new(main, BlockId(0), 0)));
        assert!(!info.is_irrelevant_block(Loc::new(main, BlockId(6), 0)));
    }

    #[test]
    fn no_critical_edges_when_goal_reachable_from_both_sides() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let a = f.new_block("a");
            let b = f.new_block("b");
            let join = f.new_block("join");
            f.cond_br(x, a, b);
            f.switch_to(a);
            f.br(join);
            f.switch_to(b);
            f.br(join);
            f.switch_to(join);
            f.ret_void();
        });
        let p = pb.finish("main");
        let info = compute(&p, Loc::new(p.entry, BlockId(3), 0));
        // The join block has two predecessors, so the backward walk stops
        // immediately and no critical edges are reported.
        assert!(info.critical_edges.is_empty());
        assert!(info.intermediate_goals.is_empty());
    }

    #[test]
    fn goal_reaching_funcs_include_transitive_callers() {
        let mut pb = ProgramBuilder::new("p");
        let inner = pb.function("inner", 0, |f| {
            f.output(1);
            f.ret_void();
        });
        let outer = pb.function("outer", 0, |f| {
            f.call_void(inner, vec![]);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            f.call_void(outer, vec![]);
            f.ret_void();
        });
        let p = pb.finish("main");
        let inner_id = p.func_by_name("inner").unwrap();
        let info = compute(&p, Loc::new(inner_id, BlockId(0), 0));
        assert!(info.goal_reaching_funcs.contains(&p.func_by_name("main").unwrap()));
        assert!(info.goal_reaching_funcs.contains(&p.func_by_name("outer").unwrap()));
        assert_eq!(info.goal_reaching_funcs.len(), 3);
    }
}
