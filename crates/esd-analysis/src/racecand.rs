//! Static race-pair candidates: may-happen-in-parallel × lockset filtering
//! over the points-to classification.
//!
//! The paper's static phase promises the race-directed schedule search a set
//! of *candidate racing accesses* before any dynamic exploration (§4.2):
//! preemptions only matter around accesses that could actually race. This
//! module computes that set from three ingredients:
//!
//! 1. **Shared accesses** — [`crate::pointsto`] classifies each `Load`/`Store`
//!    as thread-local vs. may-shared; only may-shared accesses can race.
//! 2. **May-happen-in-parallel (MHP)** — an approximation from the
//!    spawn/join structure. Accesses in two *different* spawned thread roots
//!    always MHP; two accesses in the *same* root MHP only when that root
//!    may have multiple live instances (several static spawn/call sites, a
//!    site in a loop or recursion, or a spawner whose own body runs multiply
//!    — a fixpoint over call *and* spawn edges); a main-context access MHPs
//!    with a root only while some spawn of that root is still *outstanding*
//!    — a forward dataflow over spawn sites with joins killing the (unique,
//!    non-looped) site they synchronize with, and calls adding every spawn
//!    site in the callee's call closure (a helper that spawns leaves the
//!    thread outstanding in its caller after the call returns).
//! 3. **Locksets** — a pair is excluded only when both accesses *must* hold
//!    a common statically-identified mutex (intraprocedural, empty entry
//!    fact, intersection join, cleared across calls). Must-hold is the sound
//!    direction: if both sides provably hold the same global mutex, the
//!    dynamic lockset detector can never flag the pair, so skipping the
//!    preemption fork is behavior-preserving. The *may*-hold sets (seeded
//!    from [`crate::lockorder`]'s interprocedural entry locksets) are kept
//!    alongside for the aliasing-dependent lints, never for exclusion.
//!
//! Surviving pairs become ranked [`RacePairCandidate`]s — fewest
//! *distractor* accesses (other shared accesses touching the same abstract
//! locations) first, mirroring `lockorder`'s tightest-cycle-first ranking —
//! and the union of their locations gates the stepper's race-preemption
//! forks. A second, coarser gate covers `Yield`: a yield needs a fork only
//! if some candidate access (or a call that can reach one) can precede it on
//! the same thread *and* another can follow it ([`RaceCandidates::relevant_yields`]);
//! precedence propagates through calls but not through spawns, because a
//! parent's accesses before a spawn are ordered before everything the child
//! does regardless of how the child's yields are scheduled.

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::dataflow::{self, ForwardAnalysis, JoinSemiLattice};
use crate::lockorder::{self, LockOrderInfo, LockSet};
use crate::pointsto::{AbsLoc, PointsTo};
use esd_ir::{BlockId, Callee, FuncId, Function, GlobalId, Inst, Loc, Program, Reg};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// A pair of may-shared accesses that may race: they may touch the same
/// abstract location, at least one writes, they may happen in parallel, and
/// no common mutex is provably held on both sides. `access_a == access_b`
/// encodes a self-race — the same static instruction executed by two
/// instances of a multiply-spawned thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RacePairCandidate {
    /// The first access location (`access_a <= access_b`).
    pub access_a: Loc,
    /// The second access location.
    pub access_b: Loc,
    /// Mutexes provably held on both sides — empty by construction: pairs
    /// with a common must-held lock are excluded, so every *candidate*
    /// reaches the search with an empty common lockset.
    pub common_locks: BTreeSet<GlobalId>,
    /// The shared abstract locations both sides may touch.
    pub targets: BTreeSet<AbsLoc>,
    /// Number of *other* shared accesses that also touch [`targets`] — the
    /// ranking key: fewer distractors means a tighter, more actionable
    /// candidate.
    ///
    /// [`targets`]: RacePairCandidate::targets
    pub distractors: usize,
}

/// The static race-candidate analysis result for a whole program.
#[derive(Debug, Clone, Default)]
pub struct RaceCandidates {
    /// The candidate pairs, ranked tightest-first: ascending distractor
    /// count, then by location pair.
    pub candidates: Vec<RacePairCandidate>,
    /// Union of all candidate access locations — the stepper's per-access
    /// preemption gate.
    pub candidate_locs: BTreeSet<Loc>,
    /// `Yield` locations where a preemption fork can still matter (see the
    /// module docs for the betweenness rule). Yields *not* in this set skip
    /// the race-preemption fork.
    pub relevant_yields: BTreeSet<Loc>,
    /// All `Yield` locations in the program (so consumers can tell "pruned"
    /// from "never a yield").
    pub all_yields: BTreeSet<Loc>,
    /// May-hold locksets at each may-shared access, seeded from the
    /// interprocedural entry locksets. Lint fodder, never used for
    /// exclusion.
    pub may_locksets: BTreeMap<Loc, BTreeSet<GlobalId>>,
    /// Must-hold locksets at each may-shared access (intraprocedural,
    /// empty-entry, intersection join).
    pub must_locksets: BTreeMap<Loc, BTreeSet<GlobalId>>,
}

impl RaceCandidates {
    /// True when the access at `loc` participates in some candidate pair —
    /// i.e. a race-preemption fork at this access can matter.
    pub fn is_candidate_access(&self, loc: Loc) -> bool {
        self.candidate_locs.contains(&loc)
    }

    /// True when a preemption fork at the `Yield` at `loc` can matter.
    pub fn is_relevant_yield(&self, loc: Loc) -> bool {
        self.relevant_yields.contains(&loc)
    }
}

/// The must-hold lockset fact: mutexes held on *every* path. The lattice is
/// the dual powerset — join is intersection, and the empty set is bottom
/// ("nothing provably held"), which is also the sound fallback everywhere.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct MustLockSet(BTreeSet<GlobalId>);

impl JoinSemiLattice for MustLockSet {
    fn join(&mut self, other: &Self) -> bool {
        let inter: BTreeSet<GlobalId> = self.0.intersection(&other.0).copied().collect();
        if inter.len() != self.0.len() {
            self.0 = inter;
            true
        } else {
            false
        }
    }
}

struct MustLockAnalysis<'a> {
    function: &'a Function,
}

impl ForwardAnalysis for MustLockAnalysis<'_> {
    type Fact = MustLockSet;

    fn entry_fact(&self) -> MustLockSet {
        // Empty on purpose: callers' holds are invisible to the
        // intraprocedural pass, which only ever *weakens* exclusion.
        MustLockSet::default()
    }

    fn transfer_inst(&self, fact: &mut MustLockSet, inst: &Inst, _loc: Loc) {
        match inst {
            Inst::MutexLock { mutex } => {
                if let Some(g) = lockorder::mutex_identity(self.function, *mutex) {
                    fact.0.insert(g);
                }
            }
            Inst::MutexUnlock { mutex } => match lockorder::mutex_identity(self.function, *mutex) {
                Some(g) => {
                    fact.0.remove(&g);
                }
                // Unknown unlock target: anything might have been released.
                None => fact.0.clear(),
            },
            // A callee could release any of our locks through the global
            // mutex objects; must-hold cannot survive the call.
            Inst::Call { .. } => fact.0.clear(),
            _ => {}
        }
    }

    fn widen(&self, fact: &mut MustLockSet) {
        fact.0.clear();
    }
}

/// The outstanding-spawn-sites fact: spawn instructions whose thread may
/// still be running. Union join (may-analysis).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct SpawnSet(BTreeSet<Loc>);

impl JoinSemiLattice for SpawnSet {
    fn join(&mut self, other: &Self) -> bool {
        let before = self.0.len();
        self.0.extend(other.0.iter().copied());
        self.0.len() != before
    }
}

struct OutstandingAnalysis<'a> {
    entry: SpawnSet,
    /// `ThreadJoin` handles that synchronize with a unique, non-looped spawn
    /// site of this function — joining them retires that site.
    kills: &'a HashMap<Reg, Loc>,
    /// Call site → spawn sites anywhere in the callee's call closure. A call
    /// may leave any of those threads running, so the transfer adds them all
    /// — the return flow that caller→callee entry propagation cannot
    /// express.
    call_spawns: &'a HashMap<Loc, BTreeSet<Loc>>,
}

impl ForwardAnalysis for OutstandingAnalysis<'_> {
    type Fact = SpawnSet;

    fn entry_fact(&self) -> SpawnSet {
        self.entry.clone()
    }

    fn transfer_inst(&self, fact: &mut SpawnSet, inst: &Inst, loc: Loc) {
        match inst {
            Inst::ThreadSpawn { .. } => {
                fact.0.insert(loc);
            }
            Inst::ThreadJoin { thread: esd_ir::Operand::Reg(r) } => {
                if let Some(site) = self.kills.get(r) {
                    fact.0.remove(site);
                }
            }
            Inst::Call { .. } => {
                if let Some(sites) = self.call_spawns.get(&loc) {
                    fact.0.extend(sites.iter().copied());
                }
            }
            _ => {}
        }
    }

    fn widen(&self, _fact: &mut SpawnSet) {
        // Finite powerset of spawn sites: joins already terminate.
    }
}

/// True when block `b` lies on a CFG cycle (some successor can reach it
/// back).
fn block_in_cycle(cfg: &Cfg, b: BlockId) -> bool {
    let back = cfg.can_reach(b);
    cfg.succs(b).iter().any(|s| back[s.0 as usize])
}

/// The join-kill map of one function: handle register → the unique spawn
/// site it retires. Only valid in non-recursive functions (a recursive frame
/// would kill a site its *caller's* frame still has outstanding).
fn join_kills(
    program: &Program,
    cfgs: &[Cfg],
    callgraph: &CallGraph,
    fid: FuncId,
) -> HashMap<Reg, Loc> {
    let scc = &callgraph.sccs[callgraph.scc_index[fid.0 as usize]];
    let self_call = callgraph.sites_of(fid).iter().any(|s| !s.is_spawn && s.targets.contains(&fid));
    if scc.len() > 1 || self_call {
        return HashMap::new();
    }
    let function = program.func(fid);
    let cfg = &cfgs[fid.0 as usize];
    let mut defs: HashMap<Reg, Vec<Loc>> = HashMap::new();
    for (bi, block) in function.blocks.iter().enumerate() {
        for (ii, inst) in block.insts.iter().enumerate() {
            if let Inst::ThreadSpawn { dst, .. } = inst {
                defs.entry(*dst).or_default().push(Loc::new(fid, BlockId(bi as u32), ii as u32));
            }
        }
    }
    defs.into_iter()
        .filter_map(|(r, sites)| match sites.as_slice() {
            [site] if !block_in_cycle(cfg, site.block) => Some((r, *site)),
            _ => None,
        })
        .collect()
}

/// Functions reachable from `root` through *calls only* (spawned children
/// run on their own thread and are separate roots).
fn call_reachable(callgraph: &CallGraph, root: FuncId) -> HashSet<FuncId> {
    let mut seen = HashSet::new();
    let mut queue = VecDeque::new();
    seen.insert(root);
    queue.push_back(root);
    while let Some(f) = queue.pop_front() {
        for site in callgraph.sites_of(f) {
            if site.is_spawn {
                continue;
            }
            for t in &site.targets {
                if seen.insert(*t) {
                    queue.push_back(*t);
                }
            }
        }
    }
    seen
}

/// Runs the race-candidate analysis. `points_to` and `lock_order` are the
/// already-computed sibling analyses from [`crate::StaticAnalysis`].
pub fn compute(
    program: &Program,
    cfgs: &[Cfg],
    callgraph: &CallGraph,
    points_to: &PointsTo,
    lock_order: &LockOrderInfo,
) -> RaceCandidates {
    let n = program.functions.len();

    // ---- thread roots and contexts ----------------------------------------
    // spawn_sites[r] = static spawn sites that may start root r.
    let mut spawn_sites: HashMap<FuncId, Vec<Loc>> = HashMap::new();
    for fid in program.func_ids() {
        for site in callgraph.sites_of(fid) {
            if site.is_spawn {
                for t in &site.targets {
                    spawn_sites.entry(*t).or_default().push(site.loc);
                }
            }
        }
    }
    let mut roots: Vec<FuncId> = vec![program.entry];
    let mut spawned_roots: BTreeSet<FuncId> = BTreeSet::new();
    for r in spawn_sites.keys() {
        spawned_roots.insert(*r);
        if *r != program.entry {
            roots.push(*r);
        }
    }
    roots.sort();
    roots.dedup();

    let reach: HashMap<FuncId, HashSet<FuncId>> =
        roots.iter().map(|r| (*r, call_reachable(callgraph, *r))).collect();
    // ctx[f] = thread roots whose call closure contains f.
    let mut ctx: Vec<Vec<FuncId>> = vec![Vec::new(); n];
    for r in &roots {
        for f in &reach[r] {
            ctx[f.0 as usize].push(*r);
        }
    }

    // multi_exec[f] = f's body may execute more than once in a single run:
    // several static call/spawn sites target it, some site sits in a CFG
    // cycle, f is (mutually) recursive or self-spawning, or — the fixpoint
    // below — some site targeting it lives in a function that itself runs
    // multiply. Covers a worker whose only spawn site sits in a helper that
    // main invokes twice (or from a loop), not just properties of the
    // spawn site's own function.
    let mut multi_exec = vec![false; n];
    for fid in program.func_ids() {
        let f = fid.0 as usize;
        let scc = &callgraph.sccs[callgraph.scc_index[f]];
        let recursive =
            scc.len() > 1 || callgraph.sites_of(fid).iter().any(|s| s.targets.contains(&fid));
        let sites = callgraph.callers.get(&fid).map(|v| v.as_slice()).unwrap_or(&[]);
        if recursive
            || sites.len() >= 2
            || sites.iter().any(|(g, l)| block_in_cycle(&cfgs[g.0 as usize], l.block))
        {
            multi_exec[f] = true;
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for fid in program.func_ids() {
            if !multi_exec[fid.0 as usize] {
                continue;
            }
            for site in callgraph.sites_of(fid) {
                for t in &site.targets {
                    if !multi_exec[t.0 as usize] {
                        multi_exec[t.0 as usize] = true;
                        changed = true;
                    }
                }
            }
        }
    }

    // multi[r] = root r may have several live instances at once.
    let multi: HashMap<FuncId, bool> =
        spawned_roots.iter().map(|r| (*r, multi_exec[r.0 as usize])).collect();

    // ---- outstanding spawn sites (interprocedural, call edges only) -------
    let kills: Vec<HashMap<Reg, Loc>> =
        program.func_ids().map(|f| join_kills(program, cfgs, callgraph, f)).collect();
    // call_spawns[call site] = spawn sites transitively reachable through
    // the callee: after the call returns those threads may still be running.
    let closure_spawns: Vec<BTreeSet<Loc>> = program
        .func_ids()
        .map(|f| {
            call_reachable(callgraph, f)
                .into_iter()
                .flat_map(|g| callgraph.sites_of(g))
                .filter(|s| s.is_spawn)
                .map(|s| s.loc)
                .collect()
        })
        .collect();
    let mut call_spawns: HashMap<Loc, BTreeSet<Loc>> = HashMap::new();
    for fid in program.func_ids() {
        for site in callgraph.sites_of(fid) {
            if site.is_spawn {
                continue;
            }
            let sites: BTreeSet<Loc> = site
                .targets
                .iter()
                .flat_map(|t| closure_spawns[t.0 as usize].iter().copied())
                .collect();
            if !sites.is_empty() {
                call_spawns.insert(site.loc, sites);
            }
        }
    }
    let mut out_entry: Vec<SpawnSet> = vec![SpawnSet::default(); n];
    {
        let mut queued = vec![true; n];
        let mut worklist: VecDeque<FuncId> = program.func_ids().collect();
        while let Some(fid) = worklist.pop_front() {
            queued[fid.0 as usize] = false;
            let function = program.func(fid);
            let analysis = OutstandingAnalysis {
                entry: out_entry[fid.0 as usize].clone(),
                kills: &kills[fid.0 as usize],
                call_spawns: &call_spawns,
            };
            let facts = dataflow::solve_function(&analysis, function, &cfgs[fid.0 as usize], fid);
            for (bi, block) in function.blocks.iter().enumerate() {
                let Some(mut fact) = facts.at(BlockId(bi as u32)).cloned() else { continue };
                for (ii, inst) in block.insts.iter().enumerate() {
                    if let Inst::Call { callee: Callee::Direct(target), .. } = inst {
                        if out_entry[target.0 as usize].join(&fact) && !queued[target.0 as usize] {
                            queued[target.0 as usize] = true;
                            worklist.push_back(*target);
                        }
                    }
                    let loc = Loc::new(fid, BlockId(bi as u32), ii as u32);
                    analysis.transfer_inst(&mut fact, inst, loc);
                }
            }
        }
    }

    // ---- per-access facts: outstanding sites, may- and must-locksets ------
    let shared_locs: HashSet<Loc> =
        points_to.accesses.iter().filter(|a| a.may_shared).map(|a| a.loc).collect();
    let mut outstanding_at: HashMap<Loc, BTreeSet<Loc>> = HashMap::new();
    let mut may_locksets: BTreeMap<Loc, BTreeSet<GlobalId>> = BTreeMap::new();
    let mut must_locksets: BTreeMap<Loc, BTreeSet<GlobalId>> = BTreeMap::new();
    for fid in program.func_ids() {
        let function = program.func(fid);
        let cfg = &cfgs[fid.0 as usize];
        let out_an = OutstandingAnalysis {
            entry: out_entry[fid.0 as usize].clone(),
            kills: &kills[fid.0 as usize],
            call_spawns: &call_spawns,
        };
        let out_facts = dataflow::solve_function(&out_an, function, cfg, fid);
        let may_an = lockorder::LocksetAnalysis {
            function,
            entry: LockSet(
                lock_order.entry_locksets.get(fid.0 as usize).cloned().unwrap_or_default(),
            ),
        };
        let may_facts = dataflow::solve_function(&may_an, function, cfg, fid);
        let must_an = MustLockAnalysis { function };
        let must_facts = dataflow::solve_function(&must_an, function, cfg, fid);
        for (bi, block) in function.blocks.iter().enumerate() {
            let b = BlockId(bi as u32);
            let (Some(mut out_f), Some(mut may_f), Some(mut must_f)) =
                (out_facts.at(b).cloned(), may_facts.at(b).cloned(), must_facts.at(b).cloned())
            else {
                continue;
            };
            for (ii, inst) in block.insts.iter().enumerate() {
                let loc = Loc::new(fid, b, ii as u32);
                if shared_locs.contains(&loc) {
                    outstanding_at.insert(loc, out_f.0.clone());
                    may_locksets.insert(loc, may_f.0.clone());
                    must_locksets.insert(loc, must_f.0.clone());
                }
                out_an.transfer_inst(&mut out_f, inst, loc);
                may_an.transfer_inst(&mut may_f, inst, loc);
                must_an.transfer_inst(&mut must_f, inst, loc);
            }
        }
    }

    // ---- MHP and pair construction ----------------------------------------
    let empty = BTreeSet::new();
    let empty_locks: BTreeSet<GlobalId> = BTreeSet::new();
    let site_targets_root = |site: Loc, root: FuncId| -> bool {
        callgraph
            .sites_of(site.func)
            .iter()
            .any(|s| s.loc == site && s.is_spawn && s.targets.contains(&root))
    };
    let mhp = |a: Loc, b: Loc| -> bool {
        for ra in &ctx[a.func.0 as usize] {
            for rb in &ctx[b.func.0 as usize] {
                let mhp_pair = if ra != rb {
                    match (*ra == program.entry, *rb == program.entry) {
                        // Two distinct spawned roots always may overlap (we
                        // deliberately ignore join ordering between
                        // siblings: over-approximation is the safe side).
                        (false, false) => true,
                        // Main-context vs. spawned root: only while a spawn
                        // of that root is outstanding at the main-side
                        // access.
                        (true, false) => outstanding_at
                            .get(&a)
                            .unwrap_or(&empty)
                            .iter()
                            .any(|s| site_targets_root(*s, *rb)),
                        (false, true) => outstanding_at
                            .get(&b)
                            .unwrap_or(&empty)
                            .iter()
                            .any(|s| site_targets_root(*s, *ra)),
                        (true, true) => unreachable!("ra != rb but both are entry"),
                    }
                } else {
                    // Same root on both sides: parallel only when that root
                    // may have several live instances (`multi` only carries
                    // spawned roots, so the single main thread answers no).
                    *multi.get(ra).unwrap_or(&false)
                };
                if mhp_pair {
                    return true;
                }
            }
        }
        false
    };

    let shared: Vec<&crate::pointsto::MemAccess> =
        points_to.accesses.iter().filter(|a| a.may_shared).collect();
    // Which shared accesses may touch a given abstract location (for the
    // distractor count). Unresolved accesses (empty targets) may touch
    // anything and count everywhere.
    let unresolved = shared.iter().filter(|a| a.targets.is_empty()).count();
    let mut touching: BTreeMap<AbsLoc, usize> = BTreeMap::new();
    for a in &shared {
        for t in &a.targets {
            *touching.entry(*t).or_default() += 1;
        }
    }

    let overlap = |a: &crate::pointsto::MemAccess,
                   b: &crate::pointsto::MemAccess|
     -> Option<BTreeSet<AbsLoc>> {
        match (a.targets.is_empty(), b.targets.is_empty()) {
            // An unresolved side may alias anything the other side touches.
            (true, _) => Some(b.targets.clone()),
            (_, true) => Some(a.targets.clone()),
            _ => {
                let common: BTreeSet<AbsLoc> =
                    a.targets.intersection(&b.targets).copied().collect();
                if common.is_empty() {
                    None
                } else {
                    Some(common)
                }
            }
        }
    };

    let mut candidates: Vec<RacePairCandidate> = Vec::new();
    for (i, a) in shared.iter().enumerate() {
        for b in shared.iter().skip(i) {
            if !a.is_write && !b.is_write {
                continue;
            }
            let Some(targets) = overlap(a, b) else { continue };
            if !mhp(a.loc, b.loc) {
                continue;
            }
            let must_a = must_locksets.get(&a.loc).unwrap_or(&empty_locks);
            let must_b = must_locksets.get(&b.loc).unwrap_or(&empty_locks);
            if must_a.intersection(must_b).next().is_some() {
                continue;
            }
            let involved = if a.loc == b.loc { 1 } else { 2 };
            // Max over targets counts resolved traffic; the unresolved
            // accesses (which may touch anything) are added exactly once,
            // even when both sides are themselves unresolved.
            let distractors = targets
                .iter()
                .map(|t| touching.get(t).copied().unwrap_or(0))
                .max()
                .unwrap_or(0)
                .saturating_add(unresolved)
                .saturating_sub(involved);
            let (access_a, access_b) = if a.loc <= b.loc { (a.loc, b.loc) } else { (b.loc, a.loc) };
            candidates.push(RacePairCandidate {
                access_a,
                access_b,
                common_locks: BTreeSet::new(),
                targets,
                distractors,
            });
        }
    }
    candidates.sort_by(|x, y| {
        (x.distractors, x.access_a, x.access_b).cmp(&(y.distractors, y.access_a, y.access_b))
    });
    candidates.dedup_by(|x, y| (x.access_a, x.access_b) == (y.access_a, y.access_b));
    let candidate_locs: BTreeSet<Loc> =
        candidates.iter().flat_map(|c| [c.access_a, c.access_b]).collect();

    // ---- yield relevance ---------------------------------------------------
    let (relevant_yields, all_yields) = yield_relevance(program, cfgs, callgraph, &candidate_locs);

    RaceCandidates {
        candidates,
        candidate_locs,
        relevant_yields,
        all_yields,
        may_locksets,
        must_locksets,
    }
}

/// Computes which `Yield`s still need a preemption fork: those with
/// candidate-access material both before and after them in same-thread
/// program order (locally or through calls).
fn yield_relevance(
    program: &Program,
    cfgs: &[Cfg],
    callgraph: &CallGraph,
    candidate_locs: &BTreeSet<Loc>,
) -> (BTreeSet<Loc>, BTreeSet<Loc>) {
    let n = program.functions.len();
    // Functions whose call closure (calls *and* spawns — generous on
    // purpose) contains a candidate access.
    let mut closure_has_candidate = vec![false; n];
    {
        let mut worklist: VecDeque<FuncId> = VecDeque::new();
        for loc in candidate_locs {
            if !closure_has_candidate[loc.func.0 as usize] {
                closure_has_candidate[loc.func.0 as usize] = true;
                worklist.push_back(loc.func);
            }
        }
        while let Some(f) = worklist.pop_front() {
            if let Some(callers) = callgraph.callers.get(&f) {
                for (caller, _) in callers {
                    if !closure_has_candidate[caller.0 as usize] {
                        closure_has_candidate[caller.0 as usize] = true;
                        worklist.push_back(*caller);
                    }
                }
            }
        }
    }

    // positions[f] = locations in f that stand for candidate accesses: the
    // accesses themselves plus call/spawn sites whose target closure
    // contains one.
    let mut positions: Vec<Vec<Loc>> = vec![Vec::new(); n];
    for loc in candidate_locs {
        positions[loc.func.0 as usize].push(*loc);
    }
    for fid in program.func_ids() {
        for site in callgraph.sites_of(fid) {
            if site.targets.iter().any(|t| closure_has_candidate[t.0 as usize]) {
                positions[fid.0 as usize].push(site.loc);
            }
        }
    }

    // Interprocedural before/after bits, propagated through *call* edges
    // only: a callee inherits "candidate material precedes me" from a caller
    // position that reaches the call site (and symmetrically for after).
    let mut before = vec![false; n];
    let mut after = vec![false; n];
    let mut changed = true;
    while changed {
        changed = false;
        for fid in program.func_ids() {
            let f = fid.0 as usize;
            let cfg = &cfgs[f];
            for site in callgraph.sites_of(fid) {
                if site.is_spawn {
                    continue;
                }
                let b = before[f] || positions[f].iter().any(|p| reaches(cfg, *p, site.loc));
                let a = after[f] || positions[f].iter().any(|p| reaches(cfg, site.loc, *p));
                for t in &site.targets {
                    let ti = t.0 as usize;
                    if b && !before[ti] {
                        before[ti] = true;
                        changed = true;
                    }
                    if a && !after[ti] {
                        after[ti] = true;
                        changed = true;
                    }
                }
            }
        }
    }

    let mut relevant = BTreeSet::new();
    let mut all = BTreeSet::new();
    for fid in program.func_ids() {
        let f = fid.0 as usize;
        let function = program.func(fid);
        let cfg = &cfgs[f];
        for (bi, block) in function.blocks.iter().enumerate() {
            for (ii, inst) in block.insts.iter().enumerate() {
                if !matches!(inst, Inst::Yield) {
                    continue;
                }
                let y = Loc::new(fid, BlockId(bi as u32), ii as u32);
                all.insert(y);
                let has_before = before[f] || positions[f].iter().any(|p| reaches(cfg, *p, y));
                let has_after = after[f] || positions[f].iter().any(|p| reaches(cfg, y, *p));
                if has_before && has_after {
                    relevant.insert(y);
                }
            }
        }
    }
    (relevant, all)
}

/// May-reach in same-thread program order between two locations of one
/// function: strictly earlier in the same block, any block-level path, or
/// back around a loop.
fn reaches(cfg: &Cfg, from: Loc, to: Loc) -> bool {
    if from.block == to.block {
        from.idx < to.idx || block_in_cycle(cfg, from.block)
    } else {
        cfg.can_reach(to.block)[from.block.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::{CmpOp, ProgramBuilder};

    fn run(program: &Program) -> RaceCandidates {
        let cfgs: Vec<Cfg> = program.func_ids().map(|f| Cfg::build(program.func(f), f)).collect();
        let callgraph = CallGraph::build(program);
        let points_to = PointsTo::compute(program, &callgraph);
        let lock_order = lockorder::analyze(program, &cfgs, &callgraph);
        compute(program, &cfgs, &callgraph, &points_to, &lock_order)
    }

    /// The PR 1 `racy_counter` shape: two spawns of a worker that does an
    /// unguarded load/yield/store on a global counter.
    fn racy_counter() -> (Program, Loc, Loc, Loc) {
        let mut pb = ProgramBuilder::new("racy");
        let counter = pb.global("counter", 1);
        let mut load_loc = None;
        let mut store_loc = None;
        let mut yield_loc = None;
        let worker = pb.function("worker", 1, |f| {
            let cp = f.addr_global(counter);
            load_loc = Some(f.here());
            let v = f.load(cp);
            yield_loc = Some(f.here());
            f.yield_now();
            let v1 = f.add(v, 1);
            store_loc = Some(f.here());
            f.store(cp, v1);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            let t1 = f.spawn(worker, 1);
            let t2 = f.spawn(worker, 2);
            f.join(t1);
            f.join(t2);
            f.ret_void();
        });
        (pb.finish("main"), load_loc.unwrap(), store_loc.unwrap(), yield_loc.unwrap())
    }

    #[test]
    fn unguarded_counter_races_are_candidates() {
        let (p, load, store, y) = racy_counter();
        let rc = run(&p);
        assert!(rc.is_candidate_access(load));
        assert!(rc.is_candidate_access(store));
        // Both load/store and the store's self-race survive.
        assert!(rc.candidates.iter().any(|c| (c.access_a, c.access_b) == (load, store)));
        assert!(rc.candidates.iter().any(|c| (c.access_a, c.access_b) == (store, store)));
        assert!(rc.candidates.iter().all(|c| c.common_locks.is_empty()));
        // The yield sits between two candidate accesses: a fork there matters.
        assert!(rc.is_relevant_yield(y));
    }

    #[test]
    fn a_common_must_held_lock_excludes_the_pair() {
        let mut pb = ProgramBuilder::new("guarded");
        let counter = pb.global("counter", 1);
        let m = pb.global("m", 1);
        let mut store_loc = None;
        let worker = pb.function("worker", 1, |f| {
            let cp = f.addr_global(counter);
            let mp = f.addr_global(m);
            f.lock(mp);
            let v = f.load(cp);
            let v1 = f.add(v, 1);
            store_loc = Some(f.here());
            f.store(cp, v1);
            f.unlock(mp);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            let t1 = f.spawn(worker, 1);
            let t2 = f.spawn(worker, 2);
            f.join(t1);
            f.join(t2);
            f.ret_void();
        });
        let p = pb.finish("main");
        let rc = run(&p);
        assert!(
            !rc.is_candidate_access(store_loc.unwrap()),
            "a consistently lock-guarded access must not be a candidate"
        );
        assert!(rc.candidates.is_empty());
        assert_eq!(rc.must_locksets[&store_loc.unwrap()], BTreeSet::from([m]));
    }

    #[test]
    fn inconsistent_guarding_keeps_the_pair() {
        // One side locks, the other does not: the lock excludes nothing.
        let mut pb = ProgramBuilder::new("inconsistent");
        let counter = pb.global("counter", 1);
        let m = pb.global("m", 1);
        let mut guarded = None;
        let w1 = pb.function("w1", 1, |f| {
            let cp = f.addr_global(counter);
            let mp = f.addr_global(m);
            f.lock(mp);
            guarded = Some(f.here());
            f.store(cp, 1);
            f.unlock(mp);
            f.ret_void();
        });
        let mut unguarded = None;
        let w2 = pb.function("w2", 1, |f| {
            let cp = f.addr_global(counter);
            unguarded = Some(f.here());
            f.store(cp, 2);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            let t1 = f.spawn(w1, 1);
            let t2 = f.spawn(w2, 2);
            f.join(t1);
            f.join(t2);
            f.ret_void();
        });
        let _ = (w1, w2);
        let p = pb.finish("main");
        let rc = run(&p);
        assert!(rc
            .candidates
            .iter()
            .any(|c| (c.access_a, c.access_b) == (guarded.unwrap(), unguarded.unwrap())));
    }

    #[test]
    fn joined_threads_no_longer_happen_in_parallel_with_main() {
        let mut pb = ProgramBuilder::new("joined");
        let g = pb.global("g", 1);
        let worker = pb.function("worker", 1, |f| {
            let gp = f.addr_global(g);
            f.store(gp, 1);
            f.ret_void();
        });
        let mut during = None;
        let mut after = None;
        pb.function("main", 0, |f| {
            let gp = f.addr_global(g);
            let t = f.spawn(worker, 1);
            during = Some(f.here());
            f.store(gp, 2);
            f.join(t);
            after = Some(f.here());
            f.store(gp, 3);
            f.ret_void();
        });
        let p = pb.finish("main");
        let rc = run(&p);
        assert!(
            rc.is_candidate_access(during.unwrap()),
            "a main access while the spawn is outstanding may race"
        );
        assert!(
            !rc.is_candidate_access(after.unwrap()),
            "a main access after joining the only thread cannot race"
        );
    }

    #[test]
    fn single_instance_thread_does_not_self_race() {
        let mut pb = ProgramBuilder::new("single");
        let g = pb.global("g", 1);
        let mut store = None;
        let worker = pb.function("worker", 1, |f| {
            let gp = f.addr_global(g);
            store = Some(f.here());
            f.store(gp, 1);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            let t = f.spawn(worker, 1);
            f.join(t);
            f.ret_void();
        });
        let p = pb.finish("main");
        let rc = run(&p);
        assert!(
            !rc.is_candidate_access(store.unwrap()),
            "one spawn site, no loop: the worker's store cannot race with itself"
        );
    }

    #[test]
    fn spawns_in_a_loop_may_self_race() {
        let mut pb = ProgramBuilder::new("looped");
        let g = pb.global("g", 1);
        let mut store = None;
        let worker = pb.function("worker", 1, |f| {
            let gp = f.addr_global(g);
            store = Some(f.here());
            f.store(gp, 1);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            let header = f.new_block("header");
            let body = f.new_block("body");
            let exit = f.new_block("exit");
            f.br(header);
            f.switch_to(header);
            let x = f.getchar();
            let c = f.cmp(CmpOp::Eq, x, 1);
            f.cond_br(c, body, exit);
            f.switch_to(body);
            f.spawn(worker, 1);
            f.br(header);
            f.switch_to(exit);
            f.ret_void();
        });
        let p = pb.finish("main");
        let rc = run(&p);
        assert!(
            rc.is_candidate_access(store.unwrap()),
            "a loop may spawn several instances: the store may self-race"
        );
        assert!(rc
            .candidates
            .iter()
            .any(|c| (c.access_a, c.access_b) == (store.unwrap(), store.unwrap())));
    }

    /// Satellite: the ranking mirrors `lockorder`'s tightest-cycle-first
    /// rule — the pair whose location attracts fewest distractor accesses
    /// sorts before a pair on a heavily-trafficked location.
    #[test]
    fn tightest_candidates_rank_first() {
        let mut pb = ProgramBuilder::new("ranked");
        let noisy = pb.global("noisy", 1);
        let quiet = pb.global("quiet", 1);
        let mut quiet_store = None;
        let mut noisy_store = None;
        let worker = pb.function("worker", 1, |f| {
            let np = f.addr_global(noisy);
            let qp = f.addr_global(quiet);
            noisy_store = Some(f.here());
            f.store(np, 1);
            quiet_store = Some(f.here());
            f.store(qp, 1);
            // Extra traffic on `noisy` only.
            let v = f.load(np);
            f.store(np, v);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            let t1 = f.spawn(worker, 1);
            let t2 = f.spawn(worker, 2);
            f.join(t1);
            f.join(t2);
            f.ret_void();
        });
        let p = pb.finish("main");
        let rc = run(&p);
        let (quiet_store, noisy_store) = (quiet_store.unwrap(), noisy_store.unwrap());
        let pos = |l: Loc| {
            rc.candidates
                .iter()
                .position(|c| (c.access_a, c.access_b) == (l, l))
                .expect("self-pair present")
        };
        assert!(
            pos(quiet_store) < pos(noisy_store),
            "the quiet location's pair has fewer distractors and must rank first"
        );
        let q = &rc.candidates[pos(quiet_store)];
        let n = &rc.candidates[pos(noisy_store)];
        assert!(q.distractors < n.distractors, "{} < {}", q.distractors, n.distractors);
    }

    /// The genbug DataRace shape in miniature: a lock-guarded benign phase
    /// with a yield inside, then an unguarded racy phase with a yield
    /// between its load and store. Only the racy yield needs a fork.
    #[test]
    fn benign_phase_yields_are_pruned_racy_yields_kept() {
        let mut pb = ProgramBuilder::new("phases");
        let scratch = pb.global("scratch", 1);
        let counter = pb.global("counter", 1);
        let m = pb.global("m", 1);
        let mut benign_yield = None;
        let mut racy_yield = None;
        let worker = pb.function("worker", 1, |f| {
            let sp = f.addr_global(scratch);
            let cp = f.addr_global(counter);
            let mp = f.addr_global(m);
            // Benign phase: everything on `scratch` under the lock.
            f.lock(mp);
            let s = f.load(sp);
            let s1 = f.add(s, 1);
            benign_yield = Some(f.here());
            f.yield_now();
            f.store(sp, s1);
            f.unlock(mp);
            // Racy phase: unguarded counter increment.
            let v = f.load(cp);
            let v1 = f.add(v, 1);
            racy_yield = Some(f.here());
            f.yield_now();
            f.store(cp, v1);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            let t1 = f.spawn(worker, 1);
            let t2 = f.spawn(worker, 2);
            f.join(t1);
            f.join(t2);
            f.ret_void();
        });
        let p = pb.finish("main");
        let rc = run(&p);
        assert!(
            !rc.is_relevant_yield(benign_yield.unwrap()),
            "no candidate access precedes the benign yield: the fork is prunable"
        );
        assert!(
            rc.is_relevant_yield(racy_yield.unwrap()),
            "the racy yield sits between two candidate accesses"
        );
        assert_eq!(rc.all_yields.len(), 2);
    }

    /// Review regression: a spawn executed inside a *callee* must stay
    /// outstanding in the caller after the call returns — main's accesses
    /// after invoking a helper that spawns a worker may race with that
    /// worker, even though `main` itself contains no `ThreadSpawn`.
    #[test]
    fn spawns_inside_callees_stay_outstanding_in_the_caller() {
        let mut pb = ProgramBuilder::new("callee_spawn");
        let g = pb.global("g", 1);
        let mut w_store = None;
        let worker = pb.function("worker", 1, |f| {
            let gp = f.addr_global(g);
            w_store = Some(f.here());
            f.store(gp, 1);
            f.ret_void();
        });
        let helper = pb.function("helper", 0, |f| {
            f.spawn(worker, 1);
            f.ret_void();
        });
        let mut before = None;
        let mut after = None;
        pb.function("main", 0, |f| {
            let gp = f.addr_global(g);
            before = Some(f.here());
            f.store(gp, 41);
            f.call(helper, vec![]);
            after = Some(f.here());
            f.store(gp, 42);
            f.ret_void();
        });
        let p = pb.finish("main");
        let rc = run(&p);
        let (w_store, before, after) = (w_store.unwrap(), before.unwrap(), after.unwrap());
        assert!(
            rc.is_candidate_access(after),
            "the helper's spawn is still outstanding when the post-call store runs"
        );
        assert!(
            rc.candidates.iter().any(|c| (c.access_a, c.access_b) == (w_store, after)),
            "the worker store must pair with main's post-call store"
        );
        assert!(
            !rc.is_candidate_access(before),
            "a store before the spawning call still cannot race"
        );
        // One spawn site, once-invoked helper: the worker stays
        // single-instance and must not self-race.
        assert!(!rc.candidates.iter().any(|c| (c.access_a, c.access_b) == (w_store, w_store)));
    }

    /// Review regression: a worker whose single spawn site sits in a helper
    /// that is *invoked twice* has two live instances — its accesses
    /// self-race even though the spawn site's own block is loop-free and its
    /// function is neither recursive nor spawned code.
    #[test]
    fn twice_invoked_spawner_makes_the_worker_multi_instance() {
        let mut pb = ProgramBuilder::new("twice_spawner");
        let g = pb.global("g", 1);
        let mut store = None;
        let worker = pb.function("worker", 1, |f| {
            let gp = f.addr_global(g);
            store = Some(f.here());
            f.store(gp, 1);
            f.ret_void();
        });
        let helper = pb.function("helper", 0, |f| {
            f.spawn(worker, 1);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            f.call(helper, vec![]);
            f.call(helper, vec![]);
            f.ret_void();
        });
        let p = pb.finish("main");
        let rc = run(&p);
        let store = store.unwrap();
        assert!(rc.is_candidate_access(store));
        assert!(
            rc.candidates.iter().any(|c| (c.access_a, c.access_b) == (store, store)),
            "two helper invocations spawn two worker instances: the store may self-race"
        );
    }

    /// Same hole through a loop: the spawn site is straight-line code in the
    /// helper, but main calls the helper from a loop body.
    #[test]
    fn spawner_called_from_a_loop_makes_the_worker_multi_instance() {
        let mut pb = ProgramBuilder::new("looped_spawner");
        let g = pb.global("g", 1);
        let mut store = None;
        let worker = pb.function("worker", 1, |f| {
            let gp = f.addr_global(g);
            store = Some(f.here());
            f.store(gp, 1);
            f.ret_void();
        });
        let helper = pb.function("helper", 0, |f| {
            f.spawn(worker, 1);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            let header = f.new_block("header");
            let body = f.new_block("body");
            let exit = f.new_block("exit");
            f.br(header);
            f.switch_to(header);
            let x = f.getchar();
            let c = f.cmp(CmpOp::Eq, x, 1);
            f.cond_br(c, body, exit);
            f.switch_to(body);
            f.call(helper, vec![]);
            f.br(header);
            f.switch_to(exit);
            f.ret_void();
        });
        let p = pb.finish("main");
        let rc = run(&p);
        let store = store.unwrap();
        assert!(
            rc.candidates.iter().any(|c| (c.access_a, c.access_b) == (store, store)),
            "a loop-invoked spawner may spawn several instances: the store may self-race"
        );
    }

    #[test]
    fn pre_spawn_accesses_do_not_pair_with_workers() {
        let mut pb = ProgramBuilder::new("prespawn");
        let g = pb.global("g", 1);
        let worker = pb.function("worker", 1, |f| {
            let gp = f.addr_global(g);
            let v = f.load(gp);
            f.output(v);
            f.ret_void();
        });
        let mut init = None;
        pb.function("main", 0, |f| {
            let gp = f.addr_global(g);
            init = Some(f.here());
            f.store(gp, 42);
            let t = f.spawn(worker, 1);
            f.join(t);
            f.ret_void();
        });
        let p = pb.finish("main");
        let rc = run(&p);
        assert!(
            !rc.is_candidate_access(init.unwrap()),
            "an initialization store before any spawn cannot race"
        );
    }
}
