//! A generic forward worklist dataflow solver over per-function [`Cfg`]s.
//!
//! The paper's static phase (§3.2) prunes the dynamic search space before any
//! symbolic execution happens. The concrete analyses built on this solver —
//! interval propagation ([`crate::interval`]) and the static lockset walk
//! ([`crate::lockorder`]) — share the classic shape: a join-semilattice of
//! facts, a transfer function per instruction, and a worklist iteration to a
//! fixpoint with widening on high-join blocks so loops terminate quickly.
//!
//! The solver is intraprocedural; interprocedural analyses drive it once per
//! function and exchange summaries at call boundaries (see
//! [`crate::interval::BranchFeasibility`] for the two-phase summary scheme).

use crate::cfg::Cfg;
use esd_ir::{BlockId, Function, Inst, Loc, Terminator};
use std::collections::VecDeque;

/// Number of times a block's entry fact may change before the solver widens
/// it (ascending chains longer than this are cut to the lattice top by
/// [`ForwardAnalysis::widen`]). Small on purpose: precision inside loops is
/// not worth slow convergence — an undecided branch merely falls back to the
/// solver, exactly as before the static phase existed.
pub const WIDEN_AFTER_JOINS: u32 = 8;

/// A join-semilattice of dataflow facts.
pub trait JoinSemiLattice: Clone {
    /// Joins `other` into `self` (least upper bound). Returns `true` iff
    /// `self` changed — the solver's fixpoint detection.
    fn join(&mut self, other: &Self) -> bool;
}

/// A forward dataflow analysis: facts flow from a block's entry through its
/// instructions to its successors.
pub trait ForwardAnalysis {
    /// The fact attached to each block entry.
    type Fact: JoinSemiLattice;

    /// The fact holding at the function's entry block.
    fn entry_fact(&self) -> Self::Fact;

    /// Applies one instruction's effect to the fact.
    fn transfer_inst(&self, fact: &mut Self::Fact, inst: &Inst, loc: Loc);

    /// Applies the terminator's effect on the edge `from → to`. The default
    /// is the identity; branch-sensitive analyses can refine facts per edge.
    fn transfer_edge(
        &self,
        _fact: &mut Self::Fact,
        _term: &Terminator,
        _from: BlockId,
        _to: BlockId,
    ) {
    }

    /// Widens a fact whose block joined more than [`WIDEN_AFTER_JOINS`]
    /// times; must move the fact far enough up the lattice that the
    /// ascending chain terminates (typically: straight to top).
    fn widen(&self, fact: &mut Self::Fact);
}

/// The solver's result: one fact per block entry (`None` = the block is
/// unreachable from the function entry, so no fact ever flowed into it).
pub struct BlockFacts<F> {
    /// `entry[b]` is the fact at the entry of `BlockId(b)`.
    pub entry: Vec<Option<F>>,
}

impl<F: JoinSemiLattice> BlockFacts<F> {
    /// The fact at the entry of `block`, if the block is reachable.
    pub fn at(&self, block: BlockId) -> Option<&F> {
        self.entry.get(block.0 as usize).and_then(|f| f.as_ref())
    }
}

/// Runs `analysis` over one function to a fixpoint and returns the per-block
/// entry facts. `func` is the function's id (only used to build the [`Loc`]s
/// handed to the transfer function).
pub fn solve_function<A: ForwardAnalysis>(
    analysis: &A,
    function: &Function,
    cfg: &Cfg,
    func: esd_ir::FuncId,
) -> BlockFacts<A::Fact> {
    let n = function.blocks.len();
    let mut entry: Vec<Option<A::Fact>> = vec![None; n];
    let mut join_count = vec![0u32; n];
    let mut queued = vec![false; n];
    let mut worklist = VecDeque::new();

    entry[0] = Some(analysis.entry_fact());
    worklist.push_back(BlockId(0));
    queued[0] = true;

    while let Some(b) = worklist.pop_front() {
        queued[b.0 as usize] = false;
        // Flow the entry fact through the block body.
        let mut fact = entry[b.0 as usize].clone().expect("queued blocks have a fact");
        let block = function.block(b);
        for (i, inst) in block.insts.iter().enumerate() {
            analysis.transfer_inst(&mut fact, inst, Loc::new(func, b, i as u32));
        }
        // Propagate along each out-edge.
        for succ in cfg.succs(b) {
            let mut edge_fact = fact.clone();
            analysis.transfer_edge(&mut edge_fact, &block.term, b, *succ);
            let slot = &mut entry[succ.0 as usize];
            let changed = match slot {
                Some(existing) => existing.join(&edge_fact),
                None => {
                    *slot = Some(edge_fact);
                    true
                }
            };
            if changed {
                let count = &mut join_count[succ.0 as usize];
                *count += 1;
                if *count > WIDEN_AFTER_JOINS {
                    analysis.widen(slot.as_mut().expect("just set"));
                }
                if !queued[succ.0 as usize] {
                    queued[succ.0 as usize] = true;
                    worklist.push_back(*succ);
                }
            }
        }
    }
    BlockFacts { entry }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::{CmpOp, ProgramBuilder};

    /// A toy "reachable instruction count" analysis: the fact is the maximum
    /// number of instructions executed on any path to the block entry,
    /// saturating at a cap (the widening).
    struct MaxSteps;

    #[derive(Clone, PartialEq, Debug)]
    struct Steps(u64);

    impl JoinSemiLattice for Steps {
        fn join(&mut self, other: &Self) -> bool {
            if other.0 > self.0 {
                self.0 = other.0;
                true
            } else {
                false
            }
        }
    }

    impl ForwardAnalysis for MaxSteps {
        type Fact = Steps;
        fn entry_fact(&self) -> Steps {
            Steps(0)
        }
        fn transfer_inst(&self, fact: &mut Steps, _inst: &Inst, _loc: Loc) {
            fact.0 = fact.0.saturating_add(1);
        }
        fn widen(&self, fact: &mut Steps) {
            fact.0 = u64::MAX;
        }
    }

    #[test]
    fn straight_line_facts_accumulate_and_unreachable_blocks_get_none() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let c = f.cmp(CmpOp::Eq, x, 1);
            let t = f.new_block("t");
            let e = f.new_block("e");
            let dead = f.new_block("dead");
            f.cond_br(c, t, e);
            f.switch_to(t);
            f.ret_void();
            f.switch_to(e);
            f.ret_void();
            f.switch_to(dead);
            f.ret_void();
        });
        let p = pb.finish("main");
        let f = p.func(p.entry);
        let cfg = Cfg::build(f, p.entry);
        let facts = solve_function(&MaxSteps, f, &cfg, p.entry);
        assert_eq!(facts.at(BlockId(0)), Some(&Steps(0)));
        // Both arms see the two entry instructions.
        assert_eq!(facts.at(BlockId(1)), Some(&Steps(2)));
        assert_eq!(facts.at(BlockId(2)), Some(&Steps(2)));
        // The dead block never receives a fact.
        assert_eq!(facts.at(BlockId(3)), None);
    }

    #[test]
    fn loops_reach_a_fixpoint_via_widening() {
        // An unbounded counting loop would grow the max-steps fact forever;
        // widening must cut it to the top value instead of diverging.
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            let header = f.new_block("header");
            let body = f.new_block("body");
            let exit = f.new_block("exit");
            f.br(header);
            f.switch_to(header);
            let x = f.getchar();
            f.cond_br(x, body, exit);
            f.switch_to(body);
            f.nop();
            f.br(header);
            f.switch_to(exit);
            f.ret_void();
        });
        let p = pb.finish("main");
        let f = p.func(p.entry);
        let cfg = Cfg::build(f, p.entry);
        let facts = solve_function(&MaxSteps, f, &cfg, p.entry);
        assert_eq!(facts.at(BlockId(1)), Some(&Steps(u64::MAX)));
        assert_eq!(facts.at(BlockId(3)), Some(&Steps(u64::MAX)));
    }
}
