//! Instruction, block and function cost model, and distance-to-return.
//!
//! These costs implement the building blocks of Algorithm 1 in the paper:
//! the "cost of calling a procedure corresponds to the number of instructions
//! along the shortest path from the procedure's start instruction to the
//! nearest return point" (`func_cost` here), recursion and unresolved
//! indirect calls are charged a fixed penalty, and `dist2ret` gives the
//! distance from an arbitrary instruction to the nearest return of its
//! function.

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use esd_ir::{BlockId, Callee, FuncId, Inst, Loc, Program, Terminator};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// "Infinite" distance: the goal (or a return) cannot be reached.
pub const INF: u64 = u64::MAX / 4;

/// Cost charged for recursive calls and for calls whose target could not be
/// resolved (the paper uses a fixed weight of 1000 instructions).
pub const RECURSION_COST: u64 = 1000;

/// Cost model for a whole program.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// `func_cost[f]` = estimated number of instructions to execute function
    /// `f` from entry to its nearest return (INF if it cannot return).
    pub func_cost: Vec<u64>,
    /// `block_cost[f][b]` = cost of executing block `b` of `f` from its first
    /// instruction through its terminator, including the cost of calls made
    /// inside the block.
    pub block_cost: Vec<Vec<u64>>,
    /// `inst_cost[f][b][i]` = cost of the `i`-th instruction of that block
    /// (1 for ordinary instructions, 1 + callee cost for calls).
    pub inst_cost: Vec<Vec<Vec<u64>>>,
    /// `dist2ret_entry[f][b]` = cost from the start of block `b` to the
    /// nearest return of `f` (INF if no return is reachable).
    pub dist2ret_entry: Vec<Vec<u64>>,
}

fn saturate(a: u64, b: u64) -> u64 {
    let s = a.saturating_add(b);
    if s >= INF {
        INF
    } else {
        s
    }
}

impl CostModel {
    /// Computes the cost model for `program`.
    pub fn new(program: &Program, cfgs: &[Cfg], callgraph: &CallGraph) -> Self {
        let n = program.functions.len();
        let mut func_cost = vec![INF; n];
        let mut computed = vec![false; n];

        // Process call-graph SCCs in reverse topological order (callees
        // first). Calls into the same SCC (recursion) are charged
        // RECURSION_COST; calls to not-yet-computed functions (only possible
        // through imprecise indirect resolution) are charged RECURSION_COST
        // as well.
        for scc in &callgraph.sccs {
            for f in scc {
                func_cost[f.0 as usize] =
                    dist2ret_of_entry(program, cfgs, callgraph, *f, &func_cost, &computed);
            }
            for f in scc {
                computed[f.0 as usize] = true;
            }
        }

        // With all function costs known, compute the final per-instruction,
        // per-block costs and distance-to-return maps.
        let mut block_cost = Vec::with_capacity(n);
        let mut inst_cost = Vec::with_capacity(n);
        let mut dist2ret_entry = Vec::with_capacity(n);
        let all_computed = vec![true; n];
        for fid in program.func_ids() {
            let (bc, ic) = block_costs(program, callgraph, fid, &func_cost, &all_computed);
            let d2r = dist2ret_blocks(program, &cfgs[fid.0 as usize], fid, &bc);
            block_cost.push(bc);
            inst_cost.push(ic);
            dist2ret_entry.push(d2r);
        }

        CostModel { func_cost, block_cost, inst_cost, dist2ret_entry }
    }

    /// Cost of calling function `f` (entry to nearest return).
    pub fn func_cost(&self, f: FuncId) -> u64 {
        self.func_cost[f.0 as usize]
    }

    /// Cost of the instruction at `loc` (the terminator costs 1).
    pub fn inst_cost(&self, loc: Loc) -> u64 {
        let per_block = &self.inst_cost[loc.func.0 as usize][loc.block.0 as usize];
        if (loc.idx as usize) < per_block.len() {
            per_block[loc.idx as usize]
        } else {
            1
        }
    }

    /// Cost of executing block `b` of `f` from instruction `from_idx` through
    /// its terminator.
    pub fn block_suffix_cost(&self, f: FuncId, b: BlockId, from_idx: u32) -> u64 {
        let per_block = &self.inst_cost[f.0 as usize][b.0 as usize];
        let mut c = 1u64; // terminator
        for &cost in per_block.iter().skip(from_idx as usize) {
            c = saturate(c, cost);
        }
        c
    }

    /// Cost of executing block `b` of `f` from its start up to (but not
    /// including) instruction `upto_idx`.
    pub fn block_prefix_cost(&self, f: FuncId, b: BlockId, upto_idx: u32) -> u64 {
        let per_block = &self.inst_cost[f.0 as usize][b.0 as usize];
        let mut c = 0u64;
        for &cost in per_block.iter().take(upto_idx as usize) {
            c = saturate(c, cost);
        }
        c
    }

    /// Distance from the instruction at `loc` to the nearest return of its
    /// function (the paper's `dist2ret`).
    pub fn dist2ret(&self, program: &Program, loc: Loc) -> u64 {
        let f = program.func(loc.func);
        let block = f.block(loc.block);
        let suffix = self.block_suffix_cost(loc.func, loc.block, loc.idx);
        if matches!(block.term, Terminator::Ret { .. }) {
            return suffix;
        }
        let mut best = INF;
        for s in block.term.successors() {
            best = best.min(self.dist2ret_entry[loc.func.0 as usize][s.0 as usize]);
        }
        saturate(suffix, best)
    }
}

/// Per-instruction and per-block costs for one function, given (partially
/// computed) function costs.
fn block_costs(
    program: &Program,
    callgraph: &CallGraph,
    fid: FuncId,
    func_cost: &[u64],
    computed: &[bool],
) -> (Vec<u64>, Vec<Vec<u64>>) {
    let f = program.func(fid);
    let mut per_block = Vec::with_capacity(f.blocks.len());
    let mut per_inst = Vec::with_capacity(f.blocks.len());
    for block in &f.blocks {
        let mut insts = Vec::with_capacity(block.insts.len());
        let mut total = 1u64; // terminator
        for inst in &block.insts {
            let c = match inst {
                Inst::Call { callee, .. } => {
                    let call_cost = match callee {
                        Callee::Direct(t) => {
                            if callgraph.is_recursive_call(fid, *t) || !computed[t.0 as usize] {
                                RECURSION_COST
                            } else {
                                func_cost[t.0 as usize]
                            }
                        }
                        Callee::Indirect(_) => {
                            // Average over possible targets, as in the paper;
                            // fall back to the recursion penalty if none.
                            let targets: Vec<u64> = callgraph
                                .address_taken
                                .iter()
                                .filter(|t| {
                                    !callgraph.is_recursive_call(fid, **t) && computed[t.0 as usize]
                                })
                                .map(|t| func_cost[t.0 as usize].min(RECURSION_COST))
                                .collect();
                            if targets.is_empty() {
                                RECURSION_COST
                            } else {
                                targets.iter().sum::<u64>() / targets.len() as u64
                            }
                        }
                    };
                    saturate(1, call_cost.min(RECURSION_COST * 10))
                }
                // Spawning does not execute the child inline.
                _ => 1,
            };
            insts.push(c);
            total = saturate(total, c);
        }
        per_block.push(total);
        per_inst.push(insts);
    }
    (per_block, per_inst)
}

/// Shortest cost from the start of each block to a return terminator.
fn dist2ret_blocks(program: &Program, cfg: &Cfg, fid: FuncId, block_cost: &[u64]) -> Vec<u64> {
    let f = program.func(fid);
    let n = f.blocks.len();
    let mut dist = vec![INF; n];
    let mut heap = BinaryHeap::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        if matches!(block.term, Terminator::Ret { .. }) {
            dist[bi] = block_cost[bi];
            heap.push(Reverse((dist[bi], bi)));
        }
    }
    while let Some(Reverse((d, b))) = heap.pop() {
        if d > dist[b] {
            continue;
        }
        for p in cfg.preds(BlockId(b as u32)) {
            let pi = p.0 as usize;
            let nd = saturate(block_cost[pi], d);
            if nd < dist[pi] {
                dist[pi] = nd;
                heap.push(Reverse((nd, pi)));
            }
        }
    }
    dist
}

/// `dist2ret` of a function's entry block — i.e. the function's call cost.
fn dist2ret_of_entry(
    program: &Program,
    cfgs: &[Cfg],
    callgraph: &CallGraph,
    fid: FuncId,
    func_cost: &[u64],
    computed: &[bool],
) -> u64 {
    let (bc, _) = block_costs(program, callgraph, fid, func_cost, computed);
    let d2r = dist2ret_blocks(program, &cfgs[fid.0 as usize], fid, &bc);
    d2r[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::{CmpOp, Operand, ProgramBuilder};

    fn build_model(p: &Program) -> CostModel {
        let cfgs: Vec<Cfg> = p.func_ids().map(|f| Cfg::build(p.func(f), f)).collect();
        let cg = CallGraph::build(p);
        CostModel::new(p, &cfgs, &cg)
    }

    #[test]
    fn straight_line_function_cost_counts_instructions() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            f.konst(1);
            f.konst(2);
            f.nop();
            f.ret_void();
        });
        let p = pb.finish("main");
        let m = build_model(&p);
        // 3 instructions + terminator.
        assert_eq!(m.func_cost(p.entry), 4);
    }

    #[test]
    fn call_cost_includes_callee_cost() {
        let mut pb = ProgramBuilder::new("p");
        let leaf = pb.function("leaf", 0, |f| {
            f.nop();
            f.nop();
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            f.call_void(leaf, vec![]);
            f.ret_void();
        });
        let p = pb.finish("main");
        let m = build_model(&p);
        let leaf_id = p.func_by_name("leaf").unwrap();
        assert_eq!(m.func_cost(leaf_id), 3);
        // main: call (1 + 3) + ret (1) = 5.
        assert_eq!(m.func_cost(p.entry), 5);
    }

    #[test]
    fn recursive_calls_get_fixed_penalty() {
        let mut pb = ProgramBuilder::new("p");
        let rec = pb.declare("rec", 1);
        pb.define(rec, |f| {
            let n = f.param(0);
            let z = f.cmp(CmpOp::Le, n, 0);
            let base = f.new_block("base");
            let again = f.new_block("again");
            f.cond_br(z, base, again);
            f.switch_to(base);
            f.ret(0);
            f.switch_to(again);
            let n1 = f.sub(n, 1);
            let r = f.call(rec, vec![n1.into()]);
            f.ret(r);
        });
        pb.function("main", 0, |f| {
            let r = f.call(rec, vec![Operand::Const(3)]);
            f.output(r);
            f.ret_void();
        });
        let p = pb.finish("main");
        let m = build_model(&p);
        let rec_id = p.func_by_name("rec").unwrap();
        // The shortest path through `rec` takes the base case: cmp + condbr +
        // ret = 3 instructions; the recursive path is penalized but not taken
        // for the minimum.
        assert_eq!(m.func_cost(rec_id), 3);
        // main still pays the callee's shortest cost.
        assert!(m.func_cost(p.entry) >= 3);
    }

    #[test]
    fn function_that_never_returns_costs_inf() {
        let mut pb = ProgramBuilder::new("p");
        let spin = pb.function("spin", 0, |f| {
            let l = f.new_block("l");
            f.br(l);
            f.switch_to(l);
            f.nop();
            f.br(l);
        });
        pb.function("main", 0, |f| {
            f.call_void(spin, vec![]);
            f.ret_void();
        });
        let p = pb.finish("main");
        let m = build_model(&p);
        let spin_id = p.func_by_name("spin").unwrap();
        assert_eq!(m.func_cost(spin_id), INF);
    }

    #[test]
    fn dist2ret_from_mid_block_counts_remaining_instructions() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            f.nop();
            f.nop();
            f.nop();
            f.ret_void();
        });
        let p = pb.finish("main");
        let m = build_model(&p);
        let loc0 = Loc::new(p.entry, BlockId(0), 0);
        let loc2 = Loc::new(p.entry, BlockId(0), 2);
        assert_eq!(m.dist2ret(&p, loc0), 4);
        assert_eq!(m.dist2ret(&p, loc2), 2);
    }

    #[test]
    fn dist2ret_takes_shortest_branch() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let short = f.new_block("short");
            let long = f.new_block("long");
            f.cond_br(x, short, long);
            f.switch_to(short);
            f.ret_void();
            f.switch_to(long);
            for _ in 0..10 {
                f.nop();
            }
            f.ret_void();
        });
        let p = pb.finish("main");
        let m = build_model(&p);
        // From entry: input + condbr + (short: just ret) = 3.
        assert_eq!(m.func_cost(p.entry), 3);
    }

    #[test]
    fn prefix_and_suffix_costs_partition_block_cost() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            f.nop();
            f.nop();
            f.nop();
            f.nop();
            f.ret_void();
        });
        let p = pb.finish("main");
        let m = build_model(&p);
        let f = p.entry;
        let b = BlockId(0);
        for idx in 0..=4u32 {
            let prefix = m.block_prefix_cost(f, b, idx);
            let suffix = m.block_suffix_cost(f, b, idx);
            assert_eq!(prefix + suffix, 5, "idx {idx}");
        }
    }
}
