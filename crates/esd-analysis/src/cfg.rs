//! Per-function control-flow graphs.

use esd_ir::{BlockId, FuncId, Function};
use std::collections::VecDeque;

/// The control-flow graph of one function: predecessor and successor lists
/// indexed by block.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// The function this CFG describes.
    pub func: FuncId,
    /// Successor blocks of each block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessor blocks of each block.
    pub preds: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Builds the CFG of `function`.
    pub fn build(function: &Function, func: FuncId) -> Self {
        let n = function.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (bi, block) in function.blocks.iter().enumerate() {
            for s in block.term.successors() {
                succs[bi].push(s);
                preds[s.0 as usize].push(BlockId(bi as u32));
            }
        }
        Cfg { func, succs, preds }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.0 as usize]
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.0 as usize]
    }

    /// Blocks reachable from the entry block (block 0), including entry.
    pub fn reachable_from_entry(&self) -> Vec<bool> {
        self.forward_reachable(BlockId(0))
    }

    /// Blocks reachable from `start` by following successor edges
    /// (including `start` itself).
    pub fn forward_reachable(&self, start: BlockId) -> Vec<bool> {
        let mut seen = vec![false; self.num_blocks()];
        let mut queue = VecDeque::new();
        seen[start.0 as usize] = true;
        queue.push_back(start);
        while let Some(b) = queue.pop_front() {
            for s in self.succs(b) {
                if !seen[s.0 as usize] {
                    seen[s.0 as usize] = true;
                    queue.push_back(*s);
                }
            }
        }
        seen
    }

    /// Blocks from which `target` is reachable (including `target` itself) —
    /// the backward reachability set used both to prune blocks "from which
    /// there is no path to B" and to decide which outgoing edges of a branch
    /// can lead to the goal (critical edges).
    pub fn can_reach(&self, target: BlockId) -> Vec<bool> {
        let mut seen = vec![false; self.num_blocks()];
        let mut queue = VecDeque::new();
        seen[target.0 as usize] = true;
        queue.push_back(target);
        while let Some(b) = queue.pop_front() {
            for p in self.preds(b) {
                if !seen[p.0 as usize] {
                    seen[p.0 as usize] = true;
                    queue.push_back(*p);
                }
            }
        }
        seen
    }

    /// Shortest path length (in edges) between blocks, or `None` if
    /// unreachable. Used by tests and by simple heuristics; the real cost
    /// model lives in [`crate::costs`].
    pub fn edge_distance(&self, from: BlockId, to: BlockId) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.num_blocks()];
        let mut queue = VecDeque::new();
        dist[from.0 as usize] = 0;
        queue.push_back(from);
        while let Some(b) = queue.pop_front() {
            for s in self.succs(b) {
                if dist[s.0 as usize] == usize::MAX {
                    dist[s.0 as usize] = dist[b.0 as usize] + 1;
                    if *s == to {
                        return Some(dist[s.0 as usize]);
                    }
                    queue.push_back(*s);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::{CmpOp, ProgramBuilder};

    fn diamond() -> (esd_ir::Program, FuncId) {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let c = f.cmp(CmpOp::Eq, x, 1);
            let a = f.new_block("a");
            let b = f.new_block("b");
            let join = f.new_block("join");
            let dead = f.new_block("dead");
            f.cond_br(c, a, b);
            f.switch_to(a);
            f.br(join);
            f.switch_to(b);
            f.br(join);
            f.switch_to(join);
            f.ret_void();
            f.switch_to(dead);
            f.ret_void();
        });
        let p = pb.finish("main");
        let e = p.entry;
        (p, e)
    }

    #[test]
    fn diamond_edges_are_correct() {
        let (p, f) = diamond();
        let cfg = Cfg::build(p.func(f), f);
        assert_eq!(cfg.num_blocks(), 5);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert!(cfg.succs(BlockId(3)).is_empty());
    }

    #[test]
    fn reachability_excludes_dead_blocks() {
        let (p, f) = diamond();
        let cfg = Cfg::build(p.func(f), f);
        let reach = cfg.reachable_from_entry();
        assert!(reach[0] && reach[1] && reach[2] && reach[3]);
        assert!(!reach[4], "the dead block must be unreachable");
    }

    #[test]
    fn backward_reachability_finds_all_paths_to_target() {
        let (p, f) = diamond();
        let cfg = Cfg::build(p.func(f), f);
        let to_join = cfg.can_reach(BlockId(3));
        assert!(to_join[0] && to_join[1] && to_join[2] && to_join[3]);
        assert!(!to_join[4]);
        let to_a = cfg.can_reach(BlockId(1));
        assert!(to_a[0] && to_a[1]);
        assert!(!to_a[2] && !to_a[3]);
    }

    #[test]
    fn edge_distance_shortest_paths() {
        let (p, f) = diamond();
        let cfg = Cfg::build(p.func(f), f);
        assert_eq!(cfg.edge_distance(BlockId(0), BlockId(3)), Some(2));
        assert_eq!(cfg.edge_distance(BlockId(0), BlockId(0)), Some(0));
        assert_eq!(cfg.edge_distance(BlockId(3), BlockId(0)), None);
        assert_eq!(cfg.edge_distance(BlockId(0), BlockId(4)), None);
    }
}
