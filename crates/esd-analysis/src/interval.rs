//! Constant + interval (value-range) propagation and static branch
//! feasibility.
//!
//! This is the static phase's answer to the dynamic phase's hottest cost:
//! every conditional branch on a symbolic condition costs up to two solver
//! queries at fork time. Interval propagation proves many of those branches
//! one-sided *for all inputs* — defensive `x & MASK <= MASK` checks, constant
//! comparisons, range-limited flags — so the stepper can take the only
//! feasible side without consulting the solver at all
//! (`SearchStats::branches_pruned_static` / `solver_queries_saved`).
//!
//! **Soundness contract**: a verdict other than [`Feasibility::Unknown`] must
//! hold on *every* concrete execution reaching the branch. The analysis
//! therefore tracks registers only (memory and inputs are [`Interval::TOP`]),
//! mirrors the engine's wrapping arithmetic (overflow widens to top rather
//! than wrapping the bounds), and joins parameter intervals over *all* call
//! and spawn sites, widening to top at recursion and address-taken
//! boundaries. The genbug differential harness doubles as the oracle: a
//! property test asserts no injected bug's path is ever pruned.

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::dataflow::{self, ForwardAnalysis, JoinSemiLattice};
use esd_ir::{
    BinOp, BlockId, Callee, CmpOp, FuncId, Function, Inst, Loc, Operand, Program, Terminator,
};
use std::collections::HashMap;

/// The static verdict for a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Feasibility {
    /// The condition is non-zero on every execution: only the then-edge is
    /// feasible.
    AlwaysTrue,
    /// The condition is zero on every execution: only the else-edge is
    /// feasible.
    AlwaysFalse,
    /// Statically undecided — the dynamic phase must ask the solver.
    #[default]
    Unknown,
}

/// A signed value range `[lo, hi]` (inclusive). The full range is
/// [`Interval::TOP`]; there is no bottom — unreachable code simply has no
/// fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: i64,
    /// Largest possible value.
    pub hi: i64,
}

impl Interval {
    /// The unconstrained interval (every i64).
    pub const TOP: Interval = Interval { lo: i64::MIN, hi: i64::MAX };

    /// The singleton interval `[c, c]`.
    pub fn exact(c: i64) -> Interval {
        Interval { lo: c, hi: c }
    }

    /// An interval from explicit bounds (callers must keep `lo <= hi`).
    pub fn new(lo: i64, hi: i64) -> Interval {
        debug_assert!(lo <= hi);
        Interval { lo, hi }
    }

    /// True if the interval is a single value.
    pub fn as_const(&self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// True if zero is a possible value.
    pub fn contains_zero(&self) -> bool {
        self.lo <= 0 && 0 <= self.hi
    }

    /// Least upper bound (interval hull).
    pub fn join(&self, other: &Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// The branch verdict for a condition with this range: any interval
    /// excluding zero is truthy (the engine treats every non-zero value —
    /// including negatives — as true), and exactly `[0, 0]` is falsy.
    pub fn feasibility(&self) -> Feasibility {
        if !self.contains_zero() {
            Feasibility::AlwaysTrue
        } else if self.as_const() == Some(0) {
            Feasibility::AlwaysFalse
        } else {
            Feasibility::Unknown
        }
    }
}

/// Abstract evaluation of one binary operation, mirroring the engine's
/// wrapping concrete semantics (`esd_symex::expr::eval_bin`): any endpoint
/// computation that could wrap returns [`Interval::TOP`].
fn bin_interval(op: BinOp, a: Interval, b: Interval) -> Interval {
    match op {
        BinOp::Add => match (a.lo.checked_add(b.lo), a.hi.checked_add(b.hi)) {
            (Some(lo), Some(hi)) => Interval::new(lo, hi),
            _ => Interval::TOP,
        },
        BinOp::Sub => match (a.lo.checked_sub(b.hi), a.hi.checked_sub(b.lo)) {
            (Some(lo), Some(hi)) => Interval::new(lo, hi),
            _ => Interval::TOP,
        },
        BinOp::Mul => {
            let products = [
                a.lo.checked_mul(b.lo),
                a.lo.checked_mul(b.hi),
                a.hi.checked_mul(b.lo),
                a.hi.checked_mul(b.hi),
            ];
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            for p in products {
                match p {
                    Some(v) => {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    None => return Interval::TOP,
                }
            }
            Interval::new(lo, hi)
        }
        BinOp::And => {
            if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
                return Interval::exact(x & y);
            }
            // A non-negative constant mask bounds the result to `[0, mask]`
            // regardless of the other operand (the mask's sign bit is clear,
            // so the result's is too, and no bit outside the mask survives).
            match (a.as_const(), b.as_const()) {
                (Some(mask), _) | (_, Some(mask)) if mask >= 0 => Interval::new(0, mask),
                _ => {
                    if a.lo >= 0 && b.lo >= 0 {
                        // Both non-negative: `x & y <= min(x, y)`.
                        Interval::new(0, a.hi.min(b.hi))
                    } else {
                        Interval::TOP
                    }
                }
            }
        }
        BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr | BinOp::Div | BinOp::Rem => {
            match (a.as_const(), b.as_const()) {
                (Some(x), Some(y)) => match esd_ir_eval_bin(op, x, y) {
                    Some(v) => Interval::exact(v),
                    None => Interval::TOP, // division by zero faults: no value flows on
                },
                _ => Interval::TOP,
            }
        }
    }
}

/// Concrete evaluation matching the interpreter and the symbolic engine
/// (wrapping arithmetic, shift counts masked to 6 bits, `None` on division by
/// zero). Duplicated from `esd_symex::expr::eval_bin` because this crate sits
/// below `esd-symex` in the dependency order.
fn esd_ir_eval_bin(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::Shr => a.wrapping_shr(b as u32 & 63),
    })
}

/// Abstract evaluation of a comparison: `[1, 1]` / `[0, 0]` when the operand
/// ranges decide it, `[0, 1]` otherwise.
fn cmp_interval(op: CmpOp, a: Interval, b: Interval) -> Interval {
    let decided: Option<bool> = match op {
        CmpOp::Eq => {
            if a.hi < b.lo || b.hi < a.lo {
                Some(false)
            } else if a.as_const().is_some() && a.as_const() == b.as_const() {
                Some(true)
            } else {
                None
            }
        }
        CmpOp::Ne => {
            if a.hi < b.lo || b.hi < a.lo {
                Some(true)
            } else if a.as_const().is_some() && a.as_const() == b.as_const() {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Lt => {
            if a.hi < b.lo {
                Some(true)
            } else if a.lo >= b.hi {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Le => {
            if a.hi <= b.lo {
                Some(true)
            } else if a.lo > b.hi {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Gt => {
            if a.lo > b.hi {
                Some(true)
            } else if a.hi <= b.lo {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Ge => {
            if a.lo >= b.hi {
                Some(true)
            } else if a.hi < b.lo {
                Some(false)
            } else {
                None
            }
        }
    };
    match decided {
        Some(v) => Interval::exact(v as i64),
        None => Interval::new(0, 1),
    }
}

/// The per-block fact: one interval per virtual register.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RegIntervals {
    regs: Vec<Interval>,
}

impl RegIntervals {
    fn top(num_regs: u32) -> Self {
        RegIntervals { regs: vec![Interval::TOP; num_regs as usize] }
    }

    fn operand(&self, op: Operand) -> Interval {
        match op {
            Operand::Const(c) => Interval::exact(c),
            Operand::Reg(r) => self.regs.get(r.0 as usize).copied().unwrap_or(Interval::TOP),
        }
    }
}

impl JoinSemiLattice for RegIntervals {
    fn join(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (mine, theirs) in self.regs.iter_mut().zip(&other.regs) {
            let joined = mine.join(theirs);
            if joined != *mine {
                *mine = joined;
                changed = true;
            }
        }
        changed
    }
}

/// The intraprocedural interval analysis for one function, parameterized by
/// the interprocedural context (parameter intervals, callee return
/// summaries).
struct IntervalAnalysis<'a> {
    function: &'a Function,
    /// Interval of each parameter register (joined over all call sites).
    params: Vec<Interval>,
    /// Return-value summary per function (`None` = not yet known → top).
    returns: &'a [Option<Interval>],
}

impl IntervalAnalysis<'_> {
    fn call_result(&self, callee: &Callee) -> Interval {
        match callee {
            Callee::Direct(f) => {
                self.returns.get(f.0 as usize).copied().flatten().unwrap_or(Interval::TOP)
            }
            Callee::Indirect(_) => Interval::TOP,
        }
    }
}

impl ForwardAnalysis for IntervalAnalysis<'_> {
    type Fact = RegIntervals;

    fn entry_fact(&self) -> RegIntervals {
        let mut fact = RegIntervals::top(self.function.num_regs);
        for (i, p) in self.params.iter().enumerate() {
            if i < fact.regs.len() {
                fact.regs[i] = *p;
            }
        }
        fact
    }

    fn transfer_inst(&self, fact: &mut RegIntervals, inst: &Inst, _loc: Loc) {
        let Some(dst) = inst.def() else { return };
        let value = match inst {
            Inst::Const { value, .. } => Interval::exact(*value),
            Inst::Bin { op, a, b, .. } => bin_interval(*op, fact.operand(*a), fact.operand(*b)),
            Inst::Cmp { op, a, b, .. } => cmp_interval(*op, fact.operand(*a), fact.operand(*b)),
            Inst::Call { callee, .. } => self.call_result(callee),
            // Loads, inputs, addresses, allocations, thread handles: anything
            // reaching registers from outside the register file is top.
            _ => Interval::TOP,
        };
        fact.regs[dst.0 as usize] = value;
    }

    fn widen(&self, fact: &mut RegIntervals) {
        for r in &mut fact.regs {
            *r = Interval::TOP;
        }
    }
}

/// How the parameters of one function are known so far during the
/// interprocedural phase.
#[derive(Clone, PartialEq, Eq, Debug)]
enum ParamSummary {
    /// No call site has been seen: the function is (so far) unreached.
    Unreached,
    /// Joined argument intervals over all seen call/spawn sites.
    Known(Vec<Interval>),
    /// The conservative widening at a call boundary: the function is
    /// address-taken, recursive, or called with statically opaque arguments.
    Top,
}

impl ParamSummary {
    fn join_args(&mut self, args: &[Interval]) -> bool {
        match self {
            ParamSummary::Top => false,
            ParamSummary::Unreached => {
                *self = ParamSummary::Known(args.to_vec());
                true
            }
            ParamSummary::Known(current) => {
                if current.len() != args.len() {
                    // Arity mismatch (invalid call): widen rather than guess.
                    *self = ParamSummary::Top;
                    return true;
                }
                let mut changed = false;
                for (c, a) in current.iter_mut().zip(args) {
                    let joined = c.join(a);
                    if joined != *c {
                        *c = joined;
                        changed = true;
                    }
                }
                changed
            }
        }
    }

    fn intervals(&self, num_params: u32) -> Option<Vec<Interval>> {
        match self {
            ParamSummary::Unreached => None,
            ParamSummary::Top => Some(vec![Interval::TOP; num_params as usize]),
            ParamSummary::Known(v) => Some(v.clone()),
        }
    }
}

/// Per-branch feasibility verdicts for a whole program, computed once by the
/// static phase and consulted by the stepper at every fork point.
#[derive(Debug, Clone, Default)]
pub struct BranchFeasibility {
    verdicts: HashMap<(FuncId, BlockId), Feasibility>,
}

impl BranchFeasibility {
    /// Runs the two-phase interprocedural interval analysis.
    ///
    /// * **Phase 1 (bottom-up)**: with all parameters at top, compute each
    ///   function's return-value summary in reverse topological (callee
    ///   first) order; members of call cycles stay at top.
    /// * **Phase 2 (top-down)**: in caller-first order, analyze each function
    ///   with its parameter intervals joined over every call and spawn site;
    ///   address-taken and recursive functions are widened to top. The final
    ///   run of each function also records the verdict of every conditional
    ///   branch whose condition interval excludes one side.
    pub fn compute(program: &Program, cfgs: &[Cfg], callgraph: &CallGraph) -> Self {
        let n = program.functions.len();
        let mut returns: Vec<Option<Interval>> = vec![None; n];

        // Phase 1: return summaries, callees first (callgraph.sccs is in
        // reverse topological order). Recursive SCCs keep `None` (= top).
        for scc in &callgraph.sccs {
            if scc.len() != 1 || self_recursive(callgraph, scc[0]) {
                continue;
            }
            let fid = scc[0];
            let function = program.func(fid);
            let analysis = IntervalAnalysis {
                function,
                params: vec![Interval::TOP; function.num_params as usize],
                returns: &returns,
            };
            let facts = dataflow::solve_function(&analysis, function, &cfgs[fid.0 as usize], fid);
            returns[fid.0 as usize] = Some(return_summary(&analysis, function, &facts, fid));
        }

        // Phase 2: parameter summaries, callers first.
        let mut params: Vec<ParamSummary> = vec![ParamSummary::Unreached; n];
        params[program.entry.0 as usize] = ParamSummary::Known(Vec::new());
        for fid in program.func_ids() {
            if callgraph.address_taken.contains(&fid) {
                params[fid.0 as usize] = ParamSummary::Top;
            }
        }
        // Recursion: every member of a call cycle is widened *before* any
        // argument propagation — in-cycle call sites are processed after the
        // member they target, so their contributions would otherwise be
        // missed.
        for scc in &callgraph.sccs {
            if scc.len() > 1 || self_recursive(callgraph, scc[0]) {
                for fid in scc {
                    params[fid.0 as usize] = ParamSummary::Top;
                }
            }
        }
        let topo: Vec<FuncId> = callgraph.sccs.iter().rev().flatten().copied().collect();

        let mut verdicts = HashMap::new();
        for fid in topo {
            let function = program.func(fid);
            let Some(param_intervals) = params[fid.0 as usize].intervals(function.num_params)
            else {
                continue; // statically unreachable: its branches never run
            };
            let analysis =
                IntervalAnalysis { function, params: param_intervals, returns: &returns };
            let facts = dataflow::solve_function(&analysis, function, &cfgs[fid.0 as usize], fid);

            // Record branch verdicts from this (final) pass.
            record_verdicts(&analysis, function, &facts, fid, &mut verdicts);

            // Propagate argument intervals into direct callees and spawn
            // targets. Caller-first SCC order guarantees every caller of a
            // function is processed before the function itself (recursive
            // cycles were widened above).
            for (bi, block) in function.blocks.iter().enumerate() {
                let Some(mut fact) = facts.at(BlockId(bi as u32)).cloned() else { continue };
                for inst in &block.insts {
                    match inst {
                        Inst::Call { callee: Callee::Direct(target), args, .. } => {
                            let arg_iv: Vec<Interval> =
                                args.iter().map(|a| fact.operand(*a)).collect();
                            params[target.0 as usize].join_args(&arg_iv);
                        }
                        Inst::ThreadSpawn { func: Callee::Direct(target), arg, .. } => {
                            params[target.0 as usize].join_args(&[fact.operand(*arg)]);
                        }
                        _ => {}
                    }
                    analysis.transfer_inst(&mut fact, inst, Loc::new(fid, BlockId(bi as u32), 0));
                }
            }
        }
        BranchFeasibility { verdicts }
    }

    /// The static verdict for the conditional branch terminating `block` of
    /// `func` ([`Feasibility::Unknown`] when nothing was proven — including
    /// for blocks that do not end in a conditional branch).
    pub fn verdict(&self, func: FuncId, block: BlockId) -> Feasibility {
        self.verdicts.get(&(func, block)).copied().unwrap_or(Feasibility::Unknown)
    }

    /// Number of branches with a decided (non-`Unknown`) verdict.
    pub fn decided(&self) -> usize {
        self.verdicts.len()
    }

    /// Iterates over all decided branches in an unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = ((FuncId, BlockId), Feasibility)> + '_ {
        self.verdicts.iter().map(|(k, v)| (*k, *v))
    }
}

/// True if `f` contains a call or spawn site that may target `f` itself.
fn self_recursive(callgraph: &CallGraph, f: FuncId) -> bool {
    callgraph.sites_of(f).iter().any(|s| s.targets.contains(&f))
}

/// Joins the intervals of every reachable `Ret` in `function`. Void returns
/// contribute `[0, 0]` (a call destination register reading a void return
/// sees the engine's default zero); a function with no reachable `Ret`
/// summarizes to top.
fn return_summary(
    analysis: &IntervalAnalysis<'_>,
    function: &Function,
    facts: &dataflow::BlockFacts<RegIntervals>,
    fid: FuncId,
) -> Interval {
    let mut summary: Option<Interval> = None;
    for (bi, block) in function.blocks.iter().enumerate() {
        if let Terminator::Ret { value } = &block.term {
            let Some(mut fact) = facts.at(BlockId(bi as u32)).cloned() else { continue };
            for (i, inst) in block.insts.iter().enumerate() {
                analysis.transfer_inst(
                    &mut fact,
                    inst,
                    Loc::new(fid, BlockId(bi as u32), i as u32),
                );
            }
            let iv = match value {
                Some(op) => fact.operand(*op),
                // A void return read through a call destination yields the
                // engine's default zero.
                None => Interval::exact(0),
            };
            summary = Some(match summary {
                Some(s) => s.join(&iv),
                None => iv,
            });
        }
    }
    summary.unwrap_or(Interval::TOP)
}

/// Evaluates every reachable block's terminator condition and records decided
/// verdicts.
fn record_verdicts(
    analysis: &IntervalAnalysis<'_>,
    function: &Function,
    facts: &dataflow::BlockFacts<RegIntervals>,
    fid: FuncId,
    out: &mut HashMap<(FuncId, BlockId), Feasibility>,
) {
    for (bi, block) in function.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        let Terminator::CondBr { cond, .. } = &block.term else { continue };
        let Some(mut fact) = facts.at(bid).cloned() else { continue };
        for (i, inst) in block.insts.iter().enumerate() {
            analysis.transfer_inst(&mut fact, inst, Loc::new(fid, bid, i as u32));
        }
        let verdict = fact.operand(*cond).feasibility();
        if verdict != Feasibility::Unknown {
            out.insert((fid, bid), verdict);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::ProgramBuilder;

    fn feasibility_of(program: &Program) -> BranchFeasibility {
        let cfgs: Vec<Cfg> = program.func_ids().map(|f| Cfg::build(program.func(f), f)).collect();
        let callgraph = CallGraph::build(program);
        BranchFeasibility::compute(program, &cfgs, &callgraph)
    }

    #[test]
    fn masked_defensive_check_is_always_true() {
        // The canonical prunable shape: `if ((x & 63) <= 63)` on a symbolic
        // input. The mask bounds the value to [0, 63], deciding the branch
        // without any solver query.
        let mut pb = ProgramBuilder::new("p");
        let mut branch_block = None;
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let masked = f.bin(BinOp::And, x, 63);
            let ok = f.cmp(CmpOp::Le, masked, 63);
            let t = f.new_block("t");
            let e = f.new_block("e");
            branch_block = Some(f.current_block());
            f.cond_br(ok, t, e);
            f.switch_to(t);
            f.ret_void();
            f.switch_to(e);
            f.ret_void();
        });
        let p = pb.finish("main");
        let bf = feasibility_of(&p);
        assert_eq!(bf.verdict(p.entry, branch_block.unwrap()), Feasibility::AlwaysTrue);
        assert_eq!(bf.decided(), 1);
    }

    #[test]
    fn constant_false_condition_is_always_false() {
        let mut pb = ProgramBuilder::new("p");
        let mut branch_block = None;
        pb.function("main", 0, |f| {
            let zero = f.konst(0);
            let t = f.new_block("t");
            let e = f.new_block("e");
            branch_block = Some(f.current_block());
            f.cond_br(zero, t, e);
            f.switch_to(t);
            f.ret_void();
            f.switch_to(e);
            f.ret_void();
        });
        let p = pb.finish("main");
        let bf = feasibility_of(&p);
        assert_eq!(bf.verdict(p.entry, branch_block.unwrap()), Feasibility::AlwaysFalse);
    }

    #[test]
    fn negative_constants_are_truthy() {
        let mut pb = ProgramBuilder::new("p");
        let mut branch_block = None;
        pb.function("main", 0, |f| {
            let neg = f.konst(-3);
            let t = f.new_block("t");
            let e = f.new_block("e");
            branch_block = Some(f.current_block());
            f.cond_br(neg, t, e);
            f.switch_to(t);
            f.ret_void();
            f.switch_to(e);
            f.ret_void();
        });
        let p = pb.finish("main");
        let bf = feasibility_of(&p);
        assert_eq!(bf.verdict(p.entry, branch_block.unwrap()), Feasibility::AlwaysTrue);
    }

    #[test]
    fn input_dependent_branches_stay_unknown() {
        let mut pb = ProgramBuilder::new("p");
        let mut branch_block = None;
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let c = f.cmp(CmpOp::Eq, x, 42);
            let t = f.new_block("t");
            let e = f.new_block("e");
            branch_block = Some(f.current_block());
            f.cond_br(c, t, e);
            f.switch_to(t);
            f.ret_void();
            f.switch_to(e);
            f.ret_void();
        });
        let p = pb.finish("main");
        let bf = feasibility_of(&p);
        assert_eq!(bf.verdict(p.entry, branch_block.unwrap()), Feasibility::Unknown);
        assert_eq!(bf.decided(), 0);
    }

    #[test]
    fn parameter_intervals_join_over_spawn_sites() {
        // worker(id) is spawned with ids 1 and 2, so `id >= 1` always holds
        // in the worker — but `id == 2` stays unknown.
        let mut pb = ProgramBuilder::new("p");
        let mut ge_block = None;
        let mut eq_block = None;
        let worker = pb.declare("worker", 1);
        pb.define(worker, |f| {
            let id = f.param(0);
            let ge = f.cmp(CmpOp::Ge, id, 1);
            let t = f.new_block("t");
            let e = f.new_block("e");
            ge_block = Some(f.current_block());
            f.cond_br(ge, t, e);
            f.switch_to(t);
            let eq = f.cmp(CmpOp::Eq, id, 2);
            let t2 = f.new_block("t2");
            let e2 = f.new_block("e2");
            eq_block = Some(f.current_block());
            f.cond_br(eq, t2, e2);
            f.switch_to(t2);
            f.ret_void();
            f.switch_to(e2);
            f.ret_void();
            f.switch_to(e);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            let t1 = f.spawn(worker, 1);
            let t2 = f.spawn(worker, 2);
            f.join(t1);
            f.join(t2);
            f.ret_void();
        });
        let p = pb.finish("main");
        let bf = feasibility_of(&p);
        assert_eq!(bf.verdict(worker, ge_block.unwrap()), Feasibility::AlwaysTrue);
        assert_eq!(bf.verdict(worker, eq_block.unwrap()), Feasibility::Unknown);
    }

    #[test]
    fn constant_return_values_propagate_to_callers() {
        let mut pb = ProgramBuilder::new("p");
        let mut branch_block = None;
        let seven = pb.function("seven", 0, |f| {
            let c = f.konst(7);
            f.ret(c);
        });
        pb.function("main", 0, |f| {
            let v = f.call(seven, vec![]);
            let c = f.cmp(CmpOp::Eq, v, 7);
            let t = f.new_block("t");
            let e = f.new_block("e");
            branch_block = Some(f.current_block());
            f.cond_br(c, t, e);
            f.switch_to(t);
            f.ret_void();
            f.switch_to(e);
            f.ret_void();
        });
        let p = pb.finish("main");
        let bf = feasibility_of(&p);
        assert_eq!(bf.verdict(p.entry, branch_block.unwrap()), Feasibility::AlwaysTrue);
    }

    #[test]
    fn address_taken_functions_widen_to_top() {
        // A function called only with constant 5 would normally get an exact
        // parameter — unless its address escapes, making other call sites
        // possible.
        let mut pb = ProgramBuilder::new("p");
        let mut branch_block = None;
        let callee = pb.declare("callee", 1);
        pb.define(callee, |f| {
            let c = f.cmp(CmpOp::Eq, f.param(0), 5);
            let t = f.new_block("t");
            let e = f.new_block("e");
            branch_block = Some(f.current_block());
            f.cond_br(c, t, e);
            f.switch_to(t);
            f.ret_void();
            f.switch_to(e);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            let fp = f.func_addr(callee);
            f.output(fp);
            f.call_void(callee, vec![esd_ir::Operand::Const(5)]);
            f.ret_void();
        });
        let p = pb.finish("main");
        let bf = feasibility_of(&p);
        assert_eq!(bf.verdict(callee, branch_block.unwrap()), Feasibility::Unknown);
    }

    #[test]
    fn loops_converge_with_widening_and_stay_unknown() {
        // A bounded counting loop through memory: the analysis must
        // terminate and (memory being top) decide nothing.
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            let ctr = f.local(1);
            let ctrp = f.addr_local(ctr);
            let zero = f.konst(0);
            f.store(ctrp, zero);
            let header = f.new_block("header");
            let body = f.new_block("body");
            let exit = f.new_block("exit");
            f.br(header);
            f.switch_to(header);
            let i = f.load(ctrp);
            let more = f.cmp(CmpOp::Lt, i, 4);
            f.cond_br(more, body, exit);
            f.switch_to(body);
            let i1 = f.add(i, 1);
            f.store(ctrp, i1);
            f.br(header);
            f.switch_to(exit);
            f.ret_void();
        });
        let p = pb.finish("main");
        let bf = feasibility_of(&p);
        assert_eq!(bf.decided(), 0);
    }

    #[test]
    fn overflow_widens_instead_of_wrapping() {
        // i64::MAX + 1 wraps at runtime; the abstract add must go to top, not
        // produce an empty/wrapped interval that would misjudge the sign
        // check.
        let a = Interval::exact(i64::MAX);
        let b = Interval::exact(1);
        assert_eq!(bin_interval(BinOp::Add, a, b), Interval::TOP);
        assert_eq!(bin_interval(BinOp::Mul, a, Interval::exact(2)), Interval::TOP);
    }
}
