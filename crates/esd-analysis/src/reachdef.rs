//! Register use-def tracing and reaching definitions of global variables.
//!
//! The static phase needs to understand *which program variables a branch
//! condition depends on* and *which instructions define those variables*
//! ("reaching definitions" in the paper, §3.2). In our IR the interesting
//! variables are memory words — globals loaded by the condition — because
//! registers are function-local temporaries. This module provides:
//!
//! * [`trace_operand`]: rebuild the (partial) expression tree of an operand
//!   by walking register use-def chains, resolving loads of statically-known
//!   global addresses into symbolic variables;
//! * [`global_stores`]: all stores to statically-known global addresses in
//!   the program, with their stored value when it is a compile-time constant;
//! * [`eval_cond`]: evaluate a traced condition under a candidate assignment
//!   of values to global variables.

use esd_ir::{BinOp, CmpOp, Function, GlobalId, Inst, Loc, Operand, Program, Reg};
use std::collections::HashMap;

/// A (partially) recovered expression for a condition operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CondExpr {
    /// A compile-time constant.
    Const(i64),
    /// The value of a global word: `(global, word offset)`.
    GlobalVar(GlobalId, i64),
    /// The address of a global word (a pointer constant).
    GlobalAddr(GlobalId, i64),
    /// Something the static analysis cannot see through (inputs, parameters,
    /// values flowing through the heap, values with several definitions).
    Opaque,
    /// A comparison.
    Cmp(CmpOp, Box<CondExpr>, Box<CondExpr>),
    /// A binary arithmetic/bitwise operation.
    Bin(BinOp, Box<CondExpr>, Box<CondExpr>),
}

impl CondExpr {
    /// Collects every global variable referenced by the expression.
    pub fn globals(&self) -> Vec<(GlobalId, i64)> {
        let mut out = Vec::new();
        self.collect_globals(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_globals(&self, out: &mut Vec<(GlobalId, i64)>) {
        match self {
            CondExpr::GlobalVar(g, off) => out.push((*g, *off)),
            CondExpr::Cmp(_, a, b) | CondExpr::Bin(_, a, b) => {
                a.collect_globals(out);
                b.collect_globals(out);
            }
            _ => {}
        }
    }

    /// True if the expression contains an [`CondExpr::Opaque`] leaf.
    pub fn has_opaque(&self) -> bool {
        match self {
            CondExpr::Opaque => true,
            CondExpr::Cmp(_, a, b) | CondExpr::Bin(_, a, b) => a.has_opaque() || b.has_opaque(),
            _ => false,
        }
    }
}

/// All instructions in `function` that define register `reg`.
pub fn defs_of_reg(function: &Function, reg: Reg) -> Vec<(Loc, Inst)> {
    let mut out = Vec::new();
    for (bi, block) in function.blocks.iter().enumerate() {
        for (ii, inst) in block.insts.iter().enumerate() {
            if inst.def() == Some(reg) {
                out.push((
                    Loc {
                        func: esd_ir::FuncId(u32::MAX), // filled by callers that know the id
                        block: esd_ir::BlockId(bi as u32),
                        idx: ii as u32,
                    },
                    inst.clone(),
                ));
            }
        }
    }
    out
}

const MAX_TRACE_DEPTH: u32 = 16;

/// Rebuilds the expression computed into `op` inside `function`, following
/// register use-def chains. Registers with more than one definition and
/// values the analysis cannot see through become [`CondExpr::Opaque`].
pub fn trace_operand(function: &Function, op: Operand) -> CondExpr {
    trace_rec(function, op, MAX_TRACE_DEPTH)
}

fn trace_rec(function: &Function, op: Operand, depth: u32) -> CondExpr {
    if depth == 0 {
        return CondExpr::Opaque;
    }
    let reg = match op {
        Operand::Const(c) => return CondExpr::Const(c),
        Operand::Reg(r) => r,
    };
    // Parameters are runtime values.
    if reg.0 < function.num_params {
        return CondExpr::Opaque;
    }
    let defs = defs_of_reg(function, reg);
    if defs.len() != 1 {
        return CondExpr::Opaque;
    }
    match &defs[0].1 {
        Inst::Const { value, .. } => CondExpr::Const(*value),
        Inst::Cmp { op, a, b, .. } => CondExpr::Cmp(
            *op,
            Box::new(trace_rec(function, *a, depth - 1)),
            Box::new(trace_rec(function, *b, depth - 1)),
        ),
        Inst::Bin { op, a, b, .. } => CondExpr::Bin(
            *op,
            Box::new(trace_rec(function, *a, depth - 1)),
            Box::new(trace_rec(function, *b, depth - 1)),
        ),
        Inst::AddrGlobal { global, .. } => CondExpr::GlobalAddr(*global, 0),
        Inst::Gep { base, offset, .. } => {
            let base = trace_rec(function, *base, depth - 1);
            let off = trace_rec(function, *offset, depth - 1);
            match (base, off) {
                (CondExpr::GlobalAddr(g, o), CondExpr::Const(c)) => CondExpr::GlobalAddr(g, o + c),
                _ => CondExpr::Opaque,
            }
        }
        Inst::Load { addr, .. } => {
            let addr = trace_rec(function, *addr, depth - 1);
            match addr {
                CondExpr::GlobalAddr(g, o) => CondExpr::GlobalVar(g, o),
                _ => CondExpr::Opaque,
            }
        }
        _ => CondExpr::Opaque,
    }
}

/// A store to a statically-known global address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalStore {
    /// Where the store happens.
    pub loc: Loc,
    /// Which global word it writes: `(global, offset)`.
    pub target: (GlobalId, i64),
    /// The stored value, when it is a compile-time constant.
    pub value: Option<i64>,
}

/// Finds every store in `program` whose address statically resolves to a
/// global word, recording the stored constant when determinable.
pub fn global_stores(program: &Program) -> Vec<GlobalStore> {
    let mut out = Vec::new();
    for fid in program.func_ids() {
        let function = program.func(fid);
        for (bi, block) in function.blocks.iter().enumerate() {
            for (ii, inst) in block.insts.iter().enumerate() {
                if let Inst::Store { addr, value } = inst {
                    let addr_expr = trace_operand(function, *addr);
                    if let CondExpr::GlobalAddr(g, off) = addr_expr {
                        let value_expr = trace_operand(function, *value);
                        let value = match value_expr {
                            CondExpr::Const(c) => Some(c),
                            _ => None,
                        };
                        out.push(GlobalStore {
                            loc: Loc {
                                func: fid,
                                block: esd_ir::BlockId(bi as u32),
                                idx: ii as u32,
                            },
                            target: (g, off),
                            value,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Three-valued result of evaluating a condition whose inputs may be only
/// partially known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// The value is known exactly.
    Known(i64),
    /// The value depends on unknown inputs.
    Unknown,
}

impl Tri {
    /// True if the value is known to be zero (false).
    pub fn is_false(self) -> bool {
        self == Tri::Known(0)
    }

    /// True if the value is known to be non-zero (true).
    pub fn is_true(self) -> bool {
        matches!(self, Tri::Known(v) if v != 0)
    }
}

/// Evaluates a traced condition under a *partial* assignment of
/// global-variable values: variables missing from the assignment (and opaque
/// leaves) evaluate to [`Tri::Unknown`], and known-zero short circuits
/// propagate through `and`/`mul`.
pub fn eval_tri(expr: &CondExpr, assignment: &HashMap<(GlobalId, i64), i64>) -> Tri {
    match expr {
        CondExpr::Const(c) => Tri::Known(*c),
        CondExpr::GlobalVar(g, off) => {
            assignment.get(&(*g, *off)).copied().map(Tri::Known).unwrap_or(Tri::Unknown)
        }
        CondExpr::GlobalAddr(..) => Tri::Known(1),
        CondExpr::Opaque => Tri::Unknown,
        CondExpr::Cmp(op, a, b) => match (eval_tri(a, assignment), eval_tri(b, assignment)) {
            (Tri::Known(a), Tri::Known(b)) => Tri::Known(op.eval(a, b) as i64),
            _ => Tri::Unknown,
        },
        CondExpr::Bin(op, a, b) => {
            let a = eval_tri(a, assignment);
            let b = eval_tri(b, assignment);
            // Zero dominates bitwise-and and multiplication even when the
            // other side is unknown.
            if matches!(op, BinOp::And | BinOp::Mul) && (a.is_false() || b.is_false()) {
                return Tri::Known(0);
            }
            match (a, b) {
                (Tri::Known(a), Tri::Known(b)) => {
                    let v = match op {
                        BinOp::Add => a.wrapping_add(b),
                        BinOp::Sub => a.wrapping_sub(b),
                        BinOp::Mul => a.wrapping_mul(b),
                        BinOp::Div => {
                            if b == 0 {
                                return Tri::Unknown;
                            }
                            a.wrapping_div(b)
                        }
                        BinOp::Rem => {
                            if b == 0 {
                                return Tri::Unknown;
                            }
                            a.wrapping_rem(b)
                        }
                        BinOp::And => a & b,
                        BinOp::Or => a | b,
                        BinOp::Xor => a ^ b,
                        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                        BinOp::Shr => a.wrapping_shr(b as u32 & 63),
                    };
                    Tri::Known(v)
                }
                _ => Tri::Unknown,
            }
        }
    }
}

/// Evaluates a traced condition under an assignment of global-variable
/// values. Returns `None` if the expression depends on an opaque value.
pub fn eval_cond(expr: &CondExpr, assignment: &HashMap<(GlobalId, i64), i64>) -> Option<i64> {
    match expr {
        CondExpr::Const(c) => Some(*c),
        CondExpr::GlobalVar(g, off) => assignment.get(&(*g, *off)).copied(),
        CondExpr::GlobalAddr(..) => Some(1), // a non-null pointer constant
        CondExpr::Opaque => None,
        CondExpr::Cmp(op, a, b) => {
            let a = eval_cond(a, assignment)?;
            let b = eval_cond(b, assignment)?;
            Some(op.eval(a, b) as i64)
        }
        CondExpr::Bin(op, a, b) => {
            let a = eval_cond(a, assignment)?;
            let b = eval_cond(b, assignment)?;
            Some(match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_div(b)
                }
                BinOp::Rem => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_rem(b)
                }
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                BinOp::Shr => a.wrapping_shr(b as u32 & 63),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::{ProgramBuilder, Terminator};

    fn condition_program() -> esd_ir::Program {
        let mut pb = ProgramBuilder::new("p");
        let mode = pb.global("mode", 1);
        let idx = pb.global("idx", 2);
        pb.function("setter", 0, |f| {
            let mp = f.addr_global(mode);
            f.store(mp, 1);
            let ip = f.addr_global(idx);
            let ip1 = f.gep(ip, 1);
            let v = f.load(ip1);
            let v1 = f.add(v, 1);
            f.store(ip1, v1);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            let mp = f.addr_global(mode);
            let mv = f.load(mp);
            let is_one = f.cmp(CmpOp::Eq, mv, 1);
            let x = f.getchar();
            let opaque_cmp = f.cmp(CmpOp::Eq, x, 2);
            let both = f.bin(BinOp::And, is_one, opaque_cmp);
            let t = f.new_block("t");
            let e = f.new_block("e");
            f.cond_br(both, t, e);
            f.switch_to(t);
            f.ret_void();
            f.switch_to(e);
            f.ret_void();
        });
        pb.finish("main")
    }

    #[test]
    fn trace_resolves_global_loads_and_constants() {
        let p = condition_program();
        let main = p.func(p.entry);
        let cond = match &main.blocks[0].term {
            Terminator::CondBr { cond, .. } => *cond,
            _ => panic!("expected condbr"),
        };
        let expr = trace_operand(main, cond);
        // (mode == 1) & (opaque == 2)
        match &expr {
            CondExpr::Bin(BinOp::And, lhs, rhs) => {
                match lhs.as_ref() {
                    CondExpr::Cmp(CmpOp::Eq, a, b) => {
                        assert!(matches!(a.as_ref(), CondExpr::GlobalVar(_, 0)));
                        assert_eq!(b.as_ref(), &CondExpr::Const(1));
                    }
                    other => panic!("unexpected lhs {other:?}"),
                }
                assert!(rhs.has_opaque());
            }
            other => panic!("unexpected expr {other:?}"),
        }
        assert_eq!(expr.globals().len(), 1);
        assert!(expr.has_opaque());
    }

    #[test]
    fn global_stores_report_constants_and_offsets() {
        let p = condition_program();
        let stores = global_stores(&p);
        assert_eq!(stores.len(), 2);
        let mode = p.global_by_name("mode").unwrap();
        let idx = p.global_by_name("idx").unwrap();
        let const_store = stores.iter().find(|s| s.target.0 == mode).unwrap();
        assert_eq!(const_store.target, (mode, 0));
        assert_eq!(const_store.value, Some(1));
        let inc_store = stores.iter().find(|s| s.target.0 == idx).unwrap();
        assert_eq!(inc_store.target, (idx, 1));
        assert_eq!(inc_store.value, None, "idx+1 is not a constant store");
    }

    #[test]
    fn eval_cond_with_assignments() {
        let p = condition_program();
        let mode = p.global_by_name("mode").unwrap();
        let main = p.func(p.entry);
        let cond = match &main.blocks[0].term {
            Terminator::CondBr { cond, .. } => *cond,
            _ => unreachable!(),
        };
        let expr = trace_operand(main, cond);
        // The whole condition is opaque (depends on getchar) …
        let mut asg = HashMap::new();
        asg.insert((mode, 0i64), 1i64);
        assert_eq!(eval_cond(&expr, &asg), None);
        // … but its non-opaque sub-expression evaluates.
        if let CondExpr::Bin(_, lhs, _) = &expr {
            assert_eq!(eval_cond(lhs, &asg), Some(1));
            asg.insert((mode, 0), 2);
            assert_eq!(eval_cond(lhs, &asg), Some(0));
        }
    }

    #[test]
    fn multiple_definitions_become_opaque() {
        // A register written in two places cannot be traced.
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            let r = f.konst(1);
            f.output(r);
            f.ret_void();
        });
        let mut p = pb.finish("main");
        // Duplicate the defining instruction to create a second definition.
        let inst = p.functions[0].blocks[0].insts[0].clone();
        p.functions[0].blocks[0].insts.insert(0, inst);
        let main = p.func(p.entry);
        let expr = trace_operand(main, Operand::Reg(Reg(0)));
        assert_eq!(expr, CondExpr::Opaque);
    }
}
