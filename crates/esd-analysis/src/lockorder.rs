//! Static lockset and lock-order-graph analysis.
//!
//! The paper's static phase promises deadlock search a list of *candidate
//! deadlock sites* before any dynamic exploration (§3.2, §4.1). This module
//! delivers it: a may-hold lockset dataflow over each function (locks
//! identified by tracing their address operands to globals), lock-order
//! edges `A → B` recorded wherever `B` is acquired while `A` may be held,
//! and ABBA cycle detection over the resulting graph. Entry locksets
//! propagate through direct calls (a callee inherits what its callers may
//! hold) *and* through thread spawns: a lock held across `ThreadSpawn` is
//! visible to the child's analysis, because the child may run its entire
//! body while the parent still holds it — exactly the window in which a
//! parent-held/child-acquired ordering can participate in a deadlock.
//!
//! The output is *guidance only*: [`crate::StaticAnalysis::compute_multi`]
//! turns cycle sites into extra intermediate goals for deadlock searches,
//! which bias the frontier but can never make the search unsound — a wrong
//! candidate merely wastes priority. The analysis is correspondingly
//! approximate: it assumes direct calls preserve the caller's lockset and
//! ignores locks whose identity cannot be traced statically.

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::dataflow::{self, ForwardAnalysis, JoinSemiLattice};
use crate::reachdef::{trace_operand, CondExpr};
use esd_ir::{FuncId, Function, GlobalId, Inst, Loc, Operand, Program};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// A lock-order edge: `second` is acquired at `site` while `first` may
/// already be held.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// The mutex that may already be held.
    pub first: GlobalId,
    /// The mutex being acquired.
    pub second: GlobalId,
    /// The acquisition site (the `MutexLock` instruction's location).
    pub site: Loc,
}

/// A potential ABBA deadlock: both lock orders `a → b` and `b → a` occur in
/// the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockCycle {
    /// The mutex pair, with `pair.0 < pair.1`.
    pub pair: (GlobalId, GlobalId),
    /// The inner-acquisition sites of both directions, sorted — each is a
    /// candidate blocked-lock location of the deadlock.
    pub sites: Vec<Loc>,
}

/// The lock-order analysis result for a whole program.
#[derive(Debug, Clone, Default)]
pub struct LockOrderInfo {
    /// All lock-order edges, sorted and deduplicated.
    pub edges: Vec<LockEdge>,
    /// Detected ABBA cycles, ranked: fewest candidate sites first (tighter
    /// cycles make better intermediate goals), then by mutex pair.
    pub cycles: Vec<LockCycle>,
    /// Per-function *entry* may-hold locksets from the interprocedural
    /// fixpoint (indexed by [`FuncId`]): what a function's callers — or, for
    /// thread entry points, the spawning thread — may hold when the function
    /// starts. Consumed by the race-candidate analysis and the
    /// aliasing-dependent lints.
    pub entry_locksets: Vec<BTreeSet<GlobalId>>,
}

/// The dataflow fact: the set of mutexes (as global ids) that may be held.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub(crate) struct LockSet(pub(crate) BTreeSet<GlobalId>);

impl JoinSemiLattice for LockSet {
    fn join(&mut self, other: &Self) -> bool {
        let before = self.0.len();
        self.0.extend(other.0.iter().copied());
        self.0.len() != before
    }
}

/// Resolves a mutex operand to its global identity, if statically visible.
pub(crate) fn mutex_identity(function: &Function, op: Operand) -> Option<GlobalId> {
    match trace_operand(function, op) {
        CondExpr::GlobalAddr(g, _) => Some(g),
        _ => None,
    }
}

pub(crate) struct LocksetAnalysis<'a> {
    pub(crate) function: &'a Function,
    pub(crate) entry: LockSet,
}

impl ForwardAnalysis for LocksetAnalysis<'_> {
    type Fact = LockSet;

    fn entry_fact(&self) -> LockSet {
        self.entry.clone()
    }

    fn transfer_inst(&self, fact: &mut LockSet, inst: &Inst, _loc: Loc) {
        match inst {
            Inst::MutexLock { mutex } => {
                if let Some(g) = mutex_identity(self.function, *mutex) {
                    fact.0.insert(g);
                }
            }
            Inst::MutexUnlock { mutex } => {
                if let Some(g) = mutex_identity(self.function, *mutex) {
                    fact.0.remove(&g);
                }
            }
            // CondWait releases and re-acquires its mutex around the wait;
            // from the lock-order perspective the mutex is held again when
            // the instruction completes, so the set is unchanged.
            _ => {}
        }
    }

    fn widen(&self, _fact: &mut LockSet) {
        // The lattice is a finite powerset: joins already terminate.
    }
}

/// Runs the lock-order analysis over the whole program. (The call graph is
/// accepted for signature stability alongside the other whole-program
/// analyses; the function-level fixpoint below discovers direct-call
/// propagation on its own.)
pub fn analyze(program: &Program, cfgs: &[Cfg], _callgraph: &CallGraph) -> LockOrderInfo {
    let n = program.functions.len();
    // Entry locksets: what each function's callers may hold at the call
    // site. Spawn sites contribute too — a lock held across `ThreadSpawn`
    // may still be held for the child's whole lifetime.
    let mut entry: Vec<LockSet> = vec![LockSet::default(); n];
    let mut queued = vec![true; n];
    let mut worklist: VecDeque<FuncId> = program.func_ids().collect();

    // Fixpoint over functions: the powerset lattice over globals is finite,
    // so entry sets grow monotonically and terminate.
    while let Some(fid) = worklist.pop_front() {
        queued[fid.0 as usize] = false;
        let function = program.func(fid);
        let analysis = LocksetAnalysis { function, entry: entry[fid.0 as usize].clone() };
        let facts = dataflow::solve_function(&analysis, function, &cfgs[fid.0 as usize], fid);
        for (bi, block) in function.blocks.iter().enumerate() {
            let Some(mut fact) = facts.at(esd_ir::BlockId(bi as u32)).cloned() else { continue };
            for (ii, inst) in block.insts.iter().enumerate() {
                let flows_to = match inst {
                    Inst::Call { callee: esd_ir::Callee::Direct(target), .. } => Some(*target),
                    Inst::ThreadSpawn { func: esd_ir::Callee::Direct(target), .. } => Some(*target),
                    _ => None,
                };
                if let Some(target) = flows_to {
                    if entry[target.0 as usize].join(&fact) && !queued[target.0 as usize] {
                        queued[target.0 as usize] = true;
                        worklist.push_back(target);
                    }
                }
                let loc = Loc::new(fid, esd_ir::BlockId(bi as u32), ii as u32);
                analysis.transfer_inst(&mut fact, inst, loc);
            }
        }
    }

    // Edge generation: re-run each function with its final entry set and
    // record an edge for every held mutex at every acquisition.
    let mut edges: Vec<LockEdge> = Vec::new();
    for fid in program.func_ids() {
        let function = program.func(fid);
        let analysis = LocksetAnalysis { function, entry: entry[fid.0 as usize].clone() };
        let facts = dataflow::solve_function(&analysis, function, &cfgs[fid.0 as usize], fid);
        for (bi, block) in function.blocks.iter().enumerate() {
            let Some(mut fact) = facts.at(esd_ir::BlockId(bi as u32)).cloned() else { continue };
            for (ii, inst) in block.insts.iter().enumerate() {
                let loc = Loc::new(fid, esd_ir::BlockId(bi as u32), ii as u32);
                if let Inst::MutexLock { mutex } = inst {
                    if let Some(second) = mutex_identity(function, *mutex) {
                        for first in &fact.0 {
                            if *first != second {
                                edges.push(LockEdge { first: *first, second, site: loc });
                            }
                        }
                    }
                }
                analysis.transfer_inst(&mut fact, inst, loc);
            }
        }
    }
    edges.sort();
    edges.dedup();

    // ABBA detection: a pair (a, b) with edges in both directions.
    let mut by_pair: HashMap<(GlobalId, GlobalId), (bool, bool, Vec<Loc>)> = HashMap::new();
    for e in &edges {
        let (key, forward) = if e.first < e.second {
            ((e.first, e.second), true)
        } else {
            ((e.second, e.first), false)
        };
        let entry = by_pair.entry(key).or_default();
        if forward {
            entry.0 = true;
        } else {
            entry.1 = true;
        }
        entry.2.push(e.site);
    }
    let mut cycles: Vec<LockCycle> = by_pair
        .into_iter()
        .filter(|(_, (fwd, rev, _))| *fwd && *rev)
        .map(|(pair, (_, _, mut sites))| {
            sites.sort();
            sites.dedup();
            LockCycle { pair, sites }
        })
        .collect();
    cycles.sort_by_key(|c| (c.sites.len(), c.pair));
    let entry_locksets = entry.into_iter().map(|s| s.0).collect();
    LockOrderInfo { edges, cycles, entry_locksets }
}

/// Locks acquired *within* `function` (the analysis starts from an empty
/// lockset — a caller's holds are the caller's responsibility) that may
/// still be held at some `Ret`. Returns `(ret_loc, mutex)` pairs, sorted
/// and deduplicated; the location is the returning terminator's.
///
/// This is the engine behind the `lock-never-released` lint; lock-helper
/// functions that hand a held mutex back to their caller legitimately
/// trigger it, which is why the lint reports a warning, not an error.
pub fn unreleased_at_return(function: &Function, cfg: &Cfg, func: FuncId) -> Vec<(Loc, GlobalId)> {
    let analysis = LocksetAnalysis { function, entry: LockSet::default() };
    let facts = dataflow::solve_function(&analysis, function, cfg, func);
    let mut out = Vec::new();
    for (bi, block) in function.blocks.iter().enumerate() {
        if !matches!(block.term, esd_ir::Terminator::Ret { .. }) {
            continue;
        }
        let b = esd_ir::BlockId(bi as u32);
        let Some(mut fact) = facts.at(b).cloned() else { continue };
        for (ii, inst) in block.insts.iter().enumerate() {
            analysis.transfer_inst(&mut fact, inst, Loc::new(func, b, ii as u32));
        }
        let ret_loc = Loc::new(func, b, block.insts.len() as u32);
        for g in &fact.0 {
            out.push((ret_loc, *g));
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::{CmpOp, ProgramBuilder};

    fn run(program: &Program) -> LockOrderInfo {
        let cfgs: Vec<Cfg> = program.func_ids().map(|f| Cfg::build(program.func(f), f)).collect();
        let callgraph = CallGraph::build(program);
        analyze(program, &cfgs, &callgraph)
    }

    #[test]
    fn abba_between_two_workers_is_detected() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.global("lock_a", 1);
        let b = pb.global("lock_b", 1);
        let w1 = pb.function("w1", 1, |f| {
            let ap = f.addr_global(a);
            let bp = f.addr_global(b);
            f.lock(ap);
            f.lock(bp);
            f.unlock(bp);
            f.unlock(ap);
            f.ret_void();
        });
        let w2 = pb.function("w2", 1, |f| {
            let ap = f.addr_global(a);
            let bp = f.addr_global(b);
            f.lock(bp);
            f.lock(ap);
            f.unlock(ap);
            f.unlock(bp);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            let t1 = f.spawn(w1, 1);
            let t2 = f.spawn(w2, 2);
            f.join(t1);
            f.join(t2);
            f.ret_void();
        });
        let p = pb.finish("main");
        let info = run(&p);
        assert_eq!(info.cycles.len(), 1);
        let cycle = &info.cycles[0];
        assert_eq!(cycle.pair, (a, b));
        // Both inner acquisitions are candidate blocked-lock sites, one in
        // each worker.
        assert_eq!(cycle.sites.len(), 2);
        assert!(cycle.sites.iter().any(|l| l.func == w1));
        assert!(cycle.sites.iter().any(|l| l.func == w2));
    }

    #[test]
    fn consistent_ordering_yields_edges_but_no_cycle() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.global("lock_a", 1);
        let b = pb.global("lock_b", 1);
        pb.function("main", 0, |f| {
            let ap = f.addr_global(a);
            let bp = f.addr_global(b);
            f.lock(ap);
            f.lock(bp);
            f.unlock(bp);
            f.unlock(ap);
            f.lock(ap);
            f.lock(bp);
            f.unlock(bp);
            f.unlock(ap);
            f.ret_void();
        });
        let p = pb.finish("main");
        let info = run(&p);
        // Edges are per acquisition site: both b-acquisitions order a → b.
        assert_eq!(info.edges.len(), 2);
        assert!(info.edges.iter().all(|e| e.first == a && e.second == b));
        assert!(info.cycles.is_empty());
    }

    #[test]
    fn locksets_propagate_through_direct_calls() {
        // The cross-function shape of the sqlite bug: the caller holds the
        // master lock while a callee acquires the btree lock, and another
        // path takes them in the opposite order.
        let mut pb = ProgramBuilder::new("p");
        let master = pb.global("master", 1);
        let btree = pb.global("btree", 1);
        let inner = pb.declare("inner", 0);
        pb.define(inner, |f| {
            let bp = f.addr_global(btree);
            f.lock(bp);
            f.unlock(bp);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            let mp = f.addr_global(master);
            let bp = f.addr_global(btree);
            f.lock(mp);
            f.call_void(inner, vec![]);
            f.unlock(mp);
            // Reverse order inline.
            f.lock(bp);
            f.lock(mp);
            f.unlock(mp);
            f.unlock(bp);
            f.ret_void();
        });
        let p = pb.finish("main");
        let info = run(&p);
        assert_eq!(info.cycles.len(), 1);
        assert_eq!(info.cycles[0].pair, (master, btree).min((btree, master)));
        // One candidate site sits inside the callee.
        assert!(info.cycles[0].sites.iter().any(|l| l.func == inner));
    }

    #[test]
    fn unlock_ends_the_hold_window() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.global("lock_a", 1);
        let b = pb.global("lock_b", 1);
        pb.function("main", 0, |f| {
            let ap = f.addr_global(a);
            let bp = f.addr_global(b);
            // a is released before b is taken: no ordering edge either way.
            f.lock(ap);
            f.unlock(ap);
            f.lock(bp);
            f.unlock(bp);
            f.ret_void();
        });
        let p = pb.finish("main");
        let info = run(&p);
        assert!(info.edges.is_empty());
        assert!(info.cycles.is_empty());
    }

    #[test]
    fn locksets_propagate_into_spawned_thread_entry_points() {
        // A lock held across `ThreadSpawn` must be visible to the child's
        // analysis: the child may run while the parent still holds it. Here
        // main holds `master` at the spawn of a worker that takes `btree`,
        // and elsewhere takes the two in the opposite order — the worker's
        // acquisition is one side of the ABBA cycle.
        let mut pb = ProgramBuilder::new("p");
        let master = pb.global("master", 1);
        let btree = pb.global("btree", 1);
        let worker = pb.function("worker", 1, |f| {
            let bp = f.addr_global(btree);
            f.lock(bp);
            f.unlock(bp);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            let mp = f.addr_global(master);
            let bp = f.addr_global(btree);
            f.lock(mp);
            let t = f.spawn(worker, 1);
            f.unlock(mp);
            f.join(t);
            // Reverse order inline.
            f.lock(bp);
            f.lock(mp);
            f.unlock(mp);
            f.unlock(bp);
            f.ret_void();
        });
        let p = pb.finish("main");
        let info = run(&p);
        assert!(
            info.entry_locksets[worker.0 as usize].contains(&master),
            "the spawn-time hold must flow into the worker's entry lockset"
        );
        assert_eq!(info.cycles.len(), 1);
        assert!(
            info.cycles[0].sites.iter().any(|l| l.func == worker),
            "the worker's inner acquisition is a candidate deadlock site"
        );
    }

    #[test]
    fn branch_dependent_holds_are_may_edges() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.global("lock_a", 1);
        let b = pb.global("lock_b", 1);
        pb.function("main", 0, |f| {
            let ap = f.addr_global(a);
            let bp = f.addr_global(b);
            let x = f.getchar();
            let c = f.cmp(CmpOp::Eq, x, 1);
            f.diamond("maybe_hold", c, |t| t.lock(ap), |e| e.nop());
            // a may or may not be held here; the edge must still be
            // reported (may-analysis).
            f.lock(bp);
            f.unlock(bp);
            f.ret_void();
        });
        let p = pb.finish("main");
        let info = run(&p);
        assert_eq!(info.edges.len(), 1);
        assert_eq!(info.edges[0].first, a);
        assert_eq!(info.edges[0].second, b);
    }
}
