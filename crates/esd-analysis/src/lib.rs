//! Static analysis for execution synthesis.
//!
//! This crate implements the static phase of ESD's sequential path synthesis
//! (§3.2 of the paper) and the proximity heuristic used by the dynamic phase
//! (§3.4, Algorithm 1):
//!
//! * per-function control-flow graphs and reachability ([`cfg`](mod@cfg)),
//! * the interprocedural call graph with best-effort function-pointer
//!   resolution ([`callgraph`]),
//! * instruction/block/function cost models and distance-to-return
//!   ([`costs`]),
//! * per-goal interprocedural distance maps and the proximity heuristic
//!   ([`goaldist`]),
//! * register use-def chains and reaching definitions of memory variables
//!   ([`reachdef`]),
//! * critical edges and intermediate goals ([`critical`]).
//!
//! [`StaticAnalysis`] bundles everything the dynamic phase needs for one
//! goal.

pub mod callgraph;
pub mod cfg;
pub mod costs;
pub mod critical;
pub mod goaldist;
pub mod reachdef;

pub use callgraph::CallGraph;
pub use cfg::Cfg;
pub use costs::{CostModel, INF, RECURSION_COST};
pub use critical::{CriticalEdge, IntermediateGoal, StaticGoalInfo};
pub use goaldist::DistanceOracle;

use esd_ir::{Loc, Program};
use std::sync::Arc;

/// The complete static-analysis bundle for one synthesis goal.
///
/// Construction performs the paper's static phase: CFG construction, call
/// graph and function-pointer resolution, dead-block identification, critical
/// edge marking and intermediate goal derivation, plus the cost model backing
/// the proximity heuristic.
pub struct StaticAnalysis {
    /// One CFG per function.
    pub cfgs: Vec<Cfg>,
    /// The interprocedural call graph.
    pub callgraph: CallGraph,
    /// Cost model / distance-to-return oracle.
    pub costs: CostModel,
    /// Per-goal critical edges and intermediate goals.
    pub goal_info: StaticGoalInfo,
    /// The goal this analysis was computed for.
    pub goal: Loc,
}

impl StaticAnalysis {
    /// Runs the full static phase of path synthesis for `goal`.
    pub fn compute(program: &Program, goal: Loc) -> Self {
        let cfgs: Vec<Cfg> = program.func_ids().map(|f| Cfg::build(program.func(f), f)).collect();
        let callgraph = CallGraph::build(program);
        let costs = CostModel::new(program, &cfgs, &callgraph);
        let goal_info = StaticGoalInfo::compute(program, &cfgs, &callgraph, goal);
        StaticAnalysis { cfgs, callgraph, costs, goal_info, goal }
    }

    /// Creates the distance oracle (Algorithm 1) for this program. The oracle
    /// can answer proximity queries for the main goal as well as for any
    /// intermediate goal, and shares ownership of its inputs so callers that
    /// outlive the current stack frame (resumable synthesis sessions) can own
    /// it outright.
    pub fn distance_oracle(
        analysis: &Arc<StaticAnalysis>,
        program: &Arc<Program>,
    ) -> DistanceOracle {
        DistanceOracle::new(program.clone(), analysis.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::CmpOp;
    use esd_ir::ProgramBuilder;

    #[test]
    fn static_analysis_bundles_all_parts() {
        let mut pb = ProgramBuilder::new("p");
        let helper = pb.function("helper", 1, |f| {
            let doubled = f.mul(f.param(0), 2);
            f.ret(doubled);
        });
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let c = f.cmp(CmpOp::Eq, x, 5);
            let yes = f.new_block("yes");
            let no = f.new_block("no");
            f.cond_br(c, yes, no);
            f.switch_to(yes);
            let v = f.call(helper, vec![x.into()]);
            f.output(v);
            f.ret_void();
            f.switch_to(no);
            f.ret_void();
        });
        let p = pb.finish("main");
        let goal = Loc::new(p.entry, esd_ir::BlockId(1), 0);
        let sa = Arc::new(StaticAnalysis::compute(&p, goal));
        assert_eq!(sa.cfgs.len(), 2);
        assert_eq!(sa.goal, goal);
        let entry = Loc::new(p.entry, esd_ir::BlockId(0), 0);
        let p = Arc::new(p);
        let oracle = StaticAnalysis::distance_oracle(&sa, &p);
        let d = oracle.proximity(&[entry], goal);
        assert!(d < costs::INF);
    }
}
