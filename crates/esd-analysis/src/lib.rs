//! Static analysis for execution synthesis.
//!
//! This crate implements the static phase of ESD's sequential path synthesis
//! (§3.2 of the paper) and the proximity heuristic used by the dynamic phase
//! (§3.4, Algorithm 1):
//!
//! * per-function control-flow graphs and reachability ([`cfg`](mod@cfg)),
//! * the interprocedural call graph with best-effort function-pointer
//!   resolution ([`callgraph`]),
//! * instruction/block/function cost models and distance-to-return
//!   ([`costs`]),
//! * per-goal interprocedural distance maps and the proximity heuristic
//!   ([`goaldist`]),
//! * register use-def chains and reaching definitions of memory variables
//!   ([`reachdef`]),
//! * critical edges and intermediate goals ([`critical`]),
//! * a generic forward dataflow solver ([`dataflow`]) with interprocedural
//!   constant/interval propagation on top ([`interval`]) — the static
//!   branch-feasibility verdicts the symbolic engine consults to skip
//!   provably one-sided forks without a solver query,
//! * a static lockset / lock-order-graph analysis detecting potential ABBA
//!   deadlock cycles ([`lockorder`]),
//! * a flow-insensitive Andersen-style points-to/escape analysis classifying
//!   each memory access as thread-local or may-shared ([`pointsto`]),
//! * may-happen-in-parallel + lockset race-pair candidates that bound the
//!   dynamic phase's preemption forks in race mode ([`racecand`]),
//! * a backward goal-directed relevance slice sharpening the proximity
//!   heuristic's cost model ([`slice`](mod@slice)),
//! * an IR lint framework with severity-ranked diagnostics ([`lint`]).
//!
//! [`StaticAnalysis`] bundles everything the dynamic phase needs for one
//! goal — or, for multi-threaded goals such as deadlocks, for the whole set
//! of goal locations at once ([`StaticAnalysis::compute_multi`]).

// Documentation enforcement (see ARCHITECTURE.md): every public item must
// carry rustdoc, extended from the esd-concurrency pilot now that the static
// phase's multi-goal API stabilized this crate's surface.
#![deny(missing_docs)]

pub mod callgraph;
pub mod cfg;
pub mod costs;
pub mod critical;
pub mod dataflow;
pub mod goaldist;
pub mod interval;
pub mod lint;
pub mod lockorder;
pub mod pointsto;
pub mod racecand;
pub mod reachdef;
pub mod slice;

pub use callgraph::CallGraph;
pub use cfg::Cfg;
pub use costs::{CostModel, INF, RECURSION_COST};
pub use critical::{CriticalEdge, IntermediateGoal, StaticGoalInfo};
pub use dataflow::{ForwardAnalysis, JoinSemiLattice};
pub use goaldist::DistanceOracle;
pub use interval::{BranchFeasibility, Feasibility, Interval};
pub use lint::{Diagnostic, LintContext, LintPass, LintRegistry, Severity};
pub use lockorder::{LockCycle, LockEdge, LockOrderInfo};
pub use pointsto::{AbsLoc, MemAccess, PointsTo};
pub use racecand::{RaceCandidates, RacePairCandidate};
pub use slice::RelevanceSlice;

use esd_ir::{Inst, Loc, Program};
use std::sync::Arc;

/// The complete static-analysis bundle for one synthesis goal.
///
/// Construction performs the paper's static phase: CFG construction, call
/// graph and function-pointer resolution, dead-block identification, critical
/// edge marking and intermediate goal derivation, plus the cost model backing
/// the proximity heuristic.
pub struct StaticAnalysis {
    /// One CFG per function.
    pub cfgs: Vec<Cfg>,
    /// The interprocedural call graph.
    pub callgraph: CallGraph,
    /// Cost model / distance-to-return oracle.
    pub costs: CostModel,
    /// Per-goal critical edges and intermediate goals.
    pub goal_info: StaticGoalInfo,
    /// Interval-analysis verdicts for conditional branches: which branches
    /// are statically one-sided for *all* inputs. The symbolic engine's
    /// stepper consults these before forking to skip solver queries.
    pub branch_feasibility: BranchFeasibility,
    /// The static lock-order graph and its potential ABBA deadlock cycles.
    pub lock_order: LockOrderInfo,
    /// Andersen-style points-to/escape facts: which memory accesses may touch
    /// shared state.
    pub points_to: PointsTo,
    /// The ranked set of statically identified race-pair candidates (§4.2):
    /// pairs of may-shared accesses that may happen in parallel without a
    /// common must-held lock. The stepper's race-preemption mode only forks
    /// at accesses/yields this set marks relevant.
    pub race_candidates: RaceCandidates,
    /// The backward goal-directed relevance slice and its sliced cost model
    /// ([`StaticAnalysis::costs_for_goal`]).
    pub slice: RelevanceSlice,
    /// The goal this analysis was computed for.
    pub goal: Loc,
}

impl StaticAnalysis {
    /// Runs the full static phase of path synthesis for `goal`.
    pub fn compute(program: &Program, goal: Loc) -> Self {
        Self::compute_multi(program, &[goal])
    }

    /// Runs the static phase for a *set* of goal locations and merges the
    /// per-goal results ([`StaticGoalInfo::merge`]). Deadlock goals list one
    /// blocked-lock location per deadlocked thread; computing the phase over
    /// all of them makes the intermediate-goal queues (and the relevance
    /// map) cover every thread's lock site instead of only the first one's.
    ///
    /// # Panics
    ///
    /// Panics when `goals` is empty. `goals[0]` becomes the nominal
    /// [`StaticAnalysis::goal`].
    pub fn compute_multi(program: &Program, goals: &[Loc]) -> Self {
        assert!(!goals.is_empty(), "at least one goal location");
        let cfgs: Vec<Cfg> = program.func_ids().map(|f| Cfg::build(program.func(f), f)).collect();
        let callgraph = CallGraph::build(program);
        let costs = CostModel::new(program, &cfgs, &callgraph);
        let infos =
            goals.iter().map(|g| StaticGoalInfo::compute(program, &cfgs, &callgraph, *g)).collect();
        let mut goal_info = StaticGoalInfo::merge(infos);
        let branch_feasibility = BranchFeasibility::compute(program, &cfgs, &callgraph);
        let lock_order = lockorder::analyze(program, &cfgs, &callgraph);
        let points_to = PointsTo::compute(program, &callgraph);
        let race_candidates =
            racecand::compute(program, &cfgs, &callgraph, &points_to, &lock_order);
        let slice = slice::compute(program, &callgraph, &points_to, &costs, goals);
        // Deadlock goals (a goal at a blocked MutexLock) get the lock-order
        // cycles' acquisition sites as extra intermediate goals: the ranked
        // candidate deadlock sites the paper's static phase promises (§4.1).
        // Pure guidance — a wrong candidate only costs search priority.
        let deadlockish =
            goals.iter().any(|g| matches!(program.inst_at(*g), Some(Inst::MutexLock { .. })));
        if deadlockish {
            for cycle in &lock_order.cycles {
                let goal = IntermediateGoal {
                    alternatives: cycle.sites.clone(),
                    // Cycles are keyed on the lower mutex of the pair; the
                    // sentinel value distinguishes them from store-derived
                    // goals, which always carry a concrete stored value.
                    variable: (cycle.pair.0, -1),
                };
                if !goal_info.intermediate_goals.contains(&goal) {
                    goal_info.intermediate_goals.push(goal);
                }
            }
        }
        StaticAnalysis {
            cfgs,
            callgraph,
            costs,
            goal_info,
            branch_feasibility,
            lock_order,
            points_to,
            race_candidates,
            slice,
            goal: goals[0],
        }
    }

    /// The cost model to use when measuring distance toward `goal`: the
    /// sliced model (irrelevant instructions cost zero) when `goal` belongs
    /// to the goal set this analysis was computed for, the full model
    /// otherwise (e.g. ad-hoc queries for other locations).
    pub fn costs_for_goal(&self, goal: Loc) -> &CostModel {
        if self.slice.goals.contains(&goal) {
            &self.slice.costs
        } else {
            &self.costs
        }
    }

    /// Creates the distance oracle (Algorithm 1) for this program. The oracle
    /// can answer proximity queries for the main goal as well as for any
    /// intermediate goal, and shares ownership of its inputs so callers that
    /// outlive the current stack frame (resumable synthesis sessions) can own
    /// it outright.
    pub fn distance_oracle(
        analysis: &Arc<StaticAnalysis>,
        program: &Arc<Program>,
    ) -> DistanceOracle {
        DistanceOracle::new(program.clone(), analysis.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::CmpOp;
    use esd_ir::ProgramBuilder;

    /// Regression test for multi-location goals (deadlock reports list one
    /// blocked-lock location per thread): seeding the static phase with only
    /// the first location used to lose the other threads' guidance. The
    /// second goal here sits behind a flag-guarded branch in `worker`, so its
    /// intermediate goal (the `flag = 1` store in `main`) only appears when
    /// the phase is computed over *all* goal locations.
    #[test]
    fn compute_multi_unions_guidance_over_all_goal_locations() {
        let mut pb = ProgramBuilder::new("two_goal");
        let flag = pb.global("flag", 1);
        let mut goal2 = None;
        let worker = pb.function("worker", 0, |f| {
            let fp = f.addr_global(flag);
            let v = f.load(fp);
            let c = f.cmp(CmpOp::Eq, v, 1);
            let locked = f.new_block("locked");
            let out = f.new_block("out");
            f.cond_br(c, locked, out);
            f.switch_to(locked);
            goal2 = Some(Loc::new(esd_ir::FuncId(0), locked, f.next_inst_idx()));
            f.output(1);
            f.br(out);
            f.switch_to(out);
            f.ret_void();
        });
        let mut goal1 = None;
        let mut store_block = None;
        pb.function("main", 0, |f| {
            let fp = f.addr_global(flag);
            let x = f.getchar();
            let is_y = f.cmp(CmpOp::Eq, x, 'Y' as i64);
            let set = f.new_block("set");
            let go = f.new_block("go");
            f.cond_br(is_y, set, go);
            f.switch_to(set);
            store_block = Some(set);
            f.store(fp, 1);
            f.br(go);
            f.switch_to(go);
            f.call_void(worker, vec![]);
            goal1 = Some(Loc::new(esd_ir::FuncId(1), go, f.next_inst_idx()));
            f.output(0);
            f.ret_void();
        });
        let p = pb.finish("main");
        let (goal1, goal2) = (goal1.unwrap(), goal2.unwrap());

        // Seeded with only the first location, the second goal's guidance is
        // invisible: no intermediate goals at all.
        let single = StaticAnalysis::compute(&p, goal1);
        assert!(single.goal_info.intermediate_goals.is_empty());

        let multi = StaticAnalysis::compute_multi(&p, &[goal1, goal2]);
        assert_eq!(multi.goal, goal1, "the first location stays the nominal goal");
        let goals = &multi.goal_info.intermediate_goals;
        assert!(
            goals.iter().any(|g| g.alternatives.iter().any(|l| Some(l.block) == store_block)),
            "the flag store guarding the second goal must become an intermediate goal"
        );
        // Critical edges merge by intersection: goal1 has none, so the merged
        // info must not impose goal2's edge on paths to goal1.
        assert!(multi.goal_info.critical_edges.is_empty());
        // Blocks on the way to either goal stay relevant.
        assert!(!multi.goal_info.is_irrelevant_block(goal2));
        assert!(!multi.goal_info.is_irrelevant_block(goal1));
    }

    #[test]
    fn static_analysis_bundles_all_parts() {
        let mut pb = ProgramBuilder::new("p");
        let helper = pb.function("helper", 1, |f| {
            let doubled = f.mul(f.param(0), 2);
            f.ret(doubled);
        });
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let c = f.cmp(CmpOp::Eq, x, 5);
            let yes = f.new_block("yes");
            let no = f.new_block("no");
            f.cond_br(c, yes, no);
            f.switch_to(yes);
            let v = f.call(helper, vec![x.into()]);
            f.output(v);
            f.ret_void();
            f.switch_to(no);
            f.ret_void();
        });
        let p = pb.finish("main");
        let goal = Loc::new(p.entry, esd_ir::BlockId(1), 0);
        let sa = Arc::new(StaticAnalysis::compute(&p, goal));
        assert_eq!(sa.cfgs.len(), 2);
        assert_eq!(sa.goal, goal);
        let entry = Loc::new(p.entry, esd_ir::BlockId(0), 0);
        let p = Arc::new(p);
        let oracle = StaticAnalysis::distance_oracle(&sa, &p);
        let d = oracle.proximity(&[entry], goal);
        assert!(d < costs::INF);
    }
}
