//! An IR lint framework: pluggable static checks with ranked diagnostics.
//!
//! Lints are the user-facing face of the static phase: the same analyses
//! that prune the symbolic search ([`crate::interval`], [`crate::lockorder`],
//! the CFG walks) double as bug-pattern detectors over workload IR. Each
//! check implements [`LintPass`] against a shared read-only [`LintContext`];
//! [`LintRegistry`] runs a pass list and returns [`Diagnostic`]s in a
//! deterministic order, so lint output is goldenable.
//!
//! The registry also implements [`esd_ir::validate::Preflight`], which lets
//! `esd_ir::validate::validate_with` reject programs with `Error`-severity
//! diagnostics at load time; warnings and notes stay advisory. The CI
//! `lint-gate` runs the default registry over every checked-in IR fixture
//! and a genbug corpus with exactly that policy.
//!
//! Default passes: `unreachable-block`, `dead-store`, `constant-condition`,
//! `lock-never-released`, `read-of-never-written`, `inconsistent-lock-guard`,
//! `shared-unsynchronized-write`.

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::interval::{BranchFeasibility, Feasibility};
use crate::lockorder::{self, LockOrderInfo};
use crate::pointsto::{AbsLoc, PointsTo};
use crate::racecand::{self, RaceCandidates};
use crate::reachdef::{trace_operand, CondExpr};
use esd_ir::validate::{Preflight, ValidationError};
use esd_ir::{BlockId, GlobalId, Inst, Loc, Operand, Program, Terminator};
use std::fmt;

/// How serious a diagnostic is. `Error` fails the validation preflight and
/// the CI lint gate; the rest are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational.
    Note,
    /// Suspicious but possibly intentional.
    Warning,
    /// Definitely wrong; rejected by the validation preflight.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of one lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The reporting pass's [`LintPass::name`].
    pub lint: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// Where the finding is anchored (`idx == insts.len()` = the terminator).
    pub loc: Loc,
    /// Human-readable description.
    pub message: String,
}

/// The shared read-only inputs every lint pass sees: the program plus the
/// static-phase analyses, computed once per [`LintRegistry::run`].
pub struct LintContext<'a> {
    /// The program under lint.
    pub program: &'a Program,
    /// One CFG per function, indexed by function id.
    pub cfgs: &'a [Cfg],
    /// The program's call graph.
    pub callgraph: &'a CallGraph,
    /// Interval-analysis branch verdicts.
    pub feasibility: &'a BranchFeasibility,
    /// The lock-order graph and its ABBA cycles.
    pub lockorder: &'a LockOrderInfo,
    /// Andersen-style points-to/escape facts.
    pub points_to: &'a PointsTo,
    /// MHP + lockset race-pair candidates (with per-access may/must
    /// locksets).
    pub race_candidates: &'a RaceCandidates,
}

/// One static check. Implementations push any number of [`Diagnostic`]s;
/// ordering does not matter (the registry sorts).
pub trait LintPass {
    /// The stable kebab-case name reported in diagnostics.
    fn name(&self) -> &'static str;
    /// Runs the check over the whole program.
    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

/// An ordered collection of lint passes.
#[derive(Default)]
pub struct LintRegistry {
    passes: Vec<Box<dyn LintPass>>,
}

impl LintRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The default pass list (all seven built-in lints).
    pub fn with_default_lints() -> Self {
        let mut r = Self::new();
        r.register(Box::new(UnreachableBlock));
        r.register(Box::new(DeadStore));
        r.register(Box::new(ConstantCondition));
        r.register(Box::new(LockNeverReleased));
        r.register(Box::new(ReadOfNeverWritten));
        r.register(Box::new(InconsistentLockGuard));
        r.register(Box::new(SharedUnsynchronizedWrite));
        r
    }

    /// Adds a pass to the registry.
    pub fn register(&mut self, pass: Box<dyn LintPass>) {
        self.passes.push(pass);
    }

    /// Runs every registered pass and returns the diagnostics, sorted by
    /// location (then severity, pass name, message) and deduplicated.
    pub fn run(&self, program: &Program) -> Vec<Diagnostic> {
        let cfgs: Vec<Cfg> = program.func_ids().map(|f| Cfg::build(program.func(f), f)).collect();
        let callgraph = CallGraph::build(program);
        let feasibility = BranchFeasibility::compute(program, &cfgs, &callgraph);
        let lockorder = lockorder::analyze(program, &cfgs, &callgraph);
        let points_to = PointsTo::compute(program, &callgraph);
        let race_candidates = racecand::compute(program, &cfgs, &callgraph, &points_to, &lockorder);
        let ctx = LintContext {
            program,
            cfgs: &cfgs,
            callgraph: &callgraph,
            feasibility: &feasibility,
            lockorder: &lockorder,
            points_to: &points_to,
            race_candidates: &race_candidates,
        };
        let mut out = Vec::new();
        for pass in &self.passes {
            pass.run(&ctx, &mut out);
        }
        out.sort_by(|a, b| {
            (a.loc, std::cmp::Reverse(a.severity), a.lint, &a.message).cmp(&(
                b.loc,
                std::cmp::Reverse(b.severity),
                b.lint,
                &b.message,
            ))
        });
        out.dedup();
        out
    }
}

impl Preflight for LintRegistry {
    fn run(&self, program: &Program) -> Vec<ValidationError> {
        LintRegistry::run(self, program)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| ValidationError {
                func: Some(d.loc.func),
                block: Some(d.loc.block),
                message: format!("[{}] {}", d.lint, d.message),
            })
            .collect()
    }
}

/// Renders diagnostics as stable human-readable text (one line each plus a
/// summary line) — the format the `irlint` bin prints and the golden lint
/// fixture pins.
pub fn render(program: &Program, diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut notes = 0usize;
    for d in diags {
        match d.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
            Severity::Note => notes += 1,
        }
        let fname = &program.func(d.loc.func).name;
        s.push_str(&format!(
            "{}[{}] {}:bb{}:{}: {}\n",
            d.severity, d.lint, fname, d.loc.block.0, d.loc.idx, d.message
        ));
    }
    s.push_str(&format!("{errors} error(s), {warnings} warning(s), {notes} note(s)\n"));
    s
}

// ---------------------------------------------------------------------------
// Shared global-access scan (dead-store & read-of-never-written).

/// What the program does with each global, tracked only through statically
/// traceable addresses: once a global's address escapes (flows anywhere we
/// cannot follow — a call argument, a stored value, a non-constant `Gep`, a
/// sync primitive), the scan gives up on that global entirely.
struct GlobalAccess {
    /// Every store whose address traces to the global, in program order.
    stores: Vec<Vec<Loc>>,
    /// Every load whose address traces to the global: `(loc, word offset)`.
    loads: Vec<Vec<(Loc, i64)>>,
    /// The global's address escaped static tracking.
    escaped: Vec<bool>,
}

fn scan_globals(program: &Program) -> GlobalAccess {
    let n = program.globals.len();
    let mut acc = GlobalAccess {
        stores: vec![Vec::new(); n],
        loads: vec![Vec::new(); n],
        escaped: vec![false; n],
    };
    let escape = |acc: &mut GlobalAccess, function, op: Operand| {
        if let CondExpr::GlobalAddr(g, _) = trace_operand(function, op) {
            acc.escaped[g.0 as usize] = true;
        }
    };
    for fid in program.func_ids() {
        let function = program.func(fid);
        for (bi, block) in function.blocks.iter().enumerate() {
            for (ii, inst) in block.insts.iter().enumerate() {
                let loc = Loc::new(fid, BlockId(bi as u32), ii as u32);
                match inst {
                    Inst::Store { addr, value } => {
                        if let CondExpr::GlobalAddr(g, _) = trace_operand(function, *addr) {
                            acc.stores[g.0 as usize].push(loc);
                        }
                        escape(&mut acc, function, *value);
                    }
                    Inst::Load { addr, .. } => {
                        if let CondExpr::GlobalAddr(g, off) = trace_operand(function, *addr) {
                            acc.loads[g.0 as usize].push((loc, off));
                        }
                    }
                    // A Gep the tracer can fold (constant offset) surfaces
                    // at the eventual load/store; a non-constant offset
                    // makes the derived pointer untrackable.
                    Inst::Gep { base, offset, .. } => {
                        let folds = matches!(trace_operand(function, *offset), CondExpr::Const(_));
                        if !folds {
                            escape(&mut acc, function, *base);
                        }
                    }
                    // AddrGlobal only materializes the address; what the
                    // register is used for decides everything.
                    Inst::AddrGlobal { .. } => {}
                    // Every other use of a global address leaves our sight:
                    // call arguments, sync primitives, output, arithmetic.
                    _ => {
                        for op in inst.uses() {
                            escape(&mut acc, function, op);
                        }
                    }
                }
            }
            match &block.term {
                Terminator::CondBr { cond, .. } => escape(&mut acc, function, *cond),
                Terminator::Ret { value: Some(v) } => escape(&mut acc, function, *v),
                _ => {}
            }
        }
    }
    acc
}

// ---------------------------------------------------------------------------
// The built-in passes.

/// Flags blocks with no CFG path from the function entry.
pub struct UnreachableBlock;

impl LintPass for UnreachableBlock {
    fn name(&self) -> &'static str {
        "unreachable-block"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for fid in ctx.program.func_ids() {
            let function = ctx.program.func(fid);
            let reachable = ctx.cfgs[fid.0 as usize].reachable_from_entry();
            for (bi, block) in function.blocks.iter().enumerate() {
                if reachable[bi] {
                    continue;
                }
                let label = block.label.as_deref().map(|l| format!(" (`{l}`)")).unwrap_or_default();
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Warning,
                    loc: Loc::new(fid, BlockId(bi as u32), 0),
                    message: format!("block bb{bi}{label} is unreachable from function entry"),
                });
            }
        }
    }
}

/// Flags stores that cannot be observed: a same-block overwrite with no
/// possible intervening reader, and globals that are written but never read
/// (address never escaping static tracking).
pub struct DeadStore;

impl LintPass for DeadStore {
    fn name(&self) -> &'static str {
        "dead-store"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        use std::collections::HashMap;
        // Same-block overwrites.
        for fid in ctx.program.func_ids() {
            let function = ctx.program.func(fid);
            for (bi, block) in function.blocks.iter().enumerate() {
                // (global, word offset) → index of the last unread store.
                let mut pending: HashMap<(GlobalId, i64), usize> = HashMap::new();
                for (ii, inst) in block.insts.iter().enumerate() {
                    match inst {
                        Inst::Store { addr, .. } => {
                            if let CondExpr::GlobalAddr(g, off) = trace_operand(function, *addr) {
                                if let Some(prev) = pending.insert((g, off), ii) {
                                    let name = &ctx.program.global(g).name;
                                    out.push(Diagnostic {
                                        lint: self.name(),
                                        severity: Severity::Warning,
                                        loc: Loc::new(fid, BlockId(bi as u32), prev as u32),
                                        message: format!(
                                            "store to `{name}`[{off}] is overwritten at \
                                             instruction {ii} before any possible read"
                                        ),
                                    });
                                }
                            } else {
                                // An untracked store may alias anything.
                                pending.clear();
                            }
                        }
                        // Anything that reads memory, calls out, or lets
                        // another thread run can observe the store.
                        Inst::Load { .. } | Inst::Call { .. } | Inst::Free { .. } => {
                            pending.clear()
                        }
                        _ if inst.is_sync() => pending.clear(),
                        _ => {}
                    }
                }
            }
        }
        // Write-only globals.
        let acc = scan_globals(ctx.program);
        for (gi, stores) in acc.stores.iter().enumerate() {
            if stores.is_empty() || acc.escaped[gi] || !acc.loads[gi].is_empty() {
                continue;
            }
            let name = &ctx.program.globals[gi].name;
            out.push(Diagnostic {
                lint: self.name(),
                severity: Severity::Warning,
                loc: stores[0],
                message: format!(
                    "global `{name}` is written ({} store(s)) but never read",
                    stores.len()
                ),
            });
        }
    }
}

/// Flags conditional branches whose condition is statically decided: a
/// literal constant is an error (one edge is textually dead); an
/// interval-analysis verdict is a warning (the dead edge may be a deliberate
/// defensive check).
pub struct ConstantCondition;

impl LintPass for ConstantCondition {
    fn name(&self) -> &'static str {
        "constant-condition"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for fid in ctx.program.func_ids() {
            let function = ctx.program.func(fid);
            for (bi, block) in function.blocks.iter().enumerate() {
                let Terminator::CondBr { cond, .. } = block.term else { continue };
                let b = BlockId(bi as u32);
                let loc = Loc::new(fid, b, block.insts.len() as u32);
                if let CondExpr::Const(v) = trace_operand(function, cond) {
                    let (taken, dead) = if v != 0 { ("then", "else") } else { ("else", "then") };
                    out.push(Diagnostic {
                        lint: self.name(),
                        severity: Severity::Error,
                        loc,
                        message: format!(
                            "branch condition is the constant {v}: the {taken} edge is \
                             always taken and the {dead} edge is dead"
                        ),
                    });
                    continue;
                }
                let verdict = ctx.feasibility.verdict(fid, b);
                if verdict != Feasibility::Unknown {
                    let way = match verdict {
                        Feasibility::AlwaysTrue => "always true",
                        Feasibility::AlwaysFalse => "always false",
                        Feasibility::Unknown => unreachable!(),
                    };
                    out.push(Diagnostic {
                        lint: self.name(),
                        severity: Severity::Warning,
                        loc,
                        message: format!(
                            "branch condition is {way} by interval analysis; \
                             the other edge is statically infeasible"
                        ),
                    });
                }
            }
        }
    }
}

/// Flags functions that may return while still holding a mutex they
/// themselves acquired. Lock-helper functions legitimately do this, hence a
/// warning; it also catches the classic leaked-lock bug shape.
pub struct LockNeverReleased;

impl LintPass for LockNeverReleased {
    fn name(&self) -> &'static str {
        "lock-never-released"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for fid in ctx.program.func_ids() {
            let function = ctx.program.func(fid);
            let cfg = &ctx.cfgs[fid.0 as usize];
            for (loc, g) in lockorder::unreleased_at_return(function, cfg, fid) {
                let name = &ctx.program.global(g).name;
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Warning,
                    loc,
                    message: format!(
                        "mutex `{name}` acquired in this function may still be held at return"
                    ),
                });
            }
        }
    }
}

/// Flags loads from global words that no instruction ever writes and the
/// initializer leaves implicitly zero — the value can only ever be 0, which
/// usually means a missing initialization or a vestigial flag.
pub struct ReadOfNeverWritten;

impl LintPass for ReadOfNeverWritten {
    fn name(&self) -> &'static str {
        "read-of-never-written"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let acc = scan_globals(ctx.program);
        for (gi, loads) in acc.loads.iter().enumerate() {
            if acc.escaped[gi] || !acc.stores[gi].is_empty() {
                continue;
            }
            let global = &ctx.program.globals[gi];
            for (loc, off) in loads {
                let initialized = (0..global.init.len() as i64).contains(off);
                if initialized {
                    continue;
                }
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Warning,
                    loc: *loc,
                    message: format!(
                        "load from `{}`[{off}] reads memory that is never written and not \
                         initialized: the value is always 0",
                        global.name
                    ),
                });
            }
        }
    }
}

/// Renders an abstract location for a diagnostic message.
fn absloc_name(program: &Program, l: AbsLoc) -> String {
    match l {
        AbsLoc::Global(g) => format!("`{}`", program.global(g).name),
        AbsLoc::Local(f, _) => format!("a stack slot of `{}`", program.func(f).name),
        AbsLoc::Alloc(loc) => {
            format!(
                "the allocation at `{}`:bb{}:{}",
                program.func(loc.func).name,
                loc.block.0,
                loc.idx
            )
        }
    }
}

/// Flags may-shared locations accessed both under a mutex and (elsewhere)
/// possibly without it: the classic "forgot the lock on one path" shape the
/// lockset detectors hunt dynamically, caught statically via aliasing. A
/// warning — the unguarded access may be ordered by spawn/join structure the
/// lockset view cannot see.
pub struct InconsistentLockGuard;

impl LintPass for InconsistentLockGuard {
    fn name(&self) -> &'static str {
        "inconsistent-lock-guard"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        use std::collections::BTreeMap;
        let rc = ctx.race_candidates;
        // Group the may-shared accesses by the abstract locations they touch.
        let mut by_target: BTreeMap<AbsLoc, Vec<Loc>> = BTreeMap::new();
        for a in &ctx.points_to.accesses {
            if !a.may_shared {
                continue;
            }
            for t in &a.targets {
                by_target.entry(*t).or_default().push(a.loc);
            }
        }
        let empty = std::collections::BTreeSet::new();
        for (target, accesses) in &by_target {
            // Mutexes some access of this location *must* hold.
            let mut guards: Vec<(GlobalId, Loc)> = Vec::new();
            for loc in accesses {
                for g in rc.must_locksets.get(loc).unwrap_or(&empty) {
                    if !guards.iter().any(|(have, _)| have == g) {
                        guards.push((*g, *loc));
                    }
                }
            }
            for (g, guarded_at) in guards {
                for loc in accesses {
                    if rc.may_locksets.get(loc).unwrap_or(&empty).contains(&g) {
                        continue;
                    }
                    let gname = &ctx.program.global(g).name;
                    let gfn = &ctx.program.func(guarded_at.func).name;
                    out.push(Diagnostic {
                        lint: self.name(),
                        severity: Severity::Warning,
                        loc: *loc,
                        message: format!(
                            "{} is guarded by mutex `{gname}` at `{gfn}`:bb{}:{} but this \
                             access may not hold it",
                            absloc_name(ctx.program, *target),
                            guarded_at.block.0,
                            guarded_at.idx,
                        ),
                    });
                }
            }
        }
    }
}

/// Flags writes to may-shared memory performed with no lock possibly held at
/// all while the write belongs to a race-pair candidate: nothing orders it
/// against the other side of the pair. A warning — the race workloads in the
/// corpus do this deliberately.
pub struct SharedUnsynchronizedWrite;

impl LintPass for SharedUnsynchronizedWrite {
    fn name(&self) -> &'static str {
        "shared-unsynchronized-write"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let rc = ctx.race_candidates;
        let empty = std::collections::BTreeSet::new();
        for a in &ctx.points_to.accesses {
            if !a.is_write || !a.may_shared || !rc.is_candidate_access(a.loc) {
                continue;
            }
            if !rc.may_locksets.get(&a.loc).unwrap_or(&empty).is_empty() {
                continue;
            }
            let what = a
                .targets
                .iter()
                .map(|t| absloc_name(ctx.program, *t))
                .collect::<Vec<_>>()
                .join(", ");
            let what = if what.is_empty() { "an unresolved address".to_string() } else { what };
            out.push(Diagnostic {
                lint: self.name(),
                severity: Severity::Warning,
                loc: a.loc,
                message: format!(
                    "write to may-shared {what} holds no lock and races with another \
                     access (static race-pair candidate)"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::{CmpOp, ProgramBuilder};

    fn lint(program: &Program) -> Vec<Diagnostic> {
        LintRegistry::with_default_lints().run(program)
    }

    fn names(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.lint).collect()
    }

    #[test]
    fn unreachable_block_is_flagged() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            let dead = f.new_block("orphan");
            f.ret_void();
            f.switch_to(dead);
            f.ret_void();
        });
        let p = pb.finish("main");
        let diags = lint(&p);
        assert_eq!(names(&diags), vec!["unreachable-block"]);
        assert!(diags[0].message.contains("orphan"));
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn overwritten_store_is_flagged_and_intervening_load_suppresses() {
        let mut pb = ProgramBuilder::new("p");
        let g = pb.global("g", 1);
        let h = pb.global("h", 1);
        pb.function("main", 0, |f| {
            let gp = f.addr_global(g);
            f.store(gp, 1);
            f.store(gp, 2); // overwrites the first store
            let hp = f.addr_global(h);
            f.store(hp, 1);
            let v = f.load(hp); // observes it
            f.store(hp, 2);
            let s = f.add(v, 0);
            f.output(s);
            let v2 = f.load(gp);
            f.output(v2);
            let v3 = f.load(hp);
            f.output(v3);
            f.ret_void();
        });
        let p = pb.finish("main");
        let diags = lint(&p);
        assert_eq!(names(&diags), vec!["dead-store"]);
        assert!(diags[0].message.contains("`g`"));
    }

    #[test]
    fn write_only_global_is_flagged() {
        let mut pb = ProgramBuilder::new("p");
        let g = pb.global("scratch", 1);
        pb.function("main", 0, |f| {
            let gp = f.addr_global(g);
            let x = f.getchar();
            f.store(gp, x);
            f.ret_void();
        });
        let p = pb.finish("main");
        let diags = lint(&p);
        assert_eq!(names(&diags), vec!["dead-store"]);
        assert!(diags[0].message.contains("never read"));
    }

    #[test]
    fn escaped_global_is_not_write_only() {
        // The address is passed to a callee, so the scan must give up.
        let mut pb = ProgramBuilder::new("p");
        let g = pb.global("shared", 1);
        let sink = pb.declare("sink", 1);
        pb.define(sink, |f| {
            let v = f.load(f.param(0));
            f.output(v);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            let gp = f.addr_global(g);
            f.store(gp, 7);
            f.call_void(sink, vec![gp.into()]);
            f.ret_void();
        });
        let p = pb.finish("main");
        assert!(lint(&p).is_empty());
    }

    #[test]
    fn literal_constant_condition_is_an_error() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            let c = f.konst(1);
            f.diamond("dbg", c, |t| t.nop(), |e| e.nop());
            f.ret_void();
        });
        let p = pb.finish("main");
        let diags = lint(&p);
        // The dead else-arm also trips unreachable-block? No: both arms are
        // CFG-reachable — only the constant-condition error fires.
        assert_eq!(names(&diags), vec!["constant-condition"]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("constant 1"));
    }

    #[test]
    fn interval_decided_condition_is_a_warning() {
        // x & 63 <= 63 is not a literal constant but the interval analysis
        // decides it — the defensive-check shape must stay sub-error.
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let masked = f.bin(esd_ir::BinOp::And, x, 63);
            let c = f.cmp(CmpOp::Le, masked, 63);
            f.diamond("defensive", c, |t| t.nop(), |e| e.nop());
            f.ret_void();
        });
        let p = pb.finish("main");
        let diags = lint(&p);
        assert_eq!(names(&diags), vec!["constant-condition"]);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("always true"));
    }

    #[test]
    fn lock_held_at_return_is_flagged() {
        let mut pb = ProgramBuilder::new("p");
        let m = pb.global("m", 1);
        pb.function("main", 0, |f| {
            let mp = f.addr_global(m);
            f.lock(mp);
            f.ret_void();
        });
        let p = pb.finish("main");
        let diags = lint(&p);
        assert_eq!(names(&diags), vec!["lock-never-released"]);
        assert!(diags[0].message.contains("`m`"));
    }

    #[test]
    fn read_of_never_written_uninitialized_global_is_flagged() {
        let mut pb = ProgramBuilder::new("p");
        let g = pb.global("ghost", 2);
        let init = pb.global_init("seeded", 1, vec![5]);
        pb.function("main", 0, |f| {
            let gp = f.addr_global(g);
            let v = f.load(gp);
            f.output(v);
            // An explicitly initialized global read-only is fine.
            let ip = f.addr_global(init);
            let w = f.load(ip);
            f.output(w);
            f.ret_void();
        });
        let p = pb.finish("main");
        let diags = lint(&p);
        assert_eq!(names(&diags), vec!["read-of-never-written"]);
        assert!(diags[0].message.contains("`ghost`"));
    }

    #[test]
    fn preflight_rejects_only_errors() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            let c = f.konst(0);
            f.diamond("dead", c, |t| t.nop(), |e| e.nop());
            f.ret_void();
        });
        let p = pb.finish("main");
        let registry = LintRegistry::with_default_lints();
        let preflights: [&dyn Preflight; 1] = [&registry];
        let err = esd_ir::validate::validate_with(&p, &preflights)
            .expect_err("the constant branch must fail the preflight");
        assert_eq!(err.len(), 1);
        assert!(err[0].message.contains("constant-condition"));

        // A warning-only program passes.
        let mut pb = ProgramBuilder::new("q");
        let m = pb.global("m", 1);
        pb.function("main", 0, |f| {
            let mp = f.addr_global(m);
            f.lock(mp);
            f.ret_void();
        });
        let q = pb.finish("main");
        esd_ir::validate::validate_with(&q, &preflights)
            .expect("warnings must not fail validation");
    }

    #[test]
    fn inconsistently_guarded_shared_access_is_flagged() {
        // worker1 writes `counter` under `m`; worker2 writes it with no lock.
        let mut pb = ProgramBuilder::new("p");
        let counter = pb.global("counter", 1);
        let m = pb.global("m", 1);
        let w1 = pb.declare("w1", 1);
        pb.define(w1, |f| {
            let mp = f.addr_global(m);
            let cp = f.addr_global(counter);
            f.lock(mp);
            f.store(cp, 1);
            f.unlock(mp);
            f.ret_void();
        });
        let w2 = pb.declare("w2", 1);
        let mut naked = None;
        pb.define(w2, |f| {
            let cp = f.addr_global(counter);
            naked = Some(f.here());
            f.store(cp, 2);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            let h1 = f.spawn(w1, 0);
            let h2 = f.spawn(w2, 0);
            f.join(h1);
            f.join(h2);
            f.ret_void();
        });
        let p = pb.finish("main");
        let diags = lint(&p);
        let guard: Vec<_> = diags.iter().filter(|d| d.lint == "inconsistent-lock-guard").collect();
        assert!(!guard.is_empty(), "the unguarded access must be flagged: {diags:?}");
        assert!(guard.iter().any(|d| d.loc == naked.unwrap()));
        assert!(guard[0].message.contains("`m`"));
        assert!(guard.iter().all(|d| d.severity == Severity::Warning));
        // The naked shared write is also a race-candidate write with no lock.
        assert!(diags.iter().any(|d| d.lint == "shared-unsynchronized-write"));
    }

    #[test]
    fn consistently_guarded_accesses_stay_silent() {
        let mut pb = ProgramBuilder::new("p");
        let counter = pb.global("counter", 1);
        let m = pb.global("m", 1);
        let w = pb.declare("w", 1);
        pb.define(w, |f| {
            let mp = f.addr_global(m);
            let cp = f.addr_global(counter);
            f.lock(mp);
            let v = f.load(cp);
            let v1 = f.add(v, 1);
            f.store(cp, v1);
            f.unlock(mp);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            let h1 = f.spawn(w, 0);
            let h2 = f.spawn(w, 0);
            f.join(h1);
            f.join(h2);
            f.ret_void();
        });
        let p = pb.finish("main");
        let diags = lint(&p);
        assert!(
            !diags.iter().any(|d| matches!(
                d.lint,
                "inconsistent-lock-guard" | "shared-unsynchronized-write"
            )),
            "consistently locked accesses must not trip the aliasing lints: {diags:?}"
        );
    }

    #[test]
    fn render_is_stable_and_counts_severities() {
        let mut pb = ProgramBuilder::new("p");
        let m = pb.global("m", 1);
        pb.function("main", 0, |f| {
            let mp = f.addr_global(m);
            f.lock(mp);
            let c = f.konst(1);
            f.diamond("dbg", c, |t| t.nop(), |e| e.nop());
            f.ret_void();
        });
        let p = pb.finish("main");
        let diags = lint(&p);
        let text = render(&p, &diags);
        assert!(text.contains("error[constant-condition] main:"));
        assert!(text.contains("warning[lock-never-released] main:"));
        assert!(text.ends_with("1 error(s), 1 warning(s), 0 note(s)\n"));
    }
}
