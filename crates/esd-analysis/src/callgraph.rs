//! The interprocedural call graph, with best-effort function-pointer
//! resolution.
//!
//! The paper's static phase "performs alias analysis and resolves as many
//! function pointers as possible, replacing them with the corresponding
//! direct calls", and when that is not possible "averages the cost of the
//! call instruction across all possible targets". Our IR's only source of
//! function pointers is the `FuncAddr` instruction, so the resolution here is
//! address-taken + arity filtering: an indirect call may target any function
//! whose address is taken somewhere in the program and whose arity matches
//! the call.

use esd_ir::{Callee, FuncId, Inst, Loc, Program};
use std::collections::{HashMap, HashSet, VecDeque};

/// One call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Location of the call (or spawn) instruction.
    pub loc: Loc,
    /// Possible targets (singleton for direct calls).
    pub targets: Vec<FuncId>,
    /// True if this is a thread spawn rather than a call.
    pub is_spawn: bool,
    /// True if the call was indirect and had to be resolved heuristically.
    pub indirect: bool,
}

/// The program call graph.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// All call sites, grouped by calling function.
    pub sites: HashMap<FuncId, Vec<CallSite>>,
    /// Reverse edges: for each function, the call sites that may target it.
    pub callers: HashMap<FuncId, Vec<(FuncId, Loc)>>,
    /// Functions whose address is taken by a `FuncAddr` instruction.
    pub address_taken: HashSet<FuncId>,
    /// Strongly connected components of the call graph, in reverse
    /// topological order (callees before callers); `scc_index[f]` gives the
    /// component of `f`.
    pub scc_index: Vec<usize>,
    /// Members of each SCC.
    pub sccs: Vec<Vec<FuncId>>,
}

impl CallGraph {
    /// Builds the call graph of `program`.
    pub fn build(program: &Program) -> Self {
        let mut address_taken = HashSet::new();
        for f in &program.functions {
            for b in &f.blocks {
                for inst in &b.insts {
                    if let Inst::FuncAddr { func, .. } = inst {
                        address_taken.insert(*func);
                    }
                }
            }
        }

        let mut sites: HashMap<FuncId, Vec<CallSite>> = HashMap::new();
        let mut callers: HashMap<FuncId, Vec<(FuncId, Loc)>> = HashMap::new();
        for fid in program.func_ids() {
            let f = program.func(fid);
            let mut fsites = Vec::new();
            for bid in f.block_ids() {
                let block = f.block(bid);
                for (idx, inst) in block.insts.iter().enumerate() {
                    let loc = Loc { func: fid, block: bid, idx: idx as u32 };
                    let (callee, is_spawn, expected_arity) = match inst {
                        Inst::Call { callee, args, .. } => (callee, false, args.len()),
                        Inst::ThreadSpawn { func, .. } => (func, true, 1usize),
                        _ => continue,
                    };
                    let (targets, indirect) = match callee {
                        Callee::Direct(t) => (vec![*t], false),
                        Callee::Indirect(_) => {
                            let t: Vec<FuncId> = address_taken
                                .iter()
                                .copied()
                                .filter(|t| program.func(*t).num_params as usize == expected_arity)
                                .collect();
                            (t, true)
                        }
                    };
                    for t in &targets {
                        callers.entry(*t).or_default().push((fid, loc));
                    }
                    fsites.push(CallSite { loc, targets, is_spawn, indirect });
                }
            }
            sites.insert(fid, fsites);
        }

        let (scc_index, sccs) = compute_sccs(program, &sites);
        CallGraph { sites, callers, address_taken, scc_index, sccs }
    }

    /// Call sites within `f`.
    pub fn sites_of(&self, f: FuncId) -> &[CallSite] {
        self.sites.get(&f).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// True if `caller` and `callee` belong to the same SCC (i.e. the call is
    /// part of a recursion cycle), or if `callee == caller`.
    pub fn is_recursive_call(&self, caller: FuncId, callee: FuncId) -> bool {
        caller == callee || self.scc_index[caller.0 as usize] == self.scc_index[callee.0 as usize]
    }

    /// The set of functions from which `target` is reachable through calls
    /// (including `target` itself): these are the only functions a state can
    /// be in and still eventually reach a goal located in `target` by making
    /// calls (it may of course also reach it by first returning).
    pub fn functions_reaching(&self, target: FuncId) -> HashSet<FuncId> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(target);
        queue.push_back(target);
        while let Some(f) = queue.pop_front() {
            if let Some(cs) = self.callers.get(&f) {
                for (caller, _) in cs {
                    if seen.insert(*caller) {
                        queue.push_back(*caller);
                    }
                }
            }
        }
        seen
    }

    /// Functions reachable from `entry` through calls and spawns.
    pub fn reachable_functions(&self, entry: FuncId) -> HashSet<FuncId> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(entry);
        queue.push_back(entry);
        while let Some(f) = queue.pop_front() {
            for site in self.sites_of(f) {
                for t in &site.targets {
                    if seen.insert(*t) {
                        queue.push_back(*t);
                    }
                }
            }
        }
        seen
    }
}

/// Tarjan's SCC algorithm over the call graph. Returns `(scc_index, sccs)`
/// with SCCs emitted in reverse topological order (callees first).
fn compute_sccs(
    program: &Program,
    sites: &HashMap<FuncId, Vec<CallSite>>,
) -> (Vec<usize>, Vec<Vec<FuncId>>) {
    let n = program.functions.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<FuncId>> = Vec::new();
    let mut scc_index = vec![usize::MAX; n];

    // Iterative Tarjan to avoid deep recursion on large programs.
    enum Phase {
        Enter(usize),
        Resume(usize, usize),
    }
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work = vec![Phase::Enter(start)];
        while let Some(phase) = work.pop() {
            match phase {
                Phase::Enter(v) => {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    work.push(Phase::Resume(v, 0));
                }
                Phase::Resume(v, mut child_idx) => {
                    let succs: Vec<usize> = sites
                        .get(&FuncId(v as u32))
                        .map(|ss| {
                            ss.iter().flat_map(|s| s.targets.iter().map(|t| t.0 as usize)).collect()
                        })
                        .unwrap_or_default();
                    let mut descended = false;
                    while child_idx < succs.len() {
                        let w = succs[child_idx];
                        child_idx += 1;
                        if index[w] == usize::MAX {
                            work.push(Phase::Resume(v, child_idx));
                            work.push(Phase::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            lowlink[v] = lowlink[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All children processed.
                    if lowlink[v] == index[v] {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().unwrap();
                            on_stack[w] = false;
                            scc_index[w] = sccs.len();
                            component.push(FuncId(w as u32));
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(component);
                    }
                    // Propagate lowlink to parent, if any.
                    if let Some(Phase::Resume(parent, _)) = work.last() {
                        let parent = *parent;
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                }
            }
        }
    }
    (scc_index, sccs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::{CmpOp, Operand, ProgramBuilder};

    fn program_with_calls() -> Program {
        let mut pb = ProgramBuilder::new("p");
        let leaf = pb.function("leaf", 1, |f| {
            let r = f.add(f.param(0), 1);
            f.ret(r);
        });
        let rec = pb.declare("rec", 1);
        pb.define(rec, |f| {
            let n = f.param(0);
            let z = f.cmp(CmpOp::Le, n, 0);
            let base = f.new_block("base");
            let again = f.new_block("again");
            f.cond_br(z, base, again);
            f.switch_to(base);
            f.ret(0);
            f.switch_to(again);
            let n1 = f.sub(n, 1);
            let r = f.call(rec, vec![n1.into()]);
            f.ret(r);
        });
        pb.function("main", 0, |f| {
            let a = f.call(leaf, vec![Operand::Const(1)]);
            let fp = f.func_addr(leaf);
            let b = f.call_indirect(fp, vec![Operand::Const(2)]);
            let c = f.call(rec, vec![a.into()]);
            let s = f.add(b, c);
            f.output(s);
            f.ret_void();
        });
        pb.finish("main")
    }

    #[test]
    fn direct_and_indirect_sites_are_collected() {
        let p = program_with_calls();
        let cg = CallGraph::build(&p);
        let main = p.func_by_name("main").unwrap();
        let leaf = p.func_by_name("leaf").unwrap();
        let sites = cg.sites_of(main);
        assert_eq!(sites.len(), 3);
        assert!(sites.iter().any(|s| s.indirect && s.targets.contains(&leaf)));
        assert!(cg.address_taken.contains(&leaf));
    }

    #[test]
    fn recursion_is_detected_via_sccs() {
        let p = program_with_calls();
        let cg = CallGraph::build(&p);
        let rec = p.func_by_name("rec").unwrap();
        let leaf = p.func_by_name("leaf").unwrap();
        let main = p.func_by_name("main").unwrap();
        assert!(cg.is_recursive_call(rec, rec));
        assert!(!cg.is_recursive_call(main, leaf));
        // Reverse topological order: leaf and rec must come before main.
        let main_scc = cg.scc_index[main.0 as usize];
        assert!(cg.scc_index[leaf.0 as usize] < main_scc);
        assert!(cg.scc_index[rec.0 as usize] < main_scc);
    }

    #[test]
    fn functions_reaching_walks_caller_edges() {
        let p = program_with_calls();
        let cg = CallGraph::build(&p);
        let leaf = p.func_by_name("leaf").unwrap();
        let main = p.func_by_name("main").unwrap();
        let rec = p.func_by_name("rec").unwrap();
        let reach_leaf = cg.functions_reaching(leaf);
        assert!(reach_leaf.contains(&leaf));
        assert!(reach_leaf.contains(&main));
        assert!(!reach_leaf.contains(&rec));
    }

    #[test]
    fn reachable_functions_from_entry() {
        let p = program_with_calls();
        let cg = CallGraph::build(&p);
        let all = cg.reachable_functions(p.entry);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn spawns_count_as_call_edges() {
        let mut pb = ProgramBuilder::new("p");
        let worker = pb.function("worker", 1, |f| f.ret_void());
        pb.function("main", 0, |f| {
            let t = f.spawn(worker, 0);
            f.join(t);
            f.ret_void();
        });
        let p = pb.finish("main");
        let cg = CallGraph::build(&p);
        let main = p.func_by_name("main").unwrap();
        let sites = cg.sites_of(main);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].is_spawn);
        assert!(cg.reachable_functions(p.entry).contains(&worker));
    }
}
