//! Per-goal distance maps and the proximity heuristic (Algorithm 1).
//!
//! [`DistanceOracle`] answers the question the dynamic phase asks before
//! every state-selection decision: *how many instructions, at least, separate
//! this execution state from the goal?* The estimate accounts for three ways
//! of getting there:
//!
//! 1. staying in the current function and walking the CFG to the goal block,
//! 2. calling into a function from which the goal is reachable (charging the
//!    call plus the callee-side distance), and
//! 3. returning to a caller and continuing from the return address (the
//!    call-stack walk of Algorithm 1, lines 2–6).
//!
//! Distances are per-goal; the oracle caches the per-goal maps so that the
//! final goal and every intermediate goal each pay the pre-computation once.
//!
//! When the queried goal belongs to the goal set the static analysis was
//! computed for, distances are measured with the *sliced* cost model
//! ([`StaticAnalysis::costs_for_goal`]): instructions the backward relevance
//! slice ([`crate::slice`](mod@crate::slice)) proves cannot affect the goal
//! cost zero, so a state wading through goal-relevant work ranks closer than
//! one wading through bookkeeping of the same length.

use crate::costs::INF;
use crate::StaticAnalysis;
use esd_ir::{BlockId, Callee, FuncId, Inst, Loc, Program};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::{Arc, Mutex};

fn sat(a: u64, b: u64) -> u64 {
    let s = a.saturating_add(b);
    if s >= INF {
        INF
    } else {
        s
    }
}

/// Distance maps for one goal.
#[derive(Debug)]
pub struct GoalDistances {
    /// The goal these distances lead to.
    pub goal: Loc,
    /// `block_entry[f][b]` = least cost from the start of block `b` of
    /// function `f` to the goal (possibly via calls), INF if unreachable.
    pub block_entry: Vec<Vec<u64>>,
    /// `func_entry[f]` = least cost from the entry of `f` to the goal.
    pub func_entry: Vec<u64>,
}

/// Answers proximity queries (Algorithm 1) for arbitrary goals.
///
/// The oracle shares ownership of the program and its static analysis via
/// [`Arc`], so the search engine (and the synthesis sessions built on it) can
/// own an oracle outright instead of borrowing one for the duration of a
/// blocking run.
pub struct DistanceOracle {
    program: Arc<Program>,
    analysis: Arc<StaticAnalysis>,
    cache: Mutex<HashMap<Loc, Arc<GoalDistances>>>,
}

impl DistanceOracle {
    /// Creates an oracle over the given program and its pre-computed static
    /// analysis (the oracle reads the CFGs, the call graph and the cost
    /// model; the per-goal pieces of the analysis are ignored).
    pub fn new(program: Arc<Program>, analysis: Arc<StaticAnalysis>) -> Self {
        DistanceOracle { program, analysis, cache: Mutex::new(HashMap::new()) }
    }

    /// Returns (computing and caching on first use) the distance maps for
    /// `goal`.
    pub fn goal_distances(&self, goal: Loc) -> Arc<GoalDistances> {
        if let Some(gd) = self.cache.lock().expect("oracle cache poisoned").get(&goal) {
            return gd.clone();
        }
        // Compute outside the lock: distance maps are deterministic, so two
        // racing computations of the same goal insert identical maps.
        let gd = Arc::new(self.compute_goal_distances(goal));
        self.cache.lock().expect("oracle cache poisoned").insert(goal, gd.clone());
        gd
    }

    fn call_targets(&self, inst: &Inst, caller: FuncId) -> Vec<FuncId> {
        match inst {
            Inst::Call { callee: Callee::Direct(t), .. }
            | Inst::ThreadSpawn { func: Callee::Direct(t), .. } => vec![*t],
            Inst::Call { callee: Callee::Indirect(_), args, .. } => self
                .analysis
                .callgraph
                .address_taken
                .iter()
                .copied()
                .filter(|t| self.program.func(*t).num_params as usize == args.len())
                .collect(),
            _ => {
                let _ = caller;
                vec![]
            }
        }
    }

    fn compute_goal_distances(&self, goal: Loc) -> GoalDistances {
        let nf = self.program.functions.len();
        let mut func_entry = vec![INF; nf];
        let mut block_entry: Vec<Vec<u64>> =
            self.program.functions.iter().map(|f| vec![INF; f.blocks.len()]).collect();

        // Only functions from which the goal's function is reachable through
        // calls can have finite distances; iterate to a fixed point over
        // those (the dependency is: a caller's distance uses its callees'
        // entry distances).
        let relevant = self.analysis.callgraph.functions_reaching(goal.func);
        let mut order: Vec<FuncId> = relevant.iter().copied().collect();
        // Process the goal's own function first, then the rest; the fixed
        // point iteration handles any remaining ordering issues.
        order.sort_by_key(|f| if *f == goal.func { 0 } else { 1 });

        let max_iters = order.len().max(1) + 1;
        for _ in 0..max_iters {
            let mut changed = false;
            for f in &order {
                let new = self.function_block_distances(*f, goal, &func_entry);
                let fe = new[0];
                if new != block_entry[f.0 as usize] {
                    block_entry[f.0 as usize] = new;
                    changed = true;
                }
                if fe < func_entry[f.0 as usize] {
                    func_entry[f.0 as usize] = fe;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        GoalDistances { goal, block_entry, func_entry }
    }

    /// Distance from the start of every block of `f` to the goal, given the
    /// current estimates of callee entry distances.
    fn function_block_distances(&self, f: FuncId, goal: Loc, func_entry: &[u64]) -> Vec<u64> {
        let function = self.program.func(f);
        let cfg = &self.analysis.cfgs[f.0 as usize];
        let n = function.blocks.len();
        let mut dist = vec![INF; n];
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();

        // Seed with each block's "exit" distance: reaching the goal directly
        // inside the block, or entering a callee that can reach the goal.
        for (bi, d) in dist.iter_mut().enumerate() {
            let b = BlockId(bi as u32);
            let base = self.block_exit_distance(f, b, 0, goal, func_entry);
            if base < INF {
                *d = base;
                heap.push(Reverse((base, bi)));
            }
        }
        while let Some(Reverse((d, b))) = heap.pop() {
            if d > dist[b] {
                continue;
            }
            for p in cfg.preds(BlockId(b as u32)) {
                let pi = p.0 as usize;
                let nd = sat(self.analysis.costs_for_goal(goal).block_cost[f.0 as usize][pi], d);
                if nd < dist[pi] {
                    dist[pi] = nd;
                    heap.push(Reverse((nd, pi)));
                }
            }
        }
        dist
    }

    /// Least cost of reaching the goal from instruction `from_idx` of block
    /// `b` *without leaving the block through its terminator*: either the
    /// goal instruction itself lies ahead in this block, or a call ahead in
    /// this block enters a function from which the goal is reachable.
    fn block_exit_distance(
        &self,
        f: FuncId,
        b: BlockId,
        from_idx: u32,
        goal: Loc,
        func_entry: &[u64],
    ) -> u64 {
        let function = self.program.func(f);
        let block = function.block(b);
        let costs = self.analysis.costs_for_goal(goal);
        let mut best = INF;
        // Goal directly ahead in this block.
        if f == goal.func && b == goal.block && from_idx <= goal.idx {
            let d = costs
                .block_prefix_cost(f, b, goal.idx)
                .saturating_sub(costs.block_prefix_cost(f, b, from_idx));
            best = best.min(d);
        }
        // A call ahead in this block into a goal-reaching function.
        for (i, inst) in block.insts.iter().enumerate().skip(from_idx as usize) {
            if matches!(inst, Inst::Call { .. } | Inst::ThreadSpawn { .. }) {
                let walked = costs
                    .block_prefix_cost(f, b, i as u32)
                    .saturating_sub(costs.block_prefix_cost(f, b, from_idx));
                for t in self.call_targets(inst, f) {
                    let via = sat(sat(walked, 1), func_entry[t.0 as usize]);
                    best = best.min(via);
                }
            }
        }
        best
    }

    /// Distance from an arbitrary location to the goal, ignoring the
    /// possibility of first returning to a caller (that is handled by
    /// [`DistanceOracle::proximity`]).
    pub fn distance_from(&self, gd: &GoalDistances, loc: Loc) -> u64 {
        let f = loc.func;
        if (f.0 as usize) >= self.program.functions.len() {
            return INF;
        }
        let goal = gd.goal;
        let mut best = self.block_exit_distance(f, loc.block, loc.idx, goal, &gd.func_entry);
        // Leave through the terminator and continue from a successor block.
        let suffix = self.analysis.costs_for_goal(goal).block_suffix_cost(f, loc.block, loc.idx);
        let function = self.program.func(f);
        for s in function.block(loc.block).term.successors() {
            let d = sat(suffix, gd.block_entry[f.0 as usize][s.0 as usize]);
            best = best.min(d);
        }
        best
    }

    /// Algorithm 1: the proximity of an execution state — given as its call
    /// stack of locations, outermost frame first, innermost (current pc)
    /// last — to `goal`.
    pub fn proximity(&self, stack: &[Loc], goal: Loc) -> u64 {
        let gd = self.goal_distances(goal);
        let Some(&pc) = stack.last() else { return INF };
        let mut dmin = self.distance_from(&gd, pc);
        // Walk outward through the call stack: return from the current
        // frame(s), then continue toward the goal from the return address.
        let mut ret_cost = self.analysis.costs.dist2ret(&self.program, pc);
        for caller in stack.iter().rev().skip(1) {
            let d = sat(sat(ret_cost, 1), self.distance_from(&gd, *caller));
            dmin = dmin.min(d);
            ret_cost = sat(sat(ret_cost, 1), self.analysis.costs.dist2ret(&self.program, *caller));
            if ret_cost >= INF {
                break;
            }
        }
        dmin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::{CmpOp, Operand, Program, ProgramBuilder};

    struct Fixture {
        program: Arc<Program>,
        analysis: Arc<StaticAnalysis>,
    }

    impl Fixture {
        fn new(program: Program) -> Self {
            // The oracle only reads the goal-independent parts of the
            // analysis, so any valid location works as the analysis goal.
            let goal = Loc::new(program.entry, BlockId(0), 0);
            let analysis = Arc::new(StaticAnalysis::compute(&program, goal));
            Fixture { program: Arc::new(program), analysis }
        }

        fn oracle(&self) -> DistanceOracle {
            DistanceOracle::new(self.program.clone(), self.analysis.clone())
        }
    }

    fn branchy_program() -> Program {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let c = f.cmp(CmpOp::Eq, x, 1);
            let near = f.new_block("near");
            let far = f.new_block("far");
            let goal = f.new_block("goal");
            f.cond_br(c, near, far);
            f.switch_to(near);
            f.br(goal);
            f.switch_to(far);
            for _ in 0..20 {
                f.nop();
            }
            f.br(goal);
            f.switch_to(goal);
            f.output(1);
            f.ret_void();
        });
        pb.finish("main")
    }

    #[test]
    fn distance_prefers_the_short_branch() {
        let fx = Fixture::new(branchy_program());
        let oracle = fx.oracle();
        let main = fx.program.entry;
        let goal = Loc::new(main, BlockId(3), 0);
        let gd = oracle.goal_distances(goal);
        let near = oracle.distance_from(&gd, Loc::new(main, BlockId(1), 0));
        let far = oracle.distance_from(&gd, Loc::new(main, BlockId(2), 0));
        assert!(near < far, "near {near} must be < far {far}");
        // From the entry, the estimate takes the short side.
        let entry = oracle.distance_from(&gd, Loc::new(main, BlockId(0), 0));
        assert!(entry <= far);
        assert!(entry >= near);
    }

    #[test]
    fn unreachable_goal_has_infinite_distance() {
        let mut pb = ProgramBuilder::new("p");
        pb.function("main", 0, |f| {
            let dead = f.new_block("dead");
            f.ret_void();
            f.switch_to(dead);
            f.ret_void();
        });
        let p = pb.finish("main");
        let fx = Fixture::new(p);
        let oracle = fx.oracle();
        let goal = Loc::new(fx.program.entry, BlockId(1), 0);
        let gd = oracle.goal_distances(goal);
        let entry = oracle.distance_from(&gd, Loc::new(fx.program.entry, BlockId(0), 0));
        assert_eq!(entry, INF);
    }

    #[test]
    fn distance_through_calls_reaches_goals_in_callees() {
        let mut pb = ProgramBuilder::new("p");
        let callee = pb.function("callee", 1, |f| {
            f.nop();
            f.nop();
            f.output(f.param(0));
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            f.nop();
            f.call_void(callee, vec![Operand::Const(3)]);
            f.ret_void();
        });
        let p = pb.finish("main");
        let fx = Fixture::new(p);
        let oracle = fx.oracle();
        let callee_id = fx.program.func_by_name("callee").unwrap();
        // Goal: the `output` inside the callee.
        let goal = Loc::new(callee_id, BlockId(0), 2);
        let gd = oracle.goal_distances(goal);
        let main_entry = Loc::new(fx.program.entry, BlockId(0), 0);
        let d = oracle.distance_from(&gd, main_entry);
        // nop(1) + call(1) + callee: nop+nop = 2 → 4 total.
        assert_eq!(d, 4);
    }

    #[test]
    fn proximity_considers_returning_to_callers() {
        let mut pb = ProgramBuilder::new("p");
        let helper = pb.function("helper", 0, |f| {
            f.nop();
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            f.call_void(helper, vec![]);
            f.nop();
            f.output(7); // goal
            f.ret_void();
        });
        let p = pb.finish("main");
        let fx = Fixture::new(p);
        let oracle = fx.oracle();
        let main = fx.program.entry;
        let helper_id = fx.program.func_by_name("helper").unwrap();
        let goal = Loc::new(main, BlockId(0), 2);
        // State: inside helper (at its nop), called from main where the
        // return address is main's idx 1 (the nop after the call).
        let stack = [Loc::new(main, BlockId(0), 1), Loc::new(helper_id, BlockId(0), 0)];
        let d = oracle.proximity(&stack, goal);
        // helper: nop + ret = 2, +1 for the return edge, then main: nop = 1
        // → at the goal ⇒ 2 + 1 + 1 = 4.
        assert_eq!(d, 4);
        // Without the caller frame the goal is unreachable from helper.
        let d_inner_only = oracle.proximity(&[Loc::new(helper_id, BlockId(0), 0)], goal);
        assert_eq!(d_inner_only, INF);
    }

    #[test]
    fn proximity_decreases_monotonically_along_the_straight_path() {
        let fx = Fixture::new(branchy_program());
        let oracle = fx.oracle();
        let main = fx.program.entry;
        let goal = Loc::new(main, BlockId(3), 1);
        let d0 = oracle.proximity(&[Loc::new(main, BlockId(0), 0)], goal);
        let d1 = oracle.proximity(&[Loc::new(main, BlockId(1), 0)], goal);
        let d2 = oracle.proximity(&[Loc::new(main, BlockId(3), 0)], goal);
        let d3 = oracle.proximity(&[Loc::new(main, BlockId(3), 1)], goal);
        assert!(d0 > d1 && d1 > d2 && d2 > d3);
        assert_eq!(d3, 0);
    }

    #[test]
    fn sliced_costs_apply_only_to_the_analysis_goal() {
        // Dead arithmetic (feeding only an output) sits between the entry and
        // the goal. When the analysis is computed *for* that goal, the slice
        // zeroes the dead instructions and the distance shrinks; ad-hoc
        // queries for other goals keep the full model.
        let mut pb = ProgramBuilder::new("p");
        let mut goal = None;
        pb.function("main", 0, |f| {
            let a = f.konst(10);
            let b = f.mul(a, 3);
            f.output(b);
            let x = f.getchar();
            let c = f.cmp(CmpOp::Eq, x, 7);
            goal = Some(f.here());
            f.assert(c, "x is 7");
            f.ret_void();
        });
        let program = pb.finish("main");
        let goal = goal.unwrap();
        let entry = Loc::new(program.entry, BlockId(0), 0);

        let program = Arc::new(program);
        let analysis = Arc::new(StaticAnalysis::compute(&program, goal));
        let oracle = DistanceOracle::new(program.clone(), analysis.clone());
        let sliced = oracle.proximity(&[entry], goal);
        // Full model: konst + mul + output + getchar + cmp = 5. Sliced: the
        // first three cost zero, leaving getchar + cmp = 2.
        assert_eq!(sliced, 2);

        // The same query through an analysis computed for a *different* goal
        // uses the full model.
        let other = Arc::new(StaticAnalysis::compute(&program, entry));
        let full_oracle = DistanceOracle::new(program.clone(), other);
        assert_eq!(full_oracle.proximity(&[entry], goal), 5);
    }

    #[test]
    fn goal_distances_are_cached_per_goal() {
        let fx = Fixture::new(branchy_program());
        let oracle = fx.oracle();
        let main = fx.program.entry;
        let goal = Loc::new(main, BlockId(3), 0);
        let a = oracle.goal_distances(goal);
        let b = oracle.goal_distances(goal);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
