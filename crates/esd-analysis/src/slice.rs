//! Backward goal-directed relevance slicing over the points-to facts.
//!
//! The proximity heuristic (Algorithm 1) counts *every* instruction along a
//! path toward the goal, so a state wading through bookkeeping arithmetic
//! looks exactly as far from the goal as one wading through goal-relevant
//! computation of the same length. This module sharpens that: a demand-driven
//! backward slice from the goal locations marks the instructions that can
//! still *affect* whether and how the goal is reached, and a sliced copy of
//! the [`CostModel`] charges everything else zero. Distances computed from
//! the sliced model ([`crate::StaticAnalysis::costs_for_goal`]) then measure
//! only relevant work — instructions that cannot affect the goal stop
//! counting toward proximity.
//!
//! The slice is the classic demand set over three kinds of items, closed
//! under the worklist below:
//!
//! * **registers** — demanded registers make their defining instructions
//!   relevant, which in turn demand their operands;
//! * **abstract memory locations** — a relevant `Load` demands the
//!   [`AbsLoc`]s it may read (from [`crate::pointsto`]), which makes every
//!   `Store` that may touch them relevant;
//! * **control and schedule** — every branch condition is demanded (control
//!   flow always decides reachability), and synchronization instructions
//!   (locks, condition variables, spawn/join/yield, `Free`, `Assert`, and
//!   calls) are unconditionally relevant: they shape the schedule space the
//!   dynamic phase searches.
//!
//! Slicing only re-weights the search's *guidance*; it never removes states
//! or forks, so a too-small slice can cost search time but not soundness.

use crate::callgraph::CallGraph;
use crate::costs::CostModel;
use crate::pointsto::{AbsLoc, PointsTo};
use esd_ir::{BlockId, Callee, FuncId, Inst, Loc, Operand, Program, Reg, Terminator};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// The relevance slice for one goal set, with the sliced cost model derived
/// from it.
#[derive(Debug, Clone)]
pub struct RelevanceSlice {
    /// The goal locations this slice was computed for.
    pub goals: BTreeSet<Loc>,
    /// `relevant[f][b][i]` — the `i`-th instruction of that block can still
    /// affect a goal (terminators are always counted and not listed here).
    pub relevant: Vec<Vec<Vec<bool>>>,
    /// The full cost model with irrelevant instructions re-weighted to zero
    /// (block costs recomputed accordingly; function costs, call costs and
    /// distance-to-return keep their unsliced values).
    pub costs: CostModel,
}

impl RelevanceSlice {
    /// True when the instruction at `loc` is in the slice (terminator
    /// positions answer `true`).
    pub fn is_relevant(&self, loc: Loc) -> bool {
        self.relevant
            .get(loc.func.0 as usize)
            .and_then(|f| f.get(loc.block.0 as usize))
            .map(|b| loc.idx as usize >= b.len() || b[loc.idx as usize])
            .unwrap_or(true)
    }

    /// Number of instructions sliced away (relevant = false) program-wide.
    pub fn pruned_count(&self) -> usize {
        self.relevant.iter().flat_map(|f| f.iter()).flat_map(|b| b.iter()).filter(|r| !**r).count()
    }
}

/// Worklist items of the demand closure.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Item {
    Inst(Loc),
    Reg(FuncId, Reg),
    Mem(AbsLoc),
    /// The return value of a function is demanded.
    Ret(FuncId),
}

/// Computes the backward relevance slice from `goals` and derives the sliced
/// cost model from `costs`.
pub fn compute(
    program: &Program,
    callgraph: &CallGraph,
    points_to: &PointsTo,
    costs: &CostModel,
    goals: &[Loc],
) -> RelevanceSlice {
    // ---- indices -----------------------------------------------------------
    let mut defs: HashMap<(FuncId, Reg), Vec<Loc>> = HashMap::new();
    let mut stores_touching: HashMap<AbsLoc, Vec<Loc>> = HashMap::new();
    let mut unresolved_stores: Vec<Loc> = Vec::new();
    let mut ret_uses: HashMap<FuncId, Vec<Reg>> = HashMap::new();
    // Call-result registers → the callees whose return value they carry.
    let mut call_results: HashMap<(FuncId, Reg), Vec<FuncId>> = HashMap::new();

    for fid in program.func_ids() {
        let function = program.func(fid);
        for (bi, block) in function.blocks.iter().enumerate() {
            for (ii, inst) in block.insts.iter().enumerate() {
                let loc = Loc::new(fid, BlockId(bi as u32), ii as u32);
                if let Some(dst) = inst.def() {
                    defs.entry((fid, dst)).or_default().push(loc);
                }
                match inst {
                    Inst::Store { .. } => match points_to.access_at(loc) {
                        Some(a) if !a.targets.is_empty() => {
                            for t in &a.targets {
                                stores_touching.entry(*t).or_default().push(loc);
                            }
                        }
                        _ => unresolved_stores.push(loc),
                    },
                    Inst::Call { dst: Some(d), callee, .. } => {
                        let targets = match callee {
                            Callee::Direct(t) => vec![*t],
                            Callee::Indirect(_) => callgraph
                                .sites_of(fid)
                                .iter()
                                .find(|s| s.loc == loc)
                                .map(|s| s.targets.clone())
                                .unwrap_or_default(),
                        };
                        call_results.entry((fid, *d)).or_default().extend(targets);
                    }
                    _ => {}
                }
            }
            if let Terminator::Ret { value: Some(Operand::Reg(r)) } = &block.term {
                ret_uses.entry(fid).or_default().push(*r);
            }
        }
    }

    // ---- demand closure ----------------------------------------------------
    let mut relevant_insts: HashSet<Loc> = HashSet::new();
    let mut demanded_regs: HashSet<(FuncId, Reg)> = HashSet::new();
    let mut demanded_mem: HashSet<AbsLoc> = HashSet::new();
    let mut demanded_rets: HashSet<FuncId> = HashSet::new();
    let mut worklist: VecDeque<Item> = VecDeque::new();

    // Seeds: the goals themselves, every schedule-shaping instruction, and
    // every branch condition.
    for g in goals {
        worklist.push_back(Item::Inst(*g));
    }
    for fid in program.func_ids() {
        let function = program.func(fid);
        for (bi, block) in function.blocks.iter().enumerate() {
            for (ii, inst) in block.insts.iter().enumerate() {
                let always = matches!(
                    inst,
                    Inst::MutexLock { .. }
                        | Inst::MutexUnlock { .. }
                        | Inst::CondWait { .. }
                        | Inst::CondSignal { .. }
                        | Inst::CondBroadcast { .. }
                        | Inst::ThreadSpawn { .. }
                        | Inst::ThreadJoin { .. }
                        | Inst::Yield
                        | Inst::Free { .. }
                        | Inst::Assert { .. }
                        | Inst::Call { .. }
                );
                if always {
                    worklist.push_back(Item::Inst(Loc::new(fid, BlockId(bi as u32), ii as u32)));
                }
            }
            if let Terminator::CondBr { cond: Operand::Reg(r), .. } = &block.term {
                worklist.push_back(Item::Reg(fid, *r));
            }
        }
    }

    while let Some(item) = worklist.pop_front() {
        match item {
            Item::Inst(loc) => {
                if !relevant_insts.insert(loc) {
                    continue;
                }
                let Some(inst) = program.inst_at(loc) else { continue };
                for op in inst.uses() {
                    if let Operand::Reg(r) = op {
                        worklist.push_back(Item::Reg(loc.func, r));
                    }
                }
                if matches!(inst, Inst::Load { .. }) {
                    if let Some(a) = points_to.access_at(loc) {
                        for t in &a.targets {
                            worklist.push_back(Item::Mem(*t));
                        }
                        if a.targets.is_empty() {
                            // Unresolved read: any store may feed it.
                            for l in stores_touching.keys() {
                                worklist.push_back(Item::Mem(*l));
                            }
                        }
                    }
                }
            }
            Item::Reg(f, r) => {
                if !demanded_regs.insert((f, r)) {
                    continue;
                }
                if let Some(ds) = defs.get(&(f, r)) {
                    for d in ds {
                        worklist.push_back(Item::Inst(*d));
                    }
                }
                if let Some(callees) = call_results.get(&(f, r)) {
                    for c in callees {
                        worklist.push_back(Item::Ret(*c));
                    }
                }
            }
            Item::Mem(l) => {
                if !demanded_mem.insert(l) {
                    continue;
                }
                if let Some(ss) = stores_touching.get(&l) {
                    for s in ss {
                        worklist.push_back(Item::Inst(*s));
                    }
                }
                for s in &unresolved_stores {
                    worklist.push_back(Item::Inst(*s));
                }
            }
            Item::Ret(f) => {
                if !demanded_rets.insert(f) {
                    continue;
                }
                if let Some(rs) = ret_uses.get(&f) {
                    for r in rs {
                        worklist.push_back(Item::Reg(f, *r));
                    }
                }
            }
        }
    }

    // ---- sliced cost model -------------------------------------------------
    let mut relevant: Vec<Vec<Vec<bool>>> = Vec::with_capacity(program.functions.len());
    let mut sliced = costs.clone();
    for fid in program.func_ids() {
        let function = program.func(fid);
        let f = fid.0 as usize;
        let mut per_func = Vec::with_capacity(function.blocks.len());
        for (bi, block) in function.blocks.iter().enumerate() {
            let mut bits = Vec::with_capacity(block.insts.len());
            let mut total = 1u64; // terminator
            for (ii, _) in block.insts.iter().enumerate() {
                let loc = Loc::new(fid, BlockId(bi as u32), ii as u32);
                let keep = relevant_insts.contains(&loc);
                bits.push(keep);
                if !keep {
                    sliced.inst_cost[f][bi][ii] = 0;
                }
                total = total.saturating_add(sliced.inst_cost[f][bi][ii]);
            }
            sliced.block_cost[f][bi] = total.min(crate::costs::INF);
            per_func.push(bits);
        }
        relevant.push(per_func);
    }

    RelevanceSlice { goals: goals.iter().copied().collect(), relevant, costs: sliced }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use esd_ir::{CmpOp, ProgramBuilder};

    fn run(program: &Program, goals: &[Loc]) -> RelevanceSlice {
        let cfgs: Vec<Cfg> = program.func_ids().map(|f| Cfg::build(program.func(f), f)).collect();
        let callgraph = CallGraph::build(program);
        let points_to = PointsTo::compute(program, &callgraph);
        let costs = CostModel::new(program, &cfgs, &callgraph);
        compute(program, &callgraph, &points_to, &costs, goals)
    }

    #[test]
    fn dead_arithmetic_is_sliced_away_and_costs_zero() {
        let mut pb = ProgramBuilder::new("p");
        let mut dead = None;
        let mut goal = None;
        pb.function("main", 0, |f| {
            // Bookkeeping that feeds only an output — irrelevant to the goal.
            dead = Some(f.here());
            let a = f.konst(10);
            let b = f.mul(a, 3);
            f.output(b);
            // The goal and what feeds it.
            let x = f.getchar();
            let c = f.eq(x, 7);
            goal = Some(f.here());
            f.assert(c, "x is 7");
            f.ret_void();
        });
        let p = pb.finish("main");
        let goal = goal.unwrap();
        let slice = run(&p, &[goal]);
        assert!(!slice.is_relevant(dead.unwrap()), "dead constant sliced away");
        assert!(slice.is_relevant(goal), "the goal itself stays");
        assert_eq!(slice.costs.inst_cost(dead.unwrap()), 0);
        assert!(slice.costs.inst_cost(goal) >= 1);
        assert!(slice.pruned_count() >= 2, "const + mul are both irrelevant");
        // Output itself is sliced (pure observation), its feeder too.
        let full = {
            let cfgs: Vec<Cfg> = p.func_ids().map(|f| Cfg::build(p.func(f), f)).collect();
            let cg = CallGraph::build(&p);
            CostModel::new(&p, &cfgs, &cg)
        };
        assert!(
            slice.costs.block_cost[0][0] < full.block_cost[0][0],
            "the sliced block is cheaper than the full one"
        );
    }

    #[test]
    fn stores_feeding_a_goal_load_stay_relevant() {
        let mut pb = ProgramBuilder::new("p");
        let flag = pb.global("flag", 1);
        let noise = pb.global("noise", 1);
        let mut flag_store = None;
        let mut noise_store = None;
        let mut goal = None;
        pb.function("main", 0, |f| {
            let fp = f.addr_global(flag);
            let np = f.addr_global(noise);
            flag_store = Some(f.here());
            f.store(fp, 1);
            noise_store = Some(f.here());
            f.store(np, 2);
            let v = f.load(fp);
            let c = f.cmp(CmpOp::Eq, v, 1);
            goal = Some(f.here());
            f.assert(c, "flag set");
            f.ret_void();
        });
        let p = pb.finish("main");
        let slice = run(&p, &[goal.unwrap()]);
        assert!(
            slice.is_relevant(flag_store.unwrap()),
            "the store feeding the goal's load is in the slice"
        );
        assert!(
            !slice.is_relevant(noise_store.unwrap()),
            "a store to memory the goal never reads is sliced away"
        );
    }

    #[test]
    fn synchronization_is_always_relevant() {
        let mut pb = ProgramBuilder::new("p");
        let m = pb.global("m", 1);
        let mut lock_loc = None;
        let mut yield_loc = None;
        let mut goal = None;
        pb.function("main", 0, |f| {
            let mp = f.addr_global(m);
            lock_loc = Some(f.here());
            f.lock(mp);
            yield_loc = Some(f.here());
            f.yield_now();
            f.unlock(mp);
            goal = Some(f.here());
            f.output(1);
            f.ret_void();
        });
        let p = pb.finish("main");
        let slice = run(&p, &[goal.unwrap()]);
        assert!(slice.is_relevant(lock_loc.unwrap()));
        assert!(slice.is_relevant(yield_loc.unwrap()));
    }

    #[test]
    fn demand_crosses_calls_through_return_values() {
        let mut pb = ProgramBuilder::new("p");
        let mut feeder = None;
        let helper = pb.declare("helper", 1);
        pb.define(helper, |f| {
            feeder = Some(f.here());
            let v = f.add(f.param(0), 5);
            f.ret(v);
        });
        let mut goal = None;
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let r = f.call(helper, vec![x.into()]);
            let c = f.eq(r, 9);
            goal = Some(f.here());
            f.assert(c, "r is 9");
            f.ret_void();
        });
        let p = pb.finish("main");
        let slice = run(&p, &[goal.unwrap()]);
        assert!(
            slice.is_relevant(feeder.unwrap()),
            "the callee's add feeds the demanded return value"
        );
    }
}
