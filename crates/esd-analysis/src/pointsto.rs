//! Flow-insensitive Andersen-style points-to and escape analysis.
//!
//! The paper's static phase "performs alias analysis" before the dynamic
//! search starts; this module is the memory half of that promise. Every IR
//! value that can carry an address is mapped to the set of *abstract
//! locations* ([`AbsLoc`]) it may point to: globals (`AddrGlobal`),
//! addressable stack slots (`AddrLocal`), and heap allocation sites
//! (`Alloc`). Constraints are the classic Andersen inclusion kind —
//! address-of introduces a location, copies and `Gep` propagate sets, and
//! `Load`/`Store` dereference through the current solution — iterated to a
//! fixpoint over the whole program (calls and spawns pass argument sets to
//! parameters, returns flow back to call results).
//!
//! On top of the solution, the *escape* classification marks the abstract
//! locations another thread could possibly touch: all globals, everything
//! reachable from a spawned thread's argument, and transitively everything
//! stored inside an escaped location. Each `Load`/`Store` site is then
//! classified **thread-local** vs **may-shared** ([`MemAccess`]): an access
//! is may-shared when any abstract location it may touch has escaped, or
//! when its address cannot be resolved at all (the conservative direction —
//! the race-candidate pruning built on this analysis must only ever
//! *over*-approximate the racing accesses).
//!
//! Consumers: [`crate::racecand`] builds the static race-pair candidates
//! from the shared accesses, [`crate::slice`] uses the location sets to
//! follow memory dependences backward from the goal, and the
//! aliasing-dependent lints (`inconsistent-lock-guard`,
//! `shared-unsynchronized-write`) read the classification directly.

use crate::callgraph::CallGraph;
use esd_ir::{Callee, FuncId, GlobalId, Inst, Loc, LocalId, Operand, Program, Reg, Terminator};
use std::collections::{BTreeSet, HashMap};

/// An abstract memory location of the points-to solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbsLoc {
    /// A global variable (the whole object; the analysis is field-
    /// insensitive, so every word of a global is one location).
    Global(GlobalId),
    /// An addressable local slot of the given function.
    Local(FuncId, LocalId),
    /// The heap object allocated by the `Alloc` instruction at this site.
    Alloc(Loc),
}

/// One classified memory access (`Load` or `Store`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemAccess {
    /// The access instruction's location.
    pub loc: Loc,
    /// True for `Store`, false for `Load`.
    pub is_write: bool,
    /// The abstract locations the access may touch (empty when the address
    /// could not be resolved to any abstract location).
    pub targets: BTreeSet<AbsLoc>,
    /// True when another thread may touch the same memory: a target escaped,
    /// or the address is unresolved (conservative).
    pub may_shared: bool,
}

/// The points-to and escape solution for a whole program.
#[derive(Debug, Clone, Default)]
pub struct PointsTo {
    /// Every `Load`/`Store` in the program, classified, in program order.
    pub accesses: Vec<MemAccess>,
    /// The escaped (may-shared) abstract locations.
    pub shared: BTreeSet<AbsLoc>,
    /// Points-to sets of virtual registers, keyed by `(function, register)`.
    /// Registers that never carry an address are absent.
    reg_pts: HashMap<(FuncId, Reg), BTreeSet<AbsLoc>>,
    /// Index of [`PointsTo::accesses`] by location.
    by_loc: HashMap<Loc, usize>,
}

/// Constraint-graph node: a register value, a function's return value, or
/// the contents of an abstract location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    Var(FuncId, Reg),
    Ret(FuncId),
    Mem(AbsLoc),
}

/// The collected inclusion constraints, solved by [`PointsTo::compute`].
#[derive(Default)]
struct Constraints {
    /// `pts(node) ∋ loc` seeds.
    base: Vec<(Node, AbsLoc)>,
    /// `pts(dst) ⊇ pts(src)` copies.
    copy: Vec<(Node, Node)>,
    /// `pts(dst) ⊇ pts(*addr)` loads.
    load: Vec<(Node, Node)>,
    /// `pts(*addr) ⊇ pts(src)` stores.
    store: Vec<(Node, Node)>,
    /// Operands passed to `ThreadSpawn` (their pointees escape).
    spawn_args: Vec<Node>,
}

impl PointsTo {
    /// Runs the analysis over `program`, resolving indirect calls and spawns
    /// through `callgraph`.
    pub fn compute(program: &Program, callgraph: &CallGraph) -> Self {
        let constraints = collect_constraints(program, callgraph);
        let mut pts: HashMap<Node, BTreeSet<AbsLoc>> = HashMap::new();
        for (node, loc) in &constraints.base {
            pts.entry(*node).or_default().insert(*loc);
        }

        // Fixpoint over the inclusion constraints. The abstract-location
        // universe is finite (globals + locals + allocation sites), so every
        // set grows monotonically toward a bound and the loop terminates.
        loop {
            let mut changed = false;
            for (dst, src) in &constraints.copy {
                changed |= flow(&mut pts, *src, *dst);
            }
            for (dst, addr) in &constraints.load {
                let targets: Vec<AbsLoc> =
                    pts.get(addr).map(|s| s.iter().copied().collect()).unwrap_or_default();
                for l in targets {
                    changed |= flow(&mut pts, Node::Mem(l), *dst);
                }
            }
            for (addr, src) in &constraints.store {
                let targets: Vec<AbsLoc> =
                    pts.get(addr).map(|s| s.iter().copied().collect()).unwrap_or_default();
                for l in targets {
                    changed |= flow(&mut pts, *src, Node::Mem(l));
                }
            }
            if !changed {
                break;
            }
        }

        // Escape closure: globals are addressable from any thread; whatever
        // a spawn argument points to is handed to the child; and anything
        // stored inside an escaped location escapes with it.
        let mut shared: BTreeSet<AbsLoc> =
            (0..program.globals.len() as u32).map(|g| AbsLoc::Global(GlobalId(g))).collect();
        for arg in &constraints.spawn_args {
            if let Some(s) = pts.get(arg) {
                shared.extend(s.iter().copied());
            }
        }
        loop {
            let mut grew = false;
            for l in shared.clone() {
                if let Some(contents) = pts.get(&Node::Mem(l)) {
                    for c in contents {
                        grew |= shared.insert(*c);
                    }
                }
            }
            if !grew {
                break;
            }
        }

        // Classify every access with the final solution.
        let mut accesses = Vec::new();
        let mut by_loc = HashMap::new();
        for fid in program.func_ids() {
            let function = program.func(fid);
            for (bi, block) in function.blocks.iter().enumerate() {
                for (ii, inst) in block.insts.iter().enumerate() {
                    let loc = Loc::new(fid, esd_ir::BlockId(bi as u32), ii as u32);
                    let (addr, is_write) = match inst {
                        Inst::Load { addr, .. } => (*addr, false),
                        Inst::Store { addr, .. } => (*addr, true),
                        _ => continue,
                    };
                    let targets = match addr {
                        Operand::Reg(r) => pts.get(&Node::Var(fid, r)).cloned().unwrap_or_default(),
                        Operand::Const(_) => BTreeSet::new(),
                    };
                    let may_shared =
                        targets.is_empty() || targets.iter().any(|t| shared.contains(t));
                    by_loc.insert(loc, accesses.len());
                    accesses.push(MemAccess { loc, is_write, targets, may_shared });
                }
            }
        }

        let reg_pts = pts
            .into_iter()
            .filter_map(|(node, set)| match node {
                Node::Var(f, r) if !set.is_empty() => Some(((f, r), set)),
                _ => None,
            })
            .collect();
        PointsTo { accesses, shared, reg_pts, by_loc }
    }

    /// The classified access at `loc`, if `loc` is a `Load` or `Store`.
    pub fn access_at(&self, loc: Loc) -> Option<&MemAccess> {
        self.by_loc.get(&loc).map(|i| &self.accesses[*i])
    }

    /// The points-to set of register `reg` in `func` (empty when the
    /// register never carries an address).
    pub fn points_to(&self, func: FuncId, reg: Reg) -> BTreeSet<AbsLoc> {
        self.reg_pts.get(&(func, reg)).cloned().unwrap_or_default()
    }

    /// True when the access at `loc` may touch memory another thread can
    /// also touch. Non-access locations answer `false`.
    pub fn is_may_shared(&self, loc: Loc) -> bool {
        self.access_at(loc).map(|a| a.may_shared).unwrap_or(false)
    }
}

/// Unions `pts(src)` into `pts(dst)`; true if `dst` grew.
fn flow(pts: &mut HashMap<Node, BTreeSet<AbsLoc>>, src: Node, dst: Node) -> bool {
    if src == dst {
        return false;
    }
    let Some(from) = pts.get(&src).cloned() else { return false };
    if from.is_empty() {
        return false;
    }
    let into = pts.entry(dst).or_default();
    let before = into.len();
    into.extend(from);
    into.len() != before
}

/// One pass over the program collecting the inclusion constraints.
fn collect_constraints(program: &Program, callgraph: &CallGraph) -> Constraints {
    let mut c = Constraints::default();
    for fid in program.func_ids() {
        let function = program.func(fid);
        // Indirect call/spawn targets come from the call graph's
        // address-taken + arity resolution.
        let site_targets: HashMap<Loc, Vec<FuncId>> =
            callgraph.sites_of(fid).iter().map(|s| (s.loc, s.targets.clone())).collect();
        let var = |r: Reg| Node::Var(fid, r);
        let operand = |op: Operand| -> Option<Node> {
            match op {
                Operand::Reg(r) => Some(Node::Var(fid, r)),
                Operand::Const(_) => None,
            }
        };
        for (bi, block) in function.blocks.iter().enumerate() {
            for (ii, inst) in block.insts.iter().enumerate() {
                let loc = Loc::new(fid, esd_ir::BlockId(bi as u32), ii as u32);
                match inst {
                    Inst::AddrGlobal { dst, global } => {
                        c.base.push((var(*dst), AbsLoc::Global(*global)));
                    }
                    Inst::AddrLocal { dst, local } => {
                        c.base.push((var(*dst), AbsLoc::Local(fid, *local)));
                    }
                    Inst::Alloc { dst, .. } => {
                        c.base.push((var(*dst), AbsLoc::Alloc(loc)));
                    }
                    // Field-insensitive: a pointer adjusted by `Gep` (or by
                    // plain arithmetic) still points into the same objects.
                    Inst::Gep { dst, base, .. } => {
                        if let Some(src) = operand(*base) {
                            c.copy.push((var(*dst), src));
                        }
                    }
                    Inst::Bin { dst, a, b, .. } => {
                        for op in [a, b] {
                            if let Some(src) = operand(*op) {
                                c.copy.push((var(*dst), src));
                            }
                        }
                    }
                    Inst::Load { dst, addr } => {
                        if let Some(addr) = operand(*addr) {
                            c.load.push((var(*dst), addr));
                        }
                    }
                    Inst::Store { addr, value } => {
                        if let (Some(addr), Some(value)) = (operand(*addr), operand(*value)) {
                            c.store.push((addr, value));
                        }
                    }
                    Inst::Call { dst, callee, args } => {
                        let targets: Vec<FuncId> = match callee {
                            Callee::Direct(t) => vec![*t],
                            Callee::Indirect(_) => {
                                site_targets.get(&loc).cloned().unwrap_or_default()
                            }
                        };
                        for t in targets {
                            for (i, arg) in args.iter().enumerate() {
                                if let Some(src) = operand(*arg) {
                                    c.copy.push((Node::Var(t, Reg(i as u32)), src));
                                }
                            }
                            if let Some(d) = dst {
                                c.copy.push((var(*d), Node::Ret(t)));
                            }
                        }
                    }
                    Inst::ThreadSpawn { func, arg, .. } => {
                        let targets: Vec<FuncId> = match func {
                            Callee::Direct(t) => vec![*t],
                            Callee::Indirect(_) => {
                                site_targets.get(&loc).cloned().unwrap_or_default()
                            }
                        };
                        if let Some(src) = operand(*arg) {
                            for t in &targets {
                                c.copy.push((Node::Var(*t, Reg(0)), src));
                            }
                            c.spawn_args.push(src);
                        }
                    }
                    _ => {}
                }
            }
            if let Terminator::Ret { value: Some(op) } = &block.term {
                if let Some(src) = operand(*op) {
                    c.copy.push((Node::Ret(fid), src));
                }
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::ProgramBuilder;

    fn compute(p: &Program) -> PointsTo {
        PointsTo::compute(p, &CallGraph::build(p))
    }

    #[test]
    fn globals_are_shared_and_locals_are_thread_local() {
        let mut pb = ProgramBuilder::new("p");
        let g = pb.global("g", 1);
        let mut global_store = None;
        let mut local_store = None;
        pb.function("main", 0, |f| {
            let gp = f.addr_global(g);
            global_store = Some(f.here());
            f.store(gp, 1);
            let slot = f.local(1);
            let lp = f.addr_local(slot);
            local_store = Some(f.here());
            f.store(lp, 2);
            f.ret_void();
        });
        let p = pb.finish("main");
        let pts = compute(&p);
        let ga = pts.access_at(global_store.unwrap()).unwrap();
        assert!(ga.may_shared, "a global access is always may-shared");
        assert_eq!(ga.targets.iter().collect::<Vec<_>>(), vec![&AbsLoc::Global(g)]);
        let la = pts.access_at(local_store.unwrap()).unwrap();
        assert!(!la.may_shared, "an unescaped local access is thread-local");
        assert!(la.is_write);
    }

    #[test]
    fn gep_and_arithmetic_preserve_the_pointed_to_object() {
        let mut pb = ProgramBuilder::new("p");
        let g = pb.global("buf", 4);
        let mut access = None;
        pb.function("main", 0, |f| {
            let gp = f.addr_global(g);
            let off = f.konst(2);
            let elem = f.gep(gp, off);
            access = Some(f.here());
            f.store(elem, 7);
            f.ret_void();
        });
        let p = pb.finish("main");
        let pts = compute(&p);
        let a = pts.access_at(access.unwrap()).unwrap();
        assert!(a.targets.contains(&AbsLoc::Global(g)));
    }

    #[test]
    fn pointers_flow_through_calls_and_returns() {
        let mut pb = ProgramBuilder::new("p");
        let g = pb.global("g", 1);
        let mut callee_store = None;
        let id = pb.declare("id", 1);
        pb.define(id, |f| {
            let p0 = f.param(0);
            callee_store = Some(f.here());
            f.store(p0, 5);
            f.ret(p0);
        });
        let mut caller_load = None;
        pb.function("main", 0, |f| {
            let gp = f.addr_global(g);
            let back = f.call(id, vec![gp.into()]);
            caller_load = Some(f.here());
            let v = f.load(back);
            f.output(v);
            f.ret_void();
        });
        let p = pb.finish("main");
        let pts = compute(&p);
        assert!(pts.access_at(callee_store.unwrap()).unwrap().targets.contains(&AbsLoc::Global(g)));
        assert!(pts.access_at(caller_load.unwrap()).unwrap().targets.contains(&AbsLoc::Global(g)));
    }

    #[test]
    fn memory_indirection_resolves_through_stores() {
        // g holds a pointer to the local slot; a load through g then reaches
        // the slot, and the slot escapes because g is a global.
        let mut pb = ProgramBuilder::new("p");
        let g = pb.global("holder", 1);
        let mut indirect_store = None;
        pb.function("main", 0, |f| {
            let slot = f.local(1);
            let lp = f.addr_local(slot);
            let gp = f.addr_global(g);
            f.store(gp, lp);
            let back = f.load(gp);
            indirect_store = Some(f.here());
            f.store(back, 3);
            f.ret_void();
        });
        let p = pb.finish("main");
        let pts = compute(&p);
        let main = p.entry;
        let a = pts.access_at(indirect_store.unwrap()).unwrap();
        assert!(a.targets.contains(&AbsLoc::Local(main, LocalId(0))));
        assert!(a.may_shared, "a local published through a global escapes");
        assert!(pts.shared.contains(&AbsLoc::Local(main, LocalId(0))));
    }

    #[test]
    fn alloc_stays_local_until_it_escapes_via_spawn() {
        let mut pb = ProgramBuilder::new("p");
        let mut worker_store = None;
        let worker = pb.declare("worker", 1);
        pb.define(worker, |f| {
            let p0 = f.param(0);
            worker_store = Some(f.here());
            f.store(p0, 1);
            f.ret_void();
        });
        let mut private_store = None;
        pb.function("main", 0, |f| {
            let private = f.alloc(2);
            private_store = Some(f.here());
            f.store(private, 9);
            let handed = f.alloc(2);
            let t = f.spawn(worker, handed);
            f.join(t);
            f.ret_void();
        });
        let p = pb.finish("main");
        let pts = compute(&p);
        assert!(
            !pts.access_at(private_store.unwrap()).unwrap().may_shared,
            "an allocation never handed out stays thread-local"
        );
        let wa = pts.access_at(worker_store.unwrap()).unwrap();
        assert!(wa.may_shared, "a spawn argument's pointee escapes to the child");
        assert!(!wa.targets.is_empty());
    }

    #[test]
    fn unresolved_addresses_classify_as_shared() {
        let mut pb = ProgramBuilder::new("p");
        let mut access = None;
        pb.function("main", 0, |f| {
            let null = f.konst(0);
            access = Some(f.here());
            let v = f.load(null);
            f.output(v);
            f.ret_void();
        });
        let p = pb.finish("main");
        let pts = compute(&p);
        let a = pts.access_at(access.unwrap()).unwrap();
        assert!(a.targets.is_empty());
        assert!(a.may_shared, "an unresolved address must classify conservatively");
    }
}
