//! Symbolic values and expressions.
//!
//! During the dynamic phase ESD runs the program "with symbolic inputs that
//! are initially unconstrained" (§3.3). Every word read from the environment
//! becomes a fresh symbolic variable; computed values are expression trees
//! over those variables; branch decisions on symbolic values add constraints
//! to the execution state.

use esd_ir::{BinOp, CmpOp, InputSource, ThreadId, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A symbolic input variable (one word read from the environment).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SymVar(pub u32);

impl fmt::Debug for SymVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Provenance of a symbolic variable: which thread read it, as which of its
/// reads, from which source. This is exactly the key the playback input
/// provider uses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymVarInfo {
    /// The thread that performed the read.
    pub thread: ThreadId,
    /// The per-thread sequence number of the read.
    pub seq: u32,
    /// Where the word came from.
    pub source: InputSource,
}

/// A symbolic expression over 64-bit integers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SymExpr {
    /// A constant.
    Const(i64),
    /// An input variable.
    Var(SymVar),
    /// A binary arithmetic/bitwise operation.
    Bin(BinOp, Arc<SymExpr>, Arc<SymExpr>),
    /// A comparison (evaluates to 0 or 1).
    Cmp(CmpOp, Arc<SymExpr>, Arc<SymExpr>),
    /// Logical negation (`e == 0`).
    Not(Arc<SymExpr>),
}

impl SymExpr {
    /// Wraps in an `Arc` (most constructors take `Arc<SymExpr>`).
    pub fn arc(self) -> Arc<SymExpr> {
        Arc::new(self)
    }

    /// Builds a constant expression.
    pub fn constant(v: i64) -> Arc<SymExpr> {
        Arc::new(SymExpr::Const(v))
    }

    /// Builds a variable expression.
    pub fn var(v: SymVar) -> Arc<SymExpr> {
        Arc::new(SymExpr::Var(v))
    }

    /// Builds a binary operation with constant folding.
    pub fn bin(op: BinOp, a: Arc<SymExpr>, b: Arc<SymExpr>) -> Arc<SymExpr> {
        if let (SymExpr::Const(x), SymExpr::Const(y)) = (a.as_ref(), b.as_ref()) {
            if let Some(v) = eval_bin(op, *x, *y) {
                return SymExpr::constant(v);
            }
        }
        // Identity simplifications.
        match (op, a.as_ref(), b.as_ref()) {
            (BinOp::Add, _, SymExpr::Const(0)) | (BinOp::Sub, _, SymExpr::Const(0)) => {
                return a.clone()
            }
            (BinOp::Add, SymExpr::Const(0), _) => return b.clone(),
            (BinOp::Mul, _, SymExpr::Const(1)) => return a.clone(),
            (BinOp::Mul, SymExpr::Const(1), _) => return b.clone(),
            (BinOp::Mul, _, SymExpr::Const(0)) | (BinOp::Mul, SymExpr::Const(0), _) => {
                return SymExpr::constant(0)
            }
            (BinOp::And, _, SymExpr::Const(0)) | (BinOp::And, SymExpr::Const(0), _) => {
                return SymExpr::constant(0)
            }
            _ => {}
        }
        Arc::new(SymExpr::Bin(op, a, b))
    }

    /// Builds a comparison with constant folding.
    pub fn cmp(op: CmpOp, a: Arc<SymExpr>, b: Arc<SymExpr>) -> Arc<SymExpr> {
        if let (SymExpr::Const(x), SymExpr::Const(y)) = (a.as_ref(), b.as_ref()) {
            return SymExpr::constant(op.eval(*x, *y) as i64);
        }
        Arc::new(SymExpr::Cmp(op, a, b))
    }

    /// Builds the logical negation with simplification. Not `std::ops::Not`:
    /// it is an associated constructor over `Arc<SymExpr>`, matching the
    /// other expression builders (`bin`, `cmp`, `var`).
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Arc<SymExpr>) -> Arc<SymExpr> {
        match e.as_ref() {
            SymExpr::Const(c) => SymExpr::constant((*c == 0) as i64),
            SymExpr::Cmp(op, a, b) => Arc::new(SymExpr::Cmp(op.negate(), a.clone(), b.clone())),
            SymExpr::Not(inner) => {
                // not(not(x)) normalizes to x != 0.
                Arc::new(SymExpr::Cmp(CmpOp::Ne, inner.clone(), SymExpr::constant(0)))
            }
            _ => Arc::new(SymExpr::Not(e)),
        }
    }

    /// Returns the constant value if the expression is a constant.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            SymExpr::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// Collects the variables appearing in the expression.
    pub fn vars(&self, out: &mut Vec<SymVar>) {
        match self {
            SymExpr::Const(_) => {}
            SymExpr::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            SymExpr::Bin(_, a, b) | SymExpr::Cmp(_, a, b) => {
                a.vars(out);
                b.vars(out);
            }
            SymExpr::Not(e) => e.vars(out),
        }
    }

    /// Evaluates the expression under an assignment (missing variables are 0).
    pub fn eval(&self, assignment: &HashMap<SymVar, i64>) -> i64 {
        match self {
            SymExpr::Const(c) => *c,
            SymExpr::Var(v) => assignment.get(v).copied().unwrap_or(0),
            SymExpr::Bin(op, a, b) => {
                eval_bin(*op, a.eval(assignment), b.eval(assignment)).unwrap_or(0)
            }
            SymExpr::Cmp(op, a, b) => op.eval(a.eval(assignment), b.eval(assignment)) as i64,
            SymExpr::Not(e) => (e.eval(assignment) == 0) as i64,
        }
    }
}

/// Concrete evaluation of a binary operator (`None` for division by zero).
pub fn eval_bin(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::Shr => a.wrapping_shr(b as u32 & 63),
    })
}

/// A value during symbolic execution: either a concrete machine value (an
/// integer or a pointer) or a symbolic integer expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SymValue {
    /// A concrete value.
    Concrete(Value),
    /// A symbolic integer expression.
    Symbolic(Arc<SymExpr>),
}

impl SymValue {
    /// The concrete integer zero.
    pub const ZERO: SymValue = SymValue::Concrete(Value::Int(0));

    /// Wraps a concrete integer.
    pub fn int(v: i64) -> Self {
        SymValue::Concrete(Value::Int(v))
    }

    /// Returns the concrete value if this is concrete.
    pub fn as_concrete(&self) -> Option<Value> {
        match self {
            SymValue::Concrete(v) => Some(*v),
            SymValue::Symbolic(e) => e.as_const().map(Value::Int),
        }
    }

    /// Returns the symbolic expression, converting concrete integers;
    /// pointers cannot be converted and return `None`.
    pub fn as_expr(&self) -> Option<Arc<SymExpr>> {
        match self {
            SymValue::Symbolic(e) => Some(e.clone()),
            SymValue::Concrete(Value::Int(i)) => Some(SymExpr::constant(*i)),
            SymValue::Concrete(Value::Ptr(_)) => None,
        }
    }

    /// True if the value is symbolic (not a compile-time constant).
    pub fn is_symbolic(&self) -> bool {
        match self {
            SymValue::Symbolic(e) => e.as_const().is_none(),
            SymValue::Concrete(_) => false,
        }
    }
}

impl From<Value> for SymValue {
    fn from(v: Value) -> Self {
        SymValue::Concrete(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding_in_constructors() {
        let a = SymExpr::constant(6);
        let b = SymExpr::constant(7);
        assert_eq!(SymExpr::bin(BinOp::Mul, a.clone(), b).as_const(), Some(42));
        assert_eq!(SymExpr::cmp(CmpOp::Lt, a.clone(), SymExpr::constant(10)).as_const(), Some(1));
        let v = SymExpr::var(SymVar(0));
        assert_eq!(SymExpr::bin(BinOp::Add, v.clone(), SymExpr::constant(0)), v);
        assert_eq!(SymExpr::bin(BinOp::Mul, v.clone(), SymExpr::constant(0)).as_const(), Some(0));
    }

    #[test]
    fn negation_flips_comparisons() {
        let v = SymExpr::var(SymVar(1));
        let e = SymExpr::cmp(CmpOp::Eq, v.clone(), SymExpr::constant(5));
        let ne = SymExpr::not(e);
        match ne.as_ref() {
            SymExpr::Cmp(CmpOp::Ne, _, _) => {}
            other => panic!("expected Ne, got {other:?}"),
        }
        assert_eq!(SymExpr::not(SymExpr::constant(0)).as_const(), Some(1));
        assert_eq!(SymExpr::not(SymExpr::constant(3)).as_const(), Some(0));
    }

    #[test]
    fn evaluation_under_assignment() {
        let v0 = SymExpr::var(SymVar(0));
        let v1 = SymExpr::var(SymVar(1));
        let sum = SymExpr::bin(BinOp::Add, v0.clone(), v1.clone());
        let cond = SymExpr::cmp(CmpOp::Gt, sum.clone(), SymExpr::constant(10));
        let mut asg = HashMap::new();
        asg.insert(SymVar(0), 4);
        asg.insert(SymVar(1), 9);
        assert_eq!(sum.eval(&asg), 13);
        assert_eq!(cond.eval(&asg), 1);
        asg.insert(SymVar(1), 1);
        assert_eq!(cond.eval(&asg), 0);
    }

    #[test]
    fn vars_are_collected_once() {
        let v0 = SymExpr::var(SymVar(0));
        let e = SymExpr::bin(BinOp::Add, v0.clone(), v0.clone());
        let mut vars = Vec::new();
        e.vars(&mut vars);
        assert_eq!(vars, vec![SymVar(0)]);
    }

    #[test]
    fn division_by_zero_does_not_fold() {
        let e = SymExpr::bin(BinOp::Div, SymExpr::constant(1), SymExpr::constant(0));
        assert_eq!(e.as_const(), None);
        assert!(matches!(e.as_ref(), SymExpr::Bin(BinOp::Div, _, _)));
    }

    #[test]
    fn symvalue_conversions() {
        let c = SymValue::int(5);
        assert!(!c.is_symbolic());
        assert_eq!(c.as_concrete(), Some(Value::Int(5)));
        assert_eq!(c.as_expr().unwrap().as_const(), Some(5));
        let s = SymValue::Symbolic(SymExpr::var(SymVar(0)));
        assert!(s.is_symbolic());
        assert_eq!(s.as_concrete(), None);
        let p = SymValue::Concrete(Value::Ptr(esd_ir::Ptr::to(esd_ir::ObjId(1))));
        assert!(p.as_expr().is_none());
        assert!(!p.is_symbolic());
    }
}
