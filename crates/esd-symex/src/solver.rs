//! A lightweight constraint solver for path conditions.
//!
//! Klee delegates to STP; this reproduction uses a small solver tailored to
//! the constraints execution synthesis actually produces (equalities and
//! comparisons between linear combinations of input words and constants):
//!
//! 1. constant propagation of `var == const` constraints,
//! 2. interval narrowing from `var <op> const` constraints,
//! 3. a candidate assignment from the narrowed intervals and the "interesting
//!    constants" appearing in the constraints,
//! 4. verification by concrete evaluation, with bounded randomized repair if
//!    verification fails.
//!
//! The solver is sound but deliberately incomplete: a returned model always
//! satisfies the constraints (it is re-verified concretely), while a
//! `Unknown` answer merely means the search must look elsewhere — matching
//! the paper's discussion of inherently hard constraints (§8).

use crate::expr::{SymExpr, SymVar};
use esd_ir::CmpOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// The outcome of a solver query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverResult {
    /// A satisfying assignment was found.
    Sat(HashMap<SymVar, i64>),
    /// The constraints are definitely unsatisfiable.
    Unsat,
    /// The solver gave up.
    Unknown,
}

impl SolverResult {
    /// Returns the model if satisfiable.
    pub fn model(self) -> Option<HashMap<SymVar, i64>> {
        match self {
            SolverResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// True if a model was found.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolverResult::Sat(_))
    }
}

/// Solver configuration.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct SolverConfig {
    /// Randomized repair iterations before giving up.
    pub repair_iterations: u32,
    /// Seed for the randomized repair phase (determinism).
    pub seed: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig { repair_iterations: 4000, seed: 0x5eed }
    }
}

/// The constraint solver. Stateless apart from configuration and counters.
#[derive(Debug, Default)]
pub struct Solver {
    config: SolverConfig,
    /// Number of `solve` calls made (reported in search statistics).
    pub queries: u64,
}

impl Solver {
    /// Creates a solver with the given configuration.
    pub fn new(config: SolverConfig) -> Self {
        Solver { config, queries: 0 }
    }

    /// Checks whether all constraints (interpreted as "must be non-zero") can
    /// hold simultaneously, returning a model if one is found.
    pub fn solve(&mut self, constraints: &[Arc<SymExpr>]) -> SolverResult {
        self.queries += 1;
        // Fast paths.
        if constraints.iter().any(|c| c.as_const() == Some(0)) {
            return SolverResult::Unsat;
        }
        let mut vars = Vec::new();
        for c in constraints {
            c.vars(&mut vars);
        }
        if vars.is_empty() {
            return SolverResult::Sat(HashMap::new());
        }

        let mut intervals: HashMap<SymVar, (i64, i64)> =
            vars.iter().map(|v| (*v, (i64::MIN / 4, i64::MAX / 4))).collect();
        let mut fixed: HashMap<SymVar, i64> = HashMap::new();
        let mut interesting: HashMap<SymVar, Vec<i64>> = HashMap::new();

        for c in constraints {
            harvest(c, true, &mut intervals, &mut fixed, &mut interesting);
        }
        // Detect trivially empty intervals.
        for (v, (lo, hi)) in &intervals {
            if lo > hi {
                // Only definitive if the emptiness came from single-variable
                // constraints; we harvested conservatively, so report Unsat.
                let _ = v;
                return SolverResult::Unsat;
            }
        }

        // Candidate assignment: fixed values, otherwise an interesting value
        // inside the interval, otherwise a clamped default.
        let mut assignment: HashMap<SymVar, i64> = HashMap::new();
        for v in &vars {
            let (lo, hi) = intervals[v];
            let value = if let Some(f) = fixed.get(v) {
                *f
            } else if let Some(cands) = interesting.get(v) {
                cands.iter().copied().find(|c| *c >= lo && *c <= hi).unwrap_or(lo.max(0.min(hi)))
            } else {
                0.clamp(lo, hi)
            };
            assignment.insert(*v, value);
        }
        if verify(constraints, &assignment) {
            return SolverResult::Sat(assignment);
        }

        // Randomized repair: flip one variable at a time toward satisfying
        // more constraints, with targeted moves for arithmetic (in)equalities
        // (adjust the variable by the constraint's residual).
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut best = assignment.clone();
        let mut best_unsat = count_unsat(constraints, &best);
        for _ in 0..self.config.repair_iterations {
            let mut candidate = best.clone();
            let unsat_constraints: Vec<&Arc<SymExpr>> =
                constraints.iter().filter(|c| c.eval(&candidate) == 0).collect();
            if rng.gen_bool(0.5) && !unsat_constraints.is_empty() {
                // Targeted move on a violated comparison.
                let c = unsat_constraints[rng.gen_range(0..unsat_constraints.len())];
                if let SymExpr::Cmp(_, lhs, rhs) = c.as_ref() {
                    let mut cvars = Vec::new();
                    c.vars(&mut cvars);
                    if !cvars.is_empty() {
                        let v = cvars[rng.gen_range(0..cvars.len())];
                        let delta = rhs.eval(&candidate) - lhs.eval(&candidate);
                        let cur = candidate.get(&v).copied().unwrap_or(0);
                        let (lo, hi) =
                            intervals.get(&v).copied().unwrap_or((i64::MIN / 4, i64::MAX / 4));
                        let adjust = match rng.gen_range(0..4) {
                            0 => delta,
                            1 => -delta,
                            2 => delta / 2,
                            _ => delta * 2,
                        };
                        candidate.insert(v, cur.wrapping_add(adjust).clamp(lo, hi));
                    }
                }
            } else {
                let v = vars[rng.gen_range(0..vars.len())];
                let (lo, hi) = intervals[&v];
                let choice = match rng.gen_range(0..4) {
                    0 => interesting
                        .get(&v)
                        .and_then(|c| c.get(rng.gen_range(0..c.len().max(1))).copied())
                        .unwrap_or(0),
                    1 => lo,
                    2 => hi.min(lo.saturating_add(256)),
                    _ => rng.gen_range(lo..=hi.min(lo.saturating_add(1024)).max(lo)),
                };
                candidate.insert(v, choice.clamp(lo, hi));
            }
            let unsat = count_unsat(constraints, &candidate);
            if unsat == 0 {
                return SolverResult::Sat(candidate);
            }
            if unsat < best_unsat {
                best_unsat = unsat;
                best = candidate;
            }
        }
        SolverResult::Unknown
    }

    /// Convenience: is the conjunction satisfiable at all?
    pub fn is_feasible(&mut self, constraints: &[Arc<SymExpr>]) -> bool {
        !matches!(self.solve(constraints), SolverResult::Unsat)
    }
}

fn verify(constraints: &[Arc<SymExpr>], assignment: &HashMap<SymVar, i64>) -> bool {
    constraints.iter().all(|c| c.eval(assignment) != 0)
}

fn count_unsat(constraints: &[Arc<SymExpr>], assignment: &HashMap<SymVar, i64>) -> usize {
    constraints.iter().filter(|c| c.eval(assignment) == 0).count()
}

/// Harvests interval bounds, fixed values and interesting constants from a
/// constraint that must evaluate to `required` (true = non-zero).
fn harvest(
    expr: &SymExpr,
    required: bool,
    intervals: &mut HashMap<SymVar, (i64, i64)>,
    fixed: &mut HashMap<SymVar, i64>,
    interesting: &mut HashMap<SymVar, Vec<i64>>,
) {
    match expr {
        SymExpr::Not(inner) => harvest(inner, !required, intervals, fixed, interesting),
        SymExpr::Cmp(op, a, b) => {
            let (var, konst, op) = match (a.as_ref(), b.as_ref()) {
                (SymExpr::Var(v), SymExpr::Const(c)) => (*v, *c, *op),
                (SymExpr::Const(c), SymExpr::Var(v)) => (*v, *c, op.swap()),
                _ => {
                    // Record constants appearing anywhere as interesting for
                    // all involved variables.
                    let mut vars = Vec::new();
                    expr.vars(&mut vars);
                    let consts = collect_consts(expr);
                    for v in vars {
                        let e = interesting.entry(v).or_default();
                        for c in &consts {
                            push_interesting(e, *c);
                        }
                    }
                    return;
                }
            };
            let op = if required { op } else { op.negate() };
            let entry = intervals.entry(var).or_insert((i64::MIN / 4, i64::MAX / 4));
            match op {
                CmpOp::Eq => {
                    fixed.insert(var, konst);
                    entry.0 = entry.0.max(konst);
                    entry.1 = entry.1.min(konst);
                }
                CmpOp::Ne => {
                    let e = interesting.entry(var).or_default();
                    push_interesting(e, konst.wrapping_add(1));
                    push_interesting(e, konst.wrapping_sub(1));
                }
                CmpOp::Lt => entry.1 = entry.1.min(konst - 1),
                CmpOp::Le => entry.1 = entry.1.min(konst),
                CmpOp::Gt => entry.0 = entry.0.max(konst + 1),
                CmpOp::Ge => entry.0 = entry.0.max(konst),
            }
            let e = interesting.entry(var).or_default();
            push_interesting(e, konst);
            push_interesting(e, konst.wrapping_add(1));
            push_interesting(e, konst.wrapping_sub(1));
        }
        SymExpr::Bin(esd_ir::BinOp::And, a, b) if required => {
            harvest(a, true, intervals, fixed, interesting);
            harvest(b, true, intervals, fixed, interesting);
        }
        SymExpr::Var(v) => {
            if required {
                let e = interesting.entry(*v).or_default();
                push_interesting(e, 1);
            } else {
                fixed.insert(*v, 0);
            }
        }
        _ => {
            let mut vars = Vec::new();
            expr.vars(&mut vars);
            let consts = collect_consts(expr);
            for v in vars {
                let e = interesting.entry(v).or_default();
                for c in &consts {
                    push_interesting(e, *c);
                }
            }
        }
    }
}

fn push_interesting(list: &mut Vec<i64>, v: i64) {
    if !list.contains(&v) && list.len() < 64 {
        list.push(v);
    }
}

fn collect_consts(expr: &SymExpr) -> Vec<i64> {
    let mut out = Vec::new();
    fn rec(e: &SymExpr, out: &mut Vec<i64>) {
        match e {
            SymExpr::Const(c) => {
                if !out.contains(c) {
                    out.push(*c);
                    out.push(c.wrapping_add(1));
                    out.push(c.wrapping_sub(1));
                }
            }
            SymExpr::Var(_) => {}
            SymExpr::Bin(_, a, b) | SymExpr::Cmp(_, a, b) => {
                rec(a, out);
                rec(b, out);
            }
            SymExpr::Not(a) => rec(a, out),
        }
    }
    rec(expr, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::BinOp;

    fn var(i: u32) -> Arc<SymExpr> {
        SymExpr::var(SymVar(i))
    }

    fn c(v: i64) -> Arc<SymExpr> {
        SymExpr::constant(v)
    }

    #[test]
    fn equality_constraints_are_solved_directly() {
        let mut s = Solver::new(SolverConfig::default());
        let constraints = vec![SymExpr::cmp(CmpOp::Eq, var(0), c('m' as i64))];
        let model = s.solve(&constraints).model().unwrap();
        assert_eq!(model[&SymVar(0)], 'm' as i64);
    }

    #[test]
    fn conjunction_over_multiple_variables() {
        let mut s = Solver::new(SolverConfig::default());
        let constraints = vec![
            SymExpr::cmp(CmpOp::Eq, var(0), c('Y' as i64)),
            SymExpr::cmp(CmpOp::Gt, var(1), c(10)),
            SymExpr::cmp(CmpOp::Lt, var(1), c(20)),
            SymExpr::cmp(CmpOp::Ne, var(2), c(0)),
        ];
        let model = s.solve(&constraints).model().unwrap();
        assert_eq!(model[&SymVar(0)], 'Y' as i64);
        assert!(model[&SymVar(1)] > 10 && model[&SymVar(1)] < 20);
        assert_ne!(model[&SymVar(2)], 0);
    }

    #[test]
    fn contradictory_equalities_are_unsat_or_unknown_but_never_sat() {
        let mut s = Solver::new(SolverConfig::default());
        let constraints =
            vec![SymExpr::cmp(CmpOp::Eq, var(0), c(1)), SymExpr::cmp(CmpOp::Eq, var(0), c(2))];
        let r = s.solve(&constraints);
        assert!(!r.is_sat());
    }

    #[test]
    fn empty_interval_is_unsat() {
        let mut s = Solver::new(SolverConfig::default());
        let constraints =
            vec![SymExpr::cmp(CmpOp::Gt, var(0), c(10)), SymExpr::cmp(CmpOp::Lt, var(0), c(5))];
        assert_eq!(s.solve(&constraints), SolverResult::Unsat);
        assert!(!s.is_feasible(&constraints));
    }

    #[test]
    fn linear_combination_solved_by_repair() {
        let mut s = Solver::new(SolverConfig::default());
        // x + y == 100, x == 42 ⇒ y == 58.
        let sum = SymExpr::bin(BinOp::Add, var(0), var(1));
        let constraints =
            vec![SymExpr::cmp(CmpOp::Eq, var(0), c(42)), SymExpr::cmp(CmpOp::Eq, sum, c(100))];
        match s.solve(&constraints) {
            SolverResult::Sat(m) => {
                assert_eq!(m[&SymVar(0)], 42);
                assert_eq!(m[&SymVar(0)] + m[&SymVar(1)], 100);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn negated_branch_conditions() {
        let mut s = Solver::new(SolverConfig::default());
        let constraints = vec![
            SymExpr::not(SymExpr::cmp(CmpOp::Eq, var(0), c(7))),
            SymExpr::cmp(CmpOp::Ge, var(0), c(7)),
        ];
        let model = s.solve(&constraints).model().unwrap();
        assert!(model[&SymVar(0)] > 7);
    }

    #[test]
    fn no_constraints_is_trivially_sat() {
        let mut s = Solver::new(SolverConfig::default());
        assert!(s.solve(&[]).is_sat());
        assert_eq!(s.queries, 1);
    }

    #[test]
    fn constant_false_constraint_is_unsat() {
        let mut s = Solver::new(SolverConfig::default());
        assert_eq!(s.solve(&[c(0)]), SolverResult::Unsat);
        assert!(s.solve(&[c(1)]).is_sat());
    }

    #[test]
    fn boolean_and_of_conditions_is_split() {
        let mut s = Solver::new(SolverConfig::default());
        let both = SymExpr::bin(
            BinOp::And,
            SymExpr::cmp(CmpOp::Eq, var(0), c(1)),
            SymExpr::cmp(CmpOp::Eq, var(1), c(1)),
        );
        let model = s.solve(&[both]).model().unwrap();
        assert_eq!(model[&SymVar(0)], 1);
        assert_eq!(model[&SymVar(1)], 1);
    }
}
