//! Execution states for multi-threaded symbolic execution.
//!
//! An execution state is "a program counter, a stack, and an address space"
//! (§3.3) extended with "a list of the active threads" (§6.1). States fork at
//! symbolic branches and at scheduling decisions; the address space is shared
//! copy-on-write at object granularity between forked states (Klee's
//! mechanism, which the paper calls "key to ESD's scalability").
//!
//! Per-state *concurrency analysis* is part of the state too: every state
//! carries its own [`RaceDetector`] (candidate locksets and the
//! already-reported race pairs for *this* interleaving). The detector's
//! backing maps are persistent (`Arc`-shared, copy-on-write — see
//! [`esd_concurrency::pmap`]), so a fork clones it in O(1) and sibling
//! interleavings then discover race preemption points independently: a race
//! reported on one path never suppresses the same race on a sibling path.

use crate::expr::{SymExpr, SymValue, SymVar, SymVarInfo};
use esd_concurrency::{LocksetDetector, Schedule};
use esd_ir::interp::{ObjKind, SyncState, ThreadStatus};
use esd_ir::{BlockId, FuncId, Loc, ObjId, Program, Ptr, Reg, ThreadId, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// One activation record of a symbolically executed thread.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SymFrame {
    /// Function this frame executes.
    pub func: FuncId,
    /// Current basic block.
    pub block: BlockId,
    /// Index of the next instruction (`insts.len()` = terminator).
    pub idx: u32,
    /// Register file.
    pub regs: Vec<Option<SymValue>>,
    /// Objects backing this frame's locals.
    pub locals: Vec<ObjId>,
    /// Caller register receiving the return value.
    pub ret_dst: Option<Reg>,
}

impl SymFrame {
    /// Creates a frame with arguments placed in the low registers.
    pub fn new(
        func: FuncId,
        num_regs: u32,
        args: &[SymValue],
        locals: Vec<ObjId>,
        ret_dst: Option<Reg>,
    ) -> Self {
        let mut regs = vec![None; num_regs as usize];
        for (i, a) in args.iter().enumerate() {
            regs[i] = Some(a.clone());
        }
        SymFrame { func, block: BlockId(0), idx: 0, regs, locals, ret_dst }
    }

    /// The location of the next instruction of this frame.
    pub fn loc(&self) -> Loc {
        Loc { func: self.func, block: self.block, idx: self.idx }
    }
}

/// One thread within an execution state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SymThread {
    /// Thread id (0 = main).
    pub id: ThreadId,
    /// Call stack, outermost first.
    pub frames: Vec<SymFrame>,
    /// Scheduling status.
    pub status: ThreadStatus,
    /// Number of input words read so far (the playback key).
    pub input_seq: u32,
    /// Mutexes held, in acquisition order.
    pub held_locks: Vec<Ptr>,
    /// Mutex to re-acquire after a condition-variable signal.
    pub cond_resume: Option<Ptr>,
    /// The mutex this thread acquired at its goal location ("inner lock"),
    /// used by the deadlock schedule heuristic.
    pub inner_lock_held: Option<Ptr>,
}

impl SymThread {
    /// Creates a runnable thread with one frame.
    pub fn new(id: ThreadId, frame: SymFrame) -> Self {
        SymThread {
            id,
            frames: vec![frame],
            status: ThreadStatus::Runnable,
            input_seq: 0,
            held_locks: Vec::new(),
            cond_resume: None,
            inner_lock_held: None,
        }
    }

    /// The innermost frame.
    pub fn top(&self) -> &SymFrame {
        self.frames.last().expect("thread has no frames")
    }

    /// The innermost frame, mutably.
    pub fn top_mut(&mut self) -> &mut SymFrame {
        self.frames.last_mut().expect("thread has no frames")
    }

    /// The call stack as locations, outermost first (the input to the
    /// proximity heuristic).
    pub fn stack_locs(&self) -> Vec<Loc> {
        self.frames.iter().map(|f| f.loc()).collect()
    }

    /// True if the thread can be scheduled.
    pub fn is_runnable(&self) -> bool {
        self.status == ThreadStatus::Runnable
    }

    /// True if the thread has terminated.
    pub fn is_finished(&self) -> bool {
        self.status == ThreadStatus::Finished
    }
}

/// A symbolic memory object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymObject {
    /// The object's words.
    pub data: Vec<SymValue>,
    /// Storage class.
    pub kind: ObjKind,
    /// True once freed / out of scope.
    pub freed: bool,
}

/// Memory access errors (mirrors the concrete interpreter's).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymMemError {
    /// Dereference of a non-pointer value.
    NotAPointer(Value),
    /// Pointer to an unknown object.
    DanglingObject(ObjId),
    /// Access to a freed object.
    UseAfterFree(ObjId),
    /// Offset outside the object.
    OutOfBounds {
        /// Accessed offset.
        off: i64,
        /// Object size in words.
        size: usize,
    },
    /// Invalid `free`.
    InvalidFree(Value),
    /// Double `free`.
    DoubleFree(ObjId),
}

/// Copy-on-write symbolic memory: objects are shared between forked states
/// through `Arc` and cloned lazily on first write.
///
/// Serialization is canonical (objects sorted by id) and restoring loses the
/// `Arc` sharing between states — each restored state owns its objects — but
/// sharing is a space optimization, not observable behaviour.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SymMemory {
    objects: HashMap<ObjId, Arc<SymObject>>,
    next_id: u64,
}

impl SymMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        SymMemory { objects: HashMap::new(), next_id: 1 }
    }

    /// Allocates a zero-initialized object.
    pub fn alloc(&mut self, kind: ObjKind, size: usize) -> ObjId {
        self.alloc_init(kind, vec![SymValue::ZERO; size])
    }

    /// Allocates an object with the given contents.
    pub fn alloc_init(&mut self, kind: ObjKind, data: Vec<SymValue>) -> ObjId {
        let id = ObjId(self.next_id);
        self.next_id += 1;
        self.objects.insert(id, Arc::new(SymObject { data, kind, freed: false }));
        id
    }

    /// Number of objects (live or freed).
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Returns the object behind `id`.
    pub fn object(&self, id: ObjId) -> Option<&Arc<SymObject>> {
        self.objects.get(&id)
    }

    fn check(&self, ptr: Ptr) -> Result<&Arc<SymObject>, SymMemError> {
        let obj = self.objects.get(&ptr.obj).ok_or(SymMemError::DanglingObject(ptr.obj))?;
        if obj.freed {
            return Err(SymMemError::UseAfterFree(ptr.obj));
        }
        if ptr.off < 0 || ptr.off as usize >= obj.data.len() {
            return Err(SymMemError::OutOfBounds { off: ptr.off, size: obj.data.len() });
        }
        Ok(obj)
    }

    /// Loads the word at `ptr`.
    pub fn load(&self, ptr: Ptr) -> Result<SymValue, SymMemError> {
        Ok(self.check(ptr)?.data[ptr.off as usize].clone())
    }

    /// Stores `value` at `ptr` (copy-on-write).
    pub fn store(&mut self, ptr: Ptr, value: SymValue) -> Result<(), SymMemError> {
        self.check(ptr)?;
        let obj = self.objects.get_mut(&ptr.obj).unwrap();
        Arc::make_mut(obj).data[ptr.off as usize] = value;
        Ok(())
    }

    /// Frees a heap object.
    pub fn free(&mut self, value: Value) -> Result<(), SymMemError> {
        let ptr = match value {
            Value::Ptr(p) => p,
            v => return Err(SymMemError::InvalidFree(v)),
        };
        let obj = self.objects.get_mut(&ptr.obj).ok_or(SymMemError::DanglingObject(ptr.obj))?;
        if ptr.off != 0 || obj.kind != ObjKind::Heap {
            return Err(SymMemError::InvalidFree(value));
        }
        if obj.freed {
            return Err(SymMemError::DoubleFree(ptr.obj));
        }
        Arc::make_mut(obj).freed = true;
        Ok(())
    }

    /// Marks a stack-local object dead.
    pub fn kill_local(&mut self, id: ObjId) {
        if let Some(obj) = self.objects.get_mut(&id) {
            Arc::make_mut(obj).freed = true;
        }
    }

    /// Number of objects physically shared with `other` (diagnostics for the
    /// copy-on-write behaviour).
    pub fn shared_objects_with(&self, other: &SymMemory) -> usize {
        self.objects
            .iter()
            .filter(|(id, obj)| other.objects.get(id).map(|o| Arc::ptr_eq(o, obj)).unwrap_or(false))
            .count()
    }
}

/// How promising a state looks for the deadlock schedule heuristic (§4.1):
/// `Near` states are strongly preferred, `Far` states strongly deprioritized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SchedDistance {
    /// The state just created conditions believed to be close to the
    /// reported deadlock.
    Near,
    /// No particular indication either way.
    Neutral,
    /// The state was explicitly rolled back / deprioritized.
    Far,
}

/// The lockset race detector as instantiated by the engine: memory words are
/// `(object id, offset)` pairs, threads are raw thread indices, locks are the
/// `(object id, offset)` of the mutex, and access sites are IR locations.
pub type RaceDetector = LocksetDetector<(u64, i64), u32, (u64, i64), Loc>;

/// A complete execution state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecState {
    /// Unique state id (stable across the whole search).
    pub id: u64,
    /// All threads created so far.
    pub threads: Vec<SymThread>,
    /// The address space.
    pub mem: SymMemory,
    /// Mutex / condition-variable runtime state.
    pub sync: SyncState,
    /// Objects backing the program's globals.
    pub globals: Vec<ObjId>,
    /// Path constraints (each must be non-zero).
    pub constraints: Vec<Arc<SymExpr>>,
    /// A running, order-sensitive hash of the path constraints, maintained by
    /// [`ExecState::add_constraint`]. Used by the engine's structural state
    /// fingerprint so two states whose constraint lists have equal length but
    /// different *contents* are never deduplicated against each other.
    pub path_hash: u64,
    /// Provenance of each symbolic variable, indexed by `SymVar`.
    pub var_info: Vec<SymVarInfo>,
    /// The thread currently scheduled in this state's serialized execution.
    pub current: ThreadId,
    /// Instructions executed by `current` since its segment started.
    pub segment_steps: u64,
    /// The serialized schedule so far.
    pub schedule: Schedule,
    /// Total instructions executed in this state.
    pub steps: u64,
    /// Deadlock-heuristic schedule distance.
    pub sched_distance: SchedDistance,
    /// The paper's `K_S` map: for each mutex currently held on this path, the
    /// id of the forked state in which the acquiring thread was preempted
    /// just before acquiring it.
    pub lock_snapshots: Vec<(Ptr, u64)>,
    /// Number of preemptive (non-forced) context switches so far, for
    /// Chess-style preemption bounding in the KC baseline.
    pub preemptions: u32,
    /// This interleaving's lockset race analysis (§4.2): candidate locksets
    /// per shared word plus the race pairs already reported *on this path*.
    /// Cloned O(1) on fork (persistent maps), so sibling states flag their
    /// races independently of each other.
    pub race_detector: RaceDetector,
    /// True once the state has been abandoned (critical-edge violation,
    /// unsatisfiable constraints, fault at a non-goal location, …).
    pub dead: bool,
}

impl ExecState {
    /// Creates the initial state of `program`: globals allocated, main thread
    /// at the entry function.
    pub fn initial(program: &Program) -> Self {
        let mut mem = SymMemory::new();
        let mut globals = Vec::with_capacity(program.globals.len());
        for (gi, g) in program.globals.iter().enumerate() {
            let mut data = vec![SymValue::ZERO; g.size as usize];
            for (i, v) in g.init.iter().enumerate() {
                data[i] = SymValue::int(*v);
            }
            globals.push(mem.alloc_init(ObjKind::Global(esd_ir::GlobalId(gi as u32)), data));
        }
        let entry = program.func(program.entry);
        let mut locals = Vec::new();
        for size in &entry.local_sizes {
            locals.push(mem.alloc(ObjKind::Local(ThreadId(0)), *size as usize));
        }
        let frame = SymFrame::new(program.entry, entry.num_regs, &[], locals, None);
        ExecState {
            id: 0,
            threads: vec![SymThread::new(ThreadId(0), frame)],
            mem,
            sync: SyncState::default(),
            globals,
            constraints: Vec::new(),
            path_hash: 0,
            var_info: Vec::new(),
            current: ThreadId(0),
            segment_steps: 0,
            schedule: Schedule::new(),
            steps: 0,
            sched_distance: SchedDistance::Neutral,
            lock_snapshots: Vec::new(),
            preemptions: 0,
            race_detector: RaceDetector::new(),
            dead: false,
        }
    }

    /// The thread with the given id.
    pub fn thread(&self, tid: ThreadId) -> &SymThread {
        &self.threads[tid.0 as usize]
    }

    /// The thread with the given id, mutably.
    pub fn thread_mut(&mut self, tid: ThreadId) -> &mut SymThread {
        &mut self.threads[tid.0 as usize]
    }

    /// Ids of all runnable threads.
    pub fn runnable_threads(&self) -> Vec<ThreadId> {
        self.threads.iter().filter(|t| t.is_runnable()).map(|t| t.id).collect()
    }

    /// True if some thread has not finished.
    pub fn has_unfinished_threads(&self) -> bool {
        self.threads.iter().any(|t| !t.is_finished())
    }

    /// True if no thread is runnable but some thread is unfinished.
    pub fn is_global_stall(&self) -> bool {
        self.runnable_threads().is_empty() && self.has_unfinished_threads()
    }

    /// The location the currently scheduled thread will execute next.
    pub fn current_loc(&self) -> Option<Loc> {
        let t = self.thread(self.current);
        if t.is_finished() || t.frames.is_empty() {
            None
        } else {
            Some(t.top().loc())
        }
    }

    /// Creates a fresh symbolic variable with the given provenance.
    pub fn fresh_var(&mut self, info: SymVarInfo) -> SymVar {
        let v = SymVar(self.var_info.len() as u32);
        self.var_info.push(info);
        v
    }

    /// Adds a path constraint, folding it into [`ExecState::path_hash`].
    pub fn add_constraint(&mut self, c: Arc<SymExpr>) {
        if c.as_const() != Some(1) {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            c.hash(&mut h);
            self.path_hash = self.path_hash.rotate_left(5) ^ h.finish();
            self.constraints.push(c);
        }
    }

    /// Looks up the snapshot state id associated with `mutex` in `K_S`.
    pub fn snapshot_for(&self, mutex: Ptr) -> Option<u64> {
        self.lock_snapshots.iter().find(|(m, _)| *m == mutex).map(|(_, s)| *s)
    }

    /// Removes the snapshot entry for `mutex` (on unlock, as in the paper:
    /// "a snapshot entry is deleted as soon as M is unlocked").
    pub fn drop_snapshot(&mut self, mutex: Ptr) {
        self.lock_snapshots.retain(|(m, _)| *m != mutex);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::ProgramBuilder;

    fn tiny() -> Program {
        let mut pb = ProgramBuilder::new("p");
        pb.global_init("g", 2, vec![5]);
        pb.function("main", 0, |f| {
            f.nop();
            f.ret_void();
        });
        pb.finish("main")
    }

    #[test]
    fn initial_state_has_main_thread_and_globals() {
        let p = tiny();
        let s = ExecState::initial(&p);
        assert_eq!(s.threads.len(), 1);
        assert_eq!(s.globals.len(), 1);
        assert_eq!(s.current, ThreadId(0));
        assert_eq!(s.current_loc(), Some(Loc::new(p.entry, BlockId(0), 0)));
        let g = s.mem.load(Ptr::to(s.globals[0])).unwrap();
        assert_eq!(g, SymValue::int(5));
        assert!(!s.is_global_stall());
    }

    #[test]
    fn cow_memory_shares_objects_until_written() {
        let p = tiny();
        let s1 = ExecState::initial(&p);
        let mut s2 = s1.clone();
        assert_eq!(s1.mem.shared_objects_with(&s2.mem), s1.mem.num_objects());
        s2.mem.store(Ptr::to(s2.globals[0]), SymValue::int(9)).unwrap();
        // Exactly one object diverged.
        assert_eq!(s1.mem.shared_objects_with(&s2.mem), s1.mem.num_objects() - 1);
        // The original is untouched.
        assert_eq!(s1.mem.load(Ptr::to(s1.globals[0])).unwrap(), SymValue::int(5));
        assert_eq!(s2.mem.load(Ptr::to(s2.globals[0])).unwrap(), SymValue::int(9));
    }

    #[test]
    fn sym_memory_detects_errors_like_the_concrete_one() {
        let mut m = SymMemory::new();
        let h = m.alloc(ObjKind::Heap, 2);
        assert!(matches!(
            m.load(Ptr { obj: h, off: 5 }),
            Err(SymMemError::OutOfBounds { off: 5, size: 2 })
        ));
        m.free(Value::Ptr(Ptr::to(h))).unwrap();
        assert!(matches!(m.load(Ptr::to(h)), Err(SymMemError::UseAfterFree(_))));
        assert!(matches!(m.free(Value::Ptr(Ptr::to(h))), Err(SymMemError::DoubleFree(_))));
        assert!(matches!(m.free(Value::Int(3)), Err(SymMemError::InvalidFree(_))));
    }

    #[test]
    fn constraints_skip_trivially_true_ones() {
        let p = tiny();
        let mut s = ExecState::initial(&p);
        s.add_constraint(SymExpr::constant(1));
        assert!(s.constraints.is_empty());
        s.add_constraint(SymExpr::cmp(
            esd_ir::CmpOp::Eq,
            SymExpr::var(SymVar(0)),
            SymExpr::constant(3),
        ));
        assert_eq!(s.constraints.len(), 1);
    }

    #[test]
    fn snapshot_map_add_lookup_drop() {
        let p = tiny();
        let mut s = ExecState::initial(&p);
        let m = Ptr::to(ObjId(42));
        s.lock_snapshots.push((m, 7));
        assert_eq!(s.snapshot_for(m), Some(7));
        s.drop_snapshot(m);
        assert_eq!(s.snapshot_for(m), None);
    }

    #[test]
    fn forked_states_track_races_independently() {
        let p = tiny();
        let mut parent = ExecState::initial(&p);
        let at = |i| Loc::new(p.entry, BlockId(0), i);
        // Thread 0 writes word (1,0) unlocked before the fork.
        parent.race_detector.access((1, 0), 0, at(0), true, &[]);
        let mut child = parent.clone();
        // The child's thread 1 completes the race; the parent must still be
        // able to report the same pair afterwards (no shared dedup set).
        assert!(child.race_detector.access((1, 0), 1, at(1), true, &[]).is_some());
        assert_eq!(parent.race_detector.reported_pairs(), 0);
        assert!(parent.race_detector.access((1, 0), 1, at(1), true, &[]).is_some());
        // Within each interleaving the pair is still deduplicated.
        assert!(child.race_detector.access((1, 0), 1, at(1), true, &[]).is_none());
    }

    #[test]
    fn fresh_vars_are_sequential_and_record_provenance() {
        let p = tiny();
        let mut s = ExecState::initial(&p);
        let v0 = s.fresh_var(SymVarInfo {
            thread: ThreadId(0),
            seq: 0,
            source: esd_ir::InputSource::Stdin,
        });
        let v1 = s.fresh_var(SymVarInfo {
            thread: ThreadId(1),
            seq: 0,
            source: esd_ir::InputSource::Net,
        });
        assert_eq!(v0, SymVar(0));
        assert_eq!(v1, SymVar(1));
        assert_eq!(s.var_info.len(), 2);
    }
}
