//! Pluggable search frontiers: the engine's worklist of execution states.
//!
//! The search engine repeatedly *pops* a state from the frontier, advances it
//! by one micro-step, and *pushes* it back (or pushes the states it forked
//! into). Which state the frontier hands back next is the search strategy —
//! the only part of the dynamic phase that differs between ESD and the
//! baselines it is compared against — so it is factored out behind the
//! [`SearchFrontier`] trait and selected via [`SearchConfig`]:
//!
//! * [`ProximityFrontier`] — ESD's strategy (§3.4, Algorithm 1): one virtual
//!   priority queue per goal (intermediate goals from the static phase plus
//!   the final goal), each ordered by the proximity estimate; selection picks
//!   a queue uniformly at random and takes its closest state.
//! * [`DfsFrontier`] — depth-first (Klee's DFS searcher, "equivalent to an
//!   exhaustive search").
//! * [`BfsFrontier`] — breadth-first: the frontier is a FIFO, so exploration
//!   sweeps the whole state tree level by level. Not in the paper; useful as
//!   a fairness baseline when comparing frontiers in `esd-bench`.
//! * [`RandomFrontier`] — uniformly random among live states (Klee's
//!   RandomPath searcher, the second KC baseline).
//!
//! # Contract
//!
//! The engine computes a [`StatePriority`] for a state every time the state
//! enters (or re-enters) the frontier and calls [`SearchFrontier::push`]; a
//! later `push` of the same id *replaces* the previous position (used to
//! promote states when the deadlock heuristics change their priority). A
//! [`SearchFrontier::pop`] removes the returned state from the frontier.
//! Implementations may keep lazily-invalidated entries internally, but `pop`
//! must only return ids that are currently pushed, and `len` counts live
//! states, not internal entries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

/// Which [`SearchFrontier`] implementation the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontierKind {
    /// Depth-first search ([`DfsFrontier`]).
    Dfs,
    /// Breadth-first search ([`BfsFrontier`]).
    Bfs,
    /// Uniformly random among live states ([`RandomFrontier`]).
    Random,
    /// ESD's proximity-guided virtual queues ([`ProximityFrontier`]).
    #[default]
    Proximity,
}

impl std::str::FromStr for FrontierKind {
    type Err = String;

    /// Parses `"dfs"`, `"bfs"`, `"random"` / `"randompath"`, or
    /// `"proximity"` / `"esd"` (case-insensitive) — the spellings accepted by
    /// the `esd-bench` binaries and `ESD_FRONTIER` environment variable.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "dfs" => Ok(FrontierKind::Dfs),
            "bfs" => Ok(FrontierKind::Bfs),
            "random" | "randompath" => Ok(FrontierKind::Random),
            "proximity" | "esd" => Ok(FrontierKind::Proximity),
            other => Err(format!("unknown frontier {other:?} (expected dfs|bfs|random|proximity)")),
        }
    }
}

impl std::fmt::Display for FrontierKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FrontierKind::Dfs => "dfs",
            FrontierKind::Bfs => "bfs",
            FrontierKind::Random => "random",
            FrontierKind::Proximity => "proximity",
        })
    }
}

/// How the engine orders its exploration: a frontier implementation plus the
/// seed for the stochastic ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// The frontier implementation to use.
    pub kind: FrontierKind,
    /// PRNG seed for [`FrontierKind::Random`] and [`FrontierKind::Proximity`]
    /// (ignored by the deterministic frontiers).
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig::proximity(1)
    }
}

impl SearchConfig {
    /// Depth-first exploration.
    pub fn dfs() -> Self {
        SearchConfig { kind: FrontierKind::Dfs, seed: 0 }
    }

    /// Breadth-first exploration.
    pub fn bfs() -> Self {
        SearchConfig { kind: FrontierKind::Bfs, seed: 0 }
    }

    /// Uniformly random state selection with the given seed.
    pub fn random(seed: u64) -> Self {
        SearchConfig { kind: FrontierKind::Random, seed }
    }

    /// ESD's proximity-guided selection with the given seed.
    pub fn proximity(seed: u64) -> Self {
        SearchConfig { kind: FrontierKind::Proximity, seed }
    }

    /// The same configuration with a different frontier kind.
    pub fn with_kind(self, kind: FrontierKind) -> Self {
        SearchConfig { kind, ..self }
    }

    /// Instantiates the frontier. `num_queues` is the number of virtual goal
    /// queues the engine maintains (intermediate goals + the final goal);
    /// only the proximity frontier uses it.
    pub fn build(&self, num_queues: usize) -> Box<dyn SearchFrontier> {
        match self.kind {
            FrontierKind::Dfs => Box::new(DfsFrontier::new()),
            FrontierKind::Bfs => Box::new(BfsFrontier::new()),
            FrontierKind::Random => Box::new(RandomFrontier::new(self.seed)),
            FrontierKind::Proximity => Box::new(ProximityFrontier::new(num_queues, self.seed)),
        }
    }
}

/// The ordering information the engine computes for a state as it enters the
/// frontier.
#[derive(Debug, Clone, Default)]
pub struct StatePriority {
    /// One key per virtual goal queue — lower is closer to that goal
    /// (proximity estimate biased by the deadlock schedule distance). Empty
    /// unless the frontier [wants priorities](SearchFrontier::wants_priorities).
    pub queue_keys: Vec<u64>,
    /// Total instructions this state has executed (used to break priority
    /// ties in favor of deeper states).
    pub depth: u64,
}

/// A worklist of execution-state ids; see the [module docs](self) for the
/// push/pop contract.
pub trait SearchFrontier {
    /// Inserts state `id`, or — if it is already in the frontier — moves it
    /// to the position implied by the new priority.
    fn push(&mut self, id: u64, prio: &StatePriority);

    /// Removes and returns the next state to advance, or `None` when the
    /// frontier is empty.
    fn pop(&mut self) -> Option<u64>;

    /// True if this frontier consumes [`StatePriority::queue_keys`]; the
    /// engine skips the per-goal proximity computation otherwise.
    fn wants_priorities(&self) -> bool {
        false
    }

    /// Number of states currently in the frontier.
    fn len(&self) -> usize;

    /// True when no states are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Lazy-invalidation bookkeeping shared by the frontier implementations:
/// stale entries (from a superseding `push` of the same id) stay in the
/// underlying container and are skipped on `pop` by checking their stamp.
#[derive(Debug, Default)]
struct Liveness {
    current: HashMap<u64, u64>,
    next_stamp: u64,
}

impl Liveness {
    /// Registers a (re-)push of `id`, returning the stamp that marks the new
    /// entry as the only valid one.
    fn stamp(&mut self, id: u64) -> u64 {
        self.next_stamp += 1;
        self.current.insert(id, self.next_stamp);
        self.next_stamp
    }

    /// Consumes the entry `(id, stamp)` if it is the valid one, removing the
    /// id from the frontier.
    fn take(&mut self, id: u64, stamp: u64) -> bool {
        if self.current.get(&id) == Some(&stamp) {
            self.current.remove(&id);
            true
        } else {
            false
        }
    }

    fn len(&self) -> usize {
        self.current.len()
    }
}

/// Depth-first frontier: a LIFO stack, so the search always extends the most
/// recently forked state first.
#[derive(Debug, Default)]
pub struct DfsFrontier {
    stack: Vec<(u64, u64)>,
    live: Liveness,
}

impl DfsFrontier {
    /// Creates an empty DFS frontier.
    pub fn new() -> Self {
        DfsFrontier::default()
    }
}

impl SearchFrontier for DfsFrontier {
    fn push(&mut self, id: u64, _prio: &StatePriority) {
        let stamp = self.live.stamp(id);
        self.stack.push((stamp, id));
    }

    fn pop(&mut self) -> Option<u64> {
        while let Some((stamp, id)) = self.stack.pop() {
            if self.live.take(id, stamp) {
                return Some(id);
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.live.len()
    }
}

/// Breadth-first frontier: a FIFO queue, so states are advanced in the order
/// they were created and the state tree is swept level by level.
#[derive(Debug, Default)]
pub struct BfsFrontier {
    queue: VecDeque<(u64, u64)>,
    live: Liveness,
}

impl BfsFrontier {
    /// Creates an empty BFS frontier.
    pub fn new() -> Self {
        BfsFrontier::default()
    }
}

impl SearchFrontier for BfsFrontier {
    fn push(&mut self, id: u64, _prio: &StatePriority) {
        let stamp = self.live.stamp(id);
        self.queue.push_back((stamp, id));
    }

    fn pop(&mut self) -> Option<u64> {
        while let Some((stamp, id)) = self.queue.pop_front() {
            if self.live.take(id, stamp) {
                return Some(id);
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.live.len()
    }
}

/// Uniformly random frontier (Klee's RandomPath searcher): `pop` draws one of
/// the live states with equal probability.
#[derive(Debug)]
pub struct RandomFrontier {
    ids: Vec<u64>,
    present: HashSet<u64>,
    rng: StdRng,
}

impl RandomFrontier {
    /// Creates an empty random frontier drawing from the given seed.
    pub fn new(seed: u64) -> Self {
        RandomFrontier {
            ids: Vec::new(),
            present: HashSet::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SearchFrontier for RandomFrontier {
    fn push(&mut self, id: u64, _prio: &StatePriority) {
        if self.present.insert(id) {
            self.ids.push(id);
        }
    }

    fn pop(&mut self) -> Option<u64> {
        if self.ids.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.ids.len());
        let id = self.ids.swap_remove(i);
        self.present.remove(&id);
        Some(id)
    }

    fn len(&self) -> usize {
        self.ids.len()
    }
}

/// Min-heap of `(key, inverted depth, stamp, state id)` entries.
type StateQueue = BinaryHeap<Reverse<(u64, u64, u64, u64)>>;

/// ESD's proximity-guided frontier (§3.4): one virtual priority queue per
/// goal target set, each ordered by the precomputed proximity key; `pop`
/// picks a queue uniformly at random and returns its closest state. Ties are
/// broken toward deeper states so the search keeps extending its most
/// advanced interleaving instead of sweeping breadth-first.
#[derive(Debug)]
pub struct ProximityFrontier {
    queues: Vec<StateQueue>,
    live: Liveness,
    rng: StdRng,
}

impl ProximityFrontier {
    /// Creates a frontier with `num_queues` virtual goal queues.
    pub fn new(num_queues: usize, seed: u64) -> Self {
        ProximityFrontier {
            queues: (0..num_queues.max(1)).map(|_| BinaryHeap::new()).collect(),
            live: Liveness::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SearchFrontier for ProximityFrontier {
    fn push(&mut self, id: u64, prio: &StatePriority) {
        debug_assert_eq!(prio.queue_keys.len(), self.queues.len(), "one key per virtual queue");
        let stamp = self.live.stamp(id);
        let depth_tiebreak = u64::MAX - prio.depth;
        for (queue, key) in self.queues.iter_mut().zip(&prio.queue_keys) {
            queue.push(Reverse((*key, depth_tiebreak, stamp, id)));
        }
    }

    fn pop(&mut self) -> Option<u64> {
        if self.live.len() == 0 {
            return None;
        }
        // Uniformly random queue, as in the paper; skip lazily-invalidated
        // entries until a live, current-stamp one appears.
        for _ in 0..self.queues.len() * 4 {
            let qi = self.rng.gen_range(0..self.queues.len());
            while let Some(Reverse((_, _, stamp, id))) = self.queues[qi].pop() {
                if self.live.take(id, stamp) {
                    return Some(id);
                }
            }
        }
        // Every sampled queue drained stale: fall back to any live state.
        let id = *self.live.current.keys().next()?;
        self.live.current.remove(&id);
        Some(id)
    }

    fn wants_priorities(&self) -> bool {
        true
    }

    fn len(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prio(keys: &[u64], depth: u64) -> StatePriority {
        StatePriority { queue_keys: keys.to_vec(), depth }
    }

    #[test]
    fn frontier_kind_parses_and_displays() {
        for (s, k) in [
            ("dfs", FrontierKind::Dfs),
            ("BFS", FrontierKind::Bfs),
            ("RandomPath", FrontierKind::Random),
            ("esd", FrontierKind::Proximity),
            ("proximity", FrontierKind::Proximity),
        ] {
            assert_eq!(s.parse::<FrontierKind>().unwrap(), k);
        }
        assert!("weird".parse::<FrontierKind>().is_err());
        assert_eq!(FrontierKind::Proximity.to_string(), "proximity");
    }

    #[test]
    fn dfs_pops_most_recent_first() {
        let mut f = DfsFrontier::new();
        for id in [1, 2, 3] {
            f.push(id, &prio(&[], 0));
        }
        assert_eq!(f.len(), 3);
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), Some(2));
        f.push(9, &prio(&[], 0));
        assert_eq!(f.pop(), Some(9));
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn bfs_pops_oldest_first() {
        let mut f = BfsFrontier::new();
        for id in [1, 2, 3] {
            f.push(id, &prio(&[], 0));
        }
        assert_eq!(f.pop(), Some(1));
        f.push(9, &prio(&[], 0));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), Some(9));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn repush_supersedes_the_old_position() {
        // 1 is pushed first (bottom of the DFS stack), then re-pushed: it
        // must now pop before 2, and only once.
        let mut f = DfsFrontier::new();
        f.push(1, &prio(&[], 0));
        f.push(2, &prio(&[], 0));
        f.push(1, &prio(&[], 0));
        assert_eq!(f.len(), 2);
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn random_draws_every_state_exactly_once() {
        let mut f = RandomFrontier::new(7);
        for id in 0..50 {
            f.push(id, &prio(&[], 0));
        }
        let mut seen: Vec<u64> = (0..50).map(|_| f.pop().unwrap()).collect();
        assert_eq!(f.pop(), None);
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn proximity_prefers_lower_keys_and_deeper_ties() {
        let mut f = ProximityFrontier::new(1, 1);
        f.push(10, &prio(&[100], 5));
        f.push(11, &prio(&[3], 5));
        f.push(12, &prio(&[3], 50)); // same key, deeper → wins the tie
        assert_eq!(f.pop(), Some(12));
        assert_eq!(f.pop(), Some(11));
        assert_eq!(f.pop(), Some(10));
        assert_eq!(f.pop(), None);
        assert!(f.wants_priorities());
    }

    #[test]
    fn proximity_repush_updates_the_priority() {
        let mut f = ProximityFrontier::new(2, 1);
        f.push(1, &prio(&[50, 50], 0));
        f.push(2, &prio(&[40, 40], 0));
        // Promote 1 past 2 (the deadlock heuristic's snapshot promotion).
        f.push(1, &prio(&[0, 0], 0));
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), None);
    }
}
