//! Pluggable search frontiers: the engine's worklist of execution states.
//!
//! The search engine repeatedly *pops* a state from the frontier, advances it
//! by one micro-step, and *pushes* it back (or pushes the states it forked
//! into). Which state the frontier hands back next is the search strategy —
//! the only part of the dynamic phase that differs between ESD and the
//! baselines it is compared against — so it is factored out behind the
//! [`SearchFrontier`] trait and selected via [`SearchConfig`]:
//!
//! * [`ProximityFrontier`] — ESD's strategy (§3.4, Algorithm 1): one virtual
//!   priority queue per goal (intermediate goals from the static phase plus
//!   the final goal), each ordered by the proximity estimate; selection picks
//!   a queue uniformly at random and takes its closest state.
//! * [`DfsFrontier`] — depth-first (Klee's DFS searcher, "equivalent to an
//!   exhaustive search").
//! * [`BfsFrontier`] — breadth-first: the frontier is a FIFO, so exploration
//!   sweeps the whole state tree level by level. Not in the paper; useful as
//!   a fairness baseline when comparing frontiers in `esd-bench`.
//! * [`RandomFrontier`] — uniformly random among live states (Klee's
//!   RandomPath searcher, the second KC baseline).
//! * [`BeamFrontier`] — batched proximity search: selection picks the `k`
//!   closest states at once and advances each of them before re-selecting.
//!   Not in the paper; the ROADMAP's batched-frontier step toward a
//!   work-stealing, multi-threaded engine (a whole beam can be handed to a
//!   worker pool).
//!
//! # Contract
//!
//! The engine computes a [`StatePriority`] for a state every time the state
//! enters (or re-enters) the frontier and calls [`SearchFrontier::push`]; a
//! later `push` of the same id *replaces* the previous position (used to
//! promote states when the deadlock heuristics change their priority). A
//! [`SearchFrontier::pop`] removes the returned state from the frontier.
//! Implementations may keep lazily-invalidated entries internally, but `pop`
//! must only return ids that are currently pushed, and `len` counts live
//! states, not internal entries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

/// The beam width [`FrontierKind::Beam`] uses when none is given explicitly
/// (`"beam"` parses to this width).
pub const DEFAULT_BEAM_WIDTH: usize = 8;

/// Which [`SearchFrontier`] implementation the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FrontierKind {
    /// Depth-first search ([`DfsFrontier`]).
    Dfs,
    /// Breadth-first search ([`BfsFrontier`]).
    Bfs,
    /// Uniformly random among live states ([`RandomFrontier`]).
    Random,
    /// ESD's proximity-guided virtual queues ([`ProximityFrontier`]).
    #[default]
    Proximity,
    /// Batched proximity search ([`BeamFrontier`]): advance the `width`
    /// closest states per selection.
    Beam {
        /// How many states each selection batch advances.
        width: usize,
    },
}

impl FrontierKind {
    /// The beam frontier at its default width.
    pub fn beam() -> Self {
        FrontierKind::Beam { width: DEFAULT_BEAM_WIDTH }
    }
}

impl std::str::FromStr for FrontierKind {
    type Err = String;

    /// Parses `"dfs"`, `"bfs"`, `"random"` / `"randompath"`, `"proximity"` /
    /// `"esd"`, or `"beam"` / `"beam:<width>"` (case-insensitive) — the
    /// spellings accepted by the `esd-bench` binaries and `ESD_FRONTIER`
    /// environment variable.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        if let Some(width) = lower.strip_prefix("beam:") {
            return match width.parse::<usize>() {
                Ok(w) if w > 0 => Ok(FrontierKind::Beam { width: w }),
                _ => Err(format!("beam width {width:?} must be a positive integer")),
            };
        }
        match lower.as_str() {
            "dfs" => Ok(FrontierKind::Dfs),
            "bfs" => Ok(FrontierKind::Bfs),
            "random" | "randompath" => Ok(FrontierKind::Random),
            "proximity" | "esd" => Ok(FrontierKind::Proximity),
            "beam" => Ok(FrontierKind::beam()),
            other => Err(format!(
                "unknown frontier {other:?} (expected dfs|bfs|random|proximity|beam[:width])"
            )),
        }
    }
}

impl std::fmt::Display for FrontierKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontierKind::Dfs => f.write_str("dfs"),
            FrontierKind::Bfs => f.write_str("bfs"),
            FrontierKind::Random => f.write_str("random"),
            FrontierKind::Proximity => f.write_str("proximity"),
            FrontierKind::Beam { width } if *width == DEFAULT_BEAM_WIDTH => f.write_str("beam"),
            FrontierKind::Beam { width } => write!(f, "beam:{width}"),
        }
    }
}

/// How the engine orders its exploration: a frontier implementation plus the
/// seed for the stochastic ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// The frontier implementation to use.
    pub kind: FrontierKind,
    /// PRNG seed for [`FrontierKind::Random`] and [`FrontierKind::Proximity`]
    /// (ignored by the deterministic frontiers).
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig::proximity(1)
    }
}

impl SearchConfig {
    /// Depth-first exploration.
    pub fn dfs() -> Self {
        SearchConfig { kind: FrontierKind::Dfs, seed: 0 }
    }

    /// Breadth-first exploration.
    pub fn bfs() -> Self {
        SearchConfig { kind: FrontierKind::Bfs, seed: 0 }
    }

    /// Uniformly random state selection with the given seed.
    pub fn random(seed: u64) -> Self {
        SearchConfig { kind: FrontierKind::Random, seed }
    }

    /// ESD's proximity-guided selection with the given seed.
    pub fn proximity(seed: u64) -> Self {
        SearchConfig { kind: FrontierKind::Proximity, seed }
    }

    /// Batched proximity selection advancing `width` states per batch.
    pub fn beam(width: usize) -> Self {
        SearchConfig { kind: FrontierKind::Beam { width }, seed: 0 }
    }

    /// The same configuration with a different frontier kind.
    pub fn with_kind(self, kind: FrontierKind) -> Self {
        SearchConfig { kind, ..self }
    }

    /// Instantiates the frontier. `num_queues` is the number of virtual goal
    /// queues the engine maintains (intermediate goals + the final goal);
    /// only the proximity frontier uses it.
    pub fn build(&self, num_queues: usize) -> Box<dyn SearchFrontier> {
        match self.kind {
            FrontierKind::Dfs => Box::new(DfsFrontier::new()),
            FrontierKind::Bfs => Box::new(BfsFrontier::new()),
            FrontierKind::Random => Box::new(RandomFrontier::new(self.seed)),
            FrontierKind::Proximity => Box::new(ProximityFrontier::new(num_queues, self.seed)),
            FrontierKind::Beam { width } => Box::new(BeamFrontier::new(width)),
        }
    }
}

/// The ordering information the engine computes for a state as it enters the
/// frontier.
#[derive(Debug, Clone, Default)]
pub struct StatePriority {
    /// One key per virtual goal queue — lower is closer to that goal
    /// (proximity estimate biased by the deadlock schedule distance). Empty
    /// unless the frontier [wants priorities](SearchFrontier::wants_priorities).
    pub queue_keys: Vec<u64>,
    /// Total instructions this state has executed (used to break priority
    /// ties in favor of deeper states).
    pub depth: u64,
}

/// A worklist of execution-state ids; see the [module docs](self) for the
/// push/pop contract.
///
/// Frontiers are `Send` so the layer above the engine — the multi-job
/// executor — can advance whole sessions (engine included) on a worker
/// thread pool.
pub trait SearchFrontier: Send {
    /// Inserts state `id`, or — if it is already in the frontier — moves it
    /// to the position implied by the new priority.
    fn push(&mut self, id: u64, prio: &StatePriority);

    /// Removes and returns the next state to advance, or `None` when the
    /// frontier is empty.
    fn pop(&mut self) -> Option<u64>;

    /// Removes and returns the next *batch* of states to advance — the
    /// engine's unit of parallelism: every state of a batch is advanced
    /// (possibly on a worker pool) before the frontier is consulted again.
    ///
    /// The default implementation returns a batch of at most one state
    /// (`pop()`), which is what the single-state frontiers want; the
    /// [`BeamFrontier`] overrides it to hand back its whole beam at once.
    /// The returned ids are removed from the frontier, and their order is
    /// deterministic: the engine merges batch results in exactly this order.
    fn pop_batch(&mut self) -> Vec<u64> {
        self.pop().into_iter().collect()
    }

    /// True if this frontier consumes [`StatePriority::queue_keys`]; the
    /// engine skips the per-goal proximity computation otherwise.
    fn wants_priorities(&self) -> bool {
        false
    }

    /// True if the frontier consumes one key *per virtual goal queue*
    /// (intermediate goals and final goal). When false — and
    /// [`wants_priorities`](SearchFrontier::wants_priorities) is true — the
    /// engine computes only the final-goal key and pushes
    /// `queue_keys == [final_key]`, skipping the per-intermediate-goal
    /// proximity scans.
    fn wants_intermediate_priorities(&self) -> bool {
        true
    }

    /// Number of states currently in the frontier.
    fn len(&self) -> usize;

    /// True when no states are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Captures the frontier's complete ordering state (including lazy
    /// invalidation stamps and any PRNG position) as a serializable value;
    /// [`FrontierSnapshot::restore`] rebuilds a frontier that pops exactly
    /// the sequence of states this one would have popped.
    fn snapshot(&self) -> FrontierSnapshot;
}

/// Serializable image of a [`SearchFrontier`]'s internal state, captured by
/// [`SearchFrontier::snapshot`] and rebuilt by [`FrontierSnapshot::restore`].
///
/// Ordered containers (the DFS stack, the BFS queue, a committed beam, the
/// random frontier's id vector) are stored verbatim — their order *is* the
/// search order. Heaps are stored as their entry sets sorted ascending: the
/// entries are distinct totally-ordered tuples, so a heap rebuilt from them
/// pops identically, and sorting makes the serialized form canonical.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrontierSnapshot {
    /// Image of a [`DfsFrontier`].
    Dfs {
        /// The LIFO stack of `(stamp, id)` entries, bottom first.
        stack: Vec<(u64, u64)>,
        /// The lazy-invalidation table.
        live: LivenessSnapshot,
    },
    /// Image of a [`BfsFrontier`].
    Bfs {
        /// The FIFO queue of `(stamp, id)` entries, front first.
        queue: Vec<(u64, u64)>,
        /// The lazy-invalidation table.
        live: LivenessSnapshot,
    },
    /// Image of a [`RandomFrontier`].
    Random {
        /// Live state ids in their internal (swap-remove) order.
        ids: Vec<u64>,
        /// The PRNG's exact position, as its four state words.
        rng: (u64, u64, u64, u64),
    },
    /// Image of a [`ProximityFrontier`].
    Proximity {
        /// Per-virtual-queue heap entries `(key, inverted depth, stamp, id)`,
        /// each queue sorted ascending.
        queues: Vec<Vec<(u64, u64, u64, u64)>>,
        /// The lazy-invalidation table.
        live: LivenessSnapshot,
        /// The PRNG's exact position, as its four state words.
        rng: (u64, u64, u64, u64),
    },
    /// Image of a [`BeamFrontier`].
    Beam {
        /// States advanced per selection.
        width: u64,
        /// Heap entries `(key, inverted depth, stamp, id)`, sorted ascending.
        heap: Vec<(u64, u64, u64, u64)>,
        /// The committed, partially drained beam of `(stamp, id)` entries,
        /// front first.
        beam: Vec<(u64, u64)>,
        /// The lazy-invalidation table.
        live: LivenessSnapshot,
    },
}

impl FrontierSnapshot {
    /// Rebuilds the frontier this snapshot was captured from; the restored
    /// frontier's pop sequence is identical to the captured one's.
    pub fn restore(&self) -> Box<dyn SearchFrontier> {
        match self {
            FrontierSnapshot::Dfs { stack, live } => {
                Box::new(DfsFrontier { stack: stack.clone(), live: Liveness::restore(live) })
            }
            FrontierSnapshot::Bfs { queue, live } => Box::new(BfsFrontier {
                queue: queue.iter().copied().collect(),
                live: Liveness::restore(live),
            }),
            FrontierSnapshot::Random { ids, rng } => Box::new(RandomFrontier {
                ids: ids.clone(),
                present: ids.iter().copied().collect(),
                rng: StdRng::from_state([rng.0, rng.1, rng.2, rng.3]),
            }),
            FrontierSnapshot::Proximity { queues, live, rng } => Box::new(ProximityFrontier {
                queues: queues
                    .iter()
                    .map(|entries| entries.iter().map(|e| Reverse(*e)).collect())
                    .collect(),
                live: Liveness::restore(live),
                rng: StdRng::from_state([rng.0, rng.1, rng.2, rng.3]),
            }),
            FrontierSnapshot::Beam { width, heap, beam, live } => Box::new(BeamFrontier {
                width: (*width as usize).max(1),
                heap: heap.iter().map(|e| Reverse(*e)).collect(),
                beam: beam.iter().copied().collect(),
                live: Liveness::restore(live),
            }),
        }
    }
}

/// Serializable image of a frontier's lazy-invalidation table (the private
/// `Liveness` bookkeeping shared by the frontier implementations).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LivenessSnapshot {
    /// Live `(state id, valid stamp)` entries, sorted by id (canonical form —
    /// the underlying table is an unordered map).
    pub current: Vec<(u64, u64)>,
    /// The next stamp the table will hand out.
    pub next_stamp: u64,
}

/// Captures a [`StateQueue`]'s entries, sorted ascending (canonical form; the
/// entries are distinct, so rebuild order is irrelevant to pop order).
fn heap_entries(heap: &StateQueue) -> Vec<(u64, u64, u64, u64)> {
    let mut entries: Vec<(u64, u64, u64, u64)> = heap.iter().map(|Reverse(e)| *e).collect();
    entries.sort_unstable();
    entries
}

/// Captures an [`StdRng`]'s state words as a serializable tuple.
fn rng_state(rng: &StdRng) -> (u64, u64, u64, u64) {
    let s = rng.state();
    (s[0], s[1], s[2], s[3])
}

/// Lazy-invalidation bookkeeping shared by the frontier implementations:
/// stale entries (from a superseding `push` of the same id) stay in the
/// underlying container and are skipped on `pop` by checking their stamp.
#[derive(Debug, Default)]
struct Liveness {
    current: HashMap<u64, u64>,
    next_stamp: u64,
}

impl Liveness {
    /// Registers a (re-)push of `id`, returning the stamp that marks the new
    /// entry as the only valid one.
    fn stamp(&mut self, id: u64) -> u64 {
        self.next_stamp += 1;
        self.current.insert(id, self.next_stamp);
        self.next_stamp
    }

    /// Consumes the entry `(id, stamp)` if it is the valid one, removing the
    /// id from the frontier.
    fn take(&mut self, id: u64, stamp: u64) -> bool {
        if self.current.get(&id) == Some(&stamp) {
            self.current.remove(&id);
            true
        } else {
            false
        }
    }

    /// True if `(id, stamp)` is the valid entry for `id`, without consuming
    /// it (used when moving entries between internal containers).
    fn is_current(&self, id: u64, stamp: u64) -> bool {
        self.current.get(&id) == Some(&stamp)
    }

    /// Removes and returns an arbitrary live id — the degraded fallback for
    /// the case where a frontier's internal containers only hold stale
    /// entries for ids that are still live (unreachable while the push/pop
    /// invariants hold).
    fn take_any(&mut self) -> Option<u64> {
        let id = *self.current.keys().next()?;
        self.current.remove(&id);
        Some(id)
    }

    fn len(&self) -> usize {
        self.current.len()
    }

    /// Captures the table for a frontier snapshot (entries sorted by id).
    fn snapshot(&self) -> LivenessSnapshot {
        let mut current: Vec<(u64, u64)> = self.current.iter().map(|(k, v)| (*k, *v)).collect();
        current.sort_unstable();
        LivenessSnapshot { current, next_stamp: self.next_stamp }
    }

    /// Rebuilds the table from a snapshot.
    fn restore(snap: &LivenessSnapshot) -> Self {
        Liveness { current: snap.current.iter().copied().collect(), next_stamp: snap.next_stamp }
    }
}

/// Depth-first frontier: a LIFO stack, so the search always extends the most
/// recently forked state first.
#[derive(Debug, Default)]
pub struct DfsFrontier {
    stack: Vec<(u64, u64)>,
    live: Liveness,
}

impl DfsFrontier {
    /// Creates an empty DFS frontier.
    pub fn new() -> Self {
        DfsFrontier::default()
    }
}

impl SearchFrontier for DfsFrontier {
    fn push(&mut self, id: u64, _prio: &StatePriority) {
        let stamp = self.live.stamp(id);
        self.stack.push((stamp, id));
    }

    fn pop(&mut self) -> Option<u64> {
        while let Some((stamp, id)) = self.stack.pop() {
            if self.live.take(id, stamp) {
                return Some(id);
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn snapshot(&self) -> FrontierSnapshot {
        FrontierSnapshot::Dfs { stack: self.stack.clone(), live: self.live.snapshot() }
    }
}

/// Breadth-first frontier: a FIFO queue, so states are advanced in the order
/// they were created and the state tree is swept level by level.
#[derive(Debug, Default)]
pub struct BfsFrontier {
    queue: VecDeque<(u64, u64)>,
    live: Liveness,
}

impl BfsFrontier {
    /// Creates an empty BFS frontier.
    pub fn new() -> Self {
        BfsFrontier::default()
    }
}

impl SearchFrontier for BfsFrontier {
    fn push(&mut self, id: u64, _prio: &StatePriority) {
        let stamp = self.live.stamp(id);
        self.queue.push_back((stamp, id));
    }

    fn pop(&mut self) -> Option<u64> {
        while let Some((stamp, id)) = self.queue.pop_front() {
            if self.live.take(id, stamp) {
                return Some(id);
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn snapshot(&self) -> FrontierSnapshot {
        FrontierSnapshot::Bfs {
            queue: self.queue.iter().copied().collect(),
            live: self.live.snapshot(),
        }
    }
}

/// Uniformly random frontier (Klee's RandomPath searcher): `pop` draws one of
/// the live states with equal probability.
#[derive(Debug)]
pub struct RandomFrontier {
    ids: Vec<u64>,
    present: HashSet<u64>,
    rng: StdRng,
}

impl RandomFrontier {
    /// Creates an empty random frontier drawing from the given seed.
    pub fn new(seed: u64) -> Self {
        RandomFrontier {
            ids: Vec::new(),
            present: HashSet::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SearchFrontier for RandomFrontier {
    fn push(&mut self, id: u64, _prio: &StatePriority) {
        if self.present.insert(id) {
            self.ids.push(id);
        }
    }

    fn pop(&mut self) -> Option<u64> {
        if self.ids.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.ids.len());
        let id = self.ids.swap_remove(i);
        self.present.remove(&id);
        Some(id)
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn snapshot(&self) -> FrontierSnapshot {
        // The id vector's order is load-bearing (`pop` indexes into it), so
        // it is captured verbatim, not sorted.
        FrontierSnapshot::Random { ids: self.ids.clone(), rng: rng_state(&self.rng) }
    }
}

/// Min-heap of `(key, inverted depth, stamp, state id)` entries.
type StateQueue = BinaryHeap<Reverse<(u64, u64, u64, u64)>>;

/// ESD's proximity-guided frontier (§3.4): one virtual priority queue per
/// goal target set, each ordered by the precomputed proximity key; `pop`
/// picks a queue uniformly at random and returns its closest state. Ties are
/// broken toward deeper states so the search keeps extending its most
/// advanced interleaving instead of sweeping breadth-first.
#[derive(Debug)]
pub struct ProximityFrontier {
    queues: Vec<StateQueue>,
    live: Liveness,
    rng: StdRng,
}

impl ProximityFrontier {
    /// Creates a frontier with `num_queues` virtual goal queues.
    pub fn new(num_queues: usize, seed: u64) -> Self {
        ProximityFrontier {
            queues: (0..num_queues.max(1)).map(|_| BinaryHeap::new()).collect(),
            live: Liveness::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SearchFrontier for ProximityFrontier {
    fn push(&mut self, id: u64, prio: &StatePriority) {
        debug_assert_eq!(prio.queue_keys.len(), self.queues.len(), "one key per virtual queue");
        let stamp = self.live.stamp(id);
        let depth_tiebreak = u64::MAX - prio.depth;
        for (queue, key) in self.queues.iter_mut().zip(&prio.queue_keys) {
            queue.push(Reverse((*key, depth_tiebreak, stamp, id)));
        }
    }

    fn pop(&mut self) -> Option<u64> {
        if self.live.len() == 0 {
            return None;
        }
        // Uniformly random queue, as in the paper; skip lazily-invalidated
        // entries until a live, current-stamp one appears.
        for _ in 0..self.queues.len() * 4 {
            let qi = self.rng.gen_range(0..self.queues.len());
            while let Some(Reverse((_, _, stamp, id))) = self.queues[qi].pop() {
                if self.live.take(id, stamp) {
                    return Some(id);
                }
            }
        }
        // Every sampled queue drained stale: fall back to any live state.
        self.live.take_any()
    }

    fn wants_priorities(&self) -> bool {
        true
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn snapshot(&self) -> FrontierSnapshot {
        FrontierSnapshot::Proximity {
            queues: self.queues.iter().map(heap_entries).collect(),
            live: self.live.snapshot(),
            rng: rng_state(&self.rng),
        }
    }
}

/// Batched proximity frontier: selection draws the `width` states with the
/// lowest *final-goal* priority key into a beam, and `pop` drains the beam
/// before re-selecting. Every state of a beam is therefore advanced once per
/// selection — the ROADMAP's "advance k states per selection" batched
/// frontier. Compared to [`ProximityFrontier`] it trades selection sharpness
/// (the beam is not re-ranked after each micro-step) for selection work that
/// is amortized over `width` states and a natural unit to hand to a worker
/// pool once the engine goes multi-threaded.
#[derive(Debug)]
pub struct BeamFrontier {
    width: usize,
    heap: StateQueue,
    /// The current beam, drained by `pop`; entries carry their stamp so a
    /// re-push while beamed (a priority promotion) invalidates them here too.
    beam: VecDeque<(u64, u64)>,
    live: Liveness,
}

impl BeamFrontier {
    /// Creates an empty beam frontier advancing `width` states per selection.
    pub fn new(width: usize) -> Self {
        BeamFrontier {
            width: width.max(1),
            heap: BinaryHeap::new(),
            beam: VecDeque::new(),
            live: Liveness::default(),
        }
    }

    /// Moves the `width` best live entries from the heap into the beam.
    fn refill(&mut self) {
        while self.beam.len() < self.width {
            match self.heap.pop() {
                Some(Reverse((_, _, stamp, id))) => {
                    // Stale entries (superseded by a later push) are dropped;
                    // live ones keep their stamp and stay live while beamed.
                    if self.live.is_current(id, stamp) {
                        self.beam.push_back((stamp, id));
                    }
                }
                None => break,
            }
        }
    }

    /// Takes the next live entry out of the current beam, skipping entries
    /// invalidated by a re-push since they were beamed.
    fn drain_one(&mut self) -> Option<u64> {
        while let Some((stamp, id)) = self.beam.pop_front() {
            if self.live.take(id, stamp) {
                return Some(id);
            }
        }
        None
    }
}

impl SearchFrontier for BeamFrontier {
    fn push(&mut self, id: u64, prio: &StatePriority) {
        // Order by the final-goal key only (the last — and, since this
        // frontier opts out of intermediate priorities, only — queue key):
        // the beam is a batch of the states globally closest to the
        // reported failure.
        let key = prio.queue_keys.last().copied().unwrap_or(0);
        let stamp = self.live.stamp(id);
        self.heap.push(Reverse((key, u64::MAX - prio.depth, stamp, id)));
    }

    fn pop(&mut self) -> Option<u64> {
        loop {
            if let Some(id) = self.drain_one() {
                return Some(id);
            }
            if self.live.len() == 0 {
                return None;
            }
            self.refill();
            if self.beam.is_empty() {
                // Every heap entry was stale but live states remain: degrade
                // to any live state rather than stalling the search.
                return self.live.take_any();
            }
        }
    }

    fn pop_batch(&mut self) -> Vec<u64> {
        // Hand the whole beam over as one batch: select (refill) the `width`
        // closest live states and return them all, preserving the selection
        // order `pop` would have drained them in.
        let mut batch = Vec::new();
        loop {
            while let Some(id) = self.drain_one() {
                batch.push(id);
            }
            if !batch.is_empty() || self.live.len() == 0 {
                return batch;
            }
            self.refill();
            if self.beam.is_empty() {
                // Every heap entry was stale but live states remain: degrade
                // to any live state rather than stalling the search.
                batch.extend(self.live.take_any());
                return batch;
            }
        }
    }

    fn wants_priorities(&self) -> bool {
        true
    }

    fn wants_intermediate_priorities(&self) -> bool {
        // Only the final-goal key is consumed; let the engine skip the
        // per-intermediate-goal proximity scans.
        false
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn snapshot(&self) -> FrontierSnapshot {
        FrontierSnapshot::Beam {
            width: self.width as u64,
            heap: heap_entries(&self.heap),
            beam: self.beam.iter().copied().collect(),
            live: self.live.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prio(keys: &[u64], depth: u64) -> StatePriority {
        StatePriority { queue_keys: keys.to_vec(), depth }
    }

    #[test]
    fn frontier_kind_parses_and_displays() {
        for (s, k) in [
            ("dfs", FrontierKind::Dfs),
            ("BFS", FrontierKind::Bfs),
            ("RandomPath", FrontierKind::Random),
            ("esd", FrontierKind::Proximity),
            ("proximity", FrontierKind::Proximity),
            ("beam", FrontierKind::Beam { width: DEFAULT_BEAM_WIDTH }),
            ("beam:4", FrontierKind::Beam { width: 4 }),
        ] {
            assert_eq!(s.parse::<FrontierKind>().unwrap(), k);
        }
        assert!("weird".parse::<FrontierKind>().is_err());
        assert!("beam:0".parse::<FrontierKind>().is_err());
        assert!("beam:x".parse::<FrontierKind>().is_err());
        assert_eq!(FrontierKind::Proximity.to_string(), "proximity");
        assert_eq!(FrontierKind::beam().to_string(), "beam");
        assert_eq!(FrontierKind::Beam { width: 16 }.to_string(), "beam:16");
        // Display round-trips through FromStr for every kind.
        for k in [FrontierKind::beam(), FrontierKind::Beam { width: 3 }, FrontierKind::Dfs] {
            assert_eq!(k.to_string().parse::<FrontierKind>().unwrap(), k);
        }
    }

    #[test]
    fn dfs_pops_most_recent_first() {
        let mut f = DfsFrontier::new();
        for id in [1, 2, 3] {
            f.push(id, &prio(&[], 0));
        }
        assert_eq!(f.len(), 3);
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), Some(2));
        f.push(9, &prio(&[], 0));
        assert_eq!(f.pop(), Some(9));
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn bfs_pops_oldest_first() {
        let mut f = BfsFrontier::new();
        for id in [1, 2, 3] {
            f.push(id, &prio(&[], 0));
        }
        assert_eq!(f.pop(), Some(1));
        f.push(9, &prio(&[], 0));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), Some(9));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn repush_supersedes_the_old_position() {
        // 1 is pushed first (bottom of the DFS stack), then re-pushed: it
        // must now pop before 2, and only once.
        let mut f = DfsFrontier::new();
        f.push(1, &prio(&[], 0));
        f.push(2, &prio(&[], 0));
        f.push(1, &prio(&[], 0));
        assert_eq!(f.len(), 2);
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn random_draws_every_state_exactly_once() {
        let mut f = RandomFrontier::new(7);
        for id in 0..50 {
            f.push(id, &prio(&[], 0));
        }
        let mut seen: Vec<u64> = (0..50).map(|_| f.pop().unwrap()).collect();
        assert_eq!(f.pop(), None);
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn proximity_prefers_lower_keys_and_deeper_ties() {
        let mut f = ProximityFrontier::new(1, 1);
        f.push(10, &prio(&[100], 5));
        f.push(11, &prio(&[3], 5));
        f.push(12, &prio(&[3], 50)); // same key, deeper → wins the tie
        assert_eq!(f.pop(), Some(12));
        assert_eq!(f.pop(), Some(11));
        assert_eq!(f.pop(), Some(10));
        assert_eq!(f.pop(), None);
        assert!(f.wants_priorities());
    }

    #[test]
    fn beam_advances_the_selected_batch_before_reselecting() {
        let mut f = BeamFrontier::new(2);
        f.push(1, &prio(&[10], 0));
        f.push(2, &prio(&[20], 0));
        f.push(3, &prio(&[30], 0));
        // The first selection beams {1, 2} (the two lowest keys).
        assert_eq!(f.pop(), Some(1));
        // A closer state arriving mid-beam must wait for the next selection —
        // the batch is committed.
        f.push(4, &prio(&[0], 0));
        assert_eq!(f.pop(), Some(2));
        // Next selection re-ranks: {4, 3}.
        assert_eq!(f.pop(), Some(4));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), None);
        assert!(f.wants_priorities());
    }

    #[test]
    fn beam_repush_supersedes_even_inside_the_beam() {
        let mut f = BeamFrontier::new(4);
        f.push(1, &prio(&[10], 0));
        f.push(2, &prio(&[20], 0));
        // Both are beamed by the first selection; re-pushing 2 while it is
        // beamed must not make it pop twice.
        assert_eq!(f.pop(), Some(1));
        f.push(2, &prio(&[5], 0));
        assert_eq!(f.len(), 1);
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn pop_batch_drains_the_whole_beam_at_once() {
        let mut f = BeamFrontier::new(2);
        f.push(1, &prio(&[10], 0));
        f.push(2, &prio(&[20], 0));
        f.push(3, &prio(&[30], 0));
        assert_eq!(f.pop_batch(), vec![1, 2]);
        assert_eq!(f.pop_batch(), vec![3]);
        assert!(f.pop_batch().is_empty());
        // Single-state frontiers batch one state at a time (the default).
        let mut d = DfsFrontier::new();
        d.push(1, &prio(&[], 0));
        d.push(2, &prio(&[], 0));
        assert_eq!(d.pop_batch(), vec![2]);
        assert_eq!(d.pop_batch(), vec![1]);
        assert!(d.pop_batch().is_empty());
    }

    #[test]
    fn proximity_repush_updates_the_priority() {
        let mut f = ProximityFrontier::new(2, 1);
        f.push(1, &prio(&[50, 50], 0));
        f.push(2, &prio(&[40, 40], 0));
        // Promote 1 past 2 (the deadlock heuristic's snapshot promotion).
        f.push(1, &prio(&[0, 0], 0));
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), None);
    }
}
