//! The multi-threaded symbolic-execution search engine.
//!
//! This is the dynamic phase of execution synthesis (§3.3–§4): the program is
//! executed with symbolic inputs; execution states fork at branches on
//! symbolic values and at scheduling decisions around synchronization
//! operations; a search strategy decides which state to advance next; the
//! search completes when a state reaches the goal extracted from the bug
//! report, at which point the accumulated path constraints are solved into
//! concrete inputs and the recorded serialized schedule becomes the
//! synthesized execution.
//!
//! Which state is advanced next is decided by a pluggable [`SearchFrontier`]
//! (see [`crate::frontier`]) selected through [`SearchConfig`]: ESD's
//! proximity-guided virtual queues — ordered by the Algorithm-1 proximity
//! estimate, biased by the deadlock schedule distance (§4.1), with
//! critical-edge path abandonment and intermediate goals from the static
//! phase — or the DFS / BFS / RandomPath baselines, optionally with
//! Chess-style preemption bounding (the KC baseline).
//!
//! # Threading model
//!
//! The engine is split into a **shared search pool** (this module: the state
//! map, the frontier, the dedup fingerprints, the statistics) and a
//! **per-worker `Stepper`** (the crate-private `stepper` module) that advances individual
//! states with its own private [`Solver`](crate::solver::Solver). One
//! [`Engine::step_round`] pops a whole *batch* from the frontier
//! ([`SearchFrontier::pop_batch`]) — a single state for the single-state
//! frontiers, the entire beam for [`FrontierKind::Beam`](crate::frontier::FrontierKind::Beam) — advances every
//! state of the batch on [scoped worker
//! threads](std::thread::scope) when [`EngineConfig::threads`] allows, and
//! then merges the recorded effects (forked states, statistics, flagged
//! races, other bugs, snapshot promotions) back into the pool **in
//! deterministic batch order**. Steppers never touch shared mutable search
//! state and solver queries are deterministic per call, so the thread count
//! is unobservable: a `threads = N` run synthesizes the byte-identical
//! execution file of a `threads = 1` run (pinned by the
//! `parallel_beam_matches_single_threaded_run` golden test).

use crate::frontier::{FrontierSnapshot, SearchConfig, SearchFrontier, StatePriority};
use crate::solver::SolverConfig;
use crate::state::{ExecState, SchedDistance};
use crate::stepper::{PendingFork, Promotion, Solution, Stepper, TurnResult, TurnVerdict};
use esd_analysis::{DistanceOracle, StaticAnalysis, INF};
use esd_concurrency::Schedule;
use esd_ir::interp::ThreadStatus;
use esd_ir::{FaultKind, Loc, Program};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

pub use crate::expr::SymVarInfo;

/// What the synthesizer is looking for.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GoalSpec {
    /// Reach a failure whose faulting instruction is at `loc` (crashes,
    /// failed assertions, invalid frees, …).
    Crash {
        /// The faulting location from the coredump.
        loc: Loc,
    },
    /// Reach a deadlock in which, for every location listed, some thread is
    /// blocked acquiring a mutex at that location (the threads' "inner
    /// locks" from the reported call stacks).
    Deadlock {
        /// Blocked-lock locations, one per deadlocked thread.
        thread_locs: Vec<Loc>,
    },
}

impl GoalSpec {
    /// The goal locations used for proximity guidance and for seeding the
    /// static phase (one per deadlocked thread; a single one for crashes).
    pub fn primary_locs(&self) -> Vec<Loc> {
        match self {
            GoalSpec::Crash { loc } => vec![*loc],
            GoalSpec::Deadlock { thread_locs } => thread_locs.clone(),
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Which search frontier orders the exploration, and its seed.
    pub search: SearchConfig,
    /// Chess-style preemption bound (the KC baseline uses `Some(2)`); `None`
    /// leaves preemptions unbounded as in ESD.
    pub preemption_bound: Option<u32>,
    /// Total instruction budget across all states (checked between rounds, so
    /// a round may overshoot by at most one batch's burst).
    pub max_steps: u64,
    /// Maximum number of live states kept at once.
    pub max_states: usize,
    /// Use the intermediate goals from the static phase as extra queues.
    pub use_intermediate_goals: bool,
    /// Abandon states that take the wrong side of a critical edge.
    pub use_critical_edges: bool,
    /// Apply the deadlock schedule-distance heuristic (near/far bias).
    pub schedule_bias: bool,
    /// Insert preemption points before accesses flagged by the lockset race
    /// detector (needed to synthesize data-race schedules).
    pub race_preemptions: bool,
    /// Drop forked states whose structural fingerprint has been seen before.
    /// Part of ESD's scalability story (on by default); the KC baseline runs
    /// without it, as Klee/Chess enumerate paths and interleavings without
    /// state deduplication.
    pub dedup_states: bool,
    /// Worker threads used to advance a multi-state frontier batch (a beam):
    /// `1` (the default) steps every batch on the calling thread, `0` uses
    /// all available parallelism, `n > 1` uses up to `n` workers. The thread
    /// count never changes the search — batches are merged in deterministic
    /// batch order — so it is purely a wall-clock knob.
    pub threads: usize,
    /// How many micro-steps each state of a *multi-state* batch advances per
    /// round. Single-state batches (every non-beam frontier, and a beam that
    /// drained to one live state) always advance exactly one micro-step, so
    /// the single-state frontiers keep their one-instruction-per-selection
    /// granularity. The burst is the amortization unit of the worker pool:
    /// a beam is committed before it is drained — nothing is re-ranked
    /// between the instructions of a batch even sequentially — so larger
    /// bursts buy less scheduling overhead per instruction without changing
    /// the selection granularity in rounds.
    pub batch_burst: u32,
    /// Consult the static phase's interval-analysis branch verdicts before
    /// forking: branches proven one-sided for *all* inputs take that side
    /// without a solver query (the taken side's constraint is still
    /// recorded, so the search trajectory is unchanged — only the query is
    /// skipped). Off in the KC baseline, which has no static phase.
    pub static_pruning: bool,
    /// Consult the static phase's race-pair candidates in race-preemption
    /// mode: yields with no candidate-pair material around them skip the
    /// speculative preemption fork (counted in
    /// [`SearchStats::preemptions_pruned_static`]). Sound because the
    /// candidate set over-approximates the real races (MHP + lockset, both
    /// conservative) — and accesses the dynamic detector concretely flags
    /// always fork regardless, so static imprecision can delay but never
    /// hide a race. Off in the KC baseline, which has no static phase.
    pub race_candidate_pruning: bool,
    /// Solver configuration.
    pub solver: SolverConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            search: SearchConfig::default(),
            preemption_bound: None,
            max_steps: 2_000_000,
            max_states: 20_000,
            use_intermediate_goals: true,
            use_critical_edges: true,
            schedule_bias: true,
            race_preemptions: false,
            dedup_states: true,
            threads: 1,
            batch_burst: 32,
            static_pruning: true,
            race_candidate_pruning: true,
            solver: SolverConfig::default(),
        }
    }
}

impl EngineConfig {
    /// The configuration used for the KC baseline (Klee + Chess): the given
    /// search frontier, preemption bounding at 2, and none of ESD's
    /// goal-directed heuristics.
    pub fn kc(search: SearchConfig) -> Self {
        EngineConfig {
            search,
            preemption_bound: Some(2),
            use_intermediate_goals: false,
            use_critical_edges: false,
            schedule_bias: false,
            dedup_states: false,
            static_pruning: false,
            race_candidate_pruning: false,
            ..Default::default()
        }
    }
}

/// Search statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Instructions executed across all states.
    pub steps: u64,
    /// States created (including the initial one).
    pub states_created: u64,
    /// Forked states dropped before entering the pool (duplicate
    /// fingerprint, or the pool was at its `max_states` cap).
    pub states_pruned: u64,
    /// Peak number of live states.
    pub max_live_states: usize,
    /// Solver queries issued.
    pub solver_queries: u64,
    /// Branch forks decided by the static phase's interval analysis instead
    /// of the solver (the branch was provably one-sided for all inputs).
    pub branches_pruned_static: u64,
    /// Feasibility queries the static verdicts made unnecessary (two per
    /// pruned two-sided fork, one per pruned critical-edge check).
    pub solver_queries_saved: u64,
    /// Preemption forks skipped because the yield has no static race-pair
    /// candidate material around it
    /// ([`EngineConfig::race_candidate_pruning`]).
    pub preemptions_pruned_static: u64,
    /// Bugs found that did not match the goal (the paper: "ESD has
    /// discovered a different bug").
    pub other_bugs_found: usize,
    /// Data races flagged by the lockset detector.
    pub races_flagged: usize,
    /// The lowest raw path distance to the final goal observed so far (the
    /// Algorithm-1 proximity estimate, *without* the deadlock schedule-bias
    /// offset) — how close the search has come to the goal. `None` until a
    /// priority-driven frontier computes its first key.
    pub best_proximity: Option<u64>,
}

/// A successfully synthesized execution.
#[derive(Debug, Clone)]
pub struct Synthesized {
    /// Concrete value for every symbolic input word, with its provenance.
    pub inputs: Vec<(SymVarInfo, i64)>,
    /// The serialized thread schedule.
    pub schedule: Schedule,
    /// The failure the synthesized execution triggers.
    pub fault: FaultKind,
    /// Location of the failure (None for deadlocks).
    pub fault_loc: Option<Loc>,
    /// Search statistics.
    pub stats: SearchStats,
}

/// Outcome of a search.
#[derive(Debug, Clone)]
pub enum SearchOutcome {
    /// The goal was reached and an execution synthesized.
    Found(Box<Synthesized>),
    /// Every state was explored or abandoned without reaching the goal.
    Exhausted(SearchStats),
    /// The step budget ran out.
    BudgetExceeded(SearchStats),
}

/// Outcome of advancing the search by one round ([`Engine::step_round`]):
/// either the search can continue, or it ended the way a [`SearchOutcome`]
/// ends (the stats live on the engine — [`Engine::stats`]).
#[derive(Debug)]
pub enum StepOutcome {
    /// The round completed without reaching a verdict; call
    /// [`Engine::step_round`] again to keep searching.
    Running,
    /// The goal was reached and an execution synthesized.
    Found(Box<Synthesized>),
    /// Every state was explored or abandoned without reaching the goal.
    Exhausted,
    /// The step budget ran out.
    BudgetExceeded,
}

impl SearchOutcome {
    /// Returns the synthesized execution if the search succeeded.
    pub fn found(self) -> Option<Synthesized> {
        match self {
            SearchOutcome::Found(s) => Some(*s),
            _ => None,
        }
    }

    /// The statistics regardless of outcome.
    pub fn stats(&self) -> &SearchStats {
        match self {
            SearchOutcome::Found(s) => &s.stats,
            SearchOutcome::Exhausted(s) | SearchOutcome::BudgetExceeded(s) => s,
        }
    }
}

const SCHED_WEIGHT: u64 = 1_000_000_000;

/// A complete, serializable image of an [`Engine`] mid-search, captured by
/// [`Engine::snapshot`] and rebuilt by [`Engine::restore`].
///
/// The snapshot holds everything the search trajectory depends on — the goal,
/// the configuration, every live state, the frontier's exact ordering state,
/// the dedup fingerprints and the statistics — but *not* the program or the
/// static analysis, which are cheap to recompute (or already loaded) on the
/// restoring side and are passed back into [`Engine::restore`]. The derived
/// oracle, queue targets and resolved thread count are recomputed exactly as
/// [`Engine::new`] computes them, so a restored engine's continued search is
/// step-for-step identical to the captured engine's.
///
/// Serialization is canonical: states are sorted by id and fingerprints
/// ascending, so snapshotting an engine, restoring it and snapshotting again
/// yields byte-identical serialized forms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// The goal the engine searches for.
    pub goal: GoalSpec,
    /// The full engine configuration.
    pub config: EngineConfig,
    /// Every live execution state, sorted by state id.
    pub states: Vec<ExecState>,
    /// The next state id the pool will assign.
    pub next_state_id: u64,
    /// Whether the initial state has been seeded.
    pub started: bool,
    /// The frontier's complete ordering state.
    pub frontier: FrontierSnapshot,
    /// Search statistics so far.
    pub stats: SearchStats,
    /// Structural fingerprints of every state ever admitted, ascending.
    pub seen_fingerprints: Vec<u64>,
    /// Faults found that did not match the goal.
    pub other_bugs: Vec<(FaultKind, Option<Loc>)>,
}

/// The search engine: the shared search pool and the round loop.
///
/// The engine owns its program and static analysis (shared via [`Arc`]), so
/// callers that outlive the current stack frame — resumable synthesis
/// sessions, portfolio runners — can own an engine outright. The search is
/// re-entrant: [`Engine::step_round`] advances exactly one frontier batch
/// and returns a [`StepOutcome`]; [`Engine::run`] is a thin loop over it.
/// State advancement itself lives in the per-worker `Stepper`; see the
/// [module docs](self) for the threading model.
pub struct Engine {
    program: Arc<Program>,
    analysis: Arc<StaticAnalysis>,
    oracle: DistanceOracle,
    goal: GoalSpec,
    config: EngineConfig,
    states: HashMap<u64, ExecState>,
    next_state_id: u64,
    /// Whether the initial state has been seeded (done lazily on the first
    /// round so a freshly created engine is cheap).
    started: bool,
    /// One virtual queue per goal target set (intermediate goals + final),
    /// used to compute the per-queue priority keys for the frontier.
    queue_targets: Vec<Vec<Loc>>,
    /// The pluggable worklist ordering the exploration.
    frontier: Box<dyn SearchFrontier>,
    /// [`EngineConfig::threads`] with `0` ("auto") resolved to the machine's
    /// available parallelism once, at construction — `worker_count` sits on
    /// the per-round hot path.
    resolved_threads: usize,
    stats: SearchStats,
    seen_fingerprints: std::collections::HashSet<u64>,
    /// Locations of faults found that did not match the goal.
    pub other_bugs: Vec<(FaultKind, Option<Loc>)>,
}

impl Engine {
    /// Creates an engine for `program` searching for `goal`.
    pub fn new(
        program: Arc<Program>,
        analysis: Arc<StaticAnalysis>,
        goal: GoalSpec,
        config: EngineConfig,
    ) -> Self {
        let oracle = StaticAnalysis::distance_oracle(&analysis, &program);
        let mut queue_targets: Vec<Vec<Loc>> = Vec::new();
        if config.use_intermediate_goals {
            for alts in analysis.goal_info.intermediate_goal_locs() {
                if !alts.is_empty() {
                    queue_targets.push(alts);
                }
            }
        }
        queue_targets.push(goal.primary_locs());
        let frontier = config.search.build(queue_targets.len());
        let resolved_threads = if config.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.threads
        };
        Engine {
            program,
            analysis,
            oracle,
            goal,
            config,
            states: HashMap::new(),
            next_state_id: 0,
            started: false,
            queue_targets,
            frontier,
            resolved_threads,
            stats: SearchStats::default(),
            seen_fingerprints: std::collections::HashSet::new(),
            other_bugs: Vec::new(),
        }
    }

    /// Captures the engine's complete search state as a serializable
    /// [`EngineSnapshot`]; see there for what is (and is not) included.
    pub fn snapshot(&self) -> EngineSnapshot {
        let mut states: Vec<ExecState> = self.states.values().cloned().collect();
        states.sort_by_key(|s| s.id);
        let mut seen_fingerprints: Vec<u64> = self.seen_fingerprints.iter().copied().collect();
        seen_fingerprints.sort_unstable();
        EngineSnapshot {
            goal: self.goal.clone(),
            config: self.config.clone(),
            states,
            next_state_id: self.next_state_id,
            started: self.started,
            frontier: self.frontier.snapshot(),
            stats: self.stats.clone(),
            seen_fingerprints,
            other_bugs: self.other_bugs.clone(),
        }
    }

    /// Rebuilds an engine from a snapshot. `program` and `analysis` must be
    /// the ones the captured engine was created with (they are not part of
    /// the snapshot — see [`EngineSnapshot`]). The restored engine's
    /// continued search is step-for-step identical to the captured one's.
    pub fn restore(
        program: Arc<Program>,
        analysis: Arc<StaticAnalysis>,
        snap: &EngineSnapshot,
    ) -> Self {
        let mut engine = Engine::new(program, analysis, snap.goal.clone(), snap.config.clone());
        engine.states = snap.states.iter().map(|s| (s.id, s.clone())).collect();
        engine.next_state_id = snap.next_state_id;
        engine.started = snap.started;
        engine.frontier = snap.frontier.restore();
        engine.stats = snap.stats.clone();
        engine.seen_fingerprints = snap.seen_fingerprints.iter().copied().collect();
        engine.other_bugs = snap.other_bugs.clone();
        engine
    }

    /// Advances the search by one round: one frontier batch selection plus a
    /// turn of every selected state (seeding the initial state first, on the
    /// very first round).
    ///
    /// This is the re-entrant core of the engine: callers may interleave
    /// rounds of several engines, stop between rounds (the partial
    /// [`Engine::stats`] stay accessible), and resume later — the search
    /// trajectory is exactly the one [`Engine::run`] would take, because
    /// `run` *is* a loop over `step_round`. The trajectory is also
    /// independent of [`EngineConfig::threads`]: batch results are merged in
    /// batch order, whichever worker produced them first.
    pub fn step_round(&mut self) -> StepOutcome {
        if !self.started {
            self.started = true;
            let init = ExecState::initial(&self.program);
            self.register_state(init);
        }
        if self.stats.steps >= self.config.max_steps {
            return StepOutcome::BudgetExceeded;
        }
        let batch = self.frontier.pop_batch();
        if batch.is_empty() {
            return StepOutcome::Exhausted;
        }
        let jobs: Vec<(u64, ExecState)> =
            batch.iter().filter_map(|id| self.states.remove(id).map(|s| (*id, s))).collect();
        if jobs.is_empty() {
            return StepOutcome::Running;
        }
        // Single-state batches keep the historical one-instruction-per-
        // selection granularity; only committed multi-state beams burst.
        let burst = if jobs.len() > 1 { self.config.batch_burst.max(1) } else { 1 };
        let results = self.run_turns(jobs, burst);
        self.merge(results)
    }

    /// Runs the search to completion: a thin loop over
    /// [`Engine::step_round`].
    pub fn run(&mut self) -> SearchOutcome {
        loop {
            match self.step_round() {
                StepOutcome::Running => continue,
                StepOutcome::Found(synth) => return SearchOutcome::Found(synth),
                StepOutcome::Exhausted => return SearchOutcome::Exhausted(self.stats.clone()),
                StepOutcome::BudgetExceeded => {
                    return SearchOutcome::BudgetExceeded(self.stats.clone())
                }
            }
        }
    }

    /// Access to the search statistics so far.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// Number of live (queued or pooled) execution states.
    pub fn live_states(&self) -> usize {
        self.states.len()
    }

    /// The goal this engine searches for.
    pub fn goal(&self) -> &GoalSpec {
        &self.goal
    }

    /// The program under search.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The static analysis backing the proximity heuristic.
    pub fn analysis(&self) -> &Arc<StaticAnalysis> {
        &self.analysis
    }

    // ---- worker fan-out -----------------------------------------------------

    /// Advances every `(id, state)` job by one turn of up to `burst`
    /// micro-steps, fanning the jobs out over scoped worker threads when the
    /// configuration allows, and returns the results *in job order* (workers
    /// get contiguous chunks, so concatenating chunk results restores the
    /// batch order regardless of which worker finished first).
    fn run_turns(&self, jobs: Vec<(u64, ExecState)>, burst: u32) -> Vec<TurnResult> {
        let workers = self.worker_count(jobs.len());
        if workers <= 1 {
            let mut stepper = Stepper::new(&self.program, &self.analysis, &self.goal, &self.config);
            return jobs.into_iter().map(|(id, state)| stepper.turn(id, state, burst)).collect();
        }
        let chunk_size = jobs.len().div_ceil(workers);
        let mut chunks: Vec<Vec<(u64, ExecState)>> = Vec::with_capacity(workers);
        let mut it = jobs.into_iter();
        loop {
            let chunk: Vec<(u64, ExecState)> = it.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let (program, analysis) = (&self.program, &self.analysis);
        let (goal, config) = (&self.goal, &self.config);
        let run_chunk = |chunk: Vec<(u64, ExecState)>| {
            let mut stepper = Stepper::new(program, analysis, goal, config);
            chunk.into_iter().map(|(id, state)| stepper.turn(id, state, burst)).collect::<Vec<_>>()
        };
        // The calling thread is a worker too: spawn only `workers - 1`
        // threads and step the first chunk inline, so the pool costs one
        // spawn less per round.
        let first = chunks.remove(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let run_chunk = &run_chunk;
                    scope.spawn(move || run_chunk(chunk))
                })
                .collect();
            let mut results = run_chunk(first);
            for handle in handles {
                results.extend(handle.join().expect("engine worker panicked"));
            }
            results
        })
    }

    /// The number of workers a batch of `batch_len` states may use.
    fn worker_count(&self, batch_len: usize) -> usize {
        self.resolved_threads.min(batch_len)
    }

    // ---- deterministic merge ------------------------------------------------

    /// Merges a batch's turn results into the shared pool, strictly in batch
    /// order: statistics first, then snapshot promotions, then fork
    /// admission (dedup fingerprint + pool cap, assigning state ids in
    /// creation order), then the surviving parent re-enters the frontier.
    /// The first goal-reaching result in batch order wins; later results of
    /// the same batch are discarded (deterministically — batch order does
    /// not depend on the worker count).
    fn merge(&mut self, results: Vec<TurnResult>) -> StepOutcome {
        let mut pending: VecDeque<TurnResult> = results.into();
        while let Some(mut result) = pending.pop_front() {
            self.stats.steps += result.steps;
            self.stats.solver_queries += result.solver_queries;
            self.stats.branches_pruned_static += result.branches_pruned_static;
            self.stats.solver_queries_saved += result.solver_queries_saved;
            self.stats.preemptions_pruned_static += result.preemptions_pruned_static;
            self.stats.races_flagged += result.races_flagged;
            self.stats.other_bugs_found += result.other_bugs.len();
            self.other_bugs.append(&mut result.other_bugs);
            for promotion in std::mem::take(&mut result.promotions) {
                match promotion {
                    Promotion::Registered(sid) => self.promote_snapshot(sid, &mut pending),
                    // A snapshot forked earlier in the same turn: promote it
                    // before admission so it enters the frontier with the
                    // promoted priority (sequentially the fork would have
                    // registered Neutral and been re-pushed Near one round
                    // later — the effective frontier position is the same).
                    Promotion::Pending(fork) => {
                        result.forks[fork].state.sched_distance = SchedDistance::Near;
                    }
                }
            }
            for PendingFork { state, lock_snapshot } in std::mem::take(&mut result.forks) {
                if let Some(id) = self.register_state(state) {
                    if let Some(mutex) = lock_snapshot {
                        result.state.lock_snapshots.push((mutex, id));
                    }
                }
            }
            match result.verdict {
                TurnVerdict::Continue => self.reinsert_state(result.state),
                TurnVerdict::Dead => {}
                TurnVerdict::Goal { solution: Some(solution) } => {
                    return StepOutcome::Found(Box::new(self.synthesized(solution)));
                }
                // The goal state's constraints could not be solved: abandon
                // it and keep searching.
                TurnVerdict::Goal { solution: None } => {}
            }
        }
        StepOutcome::Running
    }

    /// Applies the deadlock roll-back heuristic to a snapshot state: promote
    /// it to [`SchedDistance::Near`] wherever it currently lives — the pool,
    /// or the not-yet-merged remainder of the current batch.
    fn promote_snapshot(&mut self, sid: u64, pending: &mut VecDeque<TurnResult>) {
        if let Some(mut state) = self.states.remove(&sid) {
            // Taken out of the map only to satisfy the borrow checker across
            // the push (which recomputes the priority keys); reinserted
            // unconditionally below.
            state.sched_distance = SchedDistance::Near;
            self.push_to_frontier(&state);
            self.states.insert(sid, state);
        } else if let Some(result) = pending.iter_mut().find(|r| r.id == sid) {
            // The snapshot is part of this very batch: its re-entry into the
            // frontier (with the promoted priority) happens when its own
            // result is merged.
            result.state.sched_distance = SchedDistance::Near;
        }
    }

    fn synthesized(&self, solution: Solution) -> Synthesized {
        Synthesized {
            inputs: solution.inputs,
            schedule: solution.schedule,
            fault: solution.fault,
            fault_loc: solution.fault_loc,
            stats: self.stats.clone(),
        }
    }

    // ---- state pool management ---------------------------------------------

    /// Admits a forked state into the pool, returning its assigned id —
    /// `None` when the state was dropped (pool full, or its fingerprint was
    /// already explored).
    fn register_state(&mut self, mut state: ExecState) -> Option<u64> {
        if self.states.len() >= self.config.max_states {
            self.stats.states_pruned += 1;
            return None;
        }
        if self.config.dedup_states {
            let fp = Self::fingerprint(&state);
            if !self.seen_fingerprints.insert(fp) {
                self.stats.states_pruned += 1;
                return None;
            }
        }
        state.id = self.next_state_id;
        self.next_state_id += 1;
        self.stats.states_created += 1;
        self.push_to_frontier(&state);
        let id = state.id;
        self.states.insert(id, state);
        self.stats.max_live_states = self.stats.max_live_states.max(self.states.len());
        Some(id)
    }

    /// A cheap structural fingerprint of a state, used to drop duplicate
    /// scheduling forks: thread positions and statuses, lock ownership, the
    /// scheduled thread, the running path-constraint hash and the globals'
    /// contents. Hashing [`ExecState::path_hash`] (rather than the constraint
    /// *count*) keeps the dedup sound: two states with equal-length but
    /// different path conditions are different search states, and pruning one
    /// as a "duplicate" of the other could prune the only path to the goal.
    fn fingerprint(state: &ExecState) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        state.current.0.hash(&mut h);
        state.path_hash.hash(&mut h);
        for t in &state.threads {
            t.id.0.hash(&mut h);
            std::mem::discriminant(&t.status).hash(&mut h);
            if let ThreadStatus::BlockedOnMutex(m) = t.status {
                m.hash(&mut h);
            }
            for f in &t.frames {
                (f.func, f.block, f.idx).hash(&mut h);
            }
            t.held_locks.hash(&mut h);
        }
        for g in &state.globals {
            if let Some(obj) = state.mem.object(*g) {
                obj.data.hash(&mut h);
            }
        }
        h.finish()
    }

    fn reinsert_state(&mut self, state: ExecState) {
        self.push_to_frontier(&state);
        self.states.insert(state.id, state);
    }

    /// (Re-)enters a state into the frontier, computing the per-goal-queue
    /// priority keys only when the frontier consumes them.
    fn push_to_frontier(&mut self, state: &ExecState) {
        let prio = self.frontier_priority(state);
        self.frontier.push(state.id, &prio);
    }

    /// Computes the state's frontier priority and records the raw final-goal
    /// path distance into [`SearchStats::best_proximity`] (the observer
    /// progress signal is the unbiased Algorithm-1 estimate, not the
    /// schedule-biased queue key — otherwise deadlock-goal progress would
    /// jump by multiples of the schedule weight).
    fn frontier_priority(&mut self, state: &ExecState) -> StatePriority {
        if !self.frontier.wants_priorities() {
            return StatePriority { queue_keys: Vec::new(), depth: state.steps };
        }
        let sched = self.sched_bias(state);
        let (queue_keys, final_dist) = if self.frontier.wants_intermediate_priorities() {
            let dists: Vec<u64> =
                self.queue_targets.iter().map(|t| self.path_distance(state, t)).collect();
            let final_dist = *dists.last().expect("final goal queue");
            (dists.into_iter().map(|d| Self::bias(sched, d)).collect(), final_dist)
        } else {
            // The frontier only consumes the final-goal key (e.g. the beam):
            // skip the per-intermediate-goal proximity scans entirely.
            let final_targets = self.queue_targets.last().expect("final goal queue");
            let d = self.path_distance(state, final_targets);
            (vec![Self::bias(sched, d)], d)
        };
        self.stats.best_proximity =
            Some(self.stats.best_proximity.map_or(final_dist, |b| b.min(final_dist)));
        StatePriority { queue_keys, depth: state.steps }
    }

    /// The state's raw path distance to `targets`: the best proximity any
    /// runnable thread (preferring the scheduled one) has to any of the
    /// queue's target locations.
    fn path_distance(&self, state: &ExecState, targets: &[Loc]) -> u64 {
        let mut path_dist = INF;
        for thread in &state.threads {
            if thread.is_finished() || (!thread.is_runnable() && thread.id != state.current) {
                continue;
            }
            let stack = thread.stack_locs();
            for t in targets {
                path_dist = path_dist.min(self.oracle.proximity(&stack, *t));
            }
        }
        path_dist
    }

    /// The deadlock schedule-distance bias (§4.1) applied to priority keys.
    fn sched_bias(&self, state: &ExecState) -> u64 {
        if self.config.schedule_bias && matches!(self.goal, GoalSpec::Deadlock { .. }) {
            match state.sched_distance {
                SchedDistance::Near => 0,
                SchedDistance::Neutral => SCHED_WEIGHT,
                SchedDistance::Far => 2 * SCHED_WEIGHT,
            }
        } else {
            0
        }
    }

    fn bias(sched: u64, path_dist: u64) -> u64 {
        sched.saturating_add(path_dist.min(SCHED_WEIGHT - 1))
    }
}
