//! The per-worker state stepper: the micro-step interpreter of the search
//! engine, factored so a frontier batch can be advanced on a worker pool.
//!
//! A [`Stepper`] owns everything one worker needs to advance execution states
//! *independently* of the shared search pool: immutable views of the program,
//! the static analysis and the goal, plus its **own** [`Solver`] (solver
//! queries are deterministic per call, so workers never contend on — or
//! diverge through — shared solver state). Everything a micro-step would have
//! written into the engine — forked states, schedule-snapshot promotions,
//! flagged races, other bugs found, executed steps, solver queries — is
//! *recorded* into a [`TurnResult`] instead, and the engine merges the
//! results of a batch back into the shared pool in deterministic batch order
//! (see [`crate::engine`]). That split is what makes a `threads = N` run
//! produce the byte-identical execution of a `threads = 1` run.

use crate::engine::{EngineConfig, GoalSpec};
use crate::expr::{SymExpr, SymValue, SymVarInfo};
use crate::solver::{Solver, SolverResult};
use crate::state::{ExecState, SchedDistance, SymFrame, SymMemError, SymThread};
use esd_analysis::{Feasibility, StaticAnalysis};
use esd_concurrency::{find_mutex_deadlock, Schedule, SegmentStop};
use esd_ir::interp::{ObjKind, ThreadStatus};
use esd_ir::{
    BinOp, Callee, CmpOp, FaultKind, FuncId, Inst, Loc, Operand, Program, Ptr, Reg, Terminator,
    ThreadId, Value,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Why a single micro-step of one state ended.
enum StepEffect {
    /// Keep exploring this state.
    Continue,
    /// The state reached the goal.
    Goal { fault: FaultKind, fault_loc: Option<Loc> },
    /// The state is dead (fault at non-goal location, infeasible path,
    /// unmatching deadlock, all threads finished, …).
    Dead,
}

/// A state forked during a turn, pending admission to the shared pool (the
/// engine applies the dedup fingerprint and the pool cap at merge time, and
/// only then assigns the state id).
pub(crate) struct PendingFork {
    /// The forked state (still carrying its parent's id until admission).
    pub state: ExecState,
    /// When set, the fork is a "preempted before acquiring this mutex"
    /// snapshot: if it is admitted, the engine records `(mutex, assigned id)`
    /// in the parent state's `K_S` map (`lock_snapshots`).
    pub lock_snapshot: Option<Ptr>,
}

/// The solved goal of a successful turn: everything of a
/// [`crate::engine::Synthesized`] except the engine-global statistics.
pub(crate) struct Solution {
    /// Concrete value for every symbolic input word, with its provenance.
    pub inputs: Vec<(SymVarInfo, i64)>,
    /// The serialized thread schedule (trailing segment closed).
    pub schedule: Schedule,
    /// The failure the synthesized execution triggers.
    pub fault: FaultKind,
    /// Location of the failure (`None` for deadlocks).
    pub fault_loc: Option<Loc>,
}

/// A deadlock roll-back promotion recorded during a turn (§4.1): the target
/// snapshot is either already registered in the pool, or was forked *earlier
/// in this very turn* and has no id yet — the pre-burst engine never saw the
/// second case because the fork's id was patched into `lock_snapshots`
/// between rounds, but inside a burst the acquire and the conflicting lock
/// attempt can share one turn.
pub(crate) enum Promotion {
    /// A snapshot state already admitted to the pool, by id.
    Registered(u64),
    /// A snapshot forked during this turn, by index into
    /// [`TurnResult::forks`]; the merge promotes it *before* admission so it
    /// enters the frontier with the promoted priority.
    Pending(usize),
}

/// How a turn (one state's burst of micro-steps) ended.
pub(crate) enum TurnVerdict {
    /// The state survived the turn and should re-enter the frontier.
    Continue,
    /// The state died (abandoned path, non-goal fault, program exit, …).
    Dead,
    /// The state reached the goal. `solution` is `None` when the path
    /// constraints could not be solved — the state is abandoned and the
    /// search continues, exactly as in the sequential engine.
    Goal {
        /// The solved inputs and schedule, if the constraints were solvable.
        solution: Option<Solution>,
    },
}

/// Everything one state's turn produced, to be merged into the engine in
/// deterministic batch order.
pub(crate) struct TurnResult {
    /// The id of the state that was advanced.
    pub id: u64,
    /// The post-turn state (meaningful for [`TurnVerdict::Continue`]; carried
    /// regardless so the merge can patch `lock_snapshots` and apply pending
    /// promotions uniformly).
    pub state: ExecState,
    /// How the turn ended.
    pub verdict: TurnVerdict,
    /// States forked during the turn, in creation order.
    pub forks: Vec<PendingFork>,
    /// Snapshot states to promote to [`SchedDistance::Near`] (the deadlock
    /// roll-back heuristic of §4.1), in occurrence order.
    pub promotions: Vec<Promotion>,
    /// Faults found that did not match the goal.
    pub other_bugs: Vec<(FaultKind, Option<Loc>)>,
    /// Data races flagged by the per-state lockset detector.
    pub races_flagged: usize,
    /// Instructions executed during the turn.
    pub steps: u64,
    /// Solver queries issued during the turn.
    pub solver_queries: u64,
    /// Branch forks decided by a static feasibility verdict this turn.
    pub branches_pruned_static: u64,
    /// Solver queries those verdicts made unnecessary this turn.
    pub solver_queries_saved: u64,
    /// Preemption forks skipped this turn because the yield has no static
    /// race-pair candidate material around it (accesses the dynamic
    /// detector actually flags always fork, candidate or not).
    pub preemptions_pruned_static: u64,
}

/// A worker's stepper: immutable views of the search job plus a private
/// solver and the per-turn effect accumulators.
pub(crate) struct Stepper<'a> {
    program: &'a Arc<Program>,
    analysis: &'a Arc<StaticAnalysis>,
    goal: &'a GoalSpec,
    config: &'a EngineConfig,
    solver: Solver,
    forks: Vec<PendingFork>,
    promotions: Vec<Promotion>,
    other_bugs: Vec<(FaultKind, Option<Loc>)>,
    races_flagged: usize,
    steps: u64,
    branches_pruned_static: u64,
    solver_queries_saved: u64,
    preemptions_pruned_static: u64,
}

impl<'a> Stepper<'a> {
    /// Creates a stepper for one worker; `turn` may be called repeatedly.
    pub fn new(
        program: &'a Arc<Program>,
        analysis: &'a Arc<StaticAnalysis>,
        goal: &'a GoalSpec,
        config: &'a EngineConfig,
    ) -> Self {
        Stepper {
            program,
            analysis,
            goal,
            config,
            solver: Solver::new(config.solver),
            forks: Vec::new(),
            promotions: Vec::new(),
            other_bugs: Vec::new(),
            races_flagged: 0,
            steps: 0,
            branches_pruned_static: 0,
            solver_queries_saved: 0,
            preemptions_pruned_static: 0,
        }
    }

    /// Advances `state` by up to `burst` micro-steps (stopping early when it
    /// dies or reaches the goal) and returns everything the turn produced.
    pub fn turn(&mut self, id: u64, mut state: ExecState, burst: u32) -> TurnResult {
        let queries_before = self.solver.queries;
        let mut verdict = TurnVerdict::Continue;
        for _ in 0..burst.max(1) {
            match self.step(&mut state) {
                StepEffect::Continue => continue,
                StepEffect::Dead => {
                    verdict = TurnVerdict::Dead;
                    break;
                }
                StepEffect::Goal { fault, fault_loc } => {
                    let solution = self.solve_goal(&mut state, fault, fault_loc);
                    verdict = TurnVerdict::Goal { solution };
                    break;
                }
            }
        }
        TurnResult {
            id,
            state,
            verdict,
            forks: std::mem::take(&mut self.forks),
            promotions: std::mem::take(&mut self.promotions),
            other_bugs: std::mem::take(&mut self.other_bugs),
            races_flagged: std::mem::take(&mut self.races_flagged),
            steps: std::mem::take(&mut self.steps),
            solver_queries: self.solver.queries - queries_before,
            branches_pruned_static: std::mem::take(&mut self.branches_pruned_static),
            solver_queries_saved: std::mem::take(&mut self.solver_queries_saved),
            preemptions_pruned_static: std::mem::take(&mut self.preemptions_pruned_static),
        }
    }

    // ---- evaluation helpers -------------------------------------------------

    fn eval(&self, state: &ExecState, op: Operand) -> SymValue {
        match op {
            Operand::Const(c) => SymValue::int(c),
            Operand::Reg(r) => state.thread(state.current).top().regs[r.0 as usize]
                .clone()
                .unwrap_or(SymValue::ZERO),
        }
    }

    fn set_reg(&self, state: &mut ExecState, r: Reg, v: SymValue) {
        let cur = state.current;
        state.thread_mut(cur).top_mut().regs[r.0 as usize] = Some(v);
    }

    fn advance(&self, state: &mut ExecState) {
        let cur = state.current;
        state.thread_mut(cur).top_mut().idx += 1;
    }

    fn count_step(&mut self, state: &mut ExecState) {
        state.steps += 1;
        state.segment_steps += 1;
        self.steps += 1;
    }

    /// Concretizes a symbolic value to an integer, pinning it with an
    /// equality constraint (used for addresses, allocation sizes, …).
    fn concretize(&mut self, state: &mut ExecState, v: &SymValue) -> Option<i64> {
        match v {
            SymValue::Concrete(Value::Int(i)) => Some(*i),
            SymValue::Concrete(Value::Ptr(_)) => None,
            SymValue::Symbolic(e) => {
                if let Some(c) = e.as_const() {
                    return Some(c);
                }
                let model = self.solver.solve(&state.constraints).model()?;
                let value = e.eval(&model);
                state.add_constraint(SymExpr::cmp(CmpOp::Eq, e.clone(), SymExpr::constant(value)));
                Some(value)
            }
        }
    }

    fn mem_fault(err: SymMemError, addr: Value) -> FaultKind {
        match err {
            SymMemError::NotAPointer(v) => FaultKind::SegFault { addr: v },
            SymMemError::DanglingObject(_) => FaultKind::SegFault { addr },
            SymMemError::UseAfterFree(_) => FaultKind::UseAfterFree,
            SymMemError::OutOfBounds { off, size } => FaultKind::OutOfBounds { off, size },
            SymMemError::InvalidFree(_) => FaultKind::InvalidFree,
            SymMemError::DoubleFree(_) => FaultKind::DoubleFree,
        }
    }

    /// Resolves a value used as an address into a concrete pointer, or
    /// produces the fault it would cause.
    fn as_address(&mut self, state: &mut ExecState, v: &SymValue) -> Result<Ptr, FaultKind> {
        match v {
            SymValue::Concrete(Value::Ptr(p)) => Ok(*p),
            SymValue::Concrete(Value::Int(i)) => Err(FaultKind::SegFault { addr: Value::Int(*i) }),
            SymValue::Symbolic(_) => {
                let c = self.concretize(state, v).unwrap_or(0);
                Err(FaultKind::SegFault { addr: Value::Int(c) })
            }
        }
    }

    // ---- fault / goal handling ----------------------------------------------

    fn handle_fault(&mut self, state: &mut ExecState, fault: FaultKind, loc: Loc) -> StepEffect {
        let is_goal = match self.goal {
            GoalSpec::Crash { loc: goal_loc } => loc == *goal_loc,
            GoalSpec::Deadlock { .. } => false,
        };
        if is_goal {
            StepEffect::Goal { fault, fault_loc: Some(loc) }
        } else {
            self.other_bugs.push((fault, Some(loc)));
            let _ = state;
            StepEffect::Dead
        }
    }

    /// Checks whether the state's blocked threads form the reported deadlock
    /// (or some other deadlock). Returns the step effect if the state can no
    /// longer make progress toward the goal.
    fn check_deadlock(&mut self, state: &mut ExecState) -> Option<StepEffect> {
        // Build the wait-for relation over mutex-blocked threads.
        let mut waits: HashMap<u32, Ptr> = HashMap::new();
        let mut held: HashMap<Ptr, u32> = HashMap::new();
        for t in &state.threads {
            if let ThreadStatus::BlockedOnMutex(m) = t.status {
                waits.insert(t.id.0, m);
            }
            for h in &t.held_locks {
                held.insert(*h, t.id.0);
            }
        }
        let cycle = find_mutex_deadlock(&waits, &held);
        let stalled = state.is_global_stall();
        if cycle.is_none() && !stalled {
            return None;
        }
        // The set of locations at which threads are blocked on mutexes.
        let blocked_locs: Vec<Loc> = state
            .threads
            .iter()
            .filter(|t| matches!(t.status, ThreadStatus::BlockedOnMutex(_)))
            .map(|t| t.top().loc())
            .collect();
        if let GoalSpec::Deadlock { thread_locs } = self.goal {
            let mut remaining = blocked_locs.clone();
            let all_matched = thread_locs.iter().all(|g| {
                if let Some(pos) = remaining.iter().position(|b| b == g) {
                    remaining.remove(pos);
                    true
                } else {
                    false
                }
            });
            if all_matched && (cycle.is_some() || stalled) && !thread_locs.is_empty() {
                return Some(StepEffect::Goal { fault: FaultKind::Deadlock, fault_loc: None });
            }
        }
        if cycle.is_some() || stalled {
            // A deadlock that does not match the report: record it and
            // abandon the state (the paper rolls back and resumes the search
            // for the reported deadlock; abandoning this state achieves the
            // same because its fork ancestors are still in the pool).
            self.other_bugs.push((FaultKind::Deadlock, state.current_loc()));
            return Some(StepEffect::Dead);
        }
        None
    }

    /// Solves the goal state's path constraints into concrete inputs and
    /// closes the trailing schedule segment.
    fn solve_goal(
        &mut self,
        state: &mut ExecState,
        fault: FaultKind,
        fault_loc: Option<Loc>,
    ) -> Option<Solution> {
        let model = match self.solver.solve(&state.constraints) {
            SolverResult::Sat(m) => m,
            _ => return None,
        };
        let inputs = state
            .var_info
            .iter()
            .enumerate()
            .map(|(i, info)| {
                (info.clone(), model.get(&crate::expr::SymVar(i as u32)).copied().unwrap_or(0))
            })
            .collect();
        let mut schedule = state.schedule.clone();
        if state.segment_steps > 0 {
            schedule.push(state.current.0, SegmentStop::Steps(state.segment_steps));
        }
        Some(Solution { inputs, schedule, fault, fault_loc })
    }

    // ---- scheduling -----------------------------------------------------------

    /// Ends the current thread's schedule segment with `stop` and switches to
    /// `next`.
    fn switch_to(&mut self, state: &mut ExecState, next: ThreadId, stop: SegmentStop) {
        match stop {
            SegmentStop::Steps(_) => {
                if state.segment_steps > 0 {
                    state.schedule.push(state.current.0, SegmentStop::Steps(state.segment_steps));
                }
            }
            other => {
                state.schedule.push(state.current.0, other);
            }
        }
        state.segment_steps = 0;
        state.current = next;
    }

    /// Picks another runnable thread (lowest id different from the current
    /// one), if any.
    fn other_runnable(&self, state: &ExecState) -> Option<ThreadId> {
        state.runnable_threads().into_iter().find(|t| *t != state.current)
    }

    /// Mirrors [`ExecState::drop_snapshot`] for snapshots forked earlier in
    /// this turn: "a snapshot entry is deleted as soon as M is unlocked", and
    /// a fork whose mutex was released before its id could be assigned must
    /// not enter the parent's `K_S` map at merge time.
    fn scrub_pending_snapshot(&mut self, p: Ptr) {
        for fork in &mut self.forks {
            if fork.lock_snapshot == Some(p) {
                fork.lock_snapshot = None;
            }
        }
    }

    /// Forks a state in which the current thread is preempted right now
    /// (before executing its next instruction) and `next` runs instead.
    /// Respects the preemption bound. The fork is *recorded*, not admitted:
    /// the engine applies the dedup fingerprint and the pool cap when the
    /// batch is merged. Returns true when a fork was recorded.
    fn fork_preempted(&mut self, state: &ExecState, next: ThreadId) -> bool {
        if let Some(bound) = self.config.preemption_bound {
            if state.preemptions >= bound {
                return false;
            }
        }
        // If the scheduled thread has not advanced at all since the last
        // context switch, a preemption here would recreate an already-seen
        // scheduling decision (states would ping-pong between two parked
        // threads); skip the fork.
        if state.segment_steps == 0 {
            return false;
        }
        let mut alt = state.clone();
        alt.preemptions += 1;
        self.switch_to(&mut alt, next, SegmentStop::Steps(0));
        self.forks.push(PendingFork { state: alt, lock_snapshot: None });
        true
    }

    // ---- the micro-step --------------------------------------------------------

    fn step(&mut self, state: &mut ExecState) -> StepEffect {
        // If the scheduled thread cannot run, switch or detect a stall.
        if !state.thread(state.current).is_runnable() {
            if let Some(next) = self.other_runnable(state) {
                let stop = if state.thread(state.current).is_finished() {
                    SegmentStop::Finished
                } else {
                    SegmentStop::Blocked
                };
                self.switch_to(state, next, stop);
            } else if state.has_unfinished_threads() {
                return self.check_deadlock(state).unwrap_or(StepEffect::Dead);
            } else {
                return StepEffect::Dead;
            }
        }

        let cur = state.current;
        let frame_loc = state.thread(cur).top().loc();
        let func = self.program.func(frame_loc.func);
        let block = func.block(frame_loc.block);

        // Critical-edge / relevance abandonment (ESD only).
        if self.config.use_critical_edges
            && state.thread(cur).frames.len() == 1
            && self.analysis.goal_info.is_irrelevant_block(frame_loc)
            && !matches!(self.goal, GoalSpec::Deadlock { .. })
        {
            return StepEffect::Dead;
        }

        if frame_loc.idx as usize >= block.insts.len() {
            let term = block.term.clone();
            return self.exec_terminator(state, frame_loc, term);
        }
        let inst = block.insts[frame_loc.idx as usize].clone();
        self.exec_inst(state, frame_loc, inst)
    }

    fn exec_terminator(&mut self, state: &mut ExecState, loc: Loc, term: Terminator) -> StepEffect {
        let cur = state.current;
        self.count_step(state);
        match term {
            Terminator::Br { target } => {
                let top = state.thread_mut(cur).top_mut();
                top.block = target;
                top.idx = 0;
                StepEffect::Continue
            }
            Terminator::CondBr { cond, then_bb, else_bb } => {
                let v = self.eval(state, cond);
                match v.as_concrete() {
                    Some(c) => {
                        let top = state.thread_mut(cur).top_mut();
                        top.block = if c.truthy() { then_bb } else { else_bb };
                        top.idx = 0;
                        StepEffect::Continue
                    }
                    None => {
                        let expr = v.as_expr().expect("symbolic condition");
                        self.fork_on_branch(state, loc, expr, then_bb, else_bb)
                    }
                }
            }
            Terminator::Ret { value } => {
                let ret_val = value.map(|v| self.eval(state, v));
                let frame = state.thread_mut(cur).frames.pop().expect("ret without frame");
                for l in &frame.locals {
                    state.mem.kill_local(*l);
                }
                if state.thread(cur).frames.is_empty() {
                    state.thread_mut(cur).status = ThreadStatus::Finished;
                    // Wake joiners.
                    for t in &mut state.threads {
                        if t.status == ThreadStatus::BlockedOnJoin(cur) {
                            t.status = ThreadStatus::Runnable;
                        }
                    }
                    if cur == ThreadId(0) {
                        // Program exit without the bug: dead end.
                        return StepEffect::Dead;
                    }
                    if let Some(next) = self.other_runnable(state) {
                        self.switch_to(state, next, SegmentStop::Finished);
                        return StepEffect::Continue;
                    }
                    return self.check_deadlock(state).unwrap_or(StepEffect::Dead);
                }
                if let (Some(dst), Some(v)) = (frame.ret_dst, ret_val) {
                    self.set_reg(state, dst, v);
                }
                StepEffect::Continue
            }
            Terminator::Unreachable => {
                self.handle_fault(state, FaultKind::UnreachableExecuted, loc)
            }
        }
    }

    fn fork_on_branch(
        &mut self,
        state: &mut ExecState,
        loc: Loc,
        cond: Arc<SymExpr>,
        then_bb: esd_ir::BlockId,
        else_bb: esd_ir::BlockId,
    ) -> StepEffect {
        let cur = state.current;
        // The static phase's interval analysis may have proven this branch
        // one-sided for *all* inputs; consulting the verdict replaces the
        // feasibility queries below. The taken side's constraint is still
        // recorded exactly as the solver path would have recorded it, so a
        // verdict that the solver would also have reached leaves the search
        // trajectory untouched — only the query count drops.
        let verdict = if self.config.static_pruning {
            self.analysis.branch_feasibility.verdict(loc.func, loc.block)
        } else {
            Feasibility::Unknown
        };
        // Critical edge: only one side can lead to the goal. Only applied for
        // single-location (crash) goals: for deadlocks the static info is
        // computed from one thread's blocked location and must not constrain
        // the other threads' paths.
        if self.config.use_critical_edges && !matches!(self.goal, GoalSpec::Deadlock { .. }) {
            if let Some(edge) = self.analysis.goal_info.critical_edge_at(loc.func, loc.block) {
                let (take, expr) = if edge.required_value {
                    (then_bb, cond.clone())
                } else {
                    (else_bb, SymExpr::not(cond.clone()))
                };
                let statically_required = match verdict {
                    Feasibility::AlwaysTrue => Some(edge.required_value),
                    Feasibility::AlwaysFalse => Some(!edge.required_value),
                    Feasibility::Unknown => None,
                };
                if let Some(takeable) = statically_required {
                    self.branches_pruned_static += 1;
                    self.solver_queries_saved += 1;
                    if !takeable {
                        // The branch always takes the side the goal forbids.
                        return StepEffect::Dead;
                    }
                    state.add_constraint(expr);
                    let top = state.thread_mut(cur).top_mut();
                    top.block = take;
                    top.idx = 0;
                    return StepEffect::Continue;
                }
                state.add_constraint(expr);
                if !self.solver.is_feasible(&state.constraints) {
                    return StepEffect::Dead;
                }
                let top = state.thread_mut(cur).top_mut();
                top.block = take;
                top.idx = 0;
                return StepEffect::Continue;
            }
        }
        match verdict {
            Feasibility::AlwaysTrue | Feasibility::AlwaysFalse => {
                self.branches_pruned_static += 1;
                self.solver_queries_saved += 2;
                let (bb, c) = if verdict == Feasibility::AlwaysTrue {
                    (then_bb, cond)
                } else {
                    (else_bb, SymExpr::not(cond))
                };
                state.add_constraint(c);
                let top = state.thread_mut(cur).top_mut();
                top.block = bb;
                top.idx = 0;
                return StepEffect::Continue;
            }
            Feasibility::Unknown => {}
        }
        let mut then_constraints = state.constraints.clone();
        then_constraints.push(cond.clone());
        let mut else_constraints = state.constraints.clone();
        else_constraints.push(SymExpr::not(cond.clone()));
        let then_feasible = self.solver.is_feasible(&then_constraints);
        let else_feasible = self.solver.is_feasible(&else_constraints);
        match (then_feasible, else_feasible) {
            (false, false) => StepEffect::Dead,
            (true, false) | (false, true) => {
                let (bb, c) =
                    if then_feasible { (then_bb, cond) } else { (else_bb, SymExpr::not(cond)) };
                state.add_constraint(c);
                let top = state.thread_mut(cur).top_mut();
                top.block = bb;
                top.idx = 0;
                StepEffect::Continue
            }
            (true, true) => {
                // Fork: the else-side becomes a new state; this state takes
                // the then-side.
                let mut alt = state.clone();
                alt.add_constraint(SymExpr::not(cond.clone()));
                {
                    let atop = alt.thread_mut(cur).top_mut();
                    atop.block = else_bb;
                    atop.idx = 0;
                }
                self.forks.push(PendingFork { state: alt, lock_snapshot: None });
                state.add_constraint(cond);
                let top = state.thread_mut(cur).top_mut();
                top.block = then_bb;
                top.idx = 0;
                StepEffect::Continue
            }
        }
    }

    fn exec_inst(&mut self, state: &mut ExecState, loc: Loc, inst: Inst) -> StepEffect {
        let cur = state.current;
        match inst {
            Inst::Const { dst, value } => {
                self.count_step(state);
                self.set_reg(state, dst, SymValue::int(value));
                self.advance(state);
                StepEffect::Continue
            }
            Inst::Bin { dst, op, a, b } => {
                self.count_step(state);
                let va = self.eval(state, a);
                let vb = self.eval(state, b);
                let result = self.eval_bin(state, loc, op, va, vb);
                match result {
                    Ok(v) => {
                        self.set_reg(state, dst, v);
                        self.advance(state);
                        StepEffect::Continue
                    }
                    Err(f) => self.handle_fault(state, f, loc),
                }
            }
            Inst::Cmp { dst, op, a, b } => {
                self.count_step(state);
                let va = self.eval(state, a);
                let vb = self.eval(state, b);
                let v = match (va.as_concrete(), vb.as_concrete()) {
                    (Some(x), Some(y)) => {
                        let r = match op {
                            CmpOp::Eq => x.value_eq(y),
                            CmpOp::Ne => !x.value_eq(y),
                            _ => {
                                let xi = Self::value_as_int(x);
                                let yi = Self::value_as_int(y);
                                op.eval(xi, yi)
                            }
                        };
                        SymValue::int(r as i64)
                    }
                    _ => match (va.as_expr(), vb.as_expr()) {
                        (Some(ea), Some(eb)) => SymValue::Symbolic(SymExpr::cmp(op, ea, eb)),
                        // Comparing a pointer with a symbolic integer:
                        // pointers are never equal to integers here.
                        _ => SymValue::int(matches!(op, CmpOp::Ne) as i64),
                    },
                };
                self.set_reg(state, dst, v);
                self.advance(state);
                StepEffect::Continue
            }
            Inst::AddrLocal { dst, local } => {
                self.count_step(state);
                let obj = state.thread(cur).top().locals[local.0 as usize];
                self.set_reg(state, dst, SymValue::Concrete(Value::Ptr(Ptr::to(obj))));
                self.advance(state);
                StepEffect::Continue
            }
            Inst::AddrGlobal { dst, global } => {
                self.count_step(state);
                let obj = state.globals[global.0 as usize];
                self.set_reg(state, dst, SymValue::Concrete(Value::Ptr(Ptr::to(obj))));
                self.advance(state);
                StepEffect::Continue
            }
            Inst::FuncAddr { dst, func } => {
                self.count_step(state);
                self.set_reg(
                    state,
                    dst,
                    SymValue::int(esd_ir::interp::FUNC_ADDR_BASE + func.0 as i64),
                );
                self.advance(state);
                StepEffect::Continue
            }
            Inst::Alloc { dst, size } => {
                self.count_step(state);
                let sv = self.eval(state, size);
                let n = self.concretize(state, &sv).unwrap_or(0).clamp(0, 1 << 20) as usize;
                let obj = state.mem.alloc(ObjKind::Heap, n);
                self.set_reg(state, dst, SymValue::Concrete(Value::Ptr(Ptr::to(obj))));
                self.advance(state);
                StepEffect::Continue
            }
            Inst::Free { ptr } => {
                self.count_step(state);
                let v = self.eval(state, ptr);
                let cv = v.as_concrete().unwrap_or(Value::Int(0));
                match state.mem.free(cv) {
                    Ok(()) => {
                        self.advance(state);
                        StepEffect::Continue
                    }
                    Err(e) => self.handle_fault(state, Self::mem_fault(e, cv), loc),
                }
            }
            Inst::Load { dst, addr } => {
                self.count_step(state);
                let av = self.eval(state, addr);
                match self.as_address(state, &av) {
                    Ok(p) => {
                        if let Some(e) = self.maybe_race_preempt(state, p, loc, false) {
                            return e;
                        }
                        match state.mem.load(p) {
                            Ok(v) => {
                                self.set_reg(state, dst, v);
                                self.advance(state);
                                StepEffect::Continue
                            }
                            Err(e) => {
                                self.handle_fault(state, Self::mem_fault(e, Value::Ptr(p)), loc)
                            }
                        }
                    }
                    Err(f) => self.handle_fault(state, f, loc),
                }
            }
            Inst::Store { addr, value } => {
                self.count_step(state);
                let av = self.eval(state, addr);
                let vv = self.eval(state, value);
                match self.as_address(state, &av) {
                    Ok(p) => {
                        if let Some(e) = self.maybe_race_preempt(state, p, loc, true) {
                            return e;
                        }
                        match state.mem.store(p, vv) {
                            Ok(()) => {
                                self.advance(state);
                                StepEffect::Continue
                            }
                            Err(e) => {
                                self.handle_fault(state, Self::mem_fault(e, Value::Ptr(p)), loc)
                            }
                        }
                    }
                    Err(f) => self.handle_fault(state, f, loc),
                }
            }
            Inst::Gep { dst, base, offset } => {
                self.count_step(state);
                let b = self.eval(state, base);
                let ov = self.eval(state, offset);
                let o = self.concretize(state, &ov).unwrap_or(0);
                let r = match b.as_concrete() {
                    Some(Value::Ptr(p)) => SymValue::Concrete(Value::Ptr(p.add(o))),
                    Some(Value::Int(i)) => SymValue::int(i.wrapping_add(o)),
                    None => match b.as_expr() {
                        Some(e) => {
                            SymValue::Symbolic(SymExpr::bin(BinOp::Add, e, SymExpr::constant(o)))
                        }
                        None => SymValue::int(o),
                    },
                };
                self.set_reg(state, dst, r);
                self.advance(state);
                StepEffect::Continue
            }
            Inst::Call { dst, callee, args } => {
                self.count_step(state);
                let target = match self.resolve_callee(state, &callee) {
                    Ok(t) => t,
                    Err(f) => return self.handle_fault(state, f, loc),
                };
                let argv: Vec<SymValue> = args.iter().map(|a| self.eval(state, *a)).collect();
                self.advance(state);
                self.push_frame(state, target, &argv, dst);
                StepEffect::Continue
            }
            Inst::Input { dst, source } => {
                self.count_step(state);
                let seq = state.thread(cur).input_seq;
                state.thread_mut(cur).input_seq += 1;
                let var = state.fresh_var(SymVarInfo { thread: cur, seq, source });
                self.set_reg(state, dst, SymValue::Symbolic(SymExpr::var(var)));
                self.advance(state);
                StepEffect::Continue
            }
            Inst::Output { .. } => {
                self.count_step(state);
                self.advance(state);
                StepEffect::Continue
            }
            Inst::Assert { cond, msg } => {
                self.count_step(state);
                let v = self.eval(state, cond);
                match v.as_concrete() {
                    Some(c) => {
                        if c.truthy() {
                            self.advance(state);
                            StepEffect::Continue
                        } else {
                            self.handle_fault(state, FaultKind::AssertFailure { msg }, loc)
                        }
                    }
                    None => {
                        let e = v.as_expr().expect("symbolic assert");
                        // The violating side is a failure at this location;
                        // the passing side continues in this state.
                        let is_goal_here =
                            matches!(self.goal, GoalSpec::Crash { loc: gl } if *gl == loc);
                        let mut violating = state.constraints.clone();
                        violating.push(SymExpr::not(e.clone()));
                        let violation_feasible = self.solver.is_feasible(&violating);
                        if violation_feasible && is_goal_here {
                            state.constraints = violating;
                            return StepEffect::Goal {
                                fault: FaultKind::AssertFailure { msg },
                                fault_loc: Some(loc),
                            };
                        }
                        if violation_feasible {
                            self.other_bugs
                                .push((FaultKind::AssertFailure { msg: msg.clone() }, Some(loc)));
                        }
                        state.add_constraint(e);
                        if !self.solver.is_feasible(&state.constraints) {
                            return StepEffect::Dead;
                        }
                        self.advance(state);
                        StepEffect::Continue
                    }
                }
            }
            Inst::MutexLock { mutex } => self.exec_lock(state, loc, mutex),
            Inst::MutexUnlock { mutex } => {
                self.count_step(state);
                let av = self.eval(state, mutex);
                let p = match self.as_address(state, &av) {
                    Ok(p) => p,
                    Err(f) => return self.handle_fault(state, f, loc),
                };
                if state.sync.holder_of(p) != Some(cur) {
                    return self.handle_fault(
                        state,
                        FaultKind::SyncMisuse { what: "unlock of a mutex not held".into() },
                        loc,
                    );
                }
                state.sync.mutex_mut(p).holder = None;
                state.thread_mut(cur).held_locks.retain(|h| *h != p);
                if state.thread(cur).inner_lock_held == Some(p) {
                    state.thread_mut(cur).inner_lock_held = None;
                }
                state.drop_snapshot(p);
                self.scrub_pending_snapshot(p);
                let waiters = std::mem::take(&mut state.sync.mutex_mut(p).waiters);
                for w in waiters {
                    if state.threads[w.0 as usize].status == ThreadStatus::BlockedOnMutex(p) {
                        state.threads[w.0 as usize].status = ThreadStatus::Runnable;
                    }
                }
                self.advance(state);
                StepEffect::Continue
            }
            Inst::CondWait { cond, mutex } => {
                self.count_step(state);
                let cv = self.eval(state, cond);
                let mv = self.eval(state, mutex);
                let (cp, mp) = match (self.as_address(state, &cv), self.as_address(state, &mv)) {
                    (Ok(c), Ok(m)) => (c, m),
                    (Err(f), _) | (_, Err(f)) => return self.handle_fault(state, f, loc),
                };
                if state.thread(cur).cond_resume == Some(mp) {
                    if state.sync.holder_of(mp).is_none() {
                        state.sync.mutex_mut(mp).holder = Some(cur);
                        state.thread_mut(cur).held_locks.push(mp);
                        state.thread_mut(cur).cond_resume = None;
                        self.advance(state);
                        return StepEffect::Continue;
                    }
                    state.sync.mutex_mut(mp).waiters.push(cur);
                    state.thread_mut(cur).status = ThreadStatus::BlockedOnMutex(mp);
                    return self.block_and_switch(state);
                }
                if state.sync.holder_of(mp) != Some(cur) {
                    return self.handle_fault(
                        state,
                        FaultKind::SyncMisuse {
                            what: "cond_wait without holding the mutex".into(),
                        },
                        loc,
                    );
                }
                state.sync.mutex_mut(mp).holder = None;
                state.thread_mut(cur).held_locks.retain(|h| *h != mp);
                state.drop_snapshot(mp);
                self.scrub_pending_snapshot(mp);
                let waiters = std::mem::take(&mut state.sync.mutex_mut(mp).waiters);
                for w in waiters {
                    if state.threads[w.0 as usize].status == ThreadStatus::BlockedOnMutex(mp) {
                        state.threads[w.0 as usize].status = ThreadStatus::Runnable;
                    }
                }
                state.sync.cond_mut(cp).waiters.push((cur, mp));
                state.thread_mut(cur).status = ThreadStatus::BlockedOnCond(cp);
                self.block_and_switch(state)
            }
            Inst::CondSignal { cond } | Inst::CondBroadcast { cond } => {
                let broadcast = matches!(inst, Inst::CondBroadcast { .. });
                self.count_step(state);
                let cv = self.eval(state, cond);
                let cp = match self.as_address(state, &cv) {
                    Ok(p) => p,
                    Err(f) => return self.handle_fault(state, f, loc),
                };
                let waiters = {
                    let c = state.sync.cond_mut(cp);
                    if broadcast {
                        std::mem::take(&mut c.waiters)
                    } else if c.waiters.is_empty() {
                        vec![]
                    } else {
                        vec![c.waiters.remove(0)]
                    }
                };
                for (w, m) in waiters {
                    state.threads[w.0 as usize].cond_resume = Some(m);
                    state.threads[w.0 as usize].status = ThreadStatus::Runnable;
                }
                self.advance(state);
                StepEffect::Continue
            }
            Inst::ThreadSpawn { dst, func, arg } => {
                self.count_step(state);
                let target = match self.resolve_callee(state, &func) {
                    Ok(t) => t,
                    Err(f) => return self.handle_fault(state, f, loc),
                };
                let av = self.eval(state, arg);
                let new_tid = ThreadId(state.threads.len() as u32);
                let callee = self.program.func(target);
                let mut locals = Vec::with_capacity(callee.local_sizes.len());
                for size in &callee.local_sizes {
                    locals.push(state.mem.alloc(ObjKind::Local(new_tid), *size as usize));
                }
                let frame = SymFrame::new(target, callee.num_regs, &[av], locals, None);
                state.threads.push(SymThread::new(new_tid, frame));
                self.set_reg(state, dst, SymValue::int(new_tid.0 as i64));
                self.advance(state);
                StepEffect::Continue
            }
            Inst::ThreadJoin { thread } => {
                self.count_step(state);
                let tv = self.eval(state, thread);
                let idx = self.concretize(state, &tv).unwrap_or(-1);
                if idx < 0 || idx as usize >= state.threads.len() {
                    return self.handle_fault(
                        state,
                        FaultKind::SyncMisuse { what: format!("join of invalid thread id {idx}") },
                        loc,
                    );
                }
                let target = ThreadId(idx as u32);
                if state.threads[target.0 as usize].is_finished() {
                    self.advance(state);
                    return StepEffect::Continue;
                }
                state.thread_mut(cur).status = ThreadStatus::BlockedOnJoin(target);
                self.block_and_switch(state)
            }
            Inst::Yield => {
                self.count_step(state);
                self.advance(state);
                // A yield is an explicit preemption point. In race-directed
                // mode (§4.2) fork the schedule in which another thread runs
                // from here, so interleavings that split a load from its
                // store are reachable; the default search keeps treating
                // yield as a no-op (the bounded searches and BPF workloads
                // rely on that).
                if self.config.race_preemptions {
                    // Static race-candidate gating: a yield with no candidate
                    // access before *and* after it (in same-thread order)
                    // cannot split a racing pair, so the preemption fork is
                    // skipped. The candidate set over-approximates the real
                    // races, so no schedule that can reach a race is lost.
                    if self.config.race_candidate_pruning
                        && !self.analysis.race_candidates.is_relevant_yield(loc)
                    {
                        if self.other_runnable(state).is_some() {
                            self.preemptions_pruned_static += 1;
                        }
                    } else if let Some(next) = self.other_runnable(state) {
                        self.fork_preempted(state, next);
                    }
                }
                StepEffect::Continue
            }
            Inst::Nop => {
                self.count_step(state);
                self.advance(state);
                StepEffect::Continue
            }
        }
    }

    fn value_as_int(v: Value) -> i64 {
        match v {
            Value::Int(i) => i,
            Value::Ptr(p) => 0x4000_0000_0000 + (p.obj.0 as i64) * 4096 + p.off,
        }
    }

    fn eval_bin(
        &mut self,
        state: &mut ExecState,
        _loc: Loc,
        op: BinOp,
        a: SymValue,
        b: SymValue,
    ) -> Result<SymValue, FaultKind> {
        // Pointer arithmetic stays concrete.
        if let Some(Value::Ptr(p)) = a.as_concrete() {
            if matches!(op, BinOp::Add | BinOp::Sub) {
                let delta = self.concretize(state, &b).unwrap_or(0);
                let delta = if op == BinOp::Sub { -delta } else { delta };
                return Ok(SymValue::Concrete(Value::Ptr(p.add(delta))));
            }
        }
        match (a.as_concrete(), b.as_concrete()) {
            (Some(x), Some(y)) => {
                let xi = Self::value_as_int(x);
                let yi = Self::value_as_int(y);
                if matches!(op, BinOp::Div | BinOp::Rem) && yi == 0 {
                    return Err(FaultKind::DivByZero);
                }
                Ok(SymValue::int(crate::expr::eval_bin(op, xi, yi).unwrap_or(0)))
            }
            _ => {
                let ea = a.as_expr();
                let eb = b.as_expr();
                match (ea, eb) {
                    (Some(ea), Some(eb)) => {
                        if matches!(op, BinOp::Div | BinOp::Rem) {
                            // Require a non-zero divisor on this path.
                            state.add_constraint(SymExpr::cmp(
                                CmpOp::Ne,
                                eb.clone(),
                                SymExpr::constant(0),
                            ));
                        }
                        Ok(SymValue::Symbolic(SymExpr::bin(op, ea, eb)))
                    }
                    _ => Ok(SymValue::int(0)),
                }
            }
        }
    }

    fn resolve_callee(
        &mut self,
        state: &mut ExecState,
        callee: &Callee,
    ) -> Result<FuncId, FaultKind> {
        match callee {
            Callee::Direct(f) => Ok(*f),
            Callee::Indirect(op) => {
                let v = self.eval(state, *op);
                let raw = self.concretize(state, &v).unwrap_or(0);
                let idx = raw - esd_ir::interp::FUNC_ADDR_BASE;
                if idx >= 0 && (idx as usize) < self.program.functions.len() {
                    Ok(FuncId(idx as u32))
                } else {
                    Err(FaultKind::BadIndirectCall { target: Value::Int(raw) })
                }
            }
        }
    }

    fn push_frame(
        &mut self,
        state: &mut ExecState,
        target: FuncId,
        args: &[SymValue],
        ret_dst: Option<Reg>,
    ) {
        let cur = state.current;
        let callee = self.program.func(target);
        let mut locals = Vec::with_capacity(callee.local_sizes.len());
        for size in &callee.local_sizes {
            locals.push(state.mem.alloc(ObjKind::Local(cur), *size as usize));
        }
        let frame = SymFrame::new(target, callee.num_regs, args, locals, ret_dst);
        state.thread_mut(cur).frames.push(frame);
    }

    /// Ends the current segment because the scheduled thread blocked, and
    /// switches to another runnable thread (or detects a stall).
    fn block_and_switch(&mut self, state: &mut ExecState) -> StepEffect {
        if let Some(e) = self.check_deadlock(state) {
            return e;
        }
        if let Some(next) = self.other_runnable(state) {
            self.switch_to(state, next, SegmentStop::Blocked);
            StepEffect::Continue
        } else {
            self.check_deadlock(state).unwrap_or(StepEffect::Dead)
        }
    }

    /// Lockset-based race preemption points (§4.2): on a flagged access, fork
    /// a state in which the access is delayed and another thread runs first.
    fn maybe_race_preempt(
        &mut self,
        state: &mut ExecState,
        p: Ptr,
        loc: Loc,
        is_write: bool,
    ) -> Option<StepEffect> {
        if !self.config.race_preemptions {
            return None;
        }
        // Only consider globals and heap objects (locals are thread-private).
        let shared =
            state.mem.object(p.obj).map(|o| !matches!(o.kind, ObjKind::Local(_))).unwrap_or(false);
        if !shared {
            return None;
        }
        let cur = state.current;
        let held: Vec<(u64, i64)> =
            state.thread(cur).held_locks.iter().map(|h| (h.obj.0, h.off)).collect();
        // Per-interleaving analysis: the detector lives on the state, so a
        // race reported here is reported again (and forks a preemption) in
        // every sibling interleaving that reaches the same pair.
        let race = state.race_detector.access((p.obj.0, p.off), cur.0, loc, is_write, &held);
        if race.is_some() {
            self.races_flagged += 1;
            // Concrete runtime evidence beats the static candidate set: a
            // flagged access forks its delayed alternative even when
            // `race_candidate_pruning` is on and the access belongs to no
            // candidate pair, so the dynamic detector is the backstop for
            // any static MHP/lockset imprecision. The static gate prunes
            // only the *speculative* yield forks (see `Inst::Yield`), where
            // no runtime evidence contradicts it.
            if let Some(next) = self.other_runnable(state) {
                self.fork_preempted(state, next);
            }
        }
        None
    }

    /// `mutex_lock`, with the deadlock schedule-synthesis heuristics of §4.1.
    fn exec_lock(&mut self, state: &mut ExecState, loc: Loc, mutex: Operand) -> StepEffect {
        let cur = state.current;
        let av = self.eval(state, mutex);
        let p = match self.as_address(state, &av) {
            Ok(p) => p,
            Err(f) => {
                self.count_step(state);
                return self.handle_fault(state, f, loc);
            }
        };
        let holder = state.sync.holder_of(p);
        match holder {
            None => {
                // Fork the "preempted before acquiring" alternative; if the
                // fork survives admission at merge time, the engine records
                // the assigned id in this state's `K_S` map.
                if let Some(next) = self.other_runnable(state) {
                    if self.fork_preempted(state, next) {
                        self.forks.last_mut().expect("fork just recorded").lock_snapshot = Some(p);
                    }
                }
                // Acquire in this state.
                self.count_step(state);
                state.sync.mutex_mut(p).holder = Some(cur);
                state.thread_mut(cur).held_locks.push(p);
                self.advance(state);
                // Inner-lock heuristic: if this acquisition happened at one of
                // the reported blocked-lock locations, remember it and
                // preempt, so another thread can come and request this mutex.
                if self.config.schedule_bias {
                    if let GoalSpec::Deadlock { thread_locs } = self.goal {
                        if thread_locs.contains(&loc) {
                            state.thread_mut(cur).inner_lock_held = Some(p);
                            state.sched_distance = SchedDistance::Near;
                            if let Some(next) = self.other_runnable(state) {
                                self.switch_to(state, next, SegmentStop::Steps(0));
                            }
                        }
                    }
                }
                StepEffect::Continue
            }
            Some(owner) => {
                // The mutex is held (possibly by this very thread: self
                // deadlock). Apply the roll-back heuristic, then block.
                if self.config.schedule_bias
                    && owner != cur
                    && state.threads[owner.0 as usize].inner_lock_held == Some(p)
                {
                    // M is the owner's inner lock, so it may be our outer
                    // lock: prioritize the snapshots in which the owner
                    // was preempted before acquiring, deprioritize us. The
                    // `K_S` map covers snapshots registered in earlier
                    // rounds; snapshots forked earlier in *this* burst have
                    // no id yet and are promoted by fork index.
                    self.promotions.extend(
                        state.lock_snapshots.iter().map(|(_, s)| Promotion::Registered(*s)),
                    );
                    self.promotions.extend(
                        self.forks
                            .iter()
                            .enumerate()
                            .filter(|(_, f)| f.lock_snapshot.is_some())
                            .map(|(i, _)| Promotion::Pending(i)),
                    );
                    state.sched_distance = SchedDistance::Far;
                }
                self.count_step(state);
                state.sync.mutex_mut(p).waiters.push(cur);
                state.thread_mut(cur).status = ThreadStatus::BlockedOnMutex(p);
                self.block_and_switch(state)
            }
        }
    }
}
