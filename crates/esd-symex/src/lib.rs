//! Multi-threaded symbolic execution with goal-directed search — the dynamic
//! phase of execution synthesis.
//!
//! The crate provides:
//!
//! * symbolic [`expr`]essions and values,
//! * a lightweight, sound-but-incomplete constraint [`solver`],
//! * forked execution [`state`]s with copy-on-write memory and per-state
//!   thread lists,
//! * the search [`engine`] with ESD's proximity-guided strategy (plus the
//!   DFS / RandomPath strategies and Chess-style preemption bounding used by
//!   the paper's KC baseline), critical-edge path abandonment, intermediate
//!   goals, and the deadlock / data-race schedule-synthesis heuristics.

pub mod engine;
pub mod expr;
pub mod solver;
pub mod state;
#[cfg(test)]
mod tests;

pub use engine::{
    Engine, EngineConfig, GoalSpec, SearchOutcome, SearchStats, Strategy, Synthesized,
};
pub use expr::{SymExpr, SymValue, SymVar, SymVarInfo};
pub use solver::{Solver, SolverConfig, SolverResult};
pub use state::{ExecState, SchedDistance, SymMemory, SymThread};
