//! Multi-threaded symbolic execution with goal-directed search — the dynamic
//! phase of execution synthesis.
//!
//! The crate provides:
//!
//! * symbolic [`expr`]essions and values,
//! * a lightweight, sound-but-incomplete constraint [`solver`],
//! * forked execution [`state`]s with copy-on-write memory, per-state thread
//!   lists, and per-state concurrency analysis (each interleaving carries its
//!   own O(1)-forkable lockset race detector),
//! * pluggable search [`frontier`]s — ESD's proximity-guided virtual queues
//!   plus DFS / BFS / RandomPath baselines — selected via
//!   [`SearchConfig`],
//! * the search [`engine`] driving it all, with critical-edge path
//!   abandonment, intermediate goals, Chess-style preemption bounding (the
//!   KC baseline) and the deadlock / data-race schedule-synthesis
//!   heuristics. The engine is split into a shared search pool and
//!   per-worker steppers (each owning its own solver), so a beam frontier's
//!   batch can be advanced on a worker pool ([`EngineConfig::threads`]) with
//!   results merged in deterministic batch order — the thread count never
//!   changes the synthesized execution.

// Documentation enforcement (see ARCHITECTURE.md): every public item must
// carry rustdoc, extended from the esd-concurrency pilot now that the
// step_round/frontier redesign stabilized this crate's API.
#![deny(missing_docs)]

pub mod engine;
pub mod expr;
pub mod frontier;
pub mod solver;
pub mod state;
mod stepper;
#[cfg(test)]
mod tests;

pub use engine::{
    Engine, EngineConfig, EngineSnapshot, GoalSpec, SearchOutcome, SearchStats, StepOutcome,
    Synthesized,
};
pub use expr::{SymExpr, SymValue, SymVar, SymVarInfo};
pub use frontier::{
    BeamFrontier, BfsFrontier, DfsFrontier, FrontierKind, FrontierSnapshot, LivenessSnapshot,
    ProximityFrontier, RandomFrontier, SearchConfig, SearchFrontier, StatePriority,
    DEFAULT_BEAM_WIDTH,
};
pub use solver::{Solver, SolverConfig, SolverResult};
pub use state::{ExecState, RaceDetector, SchedDistance, SymMemory, SymThread};
