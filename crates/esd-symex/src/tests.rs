//! Engine-level tests: sequential path synthesis, deadlock schedule
//! synthesis, and the KC baseline behaviour — all on small programs.

use crate::engine::{Engine, EngineConfig, GoalSpec, SearchOutcome};
use crate::frontier::SearchConfig;
use esd_analysis::StaticAnalysis;
use esd_ir::{BinOp, BlockId, CmpOp, FaultKind, Loc, Program, ProgramBuilder, ThreadId};
use std::sync::Arc;

/// A sequential program that crashes (null dereference) only when
/// `getchar() == 'k'` and `arg0 > 100`.
fn crashy_program() -> (Program, Loc) {
    let mut pb = ProgramBuilder::new("crashy");
    let mut crash_loc = None;
    pb.function("main", 0, |f| {
        let c = f.getchar();
        let a = f.arg(0);
        let is_k = f.cmp(CmpOp::Eq, c, 'k' as i64);
        let big = f.cmp(CmpOp::Gt, a, 100);
        let both = f.bin(BinOp::And, is_k, big);
        let bug = f.new_block("bug");
        let ok = f.new_block("ok");
        f.cond_br(both, bug, ok);
        f.switch_to(bug);
        let null = f.konst(0);
        crash_loc = Some(Loc::new(esd_ir::FuncId(0), bug, f.next_inst_idx()));
        let v = f.load(null);
        f.output(v);
        f.ret_void();
        f.switch_to(ok);
        f.output(0);
        f.ret_void();
    });
    let p = pb.finish("main");
    (p, crash_loc.unwrap())
}

/// The Listing-1 deadlock program from the paper, with the blocked-lock
/// locations of the two deadlocked threads returned as the goal.
fn listing1_program() -> (Program, Vec<Loc>) {
    let mut pb = ProgramBuilder::new("listing1");
    let m1 = pb.global("M1", 1);
    let m2 = pb.global("M2", 1);
    let idx = pb.global("idx", 1);
    let mode = pb.global("mode", 1);

    let critical = pb.declare("critical_section", 1);
    let mut relock_loc = None;
    let mut inner_m2_loc = None;
    pb.define(critical, |f| {
        let m1p = f.addr_global(m1);
        let m2p = f.addr_global(m2);
        f.lock(m1p);
        inner_m2_loc = Some(Loc::new(critical, f.current_block(), f.next_inst_idx()));
        f.lock(m2p);
        let modep = f.addr_global(mode);
        let idxp = f.addr_global(idx);
        let mv = f.load(modep);
        let iv = f.load(idxp);
        let mode_y = f.cmp(CmpOp::Eq, mv, 1);
        let idx_1 = f.cmp(CmpOp::Eq, iv, 1);
        let both = f.bin(BinOp::And, mode_y, idx_1);
        let relock = f.new_block("relock");
        let rest = f.new_block("rest");
        f.cond_br(both, relock, rest);
        f.switch_to(relock);
        f.unlock(m1p);
        relock_loc = Some(Loc::new(critical, relock, f.next_inst_idx()));
        f.lock(m1p);
        f.br(rest);
        f.switch_to(rest);
        f.unlock(m2p);
        f.unlock(m1p);
        f.ret_void();
    });

    pb.function("main", 0, |f| {
        let idxp = f.addr_global(idx);
        let modep = f.addr_global(mode);
        let c = f.getchar();
        let is_m = f.cmp(CmpOp::Eq, c, 'm' as i64);
        let inc = f.new_block("inc");
        let after_inc = f.new_block("after_inc");
        f.cond_br(is_m, inc, after_inc);
        f.switch_to(inc);
        let v = f.load(idxp);
        let v1 = f.add(v, 1);
        f.store(idxp, v1);
        f.br(after_inc);
        f.switch_to(after_inc);
        let e = f.getenv("mode");
        let is_y = f.cmp(CmpOp::Eq, e, 'Y' as i64);
        let yes = f.new_block("mode_y");
        let no = f.new_block("mode_z");
        let cont = f.new_block("cont");
        f.cond_br(is_y, yes, no);
        f.switch_to(yes);
        f.store(modep, 1);
        f.br(cont);
        f.switch_to(no);
        f.store(modep, 2);
        f.br(cont);
        f.switch_to(cont);
        let t1 = f.spawn(critical, 0);
        let t2 = f.spawn(critical, 0);
        f.join(t1);
        f.join(t2);
        f.ret_void();
    });
    let p = pb.finish("main");
    (p, vec![relock_loc.unwrap(), inner_m2_loc.unwrap()])
}

fn run_engine(p: &Program, goal: GoalSpec, config: EngineConfig) -> SearchOutcome {
    let primary = goal.primary_locs()[0];
    let analysis = Arc::new(StaticAnalysis::compute(p, primary));
    let mut engine = Engine::new(Arc::new(p.clone()), analysis, goal, config);
    engine.run()
}

#[test]
fn sequential_crash_path_is_synthesized_with_correct_inputs() {
    let (p, crash_loc) = crashy_program();
    let outcome = run_engine(&p, GoalSpec::Crash { loc: crash_loc }, EngineConfig::default());
    let synth = outcome.found().expect("crash must be synthesized");
    assert!(matches!(synth.fault, FaultKind::SegFault { .. }));
    assert_eq!(synth.fault_loc, Some(crash_loc));
    // The solved inputs must actually enable the buggy branch.
    let stdin = synth
        .inputs
        .iter()
        .find(|(i, _)| i.source == esd_ir::InputSource::Stdin)
        .map(|(_, v)| *v)
        .unwrap();
    let arg = synth
        .inputs
        .iter()
        .find(|(i, _)| matches!(i.source, esd_ir::InputSource::Arg(0)))
        .map(|(_, v)| *v)
        .unwrap();
    assert_eq!(stdin, 'k' as i64);
    assert!(arg > 100);
}

#[test]
fn dfs_also_finds_the_sequential_crash() {
    let (p, crash_loc) = crashy_program();
    let outcome =
        run_engine(&p, GoalSpec::Crash { loc: crash_loc }, EngineConfig::kc(SearchConfig::dfs()));
    assert!(outcome.found().is_some());
}

#[test]
fn bfs_also_finds_the_sequential_crash() {
    let (p, crash_loc) = crashy_program();
    let outcome =
        run_engine(&p, GoalSpec::Crash { loc: crash_loc }, EngineConfig::kc(SearchConfig::bfs()));
    assert!(outcome.found().is_some());
}

#[test]
fn unreachable_crash_goal_is_reported_as_exhausted() {
    let mut pb = ProgramBuilder::new("clean");
    pb.function("main", 0, |f| {
        let dead = f.new_block("dead");
        f.ret_void();
        f.switch_to(dead);
        let null = f.konst(0);
        let v = f.load(null);
        f.output(v);
        f.ret_void();
    });
    let p = pb.finish("main");
    let goal = GoalSpec::Crash { loc: Loc::new(p.entry, BlockId(1), 1) };
    let outcome = run_engine(&p, goal, EngineConfig::default());
    assert!(matches!(outcome, SearchOutcome::Exhausted(_)));
}

#[test]
fn listing1_deadlock_schedule_is_synthesized_by_proximity_search() {
    let (p, thread_locs) = listing1_program();
    let outcome = run_engine(
        &p,
        GoalSpec::Deadlock { thread_locs: thread_locs.clone() },
        EngineConfig { max_steps: 400_000, ..EngineConfig::default() },
    );
    let synth = outcome.found().expect("deadlock must be synthesized");
    assert!(matches!(synth.fault, FaultKind::Deadlock));
    // The synthesized inputs must include getchar()='m' and getenv[0]='Y' for
    // the main thread (the bug-enabling inputs identified in the paper).
    let stdin = synth
        .inputs
        .iter()
        .find(|(i, _)| i.thread == ThreadId(0) && i.seq == 0)
        .map(|(_, v)| *v)
        .unwrap();
    let env = synth
        .inputs
        .iter()
        .find(|(i, _)| i.thread == ThreadId(0) && i.seq == 1)
        .map(|(_, v)| *v)
        .unwrap();
    assert_eq!(stdin, 'm' as i64);
    assert_eq!(env, 'Y' as i64);
    // The schedule must interleave the two worker threads.
    let threads = synth.schedule.threads();
    assert!(threads.contains(&1) && threads.contains(&2), "threads in schedule: {threads:?}");
    assert!(synth.schedule.context_switches() >= 2);
}

#[test]
fn esd_explores_less_than_kc_on_listing1() {
    // On the (tiny) Listing-1 program both ESD and the KC baseline can find
    // the deadlock, but ESD's goal-directed heuristics must need
    // substantially less exploration — this is the Figure-2/3 relationship
    // in miniature (on the real-bug analogs KC does not finish at all; see
    // the esd-bench harness).
    let (p, thread_locs) = listing1_program();
    let esd = run_engine(
        &p,
        GoalSpec::Deadlock { thread_locs: thread_locs.clone() },
        EngineConfig { max_steps: 400_000, ..EngineConfig::default() },
    );
    let esd_steps = esd.stats().steps;
    assert!(esd.found().is_some());
    let kc = run_engine(
        &p,
        GoalSpec::Deadlock { thread_locs },
        EngineConfig { max_steps: 400_000, ..EngineConfig::kc(SearchConfig::random(3)) },
    );
    let kc_steps = kc.stats().steps;
    // Listing 1 is tiny, so both approaches succeed quickly here; the paper's
    // orders-of-magnitude gap (Figures 2 and 3) appears on the larger
    // real-bug analogs and BPF programs exercised by the esd-bench harness.
    assert!(esd_steps < 100_000);
    assert!(kc_steps < 400_000 || kc.found().is_none());
}

#[test]
fn assertion_violation_goal_with_symbolic_condition() {
    let mut pb = ProgramBuilder::new("asserty");
    let mut goal_loc = None;
    pb.function("main", 0, |f| {
        let x = f.getchar();
        let doubled = f.mul(x, 2);
        let ok = f.cmp(CmpOp::Ne, doubled, 84);
        goal_loc = Some(Loc::new(esd_ir::FuncId(0), f.current_block(), f.next_inst_idx()));
        f.assert(ok, "doubled input hit the magic value");
        f.output(doubled);
        f.ret_void();
    });
    let p = pb.finish("main");
    let outcome =
        run_engine(&p, GoalSpec::Crash { loc: goal_loc.unwrap() }, EngineConfig::default());
    let synth = outcome.found().expect("assertion failure must be synthesized");
    assert!(matches!(synth.fault, FaultKind::AssertFailure { .. }));
    let stdin = synth.inputs.iter().find(|(i, _)| i.seq == 0).map(|(_, v)| *v).unwrap();
    assert_eq!(stdin, 42);
}

#[test]
fn other_bugs_found_along_the_way_are_recorded() {
    // The program has an early assertion failure unrelated to the goal crash.
    let mut pb = ProgramBuilder::new("twobugs");
    let mut crash_loc = None;
    pb.function("main", 0, |f| {
        let x = f.getchar();
        let not_seven = f.cmp(CmpOp::Ne, x, 7);
        f.assert(not_seven, "x must not be 7");
        let is_two = f.cmp(CmpOp::Eq, x, 2);
        let bug = f.new_block("bug");
        let ok = f.new_block("ok");
        f.cond_br(is_two, bug, ok);
        f.switch_to(bug);
        let null = f.konst(0);
        crash_loc = Some(Loc::new(esd_ir::FuncId(0), bug, f.next_inst_idx()));
        let v = f.load(null);
        f.output(v);
        f.ret_void();
        f.switch_to(ok);
        f.ret_void();
    });
    let p = pb.finish("main");
    let primary = crash_loc.unwrap();
    let analysis = Arc::new(StaticAnalysis::compute(&p, primary));
    let mut engine = Engine::new(
        Arc::new(p),
        analysis,
        GoalSpec::Crash { loc: primary },
        EngineConfig::default(),
    );
    let outcome = engine.run();
    let synth = outcome.found().expect("goal crash found");
    assert_eq!(synth.inputs[0].1, 2);
    assert!(engine.other_bugs.iter().any(|(f, _)| matches!(f, FaultKind::AssertFailure { .. })));
}

/// Regression test for the ROADMAP-tracked bug fixed by moving the race
/// detector from `Engine` into `ExecState`: with one engine-global detector,
/// the duplicate-pair suppression set was shared by every forked state, so
/// after the first interleaving flagged a racing pair, the *sibling*
/// interleaving reaching the very same pair stayed silent — and never got its
/// race preemption point. The program below forks two sibling states at a
/// symbolic branch; both then run the identical unlocked
/// main-store/worker-store race. Both siblings must flag it.
#[test]
fn sibling_forks_flag_the_same_race_independently() {
    let mut pb = ProgramBuilder::new("sibling_race");
    let g = pb.global("g", 1);
    let worker = pb.declare("worker", 1);
    pb.define(worker, |f| {
        let gp = f.addr_global(g);
        f.store(gp, 7);
        f.ret_void();
    });
    let main_id = pb.declare("main", 0);
    pb.define(main_id, |f| {
        let x = f.getchar();
        let c = f.cmp(CmpOp::Eq, x, 1);
        let a = f.new_block("a");
        let b = f.new_block("b");
        let go = f.new_block("go");
        // The fork: both sides are feasible, so the engine creates two
        // sibling states that differ only in this branch's constraint.
        f.cond_br(c, a, b);
        f.switch_to(a);
        f.nop();
        f.br(go);
        f.switch_to(b);
        f.nop();
        f.br(go);
        f.switch_to(go);
        let gp = f.addr_global(g);
        f.store(gp, 1); // t0's unlocked write…
        let t = f.spawn(worker, 0);
        f.join(t); // …races with t1's unlocked write, in both siblings.
        f.ret_void();
    });
    let p = pb.finish("main");

    // Unreachable crash goal: the search explores everything and exhausts.
    let goal = GoalSpec::Crash { loc: Loc::new(main_id, BlockId(1), 0) };
    let config = EngineConfig {
        search: SearchConfig::dfs(),
        use_intermediate_goals: false,
        use_critical_edges: false,
        schedule_bias: false,
        race_preemptions: true,
        ..EngineConfig::default()
    };
    let primary = goal.primary_locs()[0];
    let analysis = Arc::new(StaticAnalysis::compute(&p, primary));
    let mut engine = Engine::new(Arc::new(p), analysis, goal, config);
    let outcome = engine.run();
    assert!(matches!(outcome, SearchOutcome::Exhausted(_)), "tiny program must be exhausted");
    assert_eq!(
        outcome.stats().races_flagged,
        2,
        "both sibling interleavings must flag the race (the old engine-global \
         detector reported it once and suppressed the sibling's)"
    );
}

/// Review regression: the dynamic race detector is the *backstop* for
/// static imprecision. Even with `race_candidate_pruning` on and an
/// (artificially) empty candidate set — simulating a static MHP hole — a
/// write the detector concretely flags must still fork its delayed
/// alternative. The writer below stores `g = 1` then `g = 2` back to back;
/// the reader observes `g == 1` (the asserted-against value) only if it is
/// scheduled *between* those straight-line stores. The only preemption
/// point there is the backstop fork at the flagged second store: lock forks
/// can only park the reader before its own acquisition, from where the
/// writer runs both stores uninterrupted (the reader's early load of `g`
/// makes the word shared so the stores actually flag).
#[test]
fn flagged_races_fork_even_outside_the_static_candidate_set() {
    let mut pb = ProgramBuilder::new("backstop");
    let g = pb.global("g", 1);
    let m = pb.global("m", 1);
    let reader = pb.declare("reader", 1);
    let mut assert_loc = None;
    pb.define(reader, |f| {
        let gp = f.addr_global(g);
        let mp = f.addr_global(m);
        let _x = f.load(gp);
        f.lock(mp);
        f.unlock(mp);
        let y = f.load(gp);
        let ok = f.cmp(CmpOp::Ne, y, 1);
        assert_loc = Some(Loc::new(reader, f.current_block(), f.next_inst_idx()));
        f.assert(ok, "the reader ran between the writer's two stores");
        f.ret_void();
    });
    let writer = pb.declare("writer", 1);
    pb.define(writer, |f| {
        let gp = f.addr_global(g);
        f.store(gp, 1);
        f.store(gp, 2);
        f.ret_void();
    });
    pb.function("main", 0, |f| {
        let tr = f.spawn(reader, 1);
        let tw = f.spawn(writer, 2);
        f.join(tr);
        f.join(tw);
        f.ret_void();
    });
    let p = pb.finish("main");
    let primary = assert_loc.unwrap();

    let mut analysis = StaticAnalysis::compute(&p, primary);
    // Simulate a static phase that missed every candidate (the worst
    // possible MHP/points-to imprecision).
    analysis.race_candidates = Default::default();
    let config = EngineConfig {
        search: SearchConfig::dfs(),
        race_preemptions: true,
        race_candidate_pruning: true,
        ..EngineConfig::default()
    };
    let mut engine =
        Engine::new(Arc::new(p), Arc::new(analysis), GoalSpec::Crash { loc: primary }, config);
    let outcome = engine.run();
    assert!(
        matches!(outcome, SearchOutcome::Found(_)),
        "the concretely flagged race must fork its preemption even though the \
         static candidate set is empty: {outcome:?}"
    );
}

/// Snapshot/restore mid-search must be unobservable: an engine restored from
/// a (serialized and re-parsed) snapshot continues to the identical outcome —
/// same schedule, same inputs, same statistics — as the uninterrupted engine,
/// for every frontier kind. Re-snapshotting the restored engine must also be
/// byte-identical, pinning the canonical serialized form.
#[test]
fn snapshot_restore_resumes_identically_for_every_frontier() {
    let (p, thread_locs) = listing1_program();
    let program = Arc::new(p);
    let goal = GoalSpec::Deadlock { thread_locs };
    let primary = goal.primary_locs()[0];
    let analysis = Arc::new(StaticAnalysis::compute(&program, primary));
    for search in [
        SearchConfig::dfs(),
        SearchConfig::bfs(),
        SearchConfig::random(7),
        SearchConfig::proximity(1),
        SearchConfig::beam(8),
    ] {
        let config = EngineConfig { search, max_steps: 400_000, ..EngineConfig::default() };
        let mut uninterrupted =
            Engine::new(program.clone(), analysis.clone(), goal.clone(), config.clone());
        // Advance partway (few enough rounds that even the fast beam search
        // has not finished yet), snapshot, then run both to completion.
        for _ in 0..3 {
            match uninterrupted.step_round() {
                crate::engine::StepOutcome::Running => {}
                other => panic!("{search:?}: ended during warmup: {other:?}"),
            }
        }
        let snap = uninterrupted.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let parsed: crate::engine::EngineSnapshot = serde_json::from_str(&json).unwrap();
        let mut restored = Engine::restore(program.clone(), analysis.clone(), &parsed);
        assert_eq!(
            serde_json::to_string(&restored.snapshot()).unwrap(),
            json,
            "{search:?}: re-snapshot of the restored engine must be byte-identical"
        );
        let a = uninterrupted.run();
        let b = restored.run();
        match (&a, &b) {
            (SearchOutcome::Found(x), SearchOutcome::Found(y)) => {
                assert_eq!(x.schedule, y.schedule, "{search:?}: schedules diverged");
                assert_eq!(x.inputs, y.inputs, "{search:?}: inputs diverged");
                assert_eq!(x.stats, y.stats, "{search:?}: stats diverged");
            }
            (SearchOutcome::Exhausted(x), SearchOutcome::Exhausted(y))
            | (SearchOutcome::BudgetExceeded(x), SearchOutcome::BudgetExceeded(y)) => {
                assert_eq!(x, y, "{search:?}: stats diverged");
            }
            _ => panic!("{search:?}: outcomes diverged: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn budget_exhaustion_is_reported() {
    let mut pb = ProgramBuilder::new("spin");
    pb.function("main", 0, |f| {
        let l = f.new_block("l");
        f.br(l);
        f.switch_to(l);
        let x = f.getchar();
        f.output(x);
        f.br(l);
    });
    let p = pb.finish("main");
    // Unreachable goal in an infinite loop: the search must stop at the step
    // budget rather than hang.
    let goal = GoalSpec::Crash { loc: Loc::new(p.entry, BlockId(1), 999) };
    let outcome = run_engine(&p, goal, EngineConfig { max_steps: 5_000, ..Default::default() });
    match outcome {
        SearchOutcome::BudgetExceeded(stats) => assert!(stats.steps >= 5_000),
        SearchOutcome::Exhausted(_) => {}
        SearchOutcome::Found(_) => panic!("cannot find an unreachable goal"),
    }
}

/// Regression test for the dedup fingerprint. It used to hash the path
/// constraint *count*, so two forks parked at the same location with
/// equal-length but incompatible path conditions collided, and the later one
/// was pruned as a "duplicate". Here the search forks twice into the shared
/// join blocks: the else-fork of the second branch on the `x == 1` path
/// (`[x == 1, y != 2]`) is registered first, and the else-fork on the
/// `x != 1` path (`[x != 1, y != 2]`) — the only state that can reach the
/// goal — used to collide with it and be wrongly pruned, exhausting the
/// search.
#[test]
fn dedup_fingerprint_distinguishes_equal_length_constraint_sets() {
    let mut pb = ProgramBuilder::new("fp_collision");
    let mut bug_loc = None;
    pb.function("main", 0, |f| {
        let x = f.getchar();
        let y = f.getchar();
        let a = f.new_block("a");
        let b = f.new_block("b");
        let m = f.new_block("m");
        let n = f.new_block("n");
        let p = f.new_block("p");
        let q = f.new_block("q");
        let r = f.new_block("r");
        let bug = f.new_block("bug");
        let ok = f.new_block("ok");
        let c1 = f.cmp(CmpOp::Eq, x, 1);
        f.cond_br(c1, a, b);
        f.switch_to(a);
        f.br(m);
        f.switch_to(b);
        f.br(m);
        f.switch_to(m);
        let c2 = f.cmp(CmpOp::Eq, y, 2);
        f.cond_br(c2, n, p);
        f.switch_to(n);
        f.br(q);
        f.switch_to(p);
        f.br(q);
        f.switch_to(q);
        let c3 = f.cmp(CmpOp::Ne, x, 1);
        f.cond_br(c3, r, ok);
        f.switch_to(r);
        let c4 = f.cmp(CmpOp::Ne, y, 2);
        f.cond_br(c4, bug, ok);
        f.switch_to(bug);
        let null = f.konst(0);
        bug_loc = Some(Loc::new(esd_ir::FuncId(0), bug, f.next_inst_idx()));
        let v = f.load(null);
        f.output(v);
        f.ret_void();
        f.switch_to(ok);
        f.ret_void();
    });
    let p = pb.finish("main");
    // DFS makes the registration order deterministic: the x == 1 path's
    // else-fork reaches the colliding position first.
    let config = EngineConfig { search: SearchConfig::dfs(), ..EngineConfig::default() };
    let outcome = run_engine(&p, GoalSpec::Crash { loc: bug_loc.unwrap() }, config);
    let synth = outcome.found().expect(
        "the only goal-reaching state has the same constraint count as an \
         already-registered sibling; the content-aware fingerprint must keep it",
    );
    assert_ne!(synth.inputs[0].1, 1, "x must take the second fork's side");
    assert_ne!(synth.inputs[1].1, 2, "y must take the second fork's side");
}

/// The batched beam frontier must also synthesize the Listing-1 deadlock —
/// this exercises the burst path end to end, including the in-burst deadlock
/// roll-back promotions (a lock-snapshot fork and the conflicting lock
/// attempt can share one 32-step turn) — and the worker pool must be
/// unobservable: threads=4 produces the identical schedule and inputs.
#[test]
fn listing1_deadlock_is_synthesized_by_beam_search_at_any_thread_count() {
    let (p, thread_locs) = listing1_program();
    let config = |threads: usize| EngineConfig {
        search: SearchConfig::beam(8),
        max_steps: 400_000,
        threads,
        ..EngineConfig::default()
    };
    let goal = GoalSpec::Deadlock { thread_locs };
    let solo = run_engine(&p, goal.clone(), config(1))
        .found()
        .expect("beam search must synthesize the deadlock");
    assert!(matches!(solo.fault, FaultKind::Deadlock));
    let parallel = run_engine(&p, goal, config(4)).found().expect("threads=4 finds it too");
    assert_eq!(solo.schedule, parallel.schedule, "thread count must not change the schedule");
    assert_eq!(solo.inputs, parallel.inputs);
    assert_eq!(solo.stats.steps, parallel.stats.steps);
    assert_eq!(solo.stats.states_created, parallel.stats.states_created);
}
