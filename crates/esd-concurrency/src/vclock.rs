//! Vector clocks for happens-before ordering.
//!
//! The synthesized execution file can describe the schedule either strictly
//! (exact context-switch points) or as happens-before relations between
//! synchronization operations (§5.1); vector clocks provide the partial order
//! for the latter form and are also used in tests to validate that strict
//! playback respects the synthesized ordering.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// A vector clock over thread indices.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorClock {
    counts: Vec<u64>,
}

impl VectorClock {
    /// Creates an all-zero clock.
    pub fn new() -> Self {
        VectorClock { counts: Vec::new() }
    }

    fn ensure(&mut self, tid: usize) {
        if self.counts.len() <= tid {
            self.counts.resize(tid + 1, 0);
        }
    }

    /// The component for `tid`.
    pub fn get(&self, tid: usize) -> u64 {
        self.counts.get(tid).copied().unwrap_or(0)
    }

    /// Increments the component for `tid` (a local step of that thread).
    pub fn tick(&mut self, tid: usize) {
        self.ensure(tid);
        self.counts[tid] += 1;
    }

    /// Joins another clock into this one (message receive / lock acquire).
    pub fn join(&mut self, other: &VectorClock) {
        self.ensure(other.counts.len().saturating_sub(1));
        for (i, v) in other.counts.iter().enumerate() {
            if self.counts[i] < *v {
                self.counts[i] = *v;
            }
        }
    }

    /// Returns `Some(Ordering::Less)` if `self` happens-before `other`,
    /// `Some(Ordering::Greater)` for the converse, `Some(Ordering::Equal)` if
    /// identical, and `None` if the clocks are concurrent.
    pub fn partial_cmp_hb(&self, other: &VectorClock) -> Option<Ordering> {
        let n = self.counts.len().max(other.counts.len());
        let mut le = true;
        let mut ge = true;
        for i in 0..n {
            let a = self.get(i);
            let b = other.get(i);
            if a > b {
                le = false;
            }
            if a < b {
                ge = false;
            }
        }
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    /// True if `self` happens strictly before `other`.
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        self.partial_cmp_hb(other) == Some(Ordering::Less)
    }

    /// True if neither clock happens before the other.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        self.partial_cmp_hb(other).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_establish_per_thread_order() {
        let mut a = VectorClock::new();
        a.tick(0);
        let mut b = a.clone();
        b.tick(0);
        assert!(a.happens_before(&b));
        assert!(!b.happens_before(&a));
    }

    #[test]
    fn independent_ticks_are_concurrent() {
        let mut a = VectorClock::new();
        let mut b = VectorClock::new();
        a.tick(0);
        b.tick(1);
        assert!(a.concurrent_with(&b));
        assert!(b.concurrent_with(&a));
    }

    #[test]
    fn join_orders_the_receiver_after_the_sender() {
        let mut sender = VectorClock::new();
        sender.tick(0);
        let mut receiver = VectorClock::new();
        receiver.tick(1);
        let snapshot = sender.clone();
        receiver.join(&sender);
        receiver.tick(1);
        assert!(snapshot.happens_before(&receiver));
    }

    #[test]
    fn equal_clocks_compare_equal() {
        let mut a = VectorClock::new();
        a.tick(2);
        let b = a.clone();
        assert_eq!(a.partial_cmp_hb(&b), Some(Ordering::Equal));
    }

    #[test]
    fn transitivity_via_lock_handoff() {
        // t0 writes then releases (clock L takes t0's time); t1 acquires
        // (joins L) then reads: the write happens-before the read.
        let mut t0 = VectorClock::new();
        t0.tick(0);
        let write_clock = t0.clone();
        let lock_clock = t0.clone(); // release
        let mut t1 = VectorClock::new();
        t1.tick(1);
        t1.join(&lock_clock); // acquire
        t1.tick(1);
        assert!(write_clock.happens_before(&t1));
    }
}
