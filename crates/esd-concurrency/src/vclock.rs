//! Vector clocks for happens-before ordering.
//!
//! The synthesized execution file can describe the schedule either strictly
//! (exact context-switch points) or as happens-before relations between
//! synchronization operations (§5.1); vector clocks provide the partial order
//! for the latter form and are also used in tests to validate that strict
//! playback respects the synthesized ordering.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// A vector clock over thread indices.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorClock {
    counts: Vec<u64>,
}

impl VectorClock {
    /// Creates an all-zero clock.
    pub fn new() -> Self {
        VectorClock { counts: Vec::new() }
    }

    fn ensure(&mut self, tid: usize) {
        if self.counts.len() <= tid {
            self.counts.resize(tid + 1, 0);
        }
    }

    /// The component for `tid`.
    pub fn get(&self, tid: usize) -> u64 {
        self.counts.get(tid).copied().unwrap_or(0)
    }

    /// Increments the component for `tid` (a local step of that thread).
    pub fn tick(&mut self, tid: usize) {
        self.ensure(tid);
        self.counts[tid] += 1;
    }

    /// Joins another clock into this one (message receive / lock acquire).
    pub fn join(&mut self, other: &VectorClock) {
        self.ensure(other.counts.len().saturating_sub(1));
        for (i, v) in other.counts.iter().enumerate() {
            if self.counts[i] < *v {
                self.counts[i] = *v;
            }
        }
    }

    /// Returns `Some(Ordering::Less)` if `self` happens-before `other`,
    /// `Some(Ordering::Greater)` for the converse, `Some(Ordering::Equal)` if
    /// identical, and `None` if the clocks are concurrent.
    pub fn partial_cmp_hb(&self, other: &VectorClock) -> Option<Ordering> {
        let n = self.counts.len().max(other.counts.len());
        let mut le = true;
        let mut ge = true;
        for i in 0..n {
            let a = self.get(i);
            let b = other.get(i);
            if a > b {
                le = false;
            }
            if a < b {
                ge = false;
            }
        }
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    /// True if `self` happens strictly before `other`.
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        self.partial_cmp_hb(other) == Some(Ordering::Less)
    }

    /// True if neither clock happens before the other.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        self.partial_cmp_hb(other).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_establish_per_thread_order() {
        let mut a = VectorClock::new();
        a.tick(0);
        let mut b = a.clone();
        b.tick(0);
        assert!(a.happens_before(&b));
        assert!(!b.happens_before(&a));
    }

    #[test]
    fn independent_ticks_are_concurrent() {
        let mut a = VectorClock::new();
        let mut b = VectorClock::new();
        a.tick(0);
        b.tick(1);
        assert!(a.concurrent_with(&b));
        assert!(b.concurrent_with(&a));
    }

    #[test]
    fn join_orders_the_receiver_after_the_sender() {
        let mut sender = VectorClock::new();
        sender.tick(0);
        let mut receiver = VectorClock::new();
        receiver.tick(1);
        let snapshot = sender.clone();
        receiver.join(&sender);
        receiver.tick(1);
        assert!(snapshot.happens_before(&receiver));
    }

    #[test]
    fn equal_clocks_compare_equal() {
        let mut a = VectorClock::new();
        a.tick(2);
        let b = a.clone();
        assert_eq!(a.partial_cmp_hb(&b), Some(Ordering::Equal));
    }

    /// `happens_before` is a strict partial order: irreflexive,
    /// antisymmetric and transitive over a family of hand-built clocks.
    #[test]
    fn happens_before_is_a_strict_partial_order() {
        // A small family with equal, ordered and concurrent members.
        let mut clocks: Vec<VectorClock> = Vec::new();
        for (ticks0, ticks1, ticks2) in
            [(0, 0, 0), (1, 0, 0), (0, 1, 0), (2, 1, 0), (1, 2, 3), (2, 2, 3)]
        {
            let mut c = VectorClock::new();
            for _ in 0..ticks0 {
                c.tick(0);
            }
            for _ in 0..ticks1 {
                c.tick(1);
            }
            for _ in 0..ticks2 {
                c.tick(2);
            }
            clocks.push(c);
        }
        for a in &clocks {
            assert!(!a.happens_before(a), "irreflexive");
            for b in &clocks {
                assert!(!(a.happens_before(b) && b.happens_before(a)), "antisymmetric");
                for c in &clocks {
                    if a.happens_before(b) && b.happens_before(c) {
                        assert!(a.happens_before(c), "transitive");
                    }
                }
            }
        }
    }

    /// `join` computes the least upper bound: both operands happen at or
    /// before the join, and the join does not exceed the component-wise max.
    #[test]
    fn join_is_least_upper_bound() {
        let mut a = VectorClock::new();
        a.tick(0);
        a.tick(0);
        a.tick(2);
        let mut b = VectorClock::new();
        b.tick(1);
        b.tick(2);
        b.tick(2);
        let mut j = a.clone();
        j.join(&b);
        for tid in 0..3 {
            assert_eq!(j.get(tid), a.get(tid).max(b.get(tid)));
        }
        assert_ne!(a.partial_cmp_hb(&j), None, "a is ordered with the join");
        assert_ne!(b.partial_cmp_hb(&j), None, "b is ordered with the join");
        assert!(!j.happens_before(&a) && !j.happens_before(&b));
    }

    #[test]
    fn serde_roundtrip() {
        let mut c = VectorClock::new();
        c.tick(0);
        c.tick(3);
        c.tick(3);
        let json = serde_json::to_string(&c).unwrap();
        let back: VectorClock = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn transitivity_via_lock_handoff() {
        // t0 writes then releases (clock L takes t0's time); t1 acquires
        // (joins L) then reads: the write happens-before the read.
        let mut t0 = VectorClock::new();
        t0.tick(0);
        let write_clock = t0.clone();
        let lock_clock = t0.clone(); // release
        let mut t1 = VectorClock::new();
        t1.tick(1);
        t1.join(&lock_clock); // acquire
        t1.tick(1);
        assert!(write_clock.happens_before(&t1));
    }
}
