//! Resource-allocation-graph deadlock detection.
//!
//! The graph has thread nodes and mutex nodes; a thread points to the mutex
//! it waits for, and a mutex points to the thread holding it. A cycle is a
//! deadlock. Because every mutex has at most one holder and every thread
//! waits for at most one mutex, cycle detection reduces to following the
//! single outgoing "wait → holder → wait → …" chain from each blocked thread.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// The wait/hold relation at one instant.
///
/// `T` identifies threads and `M` identifies mutexes (the engine uses
/// `ThreadId` and pointer addresses).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WaitGraph<T: Eq + Hash + Copy, M: Eq + Hash + Copy> {
    /// For each blocked thread, the mutex it is waiting to acquire.
    pub waits_for: HashMap<T, M>,
    /// For each held mutex, the thread holding it.
    pub held_by: HashMap<M, T>,
}

impl<T: Eq + Hash + Copy, M: Eq + Hash + Copy> WaitGraph<T, M> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        WaitGraph { waits_for: HashMap::new(), held_by: HashMap::new() }
    }

    /// Records that `thread` is blocked acquiring `mutex`.
    pub fn wait(&mut self, thread: T, mutex: M) {
        self.waits_for.insert(thread, mutex);
    }

    /// Records that `mutex` is held by `thread`.
    pub fn hold(&mut self, mutex: M, thread: T) {
        self.held_by.insert(mutex, thread);
    }

    /// Returns the threads forming a wait cycle, if one exists. The returned
    /// list contains each thread of the cycle exactly once, starting at an
    /// arbitrary member.
    pub fn find_cycle(&self) -> Option<Vec<T>> {
        for start in self.waits_for.keys() {
            let mut chain = vec![*start];
            let mut cur = *start;
            while let Some(mutex) = self.waits_for.get(&cur) {
                let Some(holder) = self.held_by.get(mutex) else { break };
                if *holder == *start {
                    return Some(chain);
                }
                if chain.contains(holder) {
                    // A cycle not involving `start`; it will be found when
                    // iteration reaches one of its members.
                    break;
                }
                chain.push(*holder);
                cur = *holder;
            }
        }
        None
    }
}

/// Convenience wrapper: builds the graph from parallel maps and looks for a
/// deadlock cycle.
pub fn find_mutex_deadlock<T: Eq + Hash + Copy, M: Eq + Hash + Copy>(
    waits_for: &HashMap<T, M>,
    held_by: &HashMap<M, T>,
) -> Option<Vec<T>> {
    let g = WaitGraph { waits_for: waits_for.clone(), held_by: held_by.clone() };
    g.find_cycle()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_thread_ab_ba_cycle_is_found() {
        let mut g: WaitGraph<u32, &str> = WaitGraph::new();
        g.hold("A", 1);
        g.hold("B", 2);
        g.wait(1, "B");
        g.wait(2, "A");
        let cycle = g.find_cycle().expect("cycle");
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&1) && cycle.contains(&2));
    }

    #[test]
    fn three_thread_cycle_is_found() {
        let mut g: WaitGraph<u32, u32> = WaitGraph::new();
        g.hold(10, 1);
        g.hold(20, 2);
        g.hold(30, 3);
        g.wait(1, 20);
        g.wait(2, 30);
        g.wait(3, 10);
        let cycle = g.find_cycle().expect("cycle");
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn waiting_without_cycle_is_not_a_deadlock() {
        let mut g: WaitGraph<u32, u32> = WaitGraph::new();
        g.hold(10, 1);
        g.wait(2, 10); // 2 waits for 1, but 1 waits for nothing
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn self_deadlock_is_a_cycle_of_one() {
        let mut g: WaitGraph<u32, u32> = WaitGraph::new();
        g.hold(10, 1);
        g.wait(1, 10);
        let cycle = g.find_cycle().expect("self cycle");
        assert_eq!(cycle, vec![1]);
    }

    #[test]
    fn unrelated_threads_do_not_join_the_cycle() {
        let mut g: WaitGraph<u32, u32> = WaitGraph::new();
        g.hold(10, 1);
        g.hold(20, 2);
        g.wait(1, 20);
        g.wait(2, 10);
        g.hold(30, 3);
        g.wait(4, 30);
        let cycle = g.find_cycle().expect("cycle");
        assert_eq!(cycle.len(), 2);
        assert!(!cycle.contains(&3) && !cycle.contains(&4));
    }

    #[test]
    fn helper_function_matches_graph_behaviour() {
        let mut waits = HashMap::new();
        let mut held = HashMap::new();
        held.insert("A", 1u32);
        held.insert("B", 2u32);
        waits.insert(1u32, "B");
        waits.insert(2u32, "A");
        assert!(find_mutex_deadlock(&waits, &held).is_some());
        waits.remove(&2);
        assert!(find_mutex_deadlock(&waits, &held).is_none());
    }
}
