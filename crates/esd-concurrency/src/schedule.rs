//! Serialized thread schedules.
//!
//! A synthesized execution is a single-processor, serialized interleaving of
//! the threads' paths (§4). The schedule stored in the execution file is a
//! sequence of *segments*: "run thread T until ⟨stop condition⟩, then switch
//! to the next segment". Stop conditions are robust to small differences
//! between the synthesis engine and the playback interpreter: a segment can
//! end after an exact number of instructions, or when the thread blocks, or
//! when it finishes.

use serde::{Deserialize, Serialize};

/// Why a schedule segment ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentStop {
    /// The thread executes exactly this many instructions, then is preempted.
    Steps(u64),
    /// The thread runs until it blocks (on a mutex, condition variable or
    /// join). The blocking attempt itself is the last step of the segment.
    Blocked,
    /// The thread runs until its start routine returns.
    Finished,
}

/// One segment of a serialized schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleSegment {
    /// The thread to run (its creation index: 0 = main, 1 = first spawned…).
    pub thread: u32,
    /// When to stop running it.
    pub stop: SegmentStop,
}

/// A whole serialized schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// The segments, in execution order.
    pub segments: Vec<ScheduleSegment>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule { segments: Vec::new() }
    }

    /// Appends a segment, merging consecutive `Steps` segments of the same
    /// thread.
    pub fn push(&mut self, thread: u32, stop: SegmentStop) {
        if let (Some(last), SegmentStop::Steps(n)) = (self.segments.last_mut(), stop) {
            if last.thread == thread {
                if let SegmentStop::Steps(m) = last.stop {
                    last.stop = SegmentStop::Steps(m + n);
                    return;
                }
            }
        }
        self.segments.push(ScheduleSegment { thread, stop });
    }

    /// Number of context switches the schedule encodes (segment boundaries
    /// between different threads).
    pub fn context_switches(&self) -> usize {
        self.segments.windows(2).filter(|w| w[0].thread != w[1].thread).count()
    }

    /// Total number of instructions accounted for by `Steps` segments.
    pub fn counted_steps(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| match s.stop {
                SegmentStop::Steps(n) => n,
                _ => 0,
            })
            .sum()
    }

    /// The set of threads that appear in the schedule.
    pub fn threads(&self) -> Vec<u32> {
        let mut t: Vec<u32> = self.segments.iter().map(|s| s.thread).collect();
        t.sort_unstable();
        t.dedup();
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_merges_consecutive_step_segments() {
        let mut s = Schedule::new();
        s.push(0, SegmentStop::Steps(3));
        s.push(0, SegmentStop::Steps(2));
        s.push(1, SegmentStop::Steps(4));
        s.push(0, SegmentStop::Blocked);
        assert_eq!(s.segments.len(), 3);
        assert_eq!(s.segments[0].stop, SegmentStop::Steps(5));
        assert_eq!(s.counted_steps(), 9);
    }

    #[test]
    fn context_switches_count_thread_changes() {
        let mut s = Schedule::new();
        s.push(0, SegmentStop::Steps(1));
        s.push(1, SegmentStop::Steps(1));
        s.push(1, SegmentStop::Blocked);
        s.push(2, SegmentStop::Finished);
        assert_eq!(s.context_switches(), 2);
        assert_eq!(s.threads(), vec![0, 1, 2]);
    }

    #[test]
    fn blocked_segments_do_not_merge() {
        let mut s = Schedule::new();
        s.push(0, SegmentStop::Blocked);
        s.push(0, SegmentStop::Blocked);
        assert_eq!(s.segments.len(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let mut s = Schedule::new();
        s.push(0, SegmentStop::Steps(7));
        s.push(1, SegmentStop::Blocked);
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    /// Round trip through pretty JSON covering every `SegmentStop` variant,
    /// preserving segment order and derived statistics.
    #[test]
    fn serde_roundtrip_pretty_all_variants() {
        let mut s = Schedule::new();
        s.push(0, SegmentStop::Steps(1 << 60));
        s.push(1, SegmentStop::Blocked);
        s.push(2, SegmentStop::Finished);
        s.push(0, SegmentStop::Steps(1));
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.counted_steps(), s.counted_steps());
        assert_eq!(back.context_switches(), s.context_switches());
        assert_eq!(back.threads(), s.threads());
    }

    #[test]
    fn serde_roundtrip_empty() {
        let s = Schedule::new();
        let back: Schedule = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(back.segments.len(), 0);
    }
}
