//! Eraser-style lockset data-race detection.
//!
//! Each shared memory word carries a *candidate lockset*: the set of locks
//! that has protected every access to it so far. On each access the candidate
//! set is intersected with the locks held by the accessing thread; when the
//! set becomes empty and the word has been written by more than one thread
//! (or written by one and read by another), the accesses are flagged as a
//! potential data race. ESD inserts schedule preemption points before flagged
//! accesses (§4.2).
//!
//! # Fork semantics
//!
//! The detector's whole state (per-word candidate locksets and the
//! duplicate-report suppression set) lives in persistent [`PMap`]s, so
//! [`Clone`] is **O(1)** and the clone is fully independent: accesses
//! recorded in one copy are never observed by the other. The symbolic
//! execution engine relies on this — every forked execution state carries
//! its own detector, so sibling interleavings each discover (and get
//! preemption points for) the races on *their* path, instead of the first
//! interleaving's report suppressing everyone else's.

use crate::pmap::PMap;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::hash::Hash;
use std::sync::Arc;

/// The classic Eraser state machine for one memory word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum WordState {
    /// Only ever touched by one thread.
    Exclusive,
    /// Read by several threads, never written after becoming shared.
    SharedRead,
    /// Read and written by several threads — lockset violations are races.
    SharedWrite,
}

#[derive(Debug, Clone)]
struct WordInfo<T, L, A> {
    state: WordState,
    first_thread: T,
    lockset: Option<HashSet<L>>,
    last_write: Option<(T, A)>,
    accesses: Vec<(T, A, bool)>,
}

impl<T: PartialEq, L: Eq + Hash, A: PartialEq> PartialEq for WordInfo<T, L, A> {
    fn eq(&self, other: &Self) -> bool {
        self.state == other.state
            && self.first_thread == other.first_thread
            && self.lockset == other.lockset
            && self.last_write == other.last_write
            && self.accesses == other.accesses
    }
}

// Manual serde impls (the derives can't add the `Eq + Hash` bounds the
// `HashSet` lockset needs on `L`). The `HashSet` serializes in the shim's
// canonical sorted order, so output is deterministic.
impl<T: Serialize, L: Serialize, A: Serialize> Serialize for WordInfo<T, L, A> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("state".to_string(), self.state.to_value()),
            ("first_thread".to_string(), self.first_thread.to_value()),
            ("lockset".to_string(), self.lockset.to_value()),
            ("last_write".to_string(), self.last_write.to_value()),
            ("accesses".to_string(), self.accesses.to_value()),
        ])
    }
}

impl<T: Deserialize, L: Deserialize + Eq + Hash, A: Deserialize> Deserialize for WordInfo<T, L, A> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let field = |k: &str| {
            v.get(k).ok_or_else(|| serde::DeError(format!("missing WordInfo field `{k}`")))
        };
        Ok(WordInfo {
            state: Deserialize::from_value(field("state")?)?,
            first_thread: Deserialize::from_value(field("first_thread")?)?,
            lockset: Deserialize::from_value(field("lockset")?)?,
            last_write: Deserialize::from_value(field("last_write")?)?,
            accesses: Deserialize::from_value(field("accesses")?)?,
        })
    }
}

/// A potential (harmful) data race between two accesses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaceReport<T, A> {
    /// The earlier access (thread, location, is_write).
    pub first: (T, A, bool),
    /// The later access that completed the race.
    pub second: (T, A, bool),
}

/// A lockset-based race detector, generic over thread ids `T`, lock ids `L`
/// and access locations `A`.
///
/// Internally all state lives in persistent maps ([`PMap`]), so cloning the
/// detector is O(1) and clones never observe each other's accesses (see the
/// [module docs](self) for why the engine depends on this).
#[derive(Debug)]
pub struct LocksetDetector<V, T, L, A> {
    /// Per-word state, `Arc`-wrapped so the trie's path copies (and clones
    /// shared with forked detectors) duplicate pointers, not word state; the
    /// word being updated is cloned at most once per access via
    /// `Arc::make_mut`.
    words: PMap<V, Arc<WordInfo<T, L, A>>>,
    /// Location pairs already reported, to avoid duplicate reports *within
    /// one interleaving*.
    reported: PMap<(A, A), ()>,
}

impl<V, T, L, A> Clone for LocksetDetector<V, T, L, A> {
    fn clone(&self) -> Self {
        LocksetDetector { words: self.words.clone(), reported: self.reported.clone() }
    }
}

impl<V, T, L, A> Default for LocksetDetector<V, T, L, A> {
    fn default() -> Self {
        LocksetDetector { words: PMap::new(), reported: PMap::new() }
    }
}

impl<V, T, L, A> LocksetDetector<V, T, L, A>
where
    V: Eq + Hash + Copy,
    T: Eq + Copy,
    L: Eq + Hash + Copy,
    A: Eq + Hash + Copy,
{
    /// Creates an empty detector.
    pub fn new() -> Self {
        LocksetDetector::default()
    }

    /// Records an access and returns a race report if this access races with
    /// a previous one.
    pub fn access(
        &mut self,
        word: V,
        thread: T,
        at: A,
        is_write: bool,
        held: &[L],
    ) -> Option<RaceReport<T, A>> {
        let held_set: HashSet<L> = held.iter().copied().collect();
        if !self.words.contains_key(&word) {
            self.words.insert(
                word,
                Arc::new(WordInfo {
                    state: WordState::Exclusive,
                    first_thread: thread,
                    lockset: None,
                    last_write: None,
                    accesses: Vec::new(),
                }),
            );
        }
        // In-place when this detector uniquely owns the word's state; a copy
        // is made only if a forked sibling still shares it (`Arc::make_mut`).
        let slot = self.words.get_mut(&word).expect("just inserted");
        let info = Arc::make_mut(slot);

        // State transitions.
        if thread != info.first_thread {
            info.state = match (info.state, is_write) {
                (WordState::Exclusive, false) => WordState::SharedRead,
                (WordState::Exclusive, true) => WordState::SharedWrite,
                (WordState::SharedRead, true) => WordState::SharedWrite,
                (s, _) => s,
            };
        }

        // Lockset refinement starts once the word is shared.
        let mut race = None;
        if info.state != WordState::Exclusive {
            let lockset = match &mut info.lockset {
                Some(ls) => {
                    ls.retain(|l| held_set.contains(l));
                    ls.clone()
                }
                None => {
                    info.lockset = Some(held_set.clone());
                    held_set
                }
            };
            if lockset.is_empty() && info.state == WordState::SharedWrite {
                // Find a conflicting prior access from a different thread,
                // at least one of the pair being a write.
                if let Some(prev) =
                    info.accesses.iter().rev().find(|(t, _, w)| *t != thread && (*w || is_write))
                {
                    let key = (prev.1, at);
                    if !self.reported.contains_key(&key) {
                        self.reported.insert(key, ());
                        race = Some(RaceReport { first: *prev, second: (thread, at, is_write) });
                    }
                }
            }
        }

        if is_write {
            info.last_write = Some((thread, at));
        }
        info.accesses.push((thread, at, is_write));
        if info.accesses.len() > 64 {
            info.accesses.remove(0);
        }
        race
    }

    /// Number of distinct words the detector has seen.
    pub fn tracked_words(&self) -> usize {
        self.words.len()
    }

    /// Number of distinct racing location pairs reported so far.
    pub fn reported_pairs(&self) -> usize {
        self.reported.len()
    }
}

impl<V, T, L, A> PartialEq for LocksetDetector<V, T, L, A>
where
    V: Eq + Hash,
    T: Eq + Copy,
    L: Eq + Hash,
    A: Eq + Hash + Copy,
{
    fn eq(&self, other: &Self) -> bool {
        self.words == other.words && self.reported == other.reported
    }
}

/// Snapshot support: the detector serializes its two persistent maps in
/// canonical order, so content-equal detectors render byte-identically no
/// matter what fork history produced them.
impl<V: Serialize, T: Serialize, L: Serialize, A: Serialize> Serialize
    for LocksetDetector<V, T, L, A>
{
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("words".to_string(), self.words.to_value()),
            ("reported".to_string(), self.reported.to_value()),
        ])
    }
}

impl<V, T, L, A> Deserialize for LocksetDetector<V, T, L, A>
where
    V: Deserialize + Eq + Hash + Clone,
    T: Deserialize + Clone,
    L: Deserialize + Eq + Hash + Clone,
    A: Deserialize + Eq + Hash + Clone,
{
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let field = |k: &str| {
            v.get(k).ok_or_else(|| serde::DeError(format!("missing LocksetDetector field `{k}`")))
        };
        Ok(LocksetDetector {
            words: Deserialize::from_value(field("words")?)?,
            reported: Deserialize::from_value(field("reported")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Det = LocksetDetector<u64, u32, u64, u32>;

    #[test]
    fn properly_locked_accesses_do_not_race() {
        let mut d = Det::new();
        assert!(d.access(100, 1, 10, true, &[7]).is_none());
        assert!(d.access(100, 2, 20, true, &[7]).is_none());
        assert!(d.access(100, 1, 30, false, &[7]).is_none());
        assert_eq!(d.tracked_words(), 1);
    }

    #[test]
    fn unlocked_concurrent_writes_race() {
        let mut d = Det::new();
        assert!(d.access(100, 1, 10, true, &[]).is_none());
        let race = d.access(100, 2, 20, true, &[]).expect("race");
        assert_eq!(race.first.0, 1);
        assert_eq!(race.second.0, 2);
        assert!(race.first.2 || race.second.2);
    }

    #[test]
    fn read_only_sharing_is_not_a_race() {
        let mut d = Det::new();
        assert!(d.access(100, 1, 10, false, &[]).is_none());
        assert!(d.access(100, 2, 20, false, &[]).is_none());
        assert!(d.access(100, 3, 30, false, &[]).is_none());
    }

    #[test]
    fn disjoint_locksets_eventually_race() {
        let mut d = Det::new();
        assert!(d.access(100, 1, 10, true, &[7]).is_none());
        // Second thread holds a different lock: the candidate set becomes
        // {8} when the word turns shared-written (no report yet, exactly as
        // in Eraser)…
        assert!(d.access(100, 2, 20, true, &[8]).is_none());
        // …and the next access under the original lock empties it: race.
        let race = d.access(100, 1, 30, true, &[7]);
        assert!(race.is_some());
    }

    #[test]
    fn exclusive_phase_does_not_refine_lockset() {
        let mut d = Det::new();
        // Initialization by one thread without locks is fine (Eraser's
        // exclusive state), and the race only appears once another thread
        // writes.
        assert!(d.access(100, 1, 1, true, &[]).is_none());
        assert!(d.access(100, 1, 2, true, &[]).is_none());
        assert!(d.access(100, 1, 3, false, &[]).is_none());
        assert!(d.access(100, 2, 4, true, &[]).is_some());
    }

    #[test]
    fn duplicate_races_are_reported_once() {
        let mut d = Det::new();
        d.access(100, 1, 10, true, &[]);
        assert!(d.access(100, 2, 20, true, &[]).is_some());
        assert!(d.access(100, 2, 20, true, &[]).is_none(), "same pair not re-reported");
    }

    /// Replays a hand-built interleaving of the classic "lock dropped for
    /// the slow path" bug: both threads usually update the shared counter
    /// under lock `L`, but thread 2's second write happens after it released
    /// the lock. The detector must flag exactly that write, against thread
    /// 1's latest conflicting access, and stay quiet about the properly
    /// locked prefix.
    #[test]
    fn hand_built_interleaving_pinpoints_the_unlocked_write() {
        const COUNTER: u64 = 0xC0;
        const LOCK: u64 = 7;
        let mut d = Det::new();
        // t1: lock; read+write counter; unlock.
        assert!(d.access(COUNTER, 1, 100, false, &[LOCK]).is_none());
        assert!(d.access(COUNTER, 1, 101, true, &[LOCK]).is_none());
        // t2: lock; read+write counter; unlock.
        assert!(d.access(COUNTER, 2, 200, false, &[LOCK]).is_none());
        assert!(d.access(COUNTER, 2, 201, true, &[LOCK]).is_none());
        // t1: one more locked update.
        assert!(d.access(COUNTER, 1, 102, true, &[LOCK]).is_none());
        // t2: buggy slow path — updates the counter after unlock.
        let race = d.access(COUNTER, 2, 202, true, &[]).expect("unlocked write races");
        assert_eq!(race.second, (2, 202, true), "the unlocked write is the racing access");
        assert_eq!(race.first, (1, 102, true), "paired with t1's latest conflicting write");
        // The same pair is not reported twice on replay of the tail.
        assert!(d.access(COUNTER, 2, 202, true, &[]).is_none());
    }

    /// Snapshot support: a detector serializes canonically and the restored
    /// copy behaves identically (same dedup suppression, same pending state)
    /// and re-serializes to the same bytes.
    #[test]
    fn detector_roundtrips_through_json_preserving_behavior() {
        let mut d = Det::new();
        d.access(100, 1, 10, true, &[7]);
        d.access(100, 2, 20, true, &[8]);
        d.access(200, 1, 30, true, &[]);
        d.access(200, 2, 40, true, &[]).expect("race on word 200");
        let json = serde_json::to_string(&d).unwrap();
        let mut back: Det = serde_json::from_str(&json).unwrap();
        assert!(back == d, "restored detector is content-equal");
        assert_eq!(serde_json::to_string(&back).unwrap(), json, "round trip is byte-identical");
        // Already-reported pair stays suppressed; the pending lockset
        // refinement on word 100 still fires exactly as it would have.
        assert!(back.access(200, 2, 40, true, &[]).is_none());
        let mut live = d.clone();
        assert_eq!(back.access(100, 1, 50, true, &[7]), live.access(100, 1, 50, true, &[7]));
    }

    #[test]
    fn race_reports_roundtrip_through_json() {
        let mut d = Det::new();
        d.access(100, 1, 10, true, &[]);
        let race = d.access(100, 2, 20, true, &[]).expect("race");
        let json = serde_json::to_string(&race).unwrap();
        let back: RaceReport<u32, u32> = serde_json::from_str(&json).unwrap();
        assert_eq!(race, back);
    }

    /// The fork semantics the symbolic-execution engine depends on: a cloned
    /// detector is an independent snapshot, so a race already reported in one
    /// sibling interleaving is still reported in the other.
    #[test]
    fn forked_detectors_report_the_same_race_independently() {
        let mut parent = Det::new();
        parent.access(100, 1, 10, true, &[]);
        // Fork before anything is reported: both siblings must flag the race.
        let mut sibling_a = parent.clone();
        let mut sibling_b = parent.clone();
        assert!(sibling_a.access(100, 2, 20, true, &[]).is_some());
        assert!(
            sibling_b.access(100, 2, 20, true, &[]).is_some(),
            "a sibling's report must not suppress this interleaving's race"
        );
        // The parent saw neither access nor report.
        assert_eq!(parent.reported_pairs(), 0);
        assert_eq!(parent.tracked_words(), 1);
        assert_eq!(sibling_a.reported_pairs(), 1);
        // Within one interleaving the dedup still applies.
        assert!(sibling_a.access(100, 2, 20, true, &[]).is_none());
    }

    #[test]
    fn clone_is_a_snapshot_in_both_directions() {
        let mut parent = Det::new();
        parent.access(1, 1, 10, true, &[7]);
        let snapshot = parent.clone();
        let frozen = parent.clone();
        // Advancing the parent does not change the snapshot…
        parent.access(1, 2, 20, true, &[]);
        parent.access(2, 1, 30, false, &[]);
        assert_eq!(snapshot, frozen);
        assert_eq!(snapshot.tracked_words(), 1);
        // …and the parent diverged as expected.
        assert_eq!(parent.tracked_words(), 2);
    }

    #[test]
    fn races_on_different_words_are_independent() {
        let mut d = Det::new();
        d.access(1, 1, 10, true, &[]);
        d.access(2, 1, 11, true, &[]);
        assert!(d.access(1, 2, 20, true, &[]).is_some());
        assert!(d.access(2, 2, 21, true, &[]).is_some());
        assert_eq!(d.tracked_words(), 2);
    }
}
