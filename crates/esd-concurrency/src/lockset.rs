//! Eraser-style lockset data-race detection.
//!
//! Each shared memory word carries a *candidate lockset*: the set of locks
//! that has protected every access to it so far. On each access the candidate
//! set is intersected with the locks held by the accessing thread; when the
//! set becomes empty and the word has been written by more than one thread
//! (or written by one and read by another), the accesses are flagged as a
//! potential data race. ESD inserts schedule preemption points before flagged
//! accesses (§4.2).

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// The classic Eraser state machine for one memory word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum WordState {
    /// Only ever touched by one thread.
    Exclusive,
    /// Read by several threads, never written after becoming shared.
    SharedRead,
    /// Read and written by several threads — lockset violations are races.
    SharedWrite,
}

#[derive(Debug, Clone)]
struct WordInfo<T, L, A> {
    state: WordState,
    first_thread: T,
    lockset: Option<HashSet<L>>,
    last_write: Option<(T, A)>,
    accesses: Vec<(T, A, bool)>,
}

/// A potential (harmful) data race between two accesses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaceReport<T, A> {
    /// The earlier access (thread, location, is_write).
    pub first: (T, A, bool),
    /// The later access that completed the race.
    pub second: (T, A, bool),
}

/// A lockset-based race detector, generic over thread ids `T`, lock ids `L`
/// and access locations `A`.
#[derive(Debug, Clone, Default)]
pub struct LocksetDetector<V, T, L, A> {
    words: HashMap<V, WordInfo<T, L, A>>,
    /// Locations already reported, to avoid duplicate reports.
    reported: HashSet<(A, A)>,
}

impl<V, T, L, A> LocksetDetector<V, T, L, A>
where
    V: Eq + Hash + Copy,
    T: Eq + Copy,
    L: Eq + Hash + Copy,
    A: Eq + Hash + Copy,
{
    /// Creates an empty detector.
    pub fn new() -> Self {
        LocksetDetector { words: HashMap::new(), reported: HashSet::new() }
    }

    /// Records an access and returns a race report if this access races with
    /// a previous one.
    pub fn access(
        &mut self,
        word: V,
        thread: T,
        at: A,
        is_write: bool,
        held: &[L],
    ) -> Option<RaceReport<T, A>> {
        let held_set: HashSet<L> = held.iter().copied().collect();
        let info = self.words.entry(word).or_insert_with(|| WordInfo {
            state: WordState::Exclusive,
            first_thread: thread,
            lockset: None,
            last_write: None,
            accesses: Vec::new(),
        });

        // State transitions.
        if thread != info.first_thread {
            info.state = match (info.state, is_write) {
                (WordState::Exclusive, false) => WordState::SharedRead,
                (WordState::Exclusive, true) => WordState::SharedWrite,
                (WordState::SharedRead, true) => WordState::SharedWrite,
                (s, _) => s,
            };
        }

        // Lockset refinement starts once the word is shared.
        let mut race = None;
        if info.state != WordState::Exclusive {
            let lockset = match &mut info.lockset {
                Some(ls) => {
                    ls.retain(|l| held_set.contains(l));
                    ls.clone()
                }
                None => {
                    info.lockset = Some(held_set.clone());
                    held_set.clone()
                }
            };
            if lockset.is_empty() && info.state == WordState::SharedWrite {
                // Find a conflicting prior access from a different thread,
                // at least one of the pair being a write.
                if let Some(prev) =
                    info.accesses.iter().rev().find(|(t, _, w)| *t != thread && (*w || is_write))
                {
                    let key = (prev.1, at);
                    if !self.reported.contains(&key) {
                        self.reported.insert(key);
                        race = Some(RaceReport { first: *prev, second: (thread, at, is_write) });
                    }
                }
            }
        }

        if is_write {
            info.last_write = Some((thread, at));
        }
        info.accesses.push((thread, at, is_write));
        if info.accesses.len() > 64 {
            info.accesses.remove(0);
        }
        race
    }

    /// Number of distinct words the detector has seen.
    pub fn tracked_words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Det = LocksetDetector<u64, u32, u64, u32>;

    #[test]
    fn properly_locked_accesses_do_not_race() {
        let mut d = Det::new();
        assert!(d.access(100, 1, 10, true, &[7]).is_none());
        assert!(d.access(100, 2, 20, true, &[7]).is_none());
        assert!(d.access(100, 1, 30, false, &[7]).is_none());
        assert_eq!(d.tracked_words(), 1);
    }

    #[test]
    fn unlocked_concurrent_writes_race() {
        let mut d = Det::new();
        assert!(d.access(100, 1, 10, true, &[]).is_none());
        let race = d.access(100, 2, 20, true, &[]).expect("race");
        assert_eq!(race.first.0, 1);
        assert_eq!(race.second.0, 2);
        assert!(race.first.2 || race.second.2);
    }

    #[test]
    fn read_only_sharing_is_not_a_race() {
        let mut d = Det::new();
        assert!(d.access(100, 1, 10, false, &[]).is_none());
        assert!(d.access(100, 2, 20, false, &[]).is_none());
        assert!(d.access(100, 3, 30, false, &[]).is_none());
    }

    #[test]
    fn disjoint_locksets_eventually_race() {
        let mut d = Det::new();
        assert!(d.access(100, 1, 10, true, &[7]).is_none());
        // Second thread holds a different lock: the candidate set becomes
        // {8} when the word turns shared-written (no report yet, exactly as
        // in Eraser)…
        assert!(d.access(100, 2, 20, true, &[8]).is_none());
        // …and the next access under the original lock empties it: race.
        let race = d.access(100, 1, 30, true, &[7]);
        assert!(race.is_some());
    }

    #[test]
    fn exclusive_phase_does_not_refine_lockset() {
        let mut d = Det::new();
        // Initialization by one thread without locks is fine (Eraser's
        // exclusive state), and the race only appears once another thread
        // writes.
        assert!(d.access(100, 1, 1, true, &[]).is_none());
        assert!(d.access(100, 1, 2, true, &[]).is_none());
        assert!(d.access(100, 1, 3, false, &[]).is_none());
        assert!(d.access(100, 2, 4, true, &[]).is_some());
    }

    #[test]
    fn duplicate_races_are_reported_once() {
        let mut d = Det::new();
        d.access(100, 1, 10, true, &[]);
        assert!(d.access(100, 2, 20, true, &[]).is_some());
        assert!(d.access(100, 2, 20, true, &[]).is_none(), "same pair not re-reported");
    }

    /// Replays a hand-built interleaving of the classic "lock dropped for
    /// the slow path" bug: both threads usually update the shared counter
    /// under lock `L`, but thread 2's second write happens after it released
    /// the lock. The detector must flag exactly that write, against thread
    /// 1's latest conflicting access, and stay quiet about the properly
    /// locked prefix.
    #[test]
    fn hand_built_interleaving_pinpoints_the_unlocked_write() {
        const COUNTER: u64 = 0xC0;
        const LOCK: u64 = 7;
        let mut d = Det::new();
        // t1: lock; read+write counter; unlock.
        assert!(d.access(COUNTER, 1, 100, false, &[LOCK]).is_none());
        assert!(d.access(COUNTER, 1, 101, true, &[LOCK]).is_none());
        // t2: lock; read+write counter; unlock.
        assert!(d.access(COUNTER, 2, 200, false, &[LOCK]).is_none());
        assert!(d.access(COUNTER, 2, 201, true, &[LOCK]).is_none());
        // t1: one more locked update.
        assert!(d.access(COUNTER, 1, 102, true, &[LOCK]).is_none());
        // t2: buggy slow path — updates the counter after unlock.
        let race = d.access(COUNTER, 2, 202, true, &[]).expect("unlocked write races");
        assert_eq!(race.second, (2, 202, true), "the unlocked write is the racing access");
        assert_eq!(race.first, (1, 102, true), "paired with t1's latest conflicting write");
        // The same pair is not reported twice on replay of the tail.
        assert!(d.access(COUNTER, 2, 202, true, &[]).is_none());
    }

    #[test]
    fn race_reports_roundtrip_through_json() {
        let mut d = Det::new();
        d.access(100, 1, 10, true, &[]);
        let race = d.access(100, 2, 20, true, &[]).expect("race");
        let json = serde_json::to_string(&race).unwrap();
        let back: RaceReport<u32, u32> = serde_json::from_str(&json).unwrap();
        assert_eq!(race, back);
    }

    #[test]
    fn races_on_different_words_are_independent() {
        let mut d = Det::new();
        d.access(1, 1, 10, true, &[]);
        d.access(2, 1, 11, true, &[]);
        assert!(d.access(1, 2, 20, true, &[]).is_some());
        assert!(d.access(2, 2, 21, true, &[]).is_some());
        assert_eq!(d.tracked_words(), 2);
    }
}
