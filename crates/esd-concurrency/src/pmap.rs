//! A persistent (copy-on-write) hash map with O(1) clone.
//!
//! Execution synthesis forks execution states at every symbolic branch and
//! every interesting scheduling decision, and each forked interleaving must
//! carry its *own* concurrency-analysis state (candidate locksets, reported
//! race pairs, …). Cloning a `std::collections::HashMap` on every fork would
//! turn the engine's O(1) fork into an O(analysis-size) one, so the analyses
//! store their per-word state in this hash-array-mapped trie instead: nodes
//! are shared between clones through [`Arc`], and cloning copies one pointer.
//! Writes go through [`Arc::make_mut`], so a node is mutated **in place**
//! while it is uniquely owned and copied only when a clone actually shares it
//! — an un-forked map updates as cheaply as a plain hash map (no
//! allocations), and after a fork the first write to a shared path copies
//! just the O(log n) nodes on the route from the root to the touched leaf.
//! Siblings therefore share everything they have not diverged on, mirroring
//! what the engine's copy-on-write symbolic memory does for heap objects.
//!
//! The map deliberately supports only the operations the analyses need:
//! insert, lookup (shared and mutable), length and iteration. Removal is not
//! needed (analysis state only grows along a path) and is omitted to keep
//! the structure small.

use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Bits of the key hash consumed per trie level.
const BITS: u32 = 4;
/// Fan-out of a branch node (`2^BITS`).
const WIDTH: usize = 1 << BITS;
/// Mask extracting one chunk of the hash.
const MASK: u64 = (WIDTH as u64) - 1;

/// One trie node: either a bucket of entries whose keys share a full 64-bit
/// hash, or a 16-way branch on the next hash chunk.
#[derive(Debug, Clone)]
enum Node<K, V> {
    /// Entries whose keys all hash to `hash` (almost always exactly one).
    Leaf { hash: u64, entries: Vec<(K, V)> },
    /// Children indexed by the hash chunk at this node's depth.
    Branch { children: [Option<Arc<Node<K, V>>>; WIDTH] },
}

/// A persistent hash map: `clone` is O(1) and never observes later writes to
/// the original (nor vice versa).
#[derive(Debug)]
pub struct PMap<K, V> {
    root: Option<Arc<Node<K, V>>>,
    len: usize,
}

impl<K, V> Clone for PMap<K, V> {
    fn clone(&self) -> Self {
        PMap { root: self.root.clone(), len: self.len }
    }
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        PMap::new()
    }
}

fn hash_of<K: Hash>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

fn chunk(hash: u64, depth: u32) -> usize {
    ((hash >> (depth * BITS)) & MASK) as usize
}

impl<K, V> PMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        PMap { root: None, len: 0 }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over all entries in unspecified order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter { stack: self.root.iter().map(|n| &**n).collect(), leaf: [].iter() }
    }
}

impl<K: Eq + Hash, V> PMap<K, V> {
    /// Returns the value stored under `key`, if any.
    pub fn get(&self, key: &K) -> Option<&V> {
        let hash = hash_of(key);
        let mut node = self.root.as_deref()?;
        let mut depth = 0;
        loop {
            match node {
                Node::Leaf { hash: lh, entries } => {
                    return if *lh == hash {
                        entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
                    } else {
                        None
                    };
                }
                Node::Branch { children } => {
                    node = children[chunk(hash, depth)].as_deref()?;
                    depth += 1;
                }
            }
        }
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> PMap<K, V> {
    /// Inserts `key → value`, returning the previous value if the key was
    /// already present. Nodes uniquely owned by this map are mutated in
    /// place; nodes shared with clones are copied first ([`Arc::make_mut`]),
    /// so at most the O(log n) shared nodes on the path to the affected leaf
    /// are duplicated and everything else stays shared.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let hash = hash_of(&key);
        let old = match &mut self.root {
            Some(node) => Self::insert_mut(node, 0, hash, key, value),
            None => {
                self.root = Some(Arc::new(Node::Leaf { hash, entries: vec![(key, value)] }));
                None
            }
        };
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_mut(
        node: &mut Arc<Node<K, V>>,
        depth: u32,
        hash: u64,
        key: K,
        value: V,
    ) -> Option<V> {
        // A leaf whose hash diverges splits first: it moves down one level
        // under a fresh branch (an Arc move, not a data copy), and insertion
        // continues into that branch — recursing until the hash chunks
        // differ, which they must at some level because the full hashes do.
        if let Node::Leaf { hash: lh, .. } = &**node {
            if *lh != hash {
                let mut children: [Option<Arc<Node<K, V>>>; WIDTH] = Default::default();
                children[chunk(*lh, depth)] = Some(node.clone());
                *node = Arc::new(Node::Branch { children });
            }
        }
        match Arc::make_mut(node) {
            Node::Leaf { entries, .. } => {
                if let Some(entry) = entries.iter_mut().find(|(k, _)| *k == key) {
                    return Some(std::mem::replace(&mut entry.1, value));
                }
                entries.push((key, value));
                None
            }
            Node::Branch { children } => {
                let idx = chunk(hash, depth);
                match &mut children[idx] {
                    Some(child) => Self::insert_mut(child, depth + 1, hash, key, value),
                    empty => {
                        *empty = Some(Arc::new(Node::Leaf { hash, entries: vec![(key, value)] }));
                        None
                    }
                }
            }
        }
    }

    /// Returns a mutable reference to the value under `key`, copying any
    /// nodes on its path that are shared with clones (and, like
    /// [`PMap::insert`], mutating in place the ones that are not). Returns
    /// `None` — without restructuring anything — if the key is absent.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        if !self.contains_key(key) {
            return None;
        }
        let hash = hash_of(key);
        Self::get_mut_rec(self.root.as_mut()?, 0, hash, key)
    }

    fn get_mut_rec<'a>(
        node: &'a mut Arc<Node<K, V>>,
        depth: u32,
        hash: u64,
        key: &K,
    ) -> Option<&'a mut V> {
        match Arc::make_mut(node) {
            Node::Leaf { hash: lh, entries } => {
                if *lh != hash {
                    return None;
                }
                entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            Node::Branch { children } => {
                let idx = chunk(hash, depth);
                Self::get_mut_rec(children[idx].as_mut()?, depth + 1, hash, key)
            }
        }
    }
}

/// Serializes like the shim's `HashMap`: an array of `[key, value]` pairs in
/// canonical (compact-rendered) order, so the output is deterministic no
/// matter what trie shape or iteration order produced it.
impl<K: Serialize, V: Serialize> Serialize for PMap<K, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<Value> =
            self.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect();
        serde::sort_values(&mut pairs);
        Value::Array(pairs)
    }
}

/// Rebuilds by insertion; the result is content-equal to the serialized map
/// (trie shape may differ, which no operation observes).
impl<K: Deserialize + Eq + Hash + Clone, V: Deserialize + Clone> Deserialize for PMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items =
            v.as_array().ok_or_else(|| DeError::expected("array of [key, value] pairs", v))?;
        let mut map = PMap::new();
        for pair in items {
            match pair.as_array() {
                Some([k, val]) => {
                    map.insert(K::from_value(k)?, V::from_value(val)?);
                }
                _ => return Err(DeError::expected("[key, value] pair", pair)),
            }
        }
        Ok(map)
    }
}

impl<K: Eq + Hash, V: PartialEq> PartialEq for PMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().all(|(k, v)| other.get(k) == Some(v))
    }
}

impl<K: Eq + Hash, V: Eq> Eq for PMap<K, V> {}

/// Iterator over a [`PMap`]'s entries, in unspecified order.
#[derive(Debug)]
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
    leaf: std::slice::Iter<'a, (K, V)>,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((k, v)) = self.leaf.next() {
                return Some((k, v));
            }
            match self.stack.pop()? {
                Node::Leaf { entries, .. } => self.leaf = entries.iter(),
                Node::Branch { children } => {
                    self.stack.extend(children.iter().flatten().map(|n| &**n));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_len() {
        let mut m: PMap<u64, String> = PMap::new();
        assert!(m.is_empty());
        for i in 0..500u64 {
            assert_eq!(m.insert(i, format!("v{i}")), None);
        }
        assert_eq!(m.len(), 500);
        for i in 0..500u64 {
            assert_eq!(m.get(&i).map(String::as_str), Some(format!("v{i}").as_str()));
        }
        assert_eq!(m.get(&9999), None);
        assert!(!m.contains_key(&9999));
    }

    #[test]
    fn insert_replaces_and_returns_the_old_value() {
        let mut m: PMap<&str, i64> = PMap::new();
        assert_eq!(m.insert("k", 1), None);
        assert_eq!(m.insert("k", 2), Some(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&"k"), Some(&2));
    }

    #[test]
    fn clones_are_fully_independent() {
        let mut parent: PMap<u64, u64> = PMap::new();
        for i in 0..100 {
            parent.insert(i, i * 10);
        }
        let snapshot = parent.clone();
        let mut child = parent.clone();
        for i in 50..150 {
            child.insert(i, i * 1000);
        }
        // The parent (and the earlier snapshot) never observe the child's
        // writes…
        assert_eq!(parent, snapshot);
        assert_eq!(parent.len(), 100);
        assert_eq!(parent.get(&75), Some(&750));
        // …and the child sees its own.
        assert_eq!(child.len(), 150);
        assert_eq!(child.get(&75), Some(&75_000));
        // Writes to the parent after the fork are equally invisible.
        parent.insert(2, 42);
        assert_eq!(child.get(&2), Some(&20));
    }

    #[test]
    fn get_mut_updates_in_place_and_respects_clones() {
        let mut m: PMap<u64, u64> = PMap::new();
        for i in 0..50 {
            m.insert(i, i);
        }
        let snapshot = m.clone();
        *m.get_mut(&7).unwrap() = 700;
        assert_eq!(m.get(&7), Some(&700));
        assert_eq!(snapshot.get(&7), Some(&7), "clones never see get_mut writes");
        assert!(m.get_mut(&999).is_none());
        assert_eq!(m.len(), 50);
    }

    #[test]
    fn iteration_visits_every_entry_once() {
        let mut m: PMap<u64, u64> = PMap::new();
        for i in 0..321 {
            m.insert(i, i);
        }
        let mut seen: Vec<u64> = m.iter().map(|(k, _)| *k).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..321).collect::<Vec<_>>());
    }

    /// A key whose hash is constant: every entry lands in one leaf bucket,
    /// exercising the equal-full-hash collision path.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Colliding(u32);

    impl Hash for Colliding {
        fn hash<H: Hasher>(&self, state: &mut H) {
            0u64.hash(state);
        }
    }

    #[test]
    fn full_hash_collisions_share_a_bucket_correctly() {
        let mut m: PMap<Colliding, u32> = PMap::new();
        for i in 0..20 {
            m.insert(Colliding(i), i);
        }
        assert_eq!(m.len(), 20);
        for i in 0..20 {
            assert_eq!(m.get(&Colliding(i)), Some(&i));
        }
        assert_eq!(m.insert(Colliding(7), 700), Some(7));
        assert_eq!(m.len(), 20);
    }

    #[test]
    fn serialization_is_canonical_and_roundtrips() {
        let mut a: PMap<u64, u64> = PMap::new();
        let mut b: PMap<u64, u64> = PMap::new();
        for i in 0..64 {
            a.insert(i, i * 3);
        }
        for i in (0..64).rev() {
            b.insert(i, i * 3);
        }
        // Same content, different insertion order ⇒ byte-identical output.
        let ja = serde_json::to_string(&a).unwrap();
        assert_eq!(ja, serde_json::to_string(&b).unwrap());
        let back: PMap<u64, u64> = serde_json::from_str(&ja).unwrap();
        assert_eq!(back, a);
        assert_eq!(serde_json::to_string(&back).unwrap(), ja);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut a: PMap<u64, u64> = PMap::new();
        let mut b: PMap<u64, u64> = PMap::new();
        for i in 0..64 {
            a.insert(i, i);
        }
        for i in (0..64).rev() {
            b.insert(i, i);
        }
        assert_eq!(a, b);
        b.insert(63, 0);
        assert_ne!(a, b);
    }
}
