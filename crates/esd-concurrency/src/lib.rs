//! Concurrency analyses and schedule representations for execution synthesis.
//!
//! * [`rag`] — mutex deadlock detection over a resource-allocation graph
//!   (§4.1: "ESD automatically detects mutex deadlocks by using a deadlock
//!   detector based on a resource allocation graph").
//! * [`lockset`] — an Eraser-style lockset data-race detector (§4.2: "ESD
//!   uses a dynamic data race detection algorithm similar to Eraser"). The
//!   detector is O(1) to clone so every forked execution state can carry its
//!   own copy.
//! * [`pmap`] — the persistent (copy-on-write) hash map underlying the
//!   per-state analyses: cloning shares structure via `Arc`, writes
//!   path-copy.
//! * [`vclock`] — vector clocks / happens-before ordering, used for the
//!   happens-before form of the synthesized schedule (§5.1).
//! * [`schedule`] — the serialized thread schedule stored in the synthesized
//!   execution file and enforced during playback.

// Pilot crate for documentation enforcement (see ARCHITECTURE.md): every
// public item must carry rustdoc.
#![deny(missing_docs)]

pub mod lockset;
pub mod pmap;
pub mod rag;
pub mod schedule;
pub mod vclock;

pub use lockset::{LocksetDetector, RaceReport};
pub use pmap::PMap;
pub use rag::{find_mutex_deadlock, WaitGraph};
pub use schedule::{Schedule, ScheduleSegment, SegmentStop};
pub use vclock::VectorClock;
