//! Concurrency analyses and schedule representations for execution synthesis.
//!
//! * [`rag`] — mutex deadlock detection over a resource-allocation graph
//!   (§4.1: "ESD automatically detects mutex deadlocks by using a deadlock
//!   detector based on a resource allocation graph").
//! * [`lockset`] — an Eraser-style lockset data-race detector (§4.2: "ESD
//!   uses a dynamic data race detection algorithm similar to Eraser").
//! * [`vclock`] — vector clocks / happens-before ordering, used for the
//!   happens-before form of the synthesized schedule (§5.1).
//! * [`schedule`] — the serialized thread schedule stored in the synthesized
//!   execution file and enforced during playback.

pub mod lockset;
pub mod rag;
pub mod schedule;
pub mod vclock;

pub use lockset::{LocksetDetector, RaceReport};
pub use rag::{find_mutex_deadlock, WaitGraph};
pub use schedule::{Schedule, ScheduleSegment, SegmentStop};
pub use vclock::VectorClock;
