//! Seeded random workload generation with injected bugs of known kind.
//!
//! [`generate`] synthesizes a well-formed IR program — an input-dependent
//! branching skeleton, a bounded loop, worker threads, shared locks,
//! symbolic inputs — and injects exactly one bug of the requested
//! [`InjectedBugKind`]. The result carries the program *plus* a
//! [`GroundTruth`] record: the synthesis goal, the fault tags a correct
//! report may carry, the concrete inputs that arm the bug, and a
//! [`ScheduleHint`] naming the minimal adverse interleaving. Ground truth is
//! what turns the executor into a stress rig with an oracle: a search
//! configuration either finds *the injected bug* (checked by
//! [`GroundTruth::matches`]) or it found nothing — there is no "maybe it
//! found a different bug" ambiguity.
//!
//! The generator is deterministic: the same `(seed, kind, size)` produces a
//! byte-identical program (pinned by a property test in `tests/properties.rs`
//! and a golden fixture in `tests/fixtures/`), so an entire corpus is fully
//! described by its seed set. The differential coverage harness in
//! `esd-bench` (`coverage_matrix`, `tests/differential.rs`) is built on
//! exactly that: N seeds × 4 bug kinds, every `FrontierKind` and executor
//! fairness policy, asserting full coverage and zero false positives.

use crate::real_bugs::{Workload, WorkloadKind};
use esd_core::SynthesizedExecution;
use esd_ir::{BinOp, CmpOp, Loc, Program, ProgramBuilder};
use esd_symex::GoalSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The bug classes the generator can inject (exactly one per program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectedBugKind {
    /// A null-pointer dereference guarded by a two-input magic comparison:
    /// the crash manifests on any schedule once the inputs are right.
    CrashOnPath,
    /// An AB/BA deadlock between two workers: one worker takes the locks in
    /// reverse order, but only under the arming inputs *and* an adverse
    /// interleaving (each thread preempted while holding its outer lock).
    AbbaDeadlock,
    /// A data race: under the arming inputs the workers update a shared
    /// counter without the lock, and a final assertion in `main` fails when
    /// an increment is lost — reaching it needs race-directed preemptions
    /// (see [`GroundTruth::needs_race_preemptions`]).
    DataRace,
    /// An out-of-bounds store into a fixed-size buffer, reached only under
    /// the arming inputs (the in-bounds path masks the index).
    OutOfBounds,
}

impl InjectedBugKind {
    /// Every kind, in a stable order (corpus enumeration order).
    pub const ALL: [InjectedBugKind; 4] = [
        InjectedBugKind::CrashOnPath,
        InjectedBugKind::AbbaDeadlock,
        InjectedBugKind::DataRace,
        InjectedBugKind::OutOfBounds,
    ];

    /// A short stable slug used in program names and reports.
    pub fn slug(&self) -> &'static str {
        match self {
            InjectedBugKind::CrashOnPath => "crash",
            InjectedBugKind::AbbaDeadlock => "deadlock",
            InjectedBugKind::DataRace => "race",
            InjectedBugKind::OutOfBounds => "oob",
        }
    }

    /// The `fault_tag` values a correct synthesis for this kind may report
    /// (see `esd_ir::FaultKind::tag`).
    pub fn expected_fault_tags(&self) -> &'static [&'static str] {
        match self {
            InjectedBugKind::CrashOnPath => &["segfault"],
            InjectedBugKind::AbbaDeadlock => &["deadlock"],
            InjectedBugKind::DataRace => &["assert-failure"],
            InjectedBugKind::OutOfBounds => &["out-of-bounds"],
        }
    }
}

impl std::fmt::Display for InjectedBugKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug())
    }
}

impl std::str::FromStr for InjectedBugKind {
    type Err = String;

    /// Parses the [`InjectedBugKind::slug`] spellings (case-insensitive).
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "crash" | "crash-on-path" => Ok(InjectedBugKind::CrashOnPath),
            "deadlock" | "abba" => Ok(InjectedBugKind::AbbaDeadlock),
            "race" | "data-race" => Ok(InjectedBugKind::DataRace),
            "oob" | "out-of-bounds" => Ok(InjectedBugKind::OutOfBounds),
            other => Err(format!("unknown bug kind {other:?} (expected crash|deadlock|race|oob)")),
        }
    }
}

/// Structural size knobs of a generated program. All values are clamped to
/// workable ranges at generation time (see [`generate`]), so any sizes —
/// including proptest-chosen arbitrary ones — yield a valid program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenSize {
    /// Symbolic input words read at startup (clamped to ≥ 4: the first two
    /// arm the bug, the rest feed distractor branches).
    pub inputs: u32,
    /// Input-dependent distractor branches in `main` (each a diamond that
    /// enlarges the path space without affecting the bug).
    pub branches: u32,
    /// Iterations of the bounded counting loop in `main` (clamped to 1..=8).
    pub loop_iters: u32,
    /// Worker threads spawned by `main` (clamped to 2..=8).
    pub threads: u32,
    /// Shared lock globals (clamped to 2..=8; the first two host the
    /// deadlock, the last guards benign worker increments).
    pub locks: u32,
}

impl GenSize {
    /// The smoke-corpus size: small enough that every frontier either finds
    /// the bug or exhausts/budgets out within a sub-second budget.
    pub fn small() -> Self {
        GenSize { inputs: 4, branches: 6, loop_iters: 2, threads: 2, locks: 2 }
    }

    /// A larger configuration for the full-mode corpus sweeps.
    pub fn medium() -> Self {
        GenSize { inputs: 6, branches: 24, loop_iters: 4, threads: 3, locks: 3 }
    }
}

impl Default for GenSize {
    fn default() -> Self {
        GenSize::small()
    }
}

/// Full generator configuration: the determinism contract is that equal
/// configs produce byte-identical programs and equal ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// PRNG seed driving magic values, branch constants and buffer sizes.
    pub seed: u64,
    /// Which bug to inject.
    pub kind: InjectedBugKind,
    /// Structural size of the program around the bug.
    pub size: GenSize,
}

impl GenConfig {
    /// A config at the smoke-corpus size.
    pub fn new(seed: u64, kind: InjectedBugKind) -> Self {
        GenConfig { seed, kind, size: GenSize::small() }
    }
}

/// The minimal adverse interleaving that (together with the arming inputs)
/// makes the injected bug manifest — a human- and harness-readable hint, not
/// a replayable schedule (the synthesized execution file is that).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleHint {
    /// Any schedule manifests the bug once the arming inputs are in place
    /// (single-threaded reachability).
    AnySchedule,
    /// Each listed thread must be preempted while blocked acquiring its
    /// inner lock at the given location (hold-and-wait on both sides).
    HoldAndWait {
        /// The blocked-lock locations, one per deadlocked thread.
        locs: Vec<Loc>,
    },
    /// A worker must be preempted between the racy load and the racy store
    /// so another worker's increment is lost.
    PreemptBetween {
        /// The unsynchronized load of the shared counter.
        load: Loc,
        /// The unsynchronized store that clobbers the lost update.
        store: Loc,
    },
}

/// Everything the differential harness needs to judge a synthesis result
/// against the injected bug.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// The injected bug kind.
    pub kind: InjectedBugKind,
    /// The synthesis goal derived from the injection site(s).
    pub goal: GoalSpec,
    /// The goal locations (the faulting instruction for crashes, the
    /// blocked-lock locations for the deadlock).
    pub goal_locs: Vec<Loc>,
    /// The `fault_tag` values a correct report may carry.
    pub expected_fault_tags: &'static [&'static str],
    /// The `((thread, seq), value)` input words that arm the bug — a correct
    /// synthesized execution must contain exactly these values at these
    /// input positions.
    pub triggering_inputs: Vec<((u32, u32), i64)>,
    /// The minimal adverse interleaving on top of the inputs.
    pub schedule_hint: ScheduleHint,
    /// Whether the search needs lockset-race-directed preemptions
    /// (`EsdOptions::with_race_detection`) to reach the goal.
    pub needs_race_preemptions: bool,
}

impl GroundTruth {
    /// Checks a synthesized execution against the ground truth; an `Err`
    /// describes the mismatch. This is the harness's false-positive oracle:
    /// a configuration only counts as having found the bug when the fault
    /// tag, the fault location and the arming inputs all match what was
    /// injected.
    pub fn matches(&self, execution: &SynthesizedExecution) -> Result<(), String> {
        if !self.expected_fault_tags.contains(&execution.fault_tag.as_str()) {
            return Err(format!(
                "fault tag {:?} does not match the injected {} bug (expected one of {:?})",
                execution.fault_tag, self.kind, self.expected_fault_tags
            ));
        }
        // Deadlock executions carry no single faulting location; for every
        // crash-manifesting kind the faulting instruction must be the
        // injection site.
        if self.kind != InjectedBugKind::AbbaDeadlock {
            match execution.fault_loc {
                Some(loc) if loc == self.goal_locs[0] => {}
                other => {
                    return Err(format!(
                        "fault location {other:?} is not the injection site {:?}",
                        self.goal_locs[0]
                    ));
                }
            }
        }
        for ((thread, seq), value) in &self.triggering_inputs {
            let got = execution
                .inputs
                .iter()
                .find(|i| i.thread == *thread && i.seq == *seq)
                .map(|i| i.value);
            if got != Some(*value) {
                return Err(format!(
                    "arming input (thread {thread}, seq {seq}) is {got:?}, expected {value}"
                ));
            }
        }
        Ok(())
    }
}

/// A generated program together with its ground truth.
#[derive(Clone)]
pub struct GeneratedWorkload {
    /// Stable name encoding seed, kind and size
    /// (`genbug_<kind>_s<seed>_b<branches>_t<threads>`).
    pub name: String,
    /// The generated program.
    pub program: Program,
    /// The injected bug's ground truth.
    pub truth: GroundTruth,
}

impl GeneratedWorkload {
    /// Bridges to the hand-built [`Workload`] shape so generated programs
    /// can ride every harness that consumes one (`stress_test`,
    /// `capture_coredump`, the bench tables).
    pub fn to_workload(&self) -> Workload {
        Workload {
            name: self.name.clone(),
            paper_reference: format!("generated {} workload (genbug)", self.truth.kind),
            kind: match self.truth.kind {
                InjectedBugKind::AbbaDeadlock => WorkloadKind::Hang,
                _ => WorkloadKind::Crash,
            },
            program: self.program.clone(),
            goal_locs: self.truth.goal_locs.clone(),
            failing_inputs: Some(self.truth.triggering_inputs.clone()),
            paper_synth_time_secs: None,
        }
    }
}

/// Generates one program with exactly one injected bug of `config.kind`.
///
/// Every program shares the same skeleton — read `inputs` symbolic words,
/// run `branches` input-dependent distractor diamonds and a bounded counting
/// loop, compute the arming condition (`in0 == magic0 && in1 == magic1`),
/// spawn `threads` workers that contend on shared locks, join them — and
/// differs only in where the bug is spliced in:
///
/// * [`CrashOnPath`](InjectedBugKind::CrashOnPath) — `main`'s tail
///   dereferences null when armed;
/// * [`AbbaDeadlock`](InjectedBugKind::AbbaDeadlock) — worker 2 takes the
///   two deadlock locks in reverse order when armed;
/// * [`DataRace`](InjectedBugKind::DataRace) — armed workers increment the
///   shared counter without the lock, and `main` asserts no increment was
///   lost;
/// * [`OutOfBounds`](InjectedBugKind::OutOfBounds) — `main`'s tail stores
///   past the end of a buffer when armed (masked in bounds otherwise).
pub fn generate(config: &GenConfig) -> GeneratedWorkload {
    let kind = config.kind;
    let kind_salt = InjectedBugKind::ALL.iter().position(|k| *k == kind).unwrap() as u64;
    let mut rng = StdRng::seed_from_u64(config.seed ^ (kind_salt << 56).wrapping_add(kind_salt));
    let inputs = config.size.inputs.max(4);
    let branches = config.size.branches;
    let loop_iters = config.size.loop_iters.clamp(1, 8);
    let threads = config.size.threads.clamp(2, 8);
    let locks = config.size.locks.clamp(2, 8);

    let name = format!("genbug_{}_s{}_b{branches}_t{threads}", kind.slug(), config.seed);
    let mut pb = ProgramBuilder::new(&name);

    // Shared globals of the skeleton.
    let input_globals: Vec<_> = (0..inputs).map(|i| pb.global(&format!("in{i}"), 1)).collect();
    let lock_globals: Vec<_> = (0..locks).map(|i| pb.global(&format!("lock{i}"), 1)).collect();
    let armed = pb.global("armed", 1);
    let scratch = pb.global("scratch", 4);
    // Kind-specific globals.
    let counter = (kind == InjectedBugKind::DataRace).then(|| pb.global("counter", 1));
    let buf_size: i64 = if rng.gen_bool(0.5) { 4 } else { 8 };
    let buffer = (kind == InjectedBugKind::OutOfBounds).then(|| pb.global("buf", buf_size as u32));

    // The two magic input words that arm the bug.
    let magic0: i64 = rng.gen_range(1..120);
    let magic1: i64 = rng.gen_range(1..120);
    // Pre-draw per-branch constants so worker-definition draws (which vary
    // by kind) never shift the distractor constants.
    let branch_consts: Vec<i64> = (0..branches).map(|_| rng.gen_range(0..120)).collect();
    let oob_offset: i64 = buf_size + rng.gen_range(0..4i64);

    // worker(id): benign lock-guarded busy work, plus the bug body for the
    // concurrency kinds. The benign lock is the *last* lock global so it
    // never participates in the injected deadlock's AB/BA pair.
    let worker = pb.declare("worker", 1);
    let mut deadlock_locs: Vec<Loc> = Vec::new();
    let mut race_load_loc = None;
    let mut race_store_loc = None;
    pb.define(worker, |f| {
        let id = f.param(0);
        let benign = f.addr_global(lock_globals[(locks - 1) as usize]);
        let sp = f.addr_global(scratch);
        // Benign phase: guarded scratch increment with a yield inside the
        // critical section, so workers genuinely contend.
        f.lock(benign);
        let s = f.load(sp);
        let s1 = f.add(s, 1);
        f.yield_now();
        f.store(sp, s1);
        f.unlock(benign);
        match kind {
            InjectedBugKind::AbbaDeadlock => {
                let armp = f.addr_global(armed);
                let l0 = f.addr_global(lock_globals[0]);
                let l1 = f.addr_global(lock_globals[1]);
                let is_armed = f.load(armp);
                let is_second = f.cmp(CmpOp::Eq, id, 2);
                let reversed = f.bin(BinOp::And, is_armed, is_second);
                let forward = f.new_block("forward_order");
                let reverse = f.new_block("reverse_order");
                let done = f.new_block("lock_done");
                f.cond_br(reversed, reverse, forward);
                f.switch_to(forward);
                f.lock(l0);
                f.yield_now();
                deadlock_locs.push(f.here());
                f.lock(l1);
                f.unlock(l1);
                f.unlock(l0);
                f.br(done);
                f.switch_to(reverse);
                f.lock(l1);
                f.yield_now();
                deadlock_locs.push(f.here());
                f.lock(l0);
                f.unlock(l0);
                f.unlock(l1);
                f.br(done);
                f.switch_to(done);
            }
            InjectedBugKind::DataRace => {
                let armp = f.addr_global(armed);
                let cp = f.addr_global(counter.unwrap());
                let is_armed = f.load(armp);
                f.diamond(
                    "racy",
                    is_armed,
                    |t| {
                        // The injected race: unsynchronized read-modify-write
                        // of the shared counter; losing the preempted
                        // increment is what the final assertion catches.
                        race_load_loc = Some(t.here());
                        let v = t.load(cp);
                        let v1 = t.add(v, 1);
                        t.yield_now();
                        race_store_loc = Some(t.here());
                        t.store(cp, v1);
                    },
                    |e| {
                        let lk = e.addr_global(lock_globals[0]);
                        e.lock(lk);
                        let v = e.load(cp);
                        let v1 = e.add(v, 1);
                        e.store(cp, v1);
                        e.unlock(lk);
                    },
                );
            }
            InjectedBugKind::CrashOnPath | InjectedBugKind::OutOfBounds => {}
        }
        f.ret_void();
    });

    let main_id = pb.declare("main", 0);
    let mut goal_loc = None;
    pb.define(main_id, |f| {
        // 1. Read the symbolic inputs and publish them to globals.
        let mut input_regs = Vec::new();
        for (i, g) in input_globals.iter().enumerate() {
            let v = f.arg(i as u32);
            let gp = f.addr_global(*g);
            f.store(gp, v);
            input_regs.push(v);
        }
        let sp = f.addr_global(scratch);

        // 1b. A defensive masked range check, the shape real code guards
        // buffer indices with: `in0 & 63` can never exceed 63, so the else
        // edge is infeasible for every input. The condition stays symbolic
        // at run time — without static pruning this fork costs two solver
        // queries; with it, the interval analysis decides the branch. Fixed
        // mask, no extra RNG draws, reuses an already-read input.
        let masked0 = f.bin(BinOp::And, input_regs[0], 63);
        let in_range = f.cmp(CmpOp::Le, masked0, 63);
        f.diamond(
            "defensive",
            in_range,
            |t| {
                let cur = t.load(sp);
                let inc = t.add(cur, 1);
                t.store(sp, inc);
            },
            |e| e.nop(),
        );

        // 2. Distractor branches: input-dependent diamonds over the inputs
        // that do NOT arm the bug, so the path space grows with the branch
        // count without making the arming assignment harder to satisfy.
        for (b, k) in branch_consts.iter().enumerate() {
            let v = input_regs[2 + b % (input_regs.len() - 2)];
            let cond = f.cmp(CmpOp::Gt, v, *k);
            f.diamond(
                &format!("dis{b}"),
                cond,
                |t| {
                    let cur = t.load(sp);
                    let inc = t.add(cur, 1);
                    t.store(sp, inc);
                },
                |e| e.nop(),
            );
        }

        // 3. A bounded counting loop (constant trip count).
        let iters = f.konst(loop_iters as i64);
        let zero = f.konst(0);
        let ctr = f.local(1);
        let ctrp = f.addr_local(ctr);
        f.store(ctrp, zero);
        let header = f.new_block("loop_header");
        let body = f.new_block("loop_body");
        let exit = f.new_block("loop_exit");
        f.br(header);
        f.switch_to(header);
        let i = f.load(ctrp);
        let more = f.cmp(CmpOp::Lt, i, iters);
        f.cond_br(more, body, exit);
        f.switch_to(body);
        let cur = f.load(sp);
        let inc = f.add(cur, 1);
        f.store(sp, inc);
        let i1 = f.add(i, 1);
        f.store(ctrp, i1);
        f.br(header);
        f.switch_to(exit);

        // 4. The arming condition, published for the workers.
        let c0 = f.cmp(CmpOp::Eq, input_regs[0], magic0);
        let c1 = f.cmp(CmpOp::Eq, input_regs[1], magic1);
        let both = f.bin(BinOp::And, c0, c1);
        let armp = f.addr_global(armed);
        f.store(armp, both);

        // 5. Spawn and join the workers.
        let handles: Vec<_> = (0..threads).map(|t| f.spawn(worker, (t + 1) as i64)).collect();
        for h in handles {
            f.join(h);
        }

        // 6. The kind-specific tail.
        let is_armed = f.load(armp);
        match kind {
            InjectedBugKind::CrashOnPath => {
                f.diamond(
                    "bug",
                    is_armed,
                    |t| {
                        // The injected crash: dereference null on the armed
                        // path.
                        let null = t.konst(0);
                        goal_loc = Some(t.here());
                        let v = t.load(null);
                        t.output(v);
                    },
                    |e| e.nop(),
                );
            }
            InjectedBugKind::OutOfBounds => {
                let bp = f.addr_global(buffer.unwrap());
                let mask = f.konst(buf_size - 1);
                f.diamond(
                    "bug",
                    is_armed,
                    |t| {
                        // The injected overflow: a store past the buffer end.
                        let off = t.konst(oob_offset);
                        let p = t.gep(bp, off);
                        goal_loc = Some(t.here());
                        t.store(p, 9);
                    },
                    |e| {
                        let idx = e.bin(BinOp::And, input_regs[2], mask);
                        let p = e.gep(bp, idx);
                        e.store(p, 7);
                    },
                );
            }
            InjectedBugKind::DataRace => {
                let cp = f.addr_global(counter.unwrap());
                let v = f.load(cp);
                let ok = f.cmp(CmpOp::Eq, v, threads as i64);
                goal_loc = Some(f.here());
                f.assert(ok, "no increment may be lost");
            }
            InjectedBugKind::AbbaDeadlock => {}
        }
        f.ret_void();
    });

    let program = pb.finish("main");
    let triggering_inputs = vec![((0, 0), magic0), ((0, 1), magic1)];
    let truth = match kind {
        InjectedBugKind::AbbaDeadlock => GroundTruth {
            kind,
            goal: GoalSpec::Deadlock { thread_locs: deadlock_locs.clone() },
            goal_locs: deadlock_locs.clone(),
            expected_fault_tags: kind.expected_fault_tags(),
            triggering_inputs,
            schedule_hint: ScheduleHint::HoldAndWait { locs: deadlock_locs },
            needs_race_preemptions: false,
        },
        InjectedBugKind::DataRace => {
            let loc = goal_loc.unwrap();
            GroundTruth {
                kind,
                goal: GoalSpec::Crash { loc },
                goal_locs: vec![loc],
                expected_fault_tags: kind.expected_fault_tags(),
                triggering_inputs,
                schedule_hint: ScheduleHint::PreemptBetween {
                    load: race_load_loc.unwrap(),
                    store: race_store_loc.unwrap(),
                },
                needs_race_preemptions: true,
            }
        }
        InjectedBugKind::CrashOnPath | InjectedBugKind::OutOfBounds => {
            let loc = goal_loc.unwrap();
            GroundTruth {
                kind,
                goal: GoalSpec::Crash { loc },
                goal_locs: vec![loc],
                expected_fault_tags: kind.expected_fault_tags(),
                triggering_inputs,
                schedule_hint: ScheduleHint::AnySchedule,
                needs_race_preemptions: false,
            }
        }
    };
    GeneratedWorkload { name, program, truth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_core::EsdOptions;
    use esd_ir::printer::print_program;
    use esd_ir::validate::validate;

    #[test]
    fn every_kind_generates_a_valid_program() {
        for kind in InjectedBugKind::ALL {
            for seed in [0u64, 1, 42, u64::MAX] {
                let w = generate(&GenConfig::new(seed, kind));
                validate(&w.program).unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
                assert!(!w.truth.goal_locs.is_empty(), "{}", w.name);
                assert_eq!(w.truth.triggering_inputs.len(), 2, "{}", w.name);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        for kind in InjectedBugKind::ALL {
            let a = generate(&GenConfig::new(7, kind));
            let b = generate(&GenConfig::new(7, kind));
            assert_eq!(print_program(&a.program), print_program(&b.program));
            assert_eq!(a.truth.triggering_inputs, b.truth.triggering_inputs);
            assert_eq!(a.truth.goal_locs, b.truth.goal_locs);
            let c = generate(&GenConfig::new(8, kind));
            assert_ne!(
                print_program(&a.program),
                print_program(&c.program),
                "{kind}: different seeds must change the program"
            );
        }
    }

    #[test]
    fn kinds_share_a_seed_but_not_a_program() {
        let crash = generate(&GenConfig::new(3, InjectedBugKind::CrashOnPath));
        let oob = generate(&GenConfig::new(3, InjectedBugKind::OutOfBounds));
        assert_ne!(print_program(&crash.program), print_program(&oob.program));
    }

    #[test]
    fn proximity_synthesizes_each_injected_bug_and_the_truth_matches() {
        for kind in InjectedBugKind::ALL {
            let w = generate(&GenConfig::new(11, kind));
            let esd = EsdOptions::builder()
                .max_steps(2_000_000)
                .with_race_detection(w.truth.needs_race_preemptions)
                .synthesizer();
            let report = esd
                .synthesize_goal(&w.program, w.truth.goal.clone(), w.truth.needs_race_preemptions)
                .unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
            w.truth
                .matches(&report.execution)
                .unwrap_or_else(|e| panic!("{}: ground truth mismatch: {e}", w.name));
        }
    }

    #[test]
    fn stress_testing_misses_the_injected_bugs() {
        // The generator's analog of the paper's §7.2/§7.3 calibration: the
        // bugs need rare inputs (and, for the concurrency kinds, an adverse
        // schedule), so a bounded random campaign comes up empty.
        for kind in InjectedBugKind::ALL {
            let w = generate(&GenConfig::new(5, kind)).to_workload();
            let out = esd_core::stress_test(
                &w.program,
                &esd_core::StressConfig {
                    runs: 30,
                    max_steps_per_run: 20_000,
                    ..Default::default()
                },
            );
            assert!(!out.failed(), "{}: stress testing should not trip the bug", w.name);
        }
    }
}
