//! The BPF microbenchmark generator (§7.3).
//!
//! BPF "produces synthetic programs that hang and/or crash. These programs
//! have conditional branch instructions that depend on program inputs. When
//! using more than one thread, the crash/hang scenarios depend on both the
//! thread schedule and program inputs." The generator exposes the paper's
//! five knobs: number of inputs, number of branches, number of
//! input-dependent branches, number of threads and number of shared locks,
//! and injects exactly one deadlock whose manifestation requires both a
//! specific input assignment and an adverse interleaving.

use crate::real_bugs::{Workload, WorkloadKind};
use esd_ir::{BinOp, CmpOp, Loc, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters (the paper's five knobs plus a seed).
#[derive(Debug, Clone)]
pub struct BpfConfig {
    /// Number of program inputs read at startup.
    pub inputs: u32,
    /// Total number of conditional branches in the generated program.
    pub branches: u32,
    /// How many of the branches depend (directly or indirectly) on inputs;
    /// the rest compare constants. The paper's experiments use all of them
    /// input-dependent.
    pub dependent_branches: u32,
    /// Number of worker threads (the paper's experiments use 2).
    pub threads: u32,
    /// Number of shared locks (the paper's experiments use 2).
    pub locks: u32,
    /// PRNG seed controlling the branch constants and shapes.
    pub seed: u64,
}

impl Default for BpfConfig {
    fn default() -> Self {
        BpfConfig { inputs: 8, branches: 64, dependent_branches: 64, threads: 2, locks: 2, seed: 7 }
    }
}

/// Generates one BPF program together with its deadlock goal.
pub fn generate_bpf(config: &BpfConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let inputs = config.inputs.max(4);
    let threads = config.threads.max(2);
    let locks = config.locks.max(2);

    let mut pb = ProgramBuilder::new(&format!(
        "bpf_b{}_i{}_t{}_l{}",
        config.branches, inputs, threads, locks
    ));
    let input_globals: Vec<_> = (0..inputs).map(|i| pb.global(&format!("input{i}"), 1)).collect();
    let lock_globals: Vec<_> = (0..locks).map(|i| pb.global(&format!("lock{i}"), 1)).collect();
    let enable = pb.global("deadlock_enable", 1);
    let scratch = pb.global("scratch", 4);

    // The two magic values that arm the deadlock.
    let magic0: i64 = rng.gen_range(1..120);
    let magic1: i64 = rng.gen_range(1..120);

    // worker(id): branchy work, then the lock phase. Worker 1 takes
    // lock0 → lock1; worker 2 takes lock1 → lock0, but only when the
    // deadlock is armed; otherwise everyone takes lock0 → lock1.
    let worker = pb.declare("worker", 1);
    let mut inner_a = None;
    let mut inner_b = None;
    pb.define(worker, |f| {
        let id = f.param(0);
        let enp = f.addr_global(enable);
        let l0 = f.addr_global(lock_globals[0]);
        let l1 = f.addr_global(lock_globals[1]);
        // A little per-thread busy work guarded by the shared scratch data.
        let sp = f.addr_global(scratch);
        let s = f.load(sp);
        let positive = f.cmp(CmpOp::Gt, s, 0);
        let work = f.new_block("work");
        let idle = f.new_block("idle");
        let phase = f.new_block("lock_phase");
        f.cond_br(positive, work, idle);
        f.switch_to(work);
        f.yield_now();
        f.br(phase);
        f.switch_to(idle);
        f.nop();
        f.br(phase);
        f.switch_to(phase);
        let armed = f.load(enp);
        let is_second = f.cmp(CmpOp::Eq, id, 2);
        let inverted = f.bin(BinOp::And, armed, is_second);
        let path_a = f.new_block("forward_order");
        let path_b = f.new_block("reverse_order");
        let done = f.new_block("done");
        f.cond_br(inverted, path_b, path_a);
        f.switch_to(path_a);
        f.lock(l0);
        f.yield_now();
        inner_a = Some(Loc::new(worker, path_a, f.next_inst_idx()));
        f.lock(l1);
        f.unlock(l1);
        f.unlock(l0);
        f.br(done);
        f.switch_to(path_b);
        f.lock(l1);
        f.yield_now();
        inner_b = Some(Loc::new(worker, path_b, f.next_inst_idx()));
        f.lock(l0);
        f.unlock(l0);
        f.unlock(l1);
        f.br(done);
        f.switch_to(done);
        f.ret_void();
    });

    let main_id = pb.declare("main", 0);
    pb.define(main_id, |f| {
        // Read the inputs into globals.
        let mut input_regs = Vec::new();
        for (i, g) in input_globals.iter().enumerate() {
            let v = f.arg(i as u32);
            let gp = f.addr_global(*g);
            f.store(gp, v);
            input_regs.push(v);
        }
        let sp = f.addr_global(scratch);

        // The branch chain: `branches` conditional branches, the first
        // `dependent_branches` of which compare an input word against a
        // generated constant; the rest compare constants (and fold away at
        // run time, as dead conditions do in real code).
        let total = config.branches.saturating_sub(2); // two more come below
        for b in 0..total {
            let dependent = b < config.dependent_branches;
            let cond = if dependent {
                // Distractor branches read the inputs that do NOT arm the
                // deadlock (inputs 0 and 1 are reserved for arming), so the
                // path space grows with the branch count without making the
                // deadlock-arming assignment itself harder to satisfy.
                let v = input_regs[2 + (b as usize) % (input_regs.len() - 2)];
                let k: i64 = rng.gen_range(0..128);
                f.cmp(CmpOp::Gt, v, k)
            } else {
                let k: i64 = rng.gen_range(0..2);
                f.cmp(CmpOp::Eq, k, 1)
            };
            let t = f.new_block(&format!("b{b}_t"));
            let e = f.new_block(&format!("b{b}_e"));
            let j = f.new_block(&format!("b{b}_j"));
            f.cond_br(cond, t, e);
            f.switch_to(t);
            let cur = f.load(sp);
            let inc = f.add(cur, 1);
            f.store(sp, inc);
            f.br(j);
            f.switch_to(e);
            f.nop();
            f.br(j);
            f.switch_to(j);
        }

        // Arm the deadlock only for one specific input combination.
        let c0 = f.cmp(CmpOp::Eq, input_regs[0], magic0);
        let c1 = f.cmp(CmpOp::Eq, input_regs[1], magic1);
        let both = f.bin(BinOp::And, c0, c1);
        let arm = f.new_block("arm");
        let disarm = f.new_block("disarm");
        let spawn_bb = f.new_block("spawn");
        f.cond_br(both, arm, disarm);
        f.switch_to(arm);
        let enp = f.addr_global(enable);
        f.store(enp, 1);
        f.br(spawn_bb);
        f.switch_to(disarm);
        f.nop();
        f.br(spawn_bb);
        f.switch_to(spawn_bb);
        let mut handles = Vec::new();
        for t in 0..threads {
            let h = f.spawn(worker, (t + 1) as i64);
            handles.push(h);
        }
        for h in handles {
            f.join(h);
        }
        f.ret_void();
    });

    let program = pb.finish("main");
    Workload {
        name: program.name.clone(),
        paper_reference: format!(
            "BPF synthetic program ({} branches, {} inputs, {} threads, {} locks)",
            config.branches, inputs, threads, locks
        ),
        kind: WorkloadKind::Hang,
        goal_locs: vec![inner_a.unwrap(), inner_b.unwrap()],
        failing_inputs: Some(vec![((0, 0), magic0), ((0, 1), magic1)]),
        paper_synth_time_secs: None,
        program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_core::{stress_test, EsdOptions, StressConfig};

    #[test]
    fn generated_programs_scale_with_the_branch_knob() {
        let sizes: Vec<usize> = [8u32, 32, 128]
            .iter()
            .map(|b| {
                generate_bpf(&BpfConfig { branches: *b, ..Default::default() }).program.num_insts()
            })
            .collect();
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_bpf(&BpfConfig::default());
        let b = generate_bpf(&BpfConfig::default());
        assert_eq!(a.program.num_insts(), b.program.num_insts());
        assert_eq!(
            esd_ir::printer::print_program(&a.program),
            esd_ir::printer::print_program(&b.program)
        );
        assert_eq!(a.failing_inputs, b.failing_inputs);
        let c = generate_bpf(&BpfConfig { seed: 99, ..Default::default() });
        assert_ne!(a.failing_inputs, c.failing_inputs);
    }

    #[test]
    fn stress_testing_does_not_reproduce_the_bpf_deadlock() {
        // The §7.3 calibration: "we ran stress tests for one hour on each
        // program; neither of them deadlocked". A bounded random campaign
        // must come up empty here too.
        let w = generate_bpf(&BpfConfig { branches: 16, ..Default::default() });
        let out = stress_test(
            &w.program,
            &StressConfig { runs: 40, max_steps_per_run: 50_000, ..Default::default() },
        );
        assert!(!out.failed());
    }

    #[test]
    fn esd_synthesizes_the_bpf_deadlock_on_a_small_config() {
        let w = generate_bpf(&BpfConfig { branches: 16, ..Default::default() });
        let esd = EsdOptions::builder().max_steps(3_000_000).synthesizer();
        let result = esd.synthesize_goal(&w.program, w.goal(), false).expect("bpf deadlock");
        assert_eq!(result.execution.fault_tag, "deadlock");
        // The synthesized inputs must include the two magic values.
        let magic = w.failing_inputs.unwrap();
        for ((t, s), v) in magic {
            let got = result
                .execution
                .inputs
                .iter()
                .find(|i| i.thread == t && i.seq == s)
                .map(|i| i.value);
            assert_eq!(got, Some(v));
        }
    }
}
