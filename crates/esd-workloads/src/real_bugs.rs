//! Analogs of the real bugs evaluated in the paper (Table 1 / Figure 2).
//!
//! Each workload reproduces the *structure* of the original bug — the lock
//! nesting of the deadlocks, the input-dependent path to the crashes, the
//! error-handling paths — in the crate's IR, together with enough distractor
//! code (option parsing, unrelated branches) that finding the bug-bound path
//! is a genuine search problem. The `paper_synth_time_secs` field carries the
//! time reported in Table 1, for side-by-side reporting by the bench harness.

use esd_ir::{BinOp, CmpOp, FunctionBuilder, InputSource, Loc, Program, ProgramBuilder};
use esd_symex::GoalSpec;

/// Whether the bug manifests as a hang or a crash (the "Bug manifestation"
/// column of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// The program hangs (deadlock).
    Hang,
    /// The program crashes.
    Crash,
}

/// One evaluation workload.
#[derive(Clone)]
pub struct Workload {
    /// Short name (`sqlite`, `ghttpd`, `ls1`, …).
    pub name: String,
    /// What the workload models in the paper.
    pub paper_reference: String,
    /// Hang or crash.
    pub kind: WorkloadKind,
    /// The program.
    pub program: Program,
    /// Goal locations: the faulting instruction for crashes, the blocked-lock
    /// locations for deadlocks.
    pub goal_locs: Vec<Loc>,
    /// A concrete input vector (`(thread, seq) -> value`) under which the
    /// failure can manifest at the end-user site (crashes always fail with
    /// it; hangs additionally need an adverse schedule).
    pub failing_inputs: Option<Vec<((u32, u32), i64)>>,
    /// Synthesis time reported in Table 1 of the paper, in seconds.
    pub paper_synth_time_secs: Option<f64>,
}

impl Workload {
    /// The synthesis goal for this workload.
    pub fn goal(&self) -> GoalSpec {
        match self.kind {
            WorkloadKind::Crash => GoalSpec::Crash { loc: self.goal_locs[0] },
            WorkloadKind::Hang => GoalSpec::Deadlock { thread_locs: self.goal_locs.clone() },
        }
    }
}

/// Adds a few input-dependent distractor branches (option parsing, logging
/// toggles) that enlarge the path space without affecting the bug.
fn distractor_options(f: &mut FunctionBuilder, count: u32) {
    for i in 0..count {
        let opt = f.arg(10 + i);
        let set = f.cmp(CmpOp::Eq, opt, '-' as i64);
        let on = f.new_block(&format!("opt{i}_on"));
        let off = f.new_block(&format!("opt{i}_off"));
        let done = f.new_block(&format!("opt{i}_done"));
        f.cond_br(set, on, off);
        f.switch_to(on);
        f.output(1000 + i as i64);
        f.br(done);
        f.switch_to(off);
        f.nop();
        f.br(done);
        f.switch_to(done);
    }
}

/// The paper's Listing-1 example: two threads deadlock in `CriticalSection`
/// when `mode == MOD_Y && idx == 1` and one of them is preempted right after
/// releasing `M1`.
pub fn listing1() -> Workload {
    let mut pb = ProgramBuilder::new("listing1");
    let m1 = pb.global("M1", 1);
    let m2 = pb.global("M2", 1);
    let idx = pb.global("idx", 1);
    let mode = pb.global("mode", 1);

    let critical = pb.declare("critical_section", 1);
    let mut relock_loc = None;
    let mut inner_m2_loc = None;
    pb.define(critical, |f| {
        let m1p = f.addr_global(m1);
        let m2p = f.addr_global(m2);
        f.lock(m1p);
        inner_m2_loc = Some(Loc::new(critical, f.current_block(), f.next_inst_idx()));
        f.lock(m2p);
        let modep = f.addr_global(mode);
        let idxp = f.addr_global(idx);
        let mv = f.load(modep);
        let iv = f.load(idxp);
        let mode_y = f.cmp(CmpOp::Eq, mv, 1);
        let idx_1 = f.cmp(CmpOp::Eq, iv, 1);
        let both = f.bin(BinOp::And, mode_y, idx_1);
        let relock = f.new_block("relock");
        let rest = f.new_block("rest");
        f.cond_br(both, relock, rest);
        f.switch_to(relock);
        f.unlock(m1p);
        relock_loc = Some(Loc::new(critical, relock, f.next_inst_idx()));
        f.lock(m1p);
        f.br(rest);
        f.switch_to(rest);
        f.unlock(m2p);
        f.unlock(m1p);
        f.ret_void();
    });

    pb.function("main", 0, |f| {
        let idxp = f.addr_global(idx);
        let modep = f.addr_global(mode);
        let c = f.getchar();
        let is_m = f.cmp(CmpOp::Eq, c, 'm' as i64);
        let inc = f.new_block("inc");
        let after_inc = f.new_block("after_inc");
        f.cond_br(is_m, inc, after_inc);
        f.switch_to(inc);
        let v = f.load(idxp);
        let v1 = f.add(v, 1);
        f.store(idxp, v1);
        f.br(after_inc);
        f.switch_to(after_inc);
        let e = f.getenv("mode");
        let is_y = f.cmp(CmpOp::Eq, e, 'Y' as i64);
        let yes = f.new_block("mode_y");
        let no = f.new_block("mode_z");
        let cont = f.new_block("cont");
        f.cond_br(is_y, yes, no);
        f.switch_to(yes);
        f.store(modep, 1);
        f.br(cont);
        f.switch_to(no);
        f.store(modep, 2);
        f.br(cont);
        f.switch_to(cont);
        let t1 = f.spawn(critical, 0);
        let t2 = f.spawn(critical, 0);
        f.join(t1);
        f.join(t2);
        f.ret_void();
    });
    let program = pb.finish("main");
    Workload {
        name: "listing1".into(),
        paper_reference: "Listing 1 (running example)".into(),
        kind: WorkloadKind::Hang,
        goal_locs: vec![relock_loc.unwrap(), inner_m2_loc.unwrap()],
        failing_inputs: Some(vec![((0, 0), 'm' as i64), ((0, 1), 'Y' as i64)]),
        paper_synth_time_secs: None,
        program,
    }
}

/// SQLite bug #1672: a deadlock in the custom recursive-lock implementation.
/// Two connections enter the b-tree layer; the recursive "enter" releases the
/// master mutex before taking the b-tree mutex, opening a window in which the
/// two threads acquire the locks in opposite orders.
pub fn sqlite_recursive_lock() -> Workload {
    let mut pb = ProgramBuilder::new("sqlite");
    let master = pb.global("master_mutex", 1);
    let btree = pb.global("btree_mutex", 1);
    let shared_cache = pb.global("shared_cache", 1);
    let owner = pb.global("btree_owner", 1);

    // btree_enter(conn): the buggy recursive-lock acquisition.
    let enter = pb.declare("btree_enter", 1);
    let mut inner_master_loc = None;
    pb.define(enter, |f| {
        let conn = f.param(0);
        let masterp = f.addr_global(master);
        let btreep = f.addr_global(btree);
        let ownerp = f.addr_global(owner);
        // Fast path: already the owner (recursive acquisition).
        let cur = f.load(ownerp);
        let is_owner = f.cmp(CmpOp::Eq, cur, conn);
        let fast = f.new_block("fast");
        let slow = f.new_block("slow");
        let done = f.new_block("done");
        f.cond_br(is_owner, fast, done);
        f.switch_to(fast);
        f.output(7100);
        f.br(done);
        f.switch_to(slow);
        // Slow path (never branched to directly; kept as dead distractor code
        // mirroring the original function's unreachable assertions).
        f.nop();
        f.br(done);
        f.switch_to(done);
        // Buggy ordering: take the b-tree mutex, then re-take the master
        // mutex to publish ownership.
        f.lock(btreep);
        inner_master_loc = Some(Loc::new(enter, f.current_block(), f.next_inst_idx()));
        f.lock(masterp);
        f.store(ownerp, conn);
        f.unlock(masterp);
        f.ret_void();
    });

    // btree_leave(conn).
    let leave = pb.function("btree_leave", 1, |f| {
        let btreep = f.addr_global(btree);
        let ownerp = f.addr_global(owner);
        f.store(ownerp, 0);
        f.unlock(btreep);
        f.ret_void();
    });

    // connection_worker(conn): open → (shared cache?) → enter/leave.
    let worker = pb.declare("connection_worker", 1);
    let mut inner_btree_loc = None;
    pb.define(worker, |f| {
        let conn = f.param(0);
        let masterp = f.addr_global(master);
        let btreep = f.addr_global(btree);
        let scp = f.addr_global(shared_cache);
        // sqlite3_open: registers the connection under the master mutex. With
        // shared-cache mode on, the open path also peeks at the b-tree while
        // still holding the master mutex — the opposite order to btree_enter.
        f.lock(masterp);
        let sc = f.load(scp);
        let sc_on = f.cmp(CmpOp::Eq, sc, 1);
        let peek = f.new_block("peek");
        let no_peek = f.new_block("no_peek");
        let opened = f.new_block("opened");
        f.cond_br(sc_on, peek, no_peek);
        f.switch_to(peek);
        inner_btree_loc = Some(Loc::new(worker, peek, f.next_inst_idx()));
        f.lock(btreep);
        f.output(7200);
        f.unlock(btreep);
        f.br(opened);
        f.switch_to(no_peek);
        f.nop();
        f.br(opened);
        f.switch_to(opened);
        f.unlock(masterp);
        // Run a query: enter / leave the b-tree layer.
        f.call_void(enter, vec![conn.into()]);
        f.call_void(leave, vec![conn.into()]);
        f.ret_void();
    });

    pb.function("main", 0, |f| {
        distractor_options(f, 3);
        // PRAGMA parsing: shared-cache mode is enabled when the config
        // character is 'S' and the thread-safety level read from the
        // environment is 2 (SQLITE_CONFIG_SERIALIZED in the original).
        let scp = f.addr_global(shared_cache);
        let cfg = f.getchar();
        let level = f.getenv("SQLITE_THREADSAFE");
        let is_s = f.cmp(CmpOp::Eq, cfg, 'S' as i64);
        let is_2 = f.cmp(CmpOp::Eq, level, 2);
        let both = f.bin(BinOp::And, is_s, is_2);
        let on = f.new_block("sc_on");
        let off = f.new_block("sc_off");
        let go = f.new_block("go");
        f.cond_br(both, on, off);
        f.switch_to(on);
        f.store(scp, 1);
        f.br(go);
        f.switch_to(off);
        f.store(scp, 0);
        f.br(go);
        f.switch_to(go);
        let t1 = f.spawn(worker, 1);
        let t2 = f.spawn(worker, 2);
        f.join(t1);
        f.join(t2);
        f.ret_void();
    });
    let program = pb.finish("main");
    Workload {
        name: "sqlite".into(),
        paper_reference: "SQLite 3.3.0 bug #1672 (hang in the custom recursive lock)".into(),
        kind: WorkloadKind::Hang,
        goal_locs: vec![inner_master_loc.unwrap(), inner_btree_loc.unwrap()],
        failing_inputs: Some(vec![((0, 3), 'S' as i64), ((0, 4), 2)]),
        paper_synth_time_secs: Some(150.0),
        program,
    }
}

/// HawkNL 1.6b3: `nlClose()` and `nlShutdown()` called concurrently on the
/// same socket deadlock on the library lock vs. the socket lock.
pub fn hawknl_close_shutdown() -> Workload {
    let mut pb = ProgramBuilder::new("hawknl");
    let lib_lock = pb.global("nl_lib_lock", 1);
    let sock_lock = pb.global("nl_sock_lock", 1);
    let sock_open = pb.global_init("nl_sock_open", 1, vec![1]);

    let mut close_inner = None;
    let closer = pb.declare("nl_close", 1);
    pb.define(closer, |f| {
        let libp = f.addr_global(lib_lock);
        let sockp = f.addr_global(sock_lock);
        let openp = f.addr_global(sock_open);
        // nlClose takes the socket lock, then the library lock to remove the
        // socket from the global table.
        f.lock(sockp);
        let open = f.load(openp);
        let still_open = f.cmp(CmpOp::Eq, open, 1);
        let do_close = f.new_block("do_close");
        let already = f.new_block("already");
        f.cond_br(still_open, do_close, already);
        f.switch_to(do_close);
        close_inner = Some(Loc::new(closer, do_close, f.next_inst_idx()));
        f.lock(libp);
        f.store(openp, 0);
        f.unlock(libp);
        f.unlock(sockp);
        f.ret_void();
        f.switch_to(already);
        f.unlock(sockp);
        f.ret_void();
    });

    let mut shutdown_inner = None;
    let shutdowner = pb.declare("nl_shutdown", 1);
    pb.define(shutdowner, |f| {
        let libp = f.addr_global(lib_lock);
        let sockp = f.addr_global(sock_lock);
        let openp = f.addr_global(sock_open);
        // nlShutdown takes the library lock, then closes every open socket —
        // taking each socket lock — in the opposite order.
        f.lock(libp);
        let open = f.load(openp);
        let still_open = f.cmp(CmpOp::Eq, open, 1);
        let close_all = f.new_block("close_all");
        let nothing = f.new_block("nothing");
        f.cond_br(still_open, close_all, nothing);
        f.switch_to(close_all);
        shutdown_inner = Some(Loc::new(shutdowner, close_all, f.next_inst_idx()));
        f.lock(sockp);
        f.store(openp, 0);
        f.unlock(sockp);
        f.unlock(libp);
        f.ret_void();
        f.switch_to(nothing);
        f.unlock(libp);
        f.ret_void();
    });

    pb.function("main", 0, |f| {
        distractor_options(f, 3);
        // The game tears down networking while another thread closes its
        // socket; only the UDP teardown path exhibits the inversion.
        let proto = f.getchar();
        let is_udp = f.cmp(CmpOp::Eq, proto, 'U' as i64);
        let race_path = f.new_block("race_path");
        let safe_path = f.new_block("safe_path");
        f.cond_br(is_udp, race_path, safe_path);
        f.switch_to(race_path);
        let t1 = f.spawn(closer, 0);
        let t2 = f.spawn(shutdowner, 0);
        f.join(t1);
        f.join(t2);
        f.ret_void();
        f.switch_to(safe_path);
        f.call_void(closer, vec![esd_ir::Operand::Const(0)]);
        f.call_void(shutdowner, vec![esd_ir::Operand::Const(0)]);
        f.ret_void();
    });
    let program = pb.finish("main");
    Workload {
        name: "hawknl".into(),
        paper_reference: "HawkNL 1.6b3 nlClose()/nlShutdown() deadlock".into(),
        kind: WorkloadKind::Hang,
        goal_locs: vec![close_inner.unwrap(), shutdown_inner.unwrap()],
        failing_inputs: Some(vec![((0, 3), 'U' as i64)]),
        paper_synth_time_secs: Some(122.0),
        program,
    }
}

/// ghttpd: buffer overflow in the logging path (`vsprintf` of the request
/// URL into a fixed-size buffer) while serving a `GET` request.
pub fn ghttpd_log_overflow() -> Workload {
    const LOG_BUF_WORDS: i64 = 8;
    let mut pb = ProgramBuilder::new("ghttpd");
    let mut overflow_loc = None;

    let log_request = pb.declare("log_request", 1);
    pb.define(log_request, |f| {
        let len = f.param(0);
        let buf = f.alloc(LOG_BUF_WORDS);
        let l = f.local(1);
        let ip = f.addr_local(l);
        f.store(ip, 0);
        let head = f.new_block("head");
        let body = f.new_block("body");
        let done = f.new_block("done");
        f.br(head);
        f.switch_to(head);
        let i = f.load(ip);
        let more = f.cmp(CmpOp::Lt, i, len);
        f.cond_br(more, body, done);
        f.switch_to(body);
        let ch = f.input(InputSource::Net);
        let slot = f.gep(buf, i);
        overflow_loc = Some(Loc::new(log_request, body, f.next_inst_idx()));
        f.store(slot, ch);
        let i1 = f.add(i, 1);
        f.store(ip, i1);
        f.br(head);
        f.switch_to(done);
        f.output(len);
        f.free(buf);
        f.ret_void();
    });

    pb.function("main", 0, |f| {
        distractor_options(f, 4);
        // Parse the request line: method, then URL length from the socket.
        let method = f.input(InputSource::Net);
        let is_get = f.cmp(CmpOp::Eq, method, 'G' as i64);
        let serve = f.new_block("serve");
        let reject = f.new_block("reject");
        f.cond_br(is_get, serve, reject);
        f.switch_to(serve);
        let len = f.input(InputSource::Net);
        // A defensive range check on the length's low bits — `len & 1023`
        // can never exceed the mask, so the static interval analysis proves
        // the else edge infeasible and the engine forks here without a
        // solver query (the condition stays symbolic at run time).
        let low = f.bin(BinOp::And, len, 1023);
        let sane = f.cmp(CmpOp::Le, low, 1023);
        f.diamond("sanity", sane, |t| t.nop(), |e| e.output(500));
        // The original checks the URL against MAX_REQUEST but logs it first.
        f.call_void(log_request, vec![len.into()]);
        let ok = f.cmp(CmpOp::Le, len, 256);
        let answer = f.new_block("answer");
        let too_long = f.new_block("too_long");
        f.cond_br(ok, answer, too_long);
        f.switch_to(answer);
        f.output(200);
        f.ret_void();
        f.switch_to(too_long);
        f.output(414);
        f.ret_void();
        f.switch_to(reject);
        f.output(501);
        f.ret_void();
    });
    let program = pb.finish("main");
    Workload {
        name: "ghttpd".into(),
        paper_reference: "ghttpd GET-logging buffer overflow (CVE/securityfocus 5960)".into(),
        kind: WorkloadKind::Crash,
        goal_locs: vec![overflow_loc.unwrap()],
        failing_inputs: Some(vec![
            ((0, 4), 'G' as i64),
            ((0, 5), LOG_BUF_WORDS + 3),
            ((0, 6), 'a' as i64),
            ((0, 7), 'b' as i64),
            ((0, 8), 'c' as i64),
            ((0, 9), 'd' as i64),
            ((0, 10), 'e' as i64),
            ((0, 11), 'f' as i64),
            ((0, 12), 'g' as i64),
            ((0, 13), 'h' as i64),
            ((0, 14), 'i' as i64),
        ]),
        paper_synth_time_secs: Some(7.0),
        program,
    }
}

/// `paste`: an invalid free on the error path for an empty delimiter list.
pub fn paste_invalid_free() -> Workload {
    let mut pb = ProgramBuilder::new("paste");
    let delims = pb.global_init("default_delims", 4, vec!['\t' as i64, 0, 0, 0]);
    let mut free_loc = None;
    pb.function("main", 0, |f| {
        distractor_options(f, 3);
        let serial = f.arg(0);
        let delim_arg = f.arg(1);
        let _ = f.cmp(CmpOp::Eq, serial, 's' as i64);
        // With "-d ''" the delimiter list is empty; the cleanup path then
        // frees the pointer to the (static) default delimiters.
        let empty = f.cmp(CmpOp::Eq, delim_arg, 0);
        let bad = f.new_block("cleanup_empty");
        let good = f.new_block("normal");
        f.cond_br(empty, bad, good);
        f.switch_to(bad);
        let dp = f.addr_global(delims);
        free_loc = Some(Loc::new(esd_ir::FuncId(0), bad, f.next_inst_idx()));
        f.free(dp);
        f.ret_void();
        f.switch_to(good);
        let heap = f.alloc(4);
        f.store(heap, delim_arg);
        f.free(heap);
        f.output(0);
        f.ret_void();
    });
    let program = pb.finish("main");
    Workload {
        name: "paste".into(),
        paper_reference: "coreutils paste: invalid free for some inputs".into(),
        kind: WorkloadKind::Crash,
        goal_locs: vec![free_loc.unwrap()],
        failing_inputs: Some(vec![((0, 3), 'x' as i64), ((0, 4), 0)]),
        paper_synth_time_secs: Some(25.0),
        program,
    }
}

/// Shared skeleton for the coreutils error-path segfaults (`mknod`, `mkdir`,
/// `mkfifo`, `tac`): a null dereference on an error-handling path reached
/// only for a specific combination of arguments.
fn coreutils_crash(
    name: &str,
    reference: &str,
    trigger_char: i64,
    paper_secs: f64,
    extra_distractors: u32,
) -> Workload {
    let mut pb = ProgramBuilder::new(name);
    let mut crash_loc = None;
    let main_id = pb.declare("main", 0);
    pb.define(main_id, |f| {
        distractor_options(f, extra_distractors);
        let mode_arg = f.arg(0);
        let name_arg = f.arg(1);
        // A defensive range check on the mode byte: `mode & 127` can never
        // exceed the mask, so the interval analysis decides this branch and
        // the engine skips the solver on the fork.
        let low = f.bin(BinOp::And, mode_arg, 127);
        let in_range = f.cmp(CmpOp::Le, low, 127);
        f.diamond("mode_range", in_range, |t| t.nop(), |e| e.output(2));
        // The utility validates its mode argument; the error path formats a
        // message using a context pointer that is null when the second
        // argument is missing (zero).
        let bad_mode = f.cmp(CmpOp::Eq, mode_arg, trigger_char);
        let missing = f.cmp(CmpOp::Eq, name_arg, 0);
        let both = f.bin(BinOp::And, bad_mode, missing);
        let err = f.new_block("error_path");
        let ok = f.new_block("ok_path");
        f.cond_br(both, err, ok);
        f.switch_to(err);
        let ctx = f.konst(0);
        crash_loc = Some(Loc::new(main_id, err, f.next_inst_idx()));
        let msg = f.load(ctx);
        f.output(msg);
        f.ret_void();
        f.switch_to(ok);
        f.output(0);
        f.ret_void();
    });
    let program = pb.finish("main");
    let seq_base = extra_distractors; // distractor args come first
    Workload {
        name: name.into(),
        paper_reference: reference.into(),
        kind: WorkloadKind::Crash,
        goal_locs: vec![crash_loc.unwrap()],
        failing_inputs: Some(vec![((0, seq_base), trigger_char), ((0, seq_base + 1), 0)]),
        paper_synth_time_secs: Some(paper_secs),
        program,
    }
}

/// An `ls`-like utility with four injected null-pointer dereferences, each
/// behind a different combination of command-line options — the programs the
/// paper adds so that the KC baseline finds *something* within its budget.
pub fn ls_injected(which: u32) -> Workload {
    assert!((1..=4).contains(&which));
    let mut pb = ProgramBuilder::new(&format!("ls{which}"));
    let mut crash_loc = None;
    let main_id = pb.declare("main", 0);
    pb.define(main_id, |f| {
        // Option parsing: -l -R -F -t (four flag characters read from argv).
        let flags: Vec<_> = (0..4).map(|i| f.arg(i)).collect();
        let long = f.cmp(CmpOp::Eq, flags[0], 'l' as i64);
        let recursive = f.cmp(CmpOp::Eq, flags[1], 'R' as i64);
        let classify = f.cmp(CmpOp::Eq, flags[2], 'F' as i64);
        let by_time = f.cmp(CmpOp::Eq, flags[3], 't' as i64);
        distractor_options(f, 3);
        // The injected bug fires for a specific pair of options.
        let combo = match which {
            1 => f.bin(BinOp::And, long, recursive),
            2 => f.bin(BinOp::And, long, classify),
            3 => f.bin(BinOp::And, recursive, by_time),
            _ => f.bin(BinOp::And, classify, by_time),
        };
        let bug = f.new_block("bug");
        let list = f.new_block("list");
        f.cond_br(combo, bug, list);
        f.switch_to(bug);
        let null = f.konst(0);
        crash_loc = Some(Loc::new(main_id, bug, f.next_inst_idx()));
        let v = f.load(null);
        f.output(v);
        f.ret_void();
        f.switch_to(list);
        f.output('.' as i64);
        f.ret_void();
    });
    let program = pb.finish("main");
    let failing = match which {
        1 => vec![((0, 0), 'l' as i64), ((0, 1), 'R' as i64)],
        2 => vec![((0, 0), 'l' as i64), ((0, 2), 'F' as i64)],
        3 => vec![((0, 1), 'R' as i64), ((0, 3), 't' as i64)],
        _ => vec![((0, 2), 'F' as i64), ((0, 3), 't' as i64)],
    };
    Workload {
        name: format!("ls{which}"),
        paper_reference: format!("ls with injected null-pointer dereference #{which}"),
        kind: WorkloadKind::Crash,
        goal_locs: vec![crash_loc.unwrap()],
        failing_inputs: Some(failing),
        paper_synth_time_secs: None,
        program,
    }
}

/// All Table-1 / Figure-2 workloads.
pub fn all_real_bugs() -> Vec<Workload> {
    vec![
        listing1(),
        sqlite_recursive_lock(),
        hawknl_close_shutdown(),
        ghttpd_log_overflow(),
        paste_invalid_free(),
        coreutils_crash("mknod", "coreutils mknod: error-path segfault", 'z' as i64, 20.0, 3),
        coreutils_crash("mkdir", "coreutils mkdir: error-path segfault", 'p' as i64, 15.0, 2),
        coreutils_crash("mkfifo", "coreutils mkfifo: error-path segfault", 'm' as i64, 15.0, 2),
        coreutils_crash("tac", "coreutils tac: segfault on some separators", 'r' as i64, 11.0, 1),
        ls_injected(1),
        ls_injected(2),
        ls_injected(3),
        ls_injected(4),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_core::EsdOptions;

    #[test]
    fn listing1_and_hawknl_deadlocks_are_synthesized() {
        for w in [listing1(), hawknl_close_shutdown()] {
            let esd = EsdOptions::builder().max_steps(2_000_000).synthesizer();
            let result = esd
                .synthesize_goal(&w.program, w.goal(), false)
                .unwrap_or_else(|e| panic!("{}: {:?}", w.name, e));
            assert_eq!(result.execution.fault_tag, "deadlock", "{}", w.name);
        }
    }

    #[test]
    fn crash_analogs_are_synthesized() {
        for w in [
            paste_invalid_free(),
            ls_injected(1),
            coreutils_crash("mknod", "x", 'z' as i64, 1.0, 3),
        ] {
            let esd = EsdOptions::builder().max_steps(2_000_000).synthesizer();
            let result = esd
                .synthesize_goal(&w.program, w.goal(), false)
                .unwrap_or_else(|e| panic!("{}: {:?}", w.name, e));
            assert_eq!(result.execution.fault_loc, Some(w.goal_locs[0]), "{}", w.name);
        }
    }

    #[test]
    fn workload_metadata_is_consistent() {
        for w in all_real_bugs() {
            match w.kind {
                WorkloadKind::Crash => assert_eq!(w.goal_locs.len(), 1, "{}", w.name),
                WorkloadKind::Hang => assert!(w.goal_locs.len() >= 2, "{}", w.name),
            }
            assert!(w.failing_inputs.is_some(), "{}", w.name);
        }
    }
}
