//! Workload programs for the ESD evaluation.
//!
//! * [`real_bugs`] — analogs of the real bugs in Table 1 / Figure 2 of the
//!   paper: the SQLite recursive-lock deadlock, the HawkNL close/shutdown
//!   deadlock, the ghttpd log-buffer overflow, the `paste` invalid free, the
//!   `mknod`/`mkdir`/`mkfifo`/`tac` error-path crashes, and the four
//!   null-pointer-dereference injections in an `ls`-like utility, plus the
//!   paper's Listing-1 example.
//! * [`bpf`] — the BPF microbenchmark generator (§7.3): parameterized
//!   synthetic programs with input-dependent branches, threads and locks, and
//!   one injected deadlock.
//! * [`genbug`] — the seeded bug-injection generator: random well-formed
//!   programs with exactly one injected bug of a requested kind and a
//!   [`GroundTruth`] record for differential testing.
//!
//! Every workload carries its program, the goal ESD must reach (derived from
//! the structure of the injected bug) and, when applicable, a concrete
//! failing input vector that makes the failure reproducible at the simulated
//! end-user site so a genuine coredump can be captured.

#![deny(missing_docs)]

pub mod bpf;
pub mod genbug;
pub mod real_bugs;

pub use bpf::{generate_bpf, BpfConfig};
pub use genbug::{generate, GenConfig, GenSize, GeneratedWorkload, GroundTruth, InjectedBugKind};
pub use real_bugs::{all_real_bugs, listing1, Workload, WorkloadKind};

use esd_core::{stress_test, StressConfig};
use esd_ir::{CoreDump, ThreadId};

/// Tries to capture a genuine coredump for a workload by running it at the
/// simulated end-user site: the known failing inputs are used (when the
/// workload has them) and the scheduler is randomized until the failure
/// manifests, exactly how the bug would have been reported from the field.
pub fn capture_coredump(workload: &Workload, max_runs: u32) -> Option<CoreDump> {
    let fixed: Option<Vec<((ThreadId, u32), i64)>> = workload
        .failing_inputs
        .as_ref()
        .map(|v| v.iter().map(|((t, s), val)| ((ThreadId(*t), *s), *val)).collect());
    let outcome = stress_test(
        &workload.program,
        &StressConfig {
            runs: max_runs,
            max_steps_per_run: 400_000,
            seed: 0xe5d,
            fixed_inputs: fixed,
            input_range: (0, 127),
        },
    );
    outcome.failure
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::validate::validate;

    #[test]
    fn all_real_bug_programs_are_structurally_valid() {
        let bugs = all_real_bugs();
        assert!(bugs.len() >= 13, "expected at least 13 workloads, got {}", bugs.len());
        for w in &bugs {
            validate(&w.program).unwrap_or_else(|e| panic!("{}: {:?}", w.name, e));
            assert!(!w.goal_locs.is_empty(), "{} needs at least one goal location", w.name);
        }
    }

    #[test]
    fn crash_workloads_fail_at_the_end_user_site_with_their_inputs() {
        for w in all_real_bugs() {
            if w.kind == WorkloadKind::Crash {
                let dump = capture_coredump(&w, 5)
                    .unwrap_or_else(|| panic!("{} must crash with its failing inputs", w.name));
                assert!(!dump.fault.is_hang(), "{}: expected a crash", w.name);
            }
        }
    }

    #[test]
    fn bpf_programs_are_valid_and_scale_with_branches() {
        let small = generate_bpf(&BpfConfig { branches: 16, ..Default::default() });
        let large = generate_bpf(&BpfConfig { branches: 128, ..Default::default() });
        validate(&small.program).unwrap();
        validate(&large.program).unwrap();
        assert!(large.program.num_insts() > small.program.num_insts());
        assert_eq!(small.goal_locs.len(), 2);
    }
}
