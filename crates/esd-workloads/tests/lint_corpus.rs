//! The lint gate over the workload corpus: every program this crate ships —
//! the real-bug analogs and the generated genbug corpus — must be free of
//! `Error`-severity lint diagnostics (the same policy the CI `lint-gate` job
//! enforces with the `irlint` bin), and the genbug defensive check must be
//! visible to the interval analysis (that is what guarantees the engine's
//! `branches_pruned_static` counter moves on generated programs).

use esd_analysis::{LintRegistry, Severity};
use esd_workloads::genbug::{generate, GenConfig, InjectedBugKind};
use esd_workloads::real_bugs::all_real_bugs;

const SEEDS: [u64; 4] = [2, 11, 23, 47];

#[test]
fn real_bug_workloads_carry_no_error_diagnostics() {
    let registry = LintRegistry::with_default_lints();
    for w in all_real_bugs() {
        let errors: Vec<_> = registry
            .run(&w.program)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{}: unexpected lint errors: {errors:?}", w.name);
    }
}

#[test]
fn genbug_corpus_carries_no_error_diagnostics() {
    let registry = LintRegistry::with_default_lints();
    for kind in InjectedBugKind::ALL {
        for seed in SEEDS {
            let gen = generate(&GenConfig::new(seed, kind));
            let errors: Vec<_> = registry
                .run(&gen.program)
                .into_iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            assert!(
                errors.is_empty(),
                "genbug seed {seed} {kind:?}: unexpected lint errors: {errors:?}"
            );
        }
    }
}

#[test]
fn genbug_defensive_check_is_statically_decided() {
    // The generator plants a `in0 & 63 <= 63` range check in every program;
    // the constant-condition lint (backed by the interval analysis) must see
    // it as a warning — proof that the static phase decides at least one
    // branch on every generated program.
    let registry = LintRegistry::with_default_lints();
    for kind in InjectedBugKind::ALL {
        for seed in SEEDS {
            let gen = generate(&GenConfig::new(seed, kind));
            let diags = registry.run(&gen.program);
            assert!(
                diags.iter().any(|d| {
                    d.lint == "constant-condition"
                        && d.severity == Severity::Warning
                        && d.message.contains("always true")
                }),
                "genbug seed {seed} {kind:?}: the defensive masked check must be \
                 decided by the interval analysis"
            );
        }
    }
}
