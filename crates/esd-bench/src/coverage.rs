//! Differential search-coverage harness over the generated bug corpus.
//!
//! [`coverage_matrix`] takes a corpus of `(seed, bug kind)` scenarios from
//! the `esd-workloads` genbug generator and runs every search frontier
//! (proximity, DFS, BFS, random, beam) against each scenario's ground truth,
//! then pushes the whole corpus through the [`JobExecutor`] under every
//! fairness policy. The report answers three questions CI gates on:
//!
//! 1. **Coverage** — is every injected bug found by at least one frontier
//!    within the per-run budget? ([`CoverageReport::all_found`])
//! 2. **Soundness** — does every *reported* goal match the injected ground
//!    truth (fault tag, fault location, arming inputs)? A mismatch is a
//!    false positive. ([`CoverageReport::false_positives`])
//! 3. **Determinism** — does each scenario's winning configuration produce a
//!    byte-identical execution file at 1, 2 and 8 engine threads, and do all
//!    fairness policies agree on every job's outcome?
//!    ([`ScenarioRow::winner_deterministic`],
//!    [`CoverageReport::policies_agree`])
//!
//! The `coverage_matrix` binary wraps this into `BENCH_coverage.json` for
//! the CI `coverage-smoke` job; `tests/differential.rs` asserts the same
//! properties as a regular test over the checked-in smoke corpus.

use crate::secs;
use esd_core::{EsdOptions, JobExecutor, JobSpec, JobVerdict};
use esd_symex::FrontierKind;
use esd_workloads::genbug::{generate, GenConfig, GenSize, GeneratedWorkload, InjectedBugKind};
use serde::Serialize;
use std::time::Instant;

/// The engine thread counts the winner-determinism check re-runs at — the
/// same 1/2/8 matrix the CI determinism job pins for the test suite.
pub const DETERMINISM_THREADS: [usize; 3] = [1, 2, 8];

/// The frontier lineup of the matrix: every [`FrontierKind`] the engine
/// offers, with the beam at the executor tests' width.
pub fn coverage_frontiers() -> Vec<FrontierKind> {
    vec![
        FrontierKind::Proximity,
        FrontierKind::Dfs,
        FrontierKind::Bfs,
        FrontierKind::Random,
        FrontierKind::Beam { width: 16 },
    ]
}

/// The checked-in smoke corpus seeds (reduced mode / CI); ≥ 4 seeds so the
/// smoke matrix is at least 4 seeds × 4 kinds as the acceptance criteria
/// require.
pub fn smoke_seeds() -> Vec<u64> {
    vec![2, 11, 23, 47]
}

/// The full-mode corpus seeds (`ESD_BENCH_FULL=1`).
pub fn full_seeds() -> Vec<u64> {
    (0..12).map(|i| 2 + 9 * i).collect()
}

/// Configuration of one coverage-matrix run.
#[derive(Debug, Clone)]
pub struct CoverageConfig {
    /// The corpus seeds (each crossed with every bug kind).
    pub seeds: Vec<u64>,
    /// Instruction budget per synthesis run.
    pub budget: u64,
    /// Structural size of the generated programs.
    pub size: GenSize,
}

impl CoverageConfig {
    /// The reduced (smoke) configuration CI runs.
    pub fn smoke(budget: u64) -> Self {
        CoverageConfig { seeds: smoke_seeds(), budget, size: GenSize::small() }
    }

    /// The full configuration behind `ESD_BENCH_FULL=1`.
    pub fn full(budget: u64) -> Self {
        CoverageConfig { seeds: full_seeds(), budget, size: GenSize::medium() }
    }
}

/// One `(scenario, frontier)` cell of the matrix.
#[derive(Debug, Clone, Serialize)]
pub struct CoverageCell {
    /// The frontier's display name.
    pub frontier: String,
    /// Whether this frontier synthesized an execution within the budget.
    pub found: bool,
    /// Whether the synthesized execution matched the injected ground truth
    /// (`false` while `found` is a **false positive**; `true` when nothing
    /// was found, vacuously).
    pub truth_ok: bool,
    /// The mismatch description when `found && !truth_ok`.
    pub mismatch: Option<String>,
    /// Search steps the run executed.
    pub steps: u64,
    /// Branches the static feasibility pass pruned from this run's search.
    pub branches_pruned_static: u64,
    /// Solver queries the static feasibility pass answered without calling
    /// the solver.
    pub solver_queries_saved: u64,
    /// Preemption forks the static race-pair candidate set pruned from this
    /// run's search (always 0 outside race-preemption scenarios).
    pub preemptions_pruned_static: u64,
    /// States this run's search forked (including the initial state) — the
    /// number the candidate gating shrinks on race scenarios.
    pub states_created: u64,
    /// Wall-clock seconds of the run.
    pub secs: f64,
}

/// One corpus scenario: a `(seed, kind)` pair, its generated program, and
/// the per-frontier cells.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioRow {
    /// The generated workload's name.
    pub name: String,
    /// The generator seed.
    pub seed: u64,
    /// The injected bug kind's slug.
    pub kind: String,
    /// One cell per frontier, in [`coverage_frontiers`] order.
    pub cells: Vec<CoverageCell>,
    /// How many frontiers found the bug.
    pub found_by: usize,
    /// The fastest (by steps) frontier that found the bug with correct
    /// ground truth.
    pub winner: Option<String>,
    /// Whether the winner's execution file is byte-identical when
    /// re-synthesized at every [`DETERMINISM_THREADS`] engine thread count
    /// (`true` vacuously when no frontier won).
    pub winner_deterministic: bool,
}

/// The per-policy outcome of one corpus job in the policy differential.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyJobRow {
    /// The job's label (the generated workload name).
    pub label: String,
    /// Per-policy `(policy name, verdict, execution JSON)` — the differential
    /// asserts every policy's verdict and execution agree.
    pub agree: bool,
    /// The verdict under the first policy (they all must match it).
    pub verdict: String,
}

/// The machine-readable result of [`coverage_matrix`], serialized to
/// `BENCH_coverage.json` by the `coverage_matrix` binary and gated in CI.
#[derive(Debug, Clone, Serialize)]
pub struct CoverageReport {
    /// `"reduced"` (smoke / CI) or `"full"` (`ESD_BENCH_FULL=1`).
    pub mode: &'static str,
    /// Whether static branch-feasibility pruning was on for the matrix
    /// (`ESD_STATIC_PRUNING`, default on).
    pub static_pruning: bool,
    /// Branches the static feasibility pass pruned, summed over every cell.
    pub branches_pruned_static: u64,
    /// Solver queries the static feasibility pass saved, summed over every
    /// cell.
    pub solver_queries_saved: u64,
    /// Whether race-preemption forks were bounded by the static race-pair
    /// candidate set (`ESD_RACE_CANDIDATES`, default on).
    pub race_candidate_pruning: bool,
    /// Preemption forks the candidate set pruned, summed over every cell.
    pub preemptions_pruned_static: u64,
    /// States forked by the race-preemption scenarios' cells — the number
    /// the candidate gating shrinks (compare across `ESD_RACE_CANDIDATES=0/1`
    /// runs).
    pub race_states_created: u64,
    /// Instruction budget per synthesis run.
    pub budget: u64,
    /// The corpus seeds.
    pub seeds: Vec<u64>,
    /// The frontier lineup, by display name.
    pub frontiers: Vec<String>,
    /// The fairness policies of the executor differential.
    pub policies: Vec<String>,
    /// One row per `(seed, kind)` scenario.
    pub scenarios: Vec<ScenarioRow>,
    /// Scenario count (`seeds × kinds`).
    pub scenarios_total: usize,
    /// Scenarios found by at least one frontier.
    pub scenarios_found: usize,
    /// Per-job policy agreement over the corpus.
    pub policy_jobs: Vec<PolicyJobRow>,
    /// Wall-clock seconds for the whole matrix.
    pub total_wall_secs: f64,
}

impl CoverageReport {
    /// Coverage gate: every injected bug was found by ≥ 1 frontier.
    pub fn all_found(&self) -> bool {
        self.scenarios_found == self.scenarios_total
    }

    /// Soundness gate: the `(scenario, frontier)` cells that reported a goal
    /// not matching the injected ground truth.
    pub fn false_positives(&self) -> Vec<(&str, &CoverageCell)> {
        self.scenarios
            .iter()
            .flat_map(|s| s.cells.iter().map(move |c| (s.name.as_str(), c)))
            .filter(|(_, c)| c.found && !c.truth_ok)
            .collect()
    }

    /// Determinism gate (engine half): every winner replays byte-identical
    /// across the thread matrix.
    pub fn winners_deterministic(&self) -> bool {
        self.scenarios.iter().all(|s| s.winner_deterministic)
    }

    /// Determinism gate (executor half): every fairness policy produced the
    /// identical outcome for every corpus job.
    pub fn policies_agree(&self) -> bool {
        self.policy_jobs.iter().all(|j| j.agree)
    }
}

/// The corpus of a config: every seed crossed with every bug kind, in
/// stable (seed-major, [`InjectedBugKind::ALL`]-minor) order.
pub fn corpus(config: &CoverageConfig) -> Vec<GeneratedWorkload> {
    config
        .seeds
        .iter()
        .flat_map(|&seed| {
            InjectedBugKind::ALL
                .iter()
                .map(move |&kind| generate(&GenConfig { seed, kind, size: config.size }))
        })
        .collect()
}

/// The synthesis options one matrix cell runs with. Race-directed
/// preemptions follow the scenario's ground truth (they are part of what a
/// race bug *needs*, not a per-frontier variable).
fn cell_options(w: &GeneratedWorkload, frontier: FrontierKind, budget: u64) -> EsdOptions {
    EsdOptions::builder()
        .max_steps(budget)
        .frontier(frontier)
        .with_race_detection(w.truth.needs_race_preemptions)
        .static_pruning(crate::static_pruning_from_env())
        .race_candidate_pruning(crate::race_candidates_from_env())
        .build()
}

/// Runs the full differential matrix for a config: every scenario × every
/// frontier, the winner-determinism re-runs, and the fairness-policy
/// differential over the whole corpus.
pub fn coverage_matrix(config: &CoverageConfig) -> CoverageReport {
    let started = Instant::now();
    let frontiers = coverage_frontiers();
    let corpus = corpus(config);

    let mut scenarios = Vec::with_capacity(corpus.len());
    for (idx, w) in corpus.iter().enumerate() {
        let mut cells = Vec::with_capacity(frontiers.len());
        for &frontier in &frontiers {
            let esd = esd_core::Esd::new(cell_options(w, frontier, config.budget));
            let run_started = Instant::now();
            let result = esd.synthesize_goal(
                &w.program,
                w.truth.goal.clone(),
                w.truth.needs_race_preemptions,
            );
            let elapsed = secs(run_started.elapsed());
            let cell = match result {
                Ok(report) => {
                    let mismatch = w.truth.matches(&report.execution).err();
                    CoverageCell {
                        frontier: frontier.to_string(),
                        found: true,
                        truth_ok: mismatch.is_none(),
                        mismatch,
                        steps: report.stats.steps,
                        branches_pruned_static: report.stats.branches_pruned_static,
                        solver_queries_saved: report.stats.solver_queries_saved,
                        preemptions_pruned_static: report.stats.preemptions_pruned_static,
                        states_created: report.stats.states_created,
                        secs: elapsed,
                    }
                }
                Err(_) => CoverageCell {
                    frontier: frontier.to_string(),
                    found: false,
                    truth_ok: true,
                    mismatch: None,
                    steps: 0,
                    branches_pruned_static: 0,
                    solver_queries_saved: 0,
                    preemptions_pruned_static: 0,
                    states_created: 0,
                    secs: elapsed,
                },
            };
            cells.push(cell);
        }
        let winner = cells
            .iter()
            .zip(&frontiers)
            .filter(|(c, _)| c.found && c.truth_ok)
            .min_by_key(|(c, _)| c.steps)
            .map(|(c, f)| (c.frontier.clone(), *f));
        let winner_deterministic = match &winner {
            Some((_, frontier)) => winner_is_deterministic(w, *frontier, config.budget),
            None => true,
        };
        let row = ScenarioRow {
            name: w.name.clone(),
            // Corpus order is seed-major over the kinds.
            seed: config.seeds[idx / InjectedBugKind::ALL.len()],
            kind: w.truth.kind.slug().to_string(),
            found_by: cells.iter().filter(|c| c.found && c.truth_ok).count(),
            winner: winner.map(|(name, _)| name),
            winner_deterministic,
            cells,
        };
        // Full-mode sweeps run for many minutes per scenario; stderr progress
        // keeps long runs observable without touching the report on stdout.
        eprintln!(
            "[{}/{}] {}: found by {}/{} frontiers, winner {} ({:.1}s)",
            idx + 1,
            corpus.len(),
            row.name,
            row.found_by,
            frontiers.len(),
            row.winner.as_deref().unwrap_or("NONE"),
            secs(started.elapsed()),
        );
        scenarios.push(row);
    }

    let policies = vec![
        "round-robin".to_string(),
        "weighted-by-priority".to_string(),
        "deadline-first".to_string(),
    ];
    let policy_jobs = policy_differential(&corpus, config.budget);

    let scenarios_found = scenarios.iter().filter(|s| s.found_by > 0).count();
    CoverageReport {
        mode: if crate::full_mode() { "full" } else { "reduced" },
        static_pruning: crate::static_pruning_from_env(),
        branches_pruned_static: scenarios
            .iter()
            .flat_map(|s| &s.cells)
            .map(|c| c.branches_pruned_static)
            .sum(),
        solver_queries_saved: scenarios
            .iter()
            .flat_map(|s| &s.cells)
            .map(|c| c.solver_queries_saved)
            .sum(),
        race_candidate_pruning: crate::race_candidates_from_env(),
        preemptions_pruned_static: scenarios
            .iter()
            .flat_map(|s| &s.cells)
            .map(|c| c.preemptions_pruned_static)
            .sum(),
        race_states_created: corpus
            .iter()
            .zip(&scenarios)
            .filter(|(w, _)| w.truth.needs_race_preemptions)
            .flat_map(|(_, s)| &s.cells)
            .map(|c| c.states_created)
            .sum(),
        budget: config.budget,
        seeds: config.seeds.clone(),
        frontiers: frontiers.iter().map(|f| f.to_string()).collect(),
        policies,
        scenarios_total: scenarios.len(),
        scenarios_found,
        scenarios,
        policy_jobs,
        total_wall_secs: secs(started.elapsed()),
    }
}

/// Re-synthesizes a scenario's winning configuration at every
/// [`DETERMINISM_THREADS`] count and checks the execution files are
/// byte-identical.
fn winner_is_deterministic(w: &GeneratedWorkload, frontier: FrontierKind, budget: u64) -> bool {
    let mut baseline: Option<String> = None;
    for threads in DETERMINISM_THREADS {
        let options = EsdOptions::builder()
            .max_steps(budget)
            .frontier(frontier)
            .with_race_detection(w.truth.needs_race_preemptions)
            .threads(threads)
            .static_pruning(crate::static_pruning_from_env())
            .race_candidate_pruning(crate::race_candidates_from_env())
            .build();
        let result = esd_core::Esd::new(options).synthesize_goal(
            &w.program,
            w.truth.goal.clone(),
            w.truth.needs_race_preemptions,
        );
        let json = match result {
            Ok(report) => report.execution.to_json(),
            Err(_) => return false,
        };
        match &baseline {
            None => baseline = Some(json),
            Some(expected) if *expected == json => {}
            Some(_) => return false,
        }
    }
    true
}

/// Runs the corpus through the [`JobExecutor`] under each fairness policy
/// and reports, per job, whether every policy produced the identical
/// verdict and execution file — the service-layer half of the determinism
/// contract (scheduling arbitration must never leak into results).
pub fn policy_differential(corpus: &[GeneratedWorkload], budget: u64) -> Vec<PolicyJobRow> {
    let specs = |threads: usize| -> Vec<JobSpec> {
        corpus
            .iter()
            .map(|w| {
                JobSpec::new(&w.name, &w.program, w.truth.goal.clone()).options(
                    EsdOptions::builder()
                        .max_steps(budget)
                        .with_race_detection(w.truth.needs_race_preemptions)
                        .threads(threads)
                        .static_pruning(crate::static_pruning_from_env())
                        .race_candidate_pruning(crate::race_candidates_from_env())
                        .build(),
                )
            })
            .collect()
    };
    let executors = [
        JobExecutor::round_robin(),
        JobExecutor::weighted_by_priority(),
        JobExecutor::deadline_first(),
    ];
    let mut per_policy: Vec<Vec<(JobVerdict, Option<String>)>> = Vec::new();
    for executor in executors {
        let outcomes = executor.slice_rounds(256).run_batch(specs(1));
        per_policy.push(
            outcomes
                .into_iter()
                .map(|o| {
                    let json = o.report().map(|r| r.execution.to_json());
                    (o.verdict, json)
                })
                .collect(),
        );
    }
    corpus
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let first = &per_policy[0][i];
            let agree = per_policy.iter().all(|p| p[i] == *first);
            PolicyJobRow { label: w.name.clone(), agree, verdict: format!("{:?}", first.0) }
        })
        .collect()
}

/// Renders the coverage report as tables.
pub fn print_coverage(report: &CoverageReport) {
    println!(
        "Coverage matrix: {} scenarios ({} seeds × {} kinds) × {} frontiers, \
         budget={} ({})",
        report.scenarios_total,
        report.seeds.len(),
        InjectedBugKind::ALL.len(),
        report.frontiers.len(),
        report.budget,
        report.mode,
    );
    let mut header = format!("{:<24}", "scenario");
    for f in &report.frontiers {
        header.push_str(&format!(" {f:>10}"));
    }
    println!("{header} {:>12} {:>6}", "winner", "det");
    for s in &report.scenarios {
        let mut row = format!("{:<24}", s.name);
        for c in &s.cells {
            let mark = if c.found && c.truth_ok {
                format!("{}k", c.steps / 1000)
            } else if c.found {
                "FALSE+".into()
            } else {
                "-".into()
            };
            row.push_str(&format!(" {mark:>10}"));
        }
        println!(
            "{row} {:>12} {:>6}",
            s.winner.as_deref().unwrap_or("NONE"),
            if s.winner_deterministic { "yes" } else { "NO" },
        );
    }
    println!(
        "coverage: {}/{} found · {} false positives · winners deterministic: {} · \
         policies agree: {} · {:.1}s",
        report.scenarios_found,
        report.scenarios_total,
        report.false_positives().len(),
        if report.winners_deterministic() { "yes" } else { "NO" },
        if report.policies_agree() { "yes" } else { "NO" },
        report.total_wall_secs,
    );
    println!(
        "static pruning {}: {} branches pruned, {} solver queries saved",
        if report.static_pruning { "on" } else { "off" },
        report.branches_pruned_static,
        report.solver_queries_saved,
    );
    println!(
        "race candidates {}: {} preemption forks pruned, {} states forked on race scenarios",
        if report.race_candidate_pruning { "on" } else { "off" },
        report.preemptions_pruned_static,
        report.race_states_created,
    );
}
