//! Differential search-coverage matrix over the generated bug corpus
//! (`BENCH_coverage.json`).
//!
//! Generates the seeded bug corpus (N seeds × 4 injected bug kinds), runs
//! every search frontier against each scenario's ground truth, re-runs each
//! winner at 1/2/8 engine threads, and pushes the corpus through the
//! multi-job executor under every fairness policy — human-readable on
//! stdout, machine-readable as JSON.
//!
//! * Default mode is the *reduced* smoke corpus CI runs (`coverage-smoke`
//!   job); `ESD_BENCH_FULL=1` widens the seed set and enlarges the
//!   generated programs.
//! * The JSON lands in `BENCH_coverage.json`, or in the first CLI argument
//!   ending in `.json`, or in `$ESD_BENCH_OUT`.
//! * Exit codes gate CI: 2 = an injected bug was missed by every frontier,
//!   3 = a false-positive goal report or a non-deterministic winner,
//!   4 = the fairness policies disagreed on a job outcome.

use esd_bench::coverage::{coverage_matrix, print_coverage, CoverageConfig};
use esd_bench::full_mode;

/// Reduced-budget (smoke) instruction budget per synthesis run.
const SMOKE_BUDGET: u64 = 4_000_000;
/// Full-mode instruction budget per synthesis run.
const FULL_BUDGET: u64 = 16_000_000;

fn out_path() -> String {
    std::env::args()
        .skip(1)
        .find(|a| a.ends_with(".json"))
        .or_else(|| std::env::var("ESD_BENCH_OUT").ok())
        .unwrap_or_else(|| "BENCH_coverage.json".into())
}

fn main() {
    let config = if full_mode() {
        CoverageConfig::full(FULL_BUDGET)
    } else {
        CoverageConfig::smoke(SMOKE_BUDGET)
    };
    let report = coverage_matrix(&config);
    print_coverage(&report);

    let path = out_path();
    let json = serde_json::to_string_pretty(&report).expect("the report serializes");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");

    if !report.all_found() {
        eprintln!(
            "FAIL: {}/{} injected bugs found",
            report.scenarios_found, report.scenarios_total
        );
        for s in report.scenarios.iter().filter(|s| s.found_by == 0) {
            eprintln!("  {}: missed by every frontier (budget={})", s.name, report.budget);
        }
        std::process::exit(2);
    }
    let false_positives = report.false_positives();
    if !false_positives.is_empty() || !report.winners_deterministic() {
        for (name, cell) in &false_positives {
            eprintln!(
                "FAIL: {name} [{}]: false positive — {}",
                cell.frontier,
                cell.mismatch.as_deref().unwrap_or("?")
            );
        }
        for s in report.scenarios.iter().filter(|s| !s.winner_deterministic) {
            eprintln!(
                "FAIL: {}: winner {} is not byte-identical across 1/2/8 threads",
                s.name,
                s.winner.as_deref().unwrap_or("?")
            );
        }
        std::process::exit(3);
    }
    if !report.policies_agree() {
        for j in report.policy_jobs.iter().filter(|j| !j.agree) {
            eprintln!("FAIL: {}: fairness policies disagree on the outcome", j.label);
        }
        std::process::exit(4);
    }
}
