//! Regenerates Figure 4 (BPF: synthesis time vs program size in KLOC).
fn main() {
    let rows =
        esd_bench::fig3(&esd_bench::fig3_branch_counts(), esd_bench::ESD_BUDGET, esd_bench::KC_CAP);
    esd_bench::print_fig4(&rows);
}
