//! Regenerates Figure 4 (BPF: synthesis time vs program size in KLOC).
//!
//! The ESD search frontier is selectable, to compare frontiers on the same
//! sweep: `fig4 [dfs|bfs|random|proximity|beam[:width]]`, or the `ESD_FRONTIER`
//! environment variable (default: proximity).
fn main() {
    let frontier = esd_bench::frontier_from_args();
    let rows = esd_bench::fig3(
        &esd_bench::fig3_branch_counts(),
        esd_bench::ESD_BUDGET,
        esd_bench::KC_CAP,
        frontier,
    );
    esd_bench::print_fig4(&rows, frontier);
}
