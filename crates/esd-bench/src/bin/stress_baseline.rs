//! The §7.2 brute-force baseline: bounded random testing of every workload.
fn main() {
    println!("Stress/random-testing baseline (expected: no failures reproduced)");
    println!("{:<20} {:>10} {:>14}", "workload", "failed?", "total steps");
    for (name, failed, steps) in esd_bench::stress_baseline(100) {
        println!("{:<20} {:>10} {:>14}", name, if failed { "YES" } else { "no" }, steps);
    }
}
