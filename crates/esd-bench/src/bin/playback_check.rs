//! §7.1 playback check: every synthesized execution replays deterministically.
fn main() {
    println!("{:<20} {:>24}", "workload", "replays deterministically");
    for (name, ok) in esd_bench::playback_check(esd_bench::ESD_BUDGET, 3) {
        println!("{:<20} {:>24}", name, if ok { "yes" } else { "NO" });
    }
}
