//! Multi-job executor throughput benchmark (`BENCH_executor.json`).
//!
//! Submits a mixed batch of ≥ 4 workload bugs (deadlocks and crashes) to a
//! round-robin [`esd_core::JobExecutor`], drains it, and reports per-job
//! wall time plus total batch throughput — human-readable on stdout and
//! machine-readable as JSON.
//!
//! * Default mode is the *reduced-budget* smoke configuration CI runs
//!   (`bench-smoke` job); `ESD_BENCH_FULL=1` raises the budget and extends
//!   the batch with BPF jobs.
//! * The JSON lands in `BENCH_executor.json`, or in the first CLI argument
//!   ending in `.json`, or in `$ESD_BENCH_OUT`.
//! * `threads:<n>` / `ESD_THREADS` select the engine thread count per job;
//!   `ESD_STATIC_PRUNING=0` switches the static feasibility pass off and
//!   `ESD_RACE_CANDIDATES=0` switches the static race-candidate preemption
//!   gating off.
//! * `pool:<n>` / `ESD_POOL` select the executor worker-pool size of the
//!   cross-job parallel leg; the report records the pool size and the
//!   cross-job speedup over the serial baseline.
//! * Exits non-zero when any job of the batch fails to synthesize — the CI
//!   gate on the throughput trajectory — (exit 4) when static pruning is
//!   on but the batch reports zero pruned branches or zero saved solver
//!   queries, (exit 5) when race-candidate pruning is on but the batch's
//!   race-mode job reports zero pruned preemption forks, and (exit 6) when
//!   the cross-job parallel leg's execution files diverge from the serial
//!   baseline.

use esd_bench::{executor_throughput, full_mode, print_executor_throughput, threads_from_args};

/// Reduced-budget (smoke) instruction budget per job.
const SMOKE_BUDGET: u64 = 4_000_000;
/// Full-mode instruction budget per job.
const FULL_BUDGET: u64 = 16_000_000;
/// Base slice length in rounds — small enough that the batch genuinely
/// interleaves (every job advances before any job finishes its search).
const SLICE_ROUNDS: u64 = 128;

fn out_path() -> String {
    std::env::args()
        .skip(1)
        .find(|a| a.ends_with(".json"))
        .or_else(|| std::env::var("ESD_BENCH_OUT").ok())
        .unwrap_or_else(|| "BENCH_executor.json".into())
}

fn main() {
    let budget = if full_mode() { FULL_BUDGET } else { SMOKE_BUDGET };
    let report = executor_throughput(budget, SLICE_ROUNDS, threads_from_args());
    print_executor_throughput(&report);

    let path = out_path();
    let json = serde_json::to_string_pretty(&report).expect("the report serializes");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");

    // Collect every failure before exiting, so a multi-job breakage is
    // debuggable from one CI log instead of one failure per re-run.
    let unsynthesized: Vec<&esd_bench::ExecutorJobRow> =
        report.jobs.iter().filter(|j| !j.synthesized).collect();
    let unreplayed: Vec<&esd_bench::ExecutorJobRow> =
        report.jobs.iter().filter(|j| j.synthesized && !j.replays).collect();
    if !unsynthesized.is_empty() {
        eprintln!("FAIL: {}/{} jobs synthesized", report.jobs_synthesized, report.jobs_total);
        for j in &unsynthesized {
            eprintln!(
                "  {}: no execution within budget={} ({} slices, {} rounds, {} steps, {:.3}s)",
                j.label, budget, j.slices, j.rounds, j.steps, j.wall_secs
            );
        }
        for j in &unreplayed {
            eprintln!("  {}: synthesized but did not replay", j.label);
        }
        std::process::exit(2);
    }
    if !unreplayed.is_empty() {
        eprintln!("FAIL: {} synthesized execution(s) did not replay", unreplayed.len());
        for j in &unreplayed {
            eprintln!(
                "  {}: playback diverged ({} slices, {} rounds, {} steps, {:.3}s)",
                j.label, j.slices, j.rounds, j.steps, j.wall_secs
            );
        }
        std::process::exit(3);
    }
    // When the static phase is on, the standard batch carries branches the
    // interval analysis can decide — both counters sitting at zero means the
    // pruning plumbing silently fell out, which CI must notice.
    if report.static_pruning
        && (report.branches_pruned_static == 0 || report.solver_queries_saved == 0)
    {
        eprintln!(
            "FAIL: static pruning is on but the batch reports {} branches pruned \
             and {} solver queries saved",
            report.branches_pruned_static, report.solver_queries_saved
        );
        std::process::exit(4);
    }
    // The batch always carries a race-mode genbug DataRace job whose program
    // is full of thread-local yields the candidate set should prune — zero
    // pruned preemptions means the race-candidate plumbing silently fell out.
    if report.race_candidate_pruning && report.preemptions_pruned_static == 0 {
        eprintln!(
            "FAIL: race-candidate pruning is on but the batch reports zero \
             pruned preemption forks ({} states forked in race mode)",
            report.race_states_created
        );
        std::process::exit(5);
    }
    // The cross-job parallel leg (batch_width × pool_size) must synthesize
    // byte-identical execution files to the serial baseline — the executor's
    // determinism contract, gated per batch job.
    if !report.parallel_divergence.is_empty() {
        eprintln!(
            "FAIL: parallel execution (width={}, pool={}) diverged from the serial \
             baseline on: {}",
            report.batch_width,
            report.executor_pool_size,
            report.parallel_divergence.join(", ")
        );
        std::process::exit(6);
    }
}
