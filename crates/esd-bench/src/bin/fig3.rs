//! Regenerates Figure 3 (BPF: synthesis time vs number of branches).
//!
//! The ESD search frontier is selectable, to compare frontiers on the same
//! sweep: `fig3 [dfs|bfs|random|proximity|beam[:width]]`, or the `ESD_FRONTIER`
//! environment variable (default: proximity). The engine thread count for
//! beam runs: `threads:<n>` positional or `ESD_THREADS` (default: 1).
fn main() {
    let frontier = esd_bench::frontier_from_args();
    let threads = esd_bench::threads_from_args();
    let rows = esd_bench::fig3(
        &esd_bench::fig3_branch_counts(),
        esd_bench::ESD_BUDGET,
        esd_bench::KC_CAP,
        frontier,
        threads,
    );
    esd_bench::print_fig3(&rows, frontier, threads);
}
