//! Regenerates Figure 3 (BPF: synthesis time vs number of branches).
fn main() {
    let rows =
        esd_bench::fig3(&esd_bench::fig3_branch_counts(), esd_bench::ESD_BUDGET, esd_bench::KC_CAP);
    esd_bench::print_fig3(&rows);
}
