//! Regenerates Figure 2 (ESD vs KC-DFS vs KC-RandPath path-synthesis time).
//!
//! The ESD column's search frontier is selectable, to compare frontiers on
//! the same workloads: `fig2 [dfs|bfs|random|proximity|beam[:width]]`, or the
//! `ESD_FRONTIER` environment variable (default: proximity). The engine
//! thread count for beam runs is selectable too: a `threads:<n>` positional
//! (`fig2 beam:16 threads:4`) or the `ESD_THREADS` environment variable
//! (default: 1; `0`/`auto` = all cores).
fn main() {
    let frontier = esd_bench::frontier_from_args();
    let threads = esd_bench::threads_from_args();
    let rows = esd_bench::fig2(esd_bench::ESD_BUDGET, esd_bench::KC_CAP, frontier, threads);
    esd_bench::print_fig2(&rows, frontier, threads);
}
