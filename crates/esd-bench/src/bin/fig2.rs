//! Regenerates Figure 2 (ESD vs KC-DFS vs KC-RandPath path-synthesis time).
//!
//! The ESD column's search frontier is selectable, to compare frontiers on
//! the same workloads: `fig2 [dfs|bfs|random|proximity|beam[:width]]`, or the
//! `ESD_FRONTIER` environment variable (default: proximity).
fn main() {
    let frontier = esd_bench::frontier_from_args();
    let rows = esd_bench::fig2(esd_bench::ESD_BUDGET, esd_bench::KC_CAP, frontier);
    esd_bench::print_fig2(&rows, frontier);
}
