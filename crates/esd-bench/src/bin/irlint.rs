//! IR lint gate over the shipped program corpus.
//!
//! Runs the default lint lineup (`esd_analysis::LintRegistry`) over every
//! program this repository ships — the real-bug analog workloads, the
//! Listing-1 running example, and the smoke-corpus genbug programs — and
//! prints one diagnostic per line plus a per-program summary. This is the
//! CI `lint-gate` job's tool: any `Error`-severity diagnostic fails the run
//! with exit code 2, so an IR-level bug (a lock that is never released, a
//! literal-constant branch) in a checked-in or generated workload is caught
//! before the synthesis benchmarks ever execute it.
//!
//! `irlint --json` emits the same sweep as a single JSON object (the flat
//! diagnostic list plus the severity counts) for editor and dashboard
//! integration; the exit-code contract is identical in both modes.
//!
//! The rendered output is byte-stable; `tests/irlint_golden.rs` pins it as
//! a golden fixture (`ESD_REGEN_GOLDEN=1` regenerates).

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let report = esd_bench::irlint_report();
    if json {
        let payload =
            serde_json::to_string_pretty(&report.json_report()).expect("the report serializes");
        println!("{payload}");
    } else {
        print!("{}", report.text);
        println!(
            "irlint: {} program(s), {} error(s), {} warning(s), {} note(s)",
            report.programs, report.errors, report.warnings, report.notes
        );
    }
    if report.errors > 0 {
        eprintln!("FAIL: {} Error-severity diagnostic(s) in the corpus", report.errors);
        std::process::exit(2);
    }
}
