//! Benchmark harness regenerating the paper's evaluation (§7).
//!
//! Each public function reproduces one table or figure and returns printable
//! rows; the `benches/` targets and `src/bin/` binaries are thin wrappers
//! that run them and print the same rows the paper reports. Absolute times
//! will differ from the paper's 2008-era testbed (and our substrate is an IR
//! interpreter rather than LLVM/Klee); the *shape* — ESD succeeds within
//! seconds-to-minutes, KC hits its cap on the real-bug analogs, synthesis
//! time grows with BPF branch count, stress testing finds nothing — is the
//! reproduction target (see EXPERIMENTS.md).
//!
//! Beyond the paper's figures, the [`coverage`] module runs the generated
//! bug corpus (seeded programs with injected bugs of known kind) through
//! every search frontier and executor fairness policy against ground truth
//! — the differential harness behind the `coverage_matrix` binary and the
//! CI `coverage-smoke` job.

#![deny(missing_docs)]

pub mod coverage;

use esd_core::{
    kc_synthesize, stress_test, Esd, EsdOptions, JobExecutor, JobSpec, JobVerdict, KcStrategy,
    StressConfig,
};
use esd_playback::play;
use esd_symex::{FrontierKind, GoalSpec};
use esd_workloads::real_bugs::{ghttpd_log_overflow, paste_invalid_free, sqlite_recursive_lock};
use esd_workloads::{all_real_bugs, generate_bpf, listing1, BpfConfig, Workload, WorkloadKind};
use serde::Serialize;
use std::time::{Duration, Instant};

/// Default instruction budget for ESD runs.
pub const ESD_BUDGET: u64 = 8_000_000;
/// Default instruction budget for KC runs — the scaled-down analog of the
/// paper's one-hour cap.
pub const KC_CAP: u64 = 1_000_000;

/// Returns true when the full (slow) parameter sweeps are requested via the
/// `ESD_BENCH_FULL` environment variable.
pub fn full_mode() -> bool {
    std::env::var("ESD_BENCH_FULL").map(|v| v == "1").unwrap_or(false)
}

/// The search frontier the ESD side of a benchmark should use, so the fig2 /
/// fig3 / fig4 binaries can compare frontiers: the first positional CLI
/// argument wins (`fig2 dfs`, `fig2 beam:16`), then the `ESD_FRONTIER`
/// environment variable, then the paper's proximity-guided default. Accepted
/// spellings are those of `FrontierKind::from_str`:
/// `dfs|bfs|random|proximity|beam[:width]`.
///
/// These files double as harness=false `cargo bench` targets, and cargo
/// hands every bench binary its `--bench` flag plus any `BENCHNAME` filter
/// as arguments — so when `--bench` is present, unparseable positionals are
/// treated as filters and ignored. In direct invocation an unknown spelling
/// aborts with the parser's message rather than silently measuring the
/// wrong thing.
pub fn frontier_from_args() -> FrontierKind {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let under_cargo_bench = args.iter().any(|a| a == "--bench");
    let positional = args.iter().find(|a| !a.starts_with('-') && !a.starts_with("threads:"));
    let from_env = || {
        std::env::var("ESD_FRONTIER")
            .ok()
            .map(|s| s.parse().unwrap_or_else(|e: String| panic!("{e}")))
            .unwrap_or_default()
    };
    match positional {
        Some(s) => match s.parse() {
            Ok(kind) => kind,
            Err(_) if under_cargo_bench => from_env(),
            Err(e) => panic!("{e}"),
        },
        None => from_env(),
    }
}

/// The engine thread count the ESD side of a benchmark should use, so the
/// fig2 / fig3 / fig4 binaries can measure the multi-threaded beam engine: a
/// `threads:<n>` positional CLI argument wins (`fig2 beam:16 threads:4`),
/// then the `ESD_THREADS` environment variable, then single-threaded.
/// `0` (or `auto`) means "all available parallelism". The thread count never
/// changes what is synthesized — only how fast (see
/// `esd_symex::EngineConfig::threads`).
pub fn threads_from_args() -> usize {
    let parse = |s: &str| -> usize {
        if s.eq_ignore_ascii_case("auto") {
            return 0;
        }
        s.parse().unwrap_or_else(|_| {
            panic!("thread count {s:?} must be a non-negative integer or \"auto\"")
        })
    };
    let from_cli = std::env::args().skip(1).find_map(|a| a.strip_prefix("threads:").map(parse));
    from_cli.or_else(|| std::env::var("ESD_THREADS").ok().map(|s| parse(&s))).unwrap_or(1)
}

/// Whether the static branch-feasibility pruning pass (the ESD §3.2 static
/// phase) should run ahead of the searches the benchmarks launch: the
/// `ESD_STATIC_PRUNING` environment variable, where `0`, `off`, `false` or
/// `no` disables it and anything else — including the variable being unset —
/// leaves it on, matching the engine default. The CI determinism matrix pins
/// one leg to `ESD_STATIC_PRUNING=0` to prove pruning never changes *what*
/// is synthesized, only how much solver work it costs.
pub fn static_pruning_from_env() -> bool {
    match std::env::var("ESD_STATIC_PRUNING") {
        Ok(v) => !matches!(v.trim(), "0" | "off" | "false" | "no"),
        Err(_) => true,
    }
}

/// Whether race-preemption forks should be bounded by the static race-pair
/// candidate set (§4.2's static phase): the `ESD_RACE_CANDIDATES`
/// environment variable, where `0`, `off`, `false` or `no` disables the
/// gating and anything else — including the variable being unset — leaves it
/// on, matching the engine default. The CI determinism matrix pins one leg
/// to `ESD_RACE_CANDIDATES=0` to prove candidate gating never changes *what*
/// is synthesized, only how many preemption forks the search pays for.
pub fn race_candidates_from_env() -> bool {
    match std::env::var("ESD_RACE_CANDIDATES") {
        Ok(v) => !matches!(v.trim(), "0" | "off" | "false" | "no"),
        Err(_) => true,
    }
}

/// The executor worker-pool size the multi-job benchmarks should use for
/// their cross-job parallel leg: a `pool:<n>` positional CLI argument wins
/// (`executor_throughput pool:8`), then the `ESD_POOL` environment variable,
/// then 2. `0` (or `auto`) means "all available parallelism". Like engine
/// threads, the pool size never changes what is synthesized — only how fast
/// the batch drains (see `esd_core::JobExecutor::pool_size`); the
/// `executor_throughput` binary exits non-zero if it ever does.
pub fn pool_from_args() -> usize {
    let parse = |s: &str| -> usize {
        if s.eq_ignore_ascii_case("auto") {
            return 0;
        }
        s.parse().unwrap_or_else(|_| {
            panic!("pool size {s:?} must be a non-negative integer or \"auto\"")
        })
    };
    let from_cli = std::env::args().skip(1).find_map(|a| a.strip_prefix("pool:").map(parse));
    from_cli.or_else(|| std::env::var("ESD_POOL").ok().map(|s| parse(&s))).unwrap_or(2)
}

pub(crate) fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Workload name.
    pub system: String,
    /// "hang" or "crash".
    pub manifestation: &'static str,
    /// Measured synthesis time (None = not synthesized within the budget).
    pub esd_secs: Option<f64>,
    /// Instructions explored by the search.
    pub esd_steps: u64,
    /// The paper's reported time, for side-by-side comparison.
    pub paper_secs: Option<f64>,
    /// Whether the synthesized execution replays to the same failure.
    pub playback_ok: bool,
}

/// Regenerates Table 1: ESD synthesis time for every real-bug analog, plus a
/// playback check of each synthesized execution.
pub fn table1(esd_budget: u64) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for w in all_real_bugs() {
        if w.name.starts_with("ls") || w.name == "listing1" {
            continue; // ls1–ls4 belong to Figure 2; listing1 is the running example.
        }
        rows.push(run_table1_row(&w, esd_budget));
    }
    rows
}

/// Runs one Table-1 row (public so the quick bench targets can reuse it).
pub fn run_table1_row(w: &Workload, esd_budget: u64) -> Table1Row {
    let esd = EsdOptions::builder()
        .max_steps(esd_budget)
        .static_pruning(static_pruning_from_env())
        .synthesizer();
    let start = Instant::now();
    let result = esd.synthesize_goal(&w.program, w.goal(), false);
    let elapsed = start.elapsed();
    let (esd_secs, esd_steps, playback_ok) = match &result {
        Ok(r) => {
            let pb = play(&w.program, &r.execution);
            (Some(secs(elapsed)), r.stats.steps, pb.reproduced)
        }
        Err(_) => (None, 0, false),
    };
    Table1Row {
        system: w.name.clone(),
        manifestation: match w.kind {
            WorkloadKind::Hang => "hang",
            WorkloadKind::Crash => "crash",
        },
        esd_secs,
        esd_steps,
        paper_secs: w.paper_synth_time_secs,
        playback_ok,
    }
}

/// Renders Table 1 in the paper's layout.
pub fn print_table1(rows: &[Table1Row]) {
    println!("Table 1: ESD applied to real bugs (analog workloads)");
    println!(
        "{:<10} {:>14} {:>16} {:>14} {:>12} {:>10}",
        "System", "Manifestation", "ESD synth [s]", "paper [s]", "steps", "replays"
    );
    for r in rows {
        println!(
            "{:<10} {:>14} {:>16} {:>14} {:>12} {:>10}",
            r.system,
            r.manifestation,
            r.esd_secs.map(|s| format!("{s:.2}")).unwrap_or_else(|| "timeout".into()),
            r.paper_secs.map(|s| format!("{s:.0}")).unwrap_or_else(|| "-".into()),
            r.esd_steps,
            if r.playback_ok { "yes" } else { "no" },
        );
    }
}

/// One bar group of Figure 2.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Workload name.
    pub system: String,
    /// ESD synthesis time (None = budget exceeded).
    pub esd_secs: Option<f64>,
    /// KC with DFS (None = cap reached without finding the path).
    pub kc_dfs_secs: Option<f64>,
    /// KC with RandomPath (None = cap reached).
    pub kc_rand_secs: Option<f64>,
}

/// Regenerates Figure 2: time to find a path to the bug, ESD (with the given
/// search frontier and engine thread count) vs the two KC search strategies,
/// on ls1–ls4 and the real-bug analogs.
pub fn fig2(esd_budget: u64, kc_cap: u64, frontier: FrontierKind, threads: usize) -> Vec<Fig2Row> {
    let mut rows = Vec::new();
    for w in all_real_bugs() {
        if w.name == "listing1" {
            continue;
        }
        rows.push(run_fig2_row(&w, esd_budget, kc_cap, frontier, threads));
    }
    rows
}

/// Runs one Figure-2 bar group with the given ESD frontier and thread count.
pub fn run_fig2_row(
    w: &Workload,
    esd_budget: u64,
    kc_cap: u64,
    frontier: FrontierKind,
    threads: usize,
) -> Fig2Row {
    let goal = w.goal();
    let esd = EsdOptions::builder()
        .max_steps(esd_budget)
        .frontier(frontier)
        .threads(threads)
        .static_pruning(static_pruning_from_env())
        .synthesizer();
    let start = Instant::now();
    let esd_secs =
        esd.synthesize_goal(&w.program, goal.clone(), false).ok().map(|_| secs(start.elapsed()));
    let dfs = kc_synthesize(&w.program, goal.clone(), KcStrategy::Dfs, kc_cap);
    let rand = kc_synthesize(&w.program, goal, KcStrategy::RandomPath { seed: 11 }, kc_cap);
    Fig2Row {
        system: w.name.clone(),
        esd_secs,
        kc_dfs_secs: dfs.execution.as_ref().map(|_| secs(dfs.elapsed)),
        kc_rand_secs: rand.execution.as_ref().map(|_| secs(rand.elapsed)),
    }
}

/// Renders Figure 2 as a table (one row per bar group; "cap" marks the bars
/// that fade out at the top of the paper's plot).
pub fn print_fig2(rows: &[Fig2Row], frontier: FrontierKind, threads: usize) {
    println!(
        "Figure 2: time to find a path to the bug — \
         ESD[{frontier}, threads={threads}] vs KC(DFS) vs KC(RandPath)"
    );
    println!("{:<10} {:>12} {:>12} {:>14}", "System", "ESD [s]", "KC-DFS [s]", "KC-Rand [s]");
    let fmt = |v: &Option<f64>| v.map(|s| format!("{s:.2}")).unwrap_or_else(|| "cap".into());
    for r in rows {
        println!(
            "{:<10} {:>12} {:>12} {:>14}",
            r.system,
            fmt(&r.esd_secs),
            fmt(&r.kc_dfs_secs),
            fmt(&r.kc_rand_secs)
        );
    }
}

/// One point of Figures 3 and 4.
#[derive(Debug, Clone)]
pub struct BpfRow {
    /// Number of branch instructions in the generated program.
    pub branches: u32,
    /// Estimated program size in KLOC (Figure 4's x-axis).
    pub kloc: f64,
    /// ESD synthesis time (None = budget exceeded).
    pub esd_secs: Option<f64>,
    /// ESD search steps.
    pub esd_steps: u64,
    /// KC (RandomPath) time (None = cap reached).
    pub kc_secs: Option<f64>,
}

/// Regenerates Figure 3 / Figure 4: synthesis time vs BPF program complexity,
/// with the ESD side using the given search frontier and engine thread count.
pub fn fig3(
    branch_counts: &[u32],
    esd_budget: u64,
    kc_cap: u64,
    frontier: FrontierKind,
    threads: usize,
) -> Vec<BpfRow> {
    let mut rows = Vec::new();
    for &branches in branch_counts {
        let w = generate_bpf(&BpfConfig { branches, ..Default::default() });
        let goal = w.goal();
        let esd = EsdOptions::builder()
            .max_steps(esd_budget)
            .frontier(frontier)
            .threads(threads)
            .static_pruning(static_pruning_from_env())
            .synthesizer();
        let start = Instant::now();
        let esd_result = esd.synthesize_goal(&w.program, goal.clone(), false);
        let esd_elapsed = start.elapsed();
        let kc = kc_synthesize(&w.program, goal, KcStrategy::RandomPath { seed: 5 }, kc_cap);
        rows.push(BpfRow {
            branches,
            kloc: w.program.estimated_c_loc() as f64 / 1000.0,
            esd_secs: esd_result.as_ref().ok().map(|_| secs(esd_elapsed)),
            esd_steps: esd_result.as_ref().map(|r| r.stats.steps).unwrap_or(0),
            kc_secs: kc.execution.as_ref().map(|_| secs(kc.elapsed)),
        });
    }
    rows
}

/// The default Figure-3 sweep (2^4 … 2^8 by default; 2^4 … 2^11 as in the
/// paper under `ESD_BENCH_FULL=1`).
pub fn fig3_branch_counts() -> Vec<u32> {
    if full_mode() {
        vec![16, 32, 64, 128, 256, 512, 1024, 2048]
    } else {
        vec![16, 32, 64, 128, 256]
    }
}

/// Renders Figure 3 (x = branches).
pub fn print_fig3(rows: &[BpfRow], frontier: FrontierKind, threads: usize) {
    println!(
        "Figure 3: BPF — synthesis time vs number of branches \
         (ESD[{frontier}, threads={threads}] vs KC-RandPath)"
    );
    println!("{:<10} {:>12} {:>12} {:>12}", "branches", "ESD [s]", "steps", "KC [s]");
    let fmt = |v: &Option<f64>| v.map(|s| format!("{s:.2}")).unwrap_or_else(|| "cap".into());
    for r in rows {
        println!(
            "{:<10} {:>12} {:>12} {:>12}",
            r.branches,
            fmt(&r.esd_secs),
            r.esd_steps,
            fmt(&r.kc_secs)
        );
    }
}

/// Renders Figure 4 (x = program size in KLOC).
pub fn print_fig4(rows: &[BpfRow], frontier: FrontierKind, threads: usize) {
    println!(
        "Figure 4: BPF — synthesis time vs program size (KLOC), \
         ESD[{frontier}, threads={threads}]"
    );
    println!("{:<10} {:>12}", "KLOC", "ESD [s]");
    let fmt = |v: &Option<f64>| v.map(|s| format!("{s:.2}")).unwrap_or_else(|| "cap".into());
    for r in rows {
        println!("{:<10.3} {:>12}", r.kloc, fmt(&r.esd_secs));
    }
}

/// One row of the ablation study over ESD's search heuristics.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which configuration was measured.
    pub config: &'static str,
    /// Synthesis time (None = budget exceeded).
    pub secs: Option<f64>,
    /// Search steps executed.
    pub steps: u64,
}

/// Ablation of the design choices called out in DESIGN.md, on the SQLite
/// analog: proximity guidance always on (it is the strategy itself), each of
/// the other heuristics switched off one at a time.
pub fn ablation(esd_budget: u64) -> Vec<AblationRow> {
    let w = esd_workloads::real_bugs::sqlite_recursive_lock();
    let base =
        || EsdOptions::builder().max_steps(esd_budget).static_pruning(static_pruning_from_env());
    let configs: Vec<(&'static str, EsdOptions)> = vec![
        ("full ESD", base().build()),
        ("no intermediate goals", base().use_intermediate_goals(false).build()),
        ("no critical edges", base().use_critical_edges(false).build()),
        ("no schedule bias", base().schedule_bias(false).build()),
    ];
    configs
        .into_iter()
        .map(|(name, opts)| {
            let esd = Esd::new(opts);
            let start = Instant::now();
            let result = esd.synthesize_goal(&w.program, w.goal(), false);
            AblationRow {
                config: name,
                secs: result.as_ref().ok().map(|_| secs(start.elapsed())),
                steps: result.map(|r| r.stats.steps).unwrap_or(0),
            }
        })
        .collect()
}

/// Renders the ablation table.
pub fn print_ablation(rows: &[AblationRow]) {
    println!("Ablation: ESD heuristics on the SQLite deadlock analog");
    println!("{:<24} {:>12} {:>12}", "configuration", "time [s]", "steps");
    let fmt = |v: &Option<f64>| v.map(|s| format!("{s:.2}")).unwrap_or_else(|| "timeout".into());
    for r in rows {
        println!("{:<24} {:>12} {:>12}", r.config, fmt(&r.secs), r.steps);
    }
}

/// The §7.2 / §7.3 stress-testing baseline: bounded random testing of each
/// workload; the expectation is that nothing fails (deadlocks need both the
/// right inputs and an adverse schedule; crashes need rare inputs).
pub fn stress_baseline(runs: u32) -> Vec<(String, bool, u64)> {
    let mut out = Vec::new();
    for w in all_real_bugs() {
        let result = stress_test(
            &w.program,
            &StressConfig {
                runs,
                max_steps_per_run: 50_000,
                seed: 1,
                fixed_inputs: None,
                input_range: (0, 127),
            },
        );
        out.push((w.name.clone(), result.failed(), result.total_steps));
    }
    let bpf = generate_bpf(&BpfConfig { branches: 64, ..Default::default() });
    let result = stress_test(
        &bpf.program,
        &StressConfig {
            runs,
            max_steps_per_run: 50_000,
            seed: 1,
            fixed_inputs: None,
            input_range: (0, 127),
        },
    );
    out.push((bpf.name.clone(), result.failed(), result.total_steps));
    out
}

/// §7.1 playback check: every synthesized execution must replay
/// deterministically to the same failure, several times in a row.
pub fn playback_check(esd_budget: u64, repetitions: u32) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    for w in all_real_bugs() {
        let esd = EsdOptions::builder()
            .max_steps(esd_budget)
            .static_pruning(static_pruning_from_env())
            .synthesizer();
        let ok = match esd.synthesize_goal(&w.program, w.goal(), false) {
            Ok(r) => (0..repetitions).all(|_| play(&w.program, &r.execution).reproduced),
            Err(_) => false,
        };
        out.push((w.name.clone(), ok));
    }
    out
}

/// One job of the multi-job executor throughput benchmark
/// (`BENCH_executor.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ExecutorJobRow {
    /// The workload/job label.
    pub label: String,
    /// Whether the job synthesized an execution within its budget.
    pub synthesized: bool,
    /// Whether the synthesized execution replayed to the same failure.
    pub replays: bool,
    /// Wall-clock time from the job's admission to its terminal state,
    /// in seconds — this includes the slices spent on the *other* jobs of
    /// the batch, which is the latency a service user observes.
    pub wall_secs: f64,
    /// Executor slices dispatched to the job.
    pub slices: u64,
    /// Search rounds the job advanced.
    pub rounds: u64,
    /// Instructions the job's search executed.
    pub steps: u64,
    /// Branches the static feasibility pass pruned from the job's search.
    pub branches_pruned_static: u64,
    /// Solver queries the static feasibility pass answered without calling
    /// the solver.
    pub solver_queries_saved: u64,
    /// Whether the job ran with race-directed preemptions enabled.
    pub race_mode: bool,
    /// States the job's search forked (including the initial state).
    pub states_created: u64,
    /// Preemption forks the static race-candidate set pruned from the job's
    /// search (always 0 outside race mode).
    pub preemptions_pruned_static: u64,
}

/// The machine-readable result of [`executor_throughput`], serialized to
/// `BENCH_executor.json` by the `executor_throughput` binary and gated in CI
/// (the `bench-smoke` job fails when any batch job fails to synthesize).
#[derive(Debug, Clone, Serialize)]
pub struct ExecutorBenchReport {
    /// The fairness policy the batch ran under.
    pub policy: String,
    /// The executor's base slice length in rounds.
    pub slice_rounds: u64,
    /// Engine worker threads per job.
    pub threads: usize,
    /// Instruction budget per job.
    pub esd_budget: u64,
    /// `"reduced"` (the default / CI smoke mode) or `"full"`
    /// (`ESD_BENCH_FULL=1`).
    pub mode: &'static str,
    /// Whether static branch-feasibility pruning was on for the batch
    /// (`ESD_STATIC_PRUNING`, default on).
    pub static_pruning: bool,
    /// Branches the static feasibility pass pruned, summed over the batch.
    pub branches_pruned_static: u64,
    /// Solver queries the static feasibility pass saved, summed over the
    /// batch.
    pub solver_queries_saved: u64,
    /// Whether race-preemption forks were bounded by the static race-pair
    /// candidate set (`ESD_RACE_CANDIDATES`, default on).
    pub race_candidate_pruning: bool,
    /// Preemption forks the candidate set pruned, summed over the batch.
    pub preemptions_pruned_static: u64,
    /// States forked by the race-mode jobs of the batch — the number the
    /// candidate gating shrinks (compare across `ESD_RACE_CANDIDATES=0/1`
    /// runs).
    pub race_states_created: u64,
    /// Per-job measurements, in submission order.
    pub jobs: Vec<ExecutorJobRow>,
    /// Number of jobs in the batch.
    pub jobs_total: usize,
    /// Number of jobs that synthesized their failure.
    pub jobs_synthesized: usize,
    /// Wall-clock time to drain the whole batch, in seconds.
    pub total_wall_secs: f64,
    /// Batch throughput: synthesized jobs per second of batch wall time.
    pub throughput_jobs_per_sec: f64,
    /// Worker threads of the executor's slice pool in the cross-job
    /// parallel re-run (`pool:<n>` / `ESD_POOL`; the serial baseline always
    /// runs at pool 1, width 1).
    pub executor_pool_size: usize,
    /// Slice-batch width of the cross-job parallel re-run.
    pub batch_width: usize,
    /// Wall-clock time to drain the identical batch with cross-job parallel
    /// slice execution (`batch_width` × `executor_pool_size`), in seconds.
    pub parallel_total_wall_secs: f64,
    /// Cross-job speedup: serial batch wall time over parallel batch wall
    /// time (> 1 means the pool paid off).
    pub cross_job_speedup: f64,
    /// Labels of jobs whose parallel-run execution file (or verdict)
    /// diverged from the serial baseline — must be empty; the
    /// `executor_throughput` binary exits 6 otherwise.
    pub parallel_divergence: Vec<String>,
    /// Checkpoint cadence (in slices) of the durable re-run.
    pub checkpoint_every: u64,
    /// Wall-clock time to drain the identical batch under a *durable*
    /// executor (write-ahead journal + periodic checkpoints), in seconds.
    pub durable_total_wall_secs: f64,
    /// The durability tax: `(durable - plain) / plain`, as a percentage of
    /// the plain batch wall time. Can be slightly negative on a noisy
    /// machine when the true overhead is below the timing jitter.
    pub checkpoint_overhead_pct: f64,
}

impl ExecutorBenchReport {
    /// True when every job of the batch synthesized its failure — the CI
    /// gate of the `bench-smoke` job.
    pub fn all_synthesized(&self) -> bool {
        self.jobs_synthesized == self.jobs_total
    }
}

/// The throughput batch: a mixed bag of deadlocks and crashes, ≥ 4 jobs
/// (the `bench-smoke` acceptance floor), plus a generated data-race job run
/// with race-directed preemptions (the `bool` of each pair) so the batch
/// always exercises — and the bin can gate on — the static race-candidate
/// pruning counters. Extended with BPF jobs in full mode.
fn executor_batch() -> Vec<(Workload, bool)> {
    use esd_workloads::genbug::{generate, GenConfig, InjectedBugKind};
    let mut batch: Vec<(Workload, bool)> = vec![
        (sqlite_recursive_lock(), false),
        (paste_invalid_free(), false),
        (ghttpd_log_overflow(), false),
        (listing1(), false),
    ];
    batch.extend(
        all_real_bugs()
            .into_iter()
            .filter(|w| w.name == "mkfifo" || w.name == "tac")
            .map(|w| (w, false)),
    );
    let race_seed = coverage::smoke_seeds()[0];
    batch.push((
        generate(&GenConfig::new(race_seed, InjectedBugKind::DataRace)).to_workload(),
        true,
    ));
    if full_mode() {
        batch.push((generate_bpf(&BpfConfig { branches: 128, ..Default::default() }), false));
        batch.push((
            generate_bpf(&BpfConfig { branches: 256, seed: 9, ..Default::default() }),
            false,
        ));
    }
    batch
}

/// The multi-job throughput benchmark: submits the batch (a mixed bag of
/// deadlocks and crashes, ≥ 4 jobs; BPF jobs added in full mode) to a
/// round-robin [`JobExecutor`], drains it, replays every synthesized
/// execution, and reports per-job wall time plus total batch throughput.
pub fn executor_throughput(
    esd_budget: u64,
    slice_rounds: u64,
    threads: usize,
) -> ExecutorBenchReport {
    let batch = executor_batch();
    let static_pruning = static_pruning_from_env();
    let race_candidate_pruning = race_candidates_from_env();
    let job_options = |race: bool| {
        EsdOptions::builder()
            .max_steps(esd_budget)
            .threads(threads)
            .static_pruning(static_pruning)
            .race_candidate_pruning(race_candidate_pruning)
            .with_race_detection(race)
            .build()
    };
    let mut executor = JobExecutor::round_robin().slice_rounds(slice_rounds);
    let started = Instant::now();
    let handles: Vec<_> = batch
        .iter()
        .map(|(w, race)| {
            executor.submit(JobSpec::new(&w.name, &w.program, w.goal()).options(job_options(*race)))
        })
        .collect();
    executor.run_until_idle();
    let total_wall = started.elapsed();

    // The identical batch again with cross-job parallel slice execution:
    // full-width batches dispatched to a worker pool. The determinism
    // contract says this may only change the wall time, never the
    // execution files — the divergence list (and the binary's exit 6)
    // holds it to that.
    let executor_pool_size = pool_from_args().max(1);
    let batch_width = batch.len();
    let mut parallel = JobExecutor::round_robin()
        .slice_rounds(slice_rounds)
        .batch_width(batch_width)
        .pool_size(executor_pool_size);
    let parallel_started = Instant::now();
    let parallel_handles: Vec<_> = batch
        .iter()
        .map(|(w, race)| {
            parallel.submit(JobSpec::new(&w.name, &w.program, w.goal()).options(job_options(*race)))
        })
        .collect();
    parallel.run_until_idle();
    let parallel_wall = parallel_started.elapsed();

    // The identical batch again under a durable executor — measures the
    // checkpoint/journal tax a service pays for crash recoverability.
    let checkpoint_every = 8;
    let durable_dir = std::env::temp_dir().join("esd-bench-durable");
    let _ = std::fs::remove_dir_all(&durable_dir);
    let mut durable = JobExecutor::round_robin()
        .slice_rounds(slice_rounds)
        .checkpoint_every(checkpoint_every)
        .durable_dir(&durable_dir)
        .expect("the durable bench directory is writable");
    let durable_started = Instant::now();
    for (w, race) in &batch {
        durable.submit(JobSpec::new(&w.name, &w.program, w.goal()).options(job_options(*race)));
    }
    durable.run_until_idle();
    let durable_wall = durable_started.elapsed();
    drop(durable);
    let _ = std::fs::remove_dir_all(&durable_dir);

    let mut jobs = Vec::with_capacity(batch.len());
    let mut parallel_divergence = Vec::new();
    for (((w, race), handle), parallel_handle) in batch.iter().zip(handles).zip(parallel_handles) {
        let outcome = executor.take(handle).expect("an idle executor finished every job");
        // The parallel leg's result must be indistinguishable: same verdict,
        // byte-identical execution file.
        let parallel_outcome =
            parallel.take(parallel_handle).expect("an idle executor finished every job");
        let serial_exec = outcome.report().map(|r| r.execution.to_json());
        let parallel_exec = parallel_outcome.report().map(|r| r.execution.to_json());
        if outcome.verdict != parallel_outcome.verdict || serial_exec != parallel_exec {
            parallel_divergence.push(outcome.label.clone());
        }
        let synthesized = outcome.verdict == JobVerdict::Found;
        let members = &outcome.result.members;
        let (replays, steps, pruned, saved, states, preempt_pruned) = match outcome.report() {
            Some(report) => (
                play(&w.program, &report.execution).reproduced,
                report.stats.steps,
                report.stats.branches_pruned_static,
                report.stats.solver_queries_saved,
                report.stats.states_created,
                report.stats.preemptions_pruned_static,
            ),
            None => (
                false,
                members.iter().map(|m| m.stats.steps).sum(),
                members.iter().map(|m| m.stats.branches_pruned_static).sum(),
                members.iter().map(|m| m.stats.solver_queries_saved).sum(),
                members.iter().map(|m| m.stats.states_created).sum(),
                members.iter().map(|m| m.stats.preemptions_pruned_static).sum(),
            ),
        };
        jobs.push(ExecutorJobRow {
            label: outcome.label,
            synthesized,
            replays,
            wall_secs: secs(outcome.wall),
            slices: outcome.slices,
            rounds: outcome.rounds,
            steps,
            branches_pruned_static: pruned,
            solver_queries_saved: saved,
            race_mode: *race,
            states_created: states,
            preemptions_pruned_static: preempt_pruned,
        });
    }
    let jobs_synthesized = jobs.iter().filter(|j| j.synthesized).count();
    ExecutorBenchReport {
        policy: "round-robin".into(),
        slice_rounds,
        threads,
        esd_budget,
        mode: if full_mode() { "full" } else { "reduced" },
        static_pruning,
        branches_pruned_static: jobs.iter().map(|j| j.branches_pruned_static).sum(),
        solver_queries_saved: jobs.iter().map(|j| j.solver_queries_saved).sum(),
        race_candidate_pruning,
        preemptions_pruned_static: jobs.iter().map(|j| j.preemptions_pruned_static).sum(),
        race_states_created: jobs.iter().filter(|j| j.race_mode).map(|j| j.states_created).sum(),
        jobs_total: jobs.len(),
        jobs_synthesized,
        total_wall_secs: secs(total_wall),
        throughput_jobs_per_sec: if total_wall.is_zero() {
            0.0
        } else {
            jobs_synthesized as f64 / secs(total_wall)
        },
        executor_pool_size,
        batch_width,
        parallel_total_wall_secs: secs(parallel_wall),
        cross_job_speedup: if parallel_wall.is_zero() {
            0.0
        } else {
            secs(total_wall) / secs(parallel_wall)
        },
        parallel_divergence,
        checkpoint_every,
        durable_total_wall_secs: secs(durable_wall),
        checkpoint_overhead_pct: if total_wall.is_zero() {
            0.0
        } else {
            (secs(durable_wall) - secs(total_wall)) / secs(total_wall) * 100.0
        },
        jobs,
    }
}

/// Renders the executor throughput report as a table.
pub fn print_executor_throughput(report: &ExecutorBenchReport) {
    println!(
        "Executor throughput: {} jobs under {} (slice={} rounds, threads={}, budget={}, {})",
        report.jobs_total,
        report.policy,
        report.slice_rounds,
        report.threads,
        report.esd_budget,
        report.mode,
    );
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>12} {:>8} {:>8} {:>10}",
        "job", "wall [s]", "slices", "rounds", "steps", "pruned", "saved", "replays"
    );
    for j in &report.jobs {
        println!(
            "{:<10} {:>12.3} {:>10} {:>10} {:>12} {:>8} {:>8} {:>10}",
            j.label,
            j.wall_secs,
            j.slices,
            j.rounds,
            j.steps,
            j.branches_pruned_static,
            j.solver_queries_saved,
            if !j.synthesized {
                "FAILED"
            } else if j.replays {
                "yes"
            } else {
                "NO"
            },
        );
    }
    println!(
        "batch: {}/{} synthesized in {:.3}s — {:.2} jobs/s",
        report.jobs_synthesized,
        report.jobs_total,
        report.total_wall_secs,
        report.throughput_jobs_per_sec
    );
    println!(
        "static pruning {}: {} branches pruned, {} solver queries saved",
        if report.static_pruning { "on" } else { "off" },
        report.branches_pruned_static,
        report.solver_queries_saved,
    );
    println!(
        "race candidates {}: {} preemption forks pruned, {} states forked in race mode",
        if report.race_candidate_pruning { "on" } else { "off" },
        report.preemptions_pruned_static,
        report.race_states_created,
    );
    println!(
        "cross-job parallel (width={}, pool={}): {:.3}s — {:.2}x vs serial, {}",
        report.batch_width,
        report.executor_pool_size,
        report.parallel_total_wall_secs,
        report.cross_job_speedup,
        if report.parallel_divergence.is_empty() {
            "byte-identical executions".to_string()
        } else {
            format!("DIVERGED: {}", report.parallel_divergence.join(", "))
        },
    );
    println!(
        "durable re-run (checkpoint every {} slices): {:.3}s — {:+.1}% checkpoint overhead",
        report.checkpoint_every, report.durable_total_wall_secs, report.checkpoint_overhead_pct
    );
}

/// Convenience used by tests and the quick bench targets: synthesize one
/// named workload and return the elapsed time if it succeeded.
pub fn synthesize_one(name: &str, budget: u64) -> Option<Duration> {
    let w = all_real_bugs().into_iter().find(|w| w.name == name)?;
    let esd = EsdOptions::builder()
        .max_steps(budget)
        .static_pruning(static_pruning_from_env())
        .synthesizer();
    let start = Instant::now();
    esd.synthesize_goal(&w.program, w.goal(), false).ok().map(|_| start.elapsed())
}

/// A goal specification for an arbitrary workload, used by the binaries.
pub fn goal_of(w: &Workload) -> GoalSpec {
    w.goal()
}

/// One diagnostic of an `irlint` sweep, flattened into plain serializable
/// fields for the binary's `--json` mode (the lint crate itself carries no
/// serde dependency, so the mirror lives here).
#[derive(Debug, Clone, Serialize)]
pub struct IrlintDiagnostic {
    /// The corpus program the diagnostic was reported on.
    pub program: String,
    /// The reporting pass's name (e.g. `shared-unsynchronized-write`).
    pub lint: &'static str,
    /// `"error"`, `"warning"` or `"note"`.
    pub severity: &'static str,
    /// The function the diagnostic is anchored in.
    pub function: String,
    /// The basic block within the function.
    pub block: u32,
    /// The instruction index within the block (`== insts.len()` = the
    /// block's terminator).
    pub idx: u32,
    /// Human-readable description.
    pub message: String,
}

/// The result of one `irlint` sweep over the shipped program corpus.
#[derive(Debug, Clone)]
pub struct IrlintReport {
    /// The rendered diagnostics: a `=== name ===` header per program
    /// followed by `esd_analysis::lint::render` output, in corpus order.
    pub text: String,
    /// Every diagnostic across the corpus, in stable corpus order — the
    /// machine-readable half behind `irlint --json`.
    pub diagnostics: Vec<IrlintDiagnostic>,
    /// Programs linted.
    pub programs: usize,
    /// `Error`-severity diagnostics across the corpus — the CI `lint-gate`
    /// job fails when this is non-zero.
    pub errors: usize,
    /// `Warning`-severity diagnostics across the corpus.
    pub warnings: usize,
    /// `Note`-severity diagnostics across the corpus.
    pub notes: usize,
}

/// The serializable shape behind `irlint --json`: everything of
/// [`IrlintReport`] except the rendered text (which the golden fixture
/// already pins byte-for-byte in the default mode).
#[derive(Debug, Clone, Serialize)]
pub struct IrlintJsonReport {
    /// Every diagnostic across the corpus, in stable corpus order.
    pub diagnostics: Vec<IrlintDiagnostic>,
    /// Programs linted.
    pub programs: usize,
    /// `Error`-severity diagnostics across the corpus.
    pub errors: usize,
    /// `Warning`-severity diagnostics across the corpus.
    pub warnings: usize,
    /// `Note`-severity diagnostics across the corpus.
    pub notes: usize,
}

impl IrlintReport {
    /// The machine-readable projection printed by `irlint --json`.
    pub fn json_report(&self) -> IrlintJsonReport {
        IrlintJsonReport {
            diagnostics: self.diagnostics.clone(),
            programs: self.programs,
            errors: self.errors,
            warnings: self.warnings,
            notes: self.notes,
        }
    }
}

/// Runs the default lint lineup ([`esd_analysis::LintRegistry`]) over every
/// program this repository ships — the real-bug analog workloads, the
/// Listing-1 running example, and the smoke-corpus genbug programs (the
/// same 4 seeds × 4 kinds the differential matrix exercises) — and renders
/// the diagnostics in stable corpus order. The `irlint` binary prints the
/// text and exits non-zero on any `Error`-severity diagnostic;
/// `tests/irlint_golden.rs` pins the exact bytes.
pub fn irlint_report() -> IrlintReport {
    use esd_analysis::{lint, LintRegistry, Severity};
    use esd_workloads::genbug::{generate, GenConfig, InjectedBugKind};

    let mut corpus: Vec<Workload> = all_real_bugs();
    corpus.push(listing1());
    for seed in coverage::smoke_seeds() {
        for kind in InjectedBugKind::ALL {
            corpus.push(generate(&GenConfig::new(seed, kind)).to_workload());
        }
    }

    let registry = LintRegistry::with_default_lints();
    let mut report = IrlintReport {
        text: String::new(),
        diagnostics: Vec::new(),
        programs: 0,
        errors: 0,
        warnings: 0,
        notes: 0,
    };
    for w in &corpus {
        let diags = registry.run(&w.program);
        report.programs += 1;
        for d in &diags {
            match d.severity {
                Severity::Error => report.errors += 1,
                Severity::Warning => report.warnings += 1,
                Severity::Note => report.notes += 1,
            }
            report.diagnostics.push(IrlintDiagnostic {
                program: w.name.clone(),
                lint: d.lint,
                severity: match d.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                    Severity::Note => "note",
                },
                function: w.program.functions[d.loc.func.0 as usize].name.clone(),
                block: d.loc.block.0,
                idx: d.loc.idx,
                message: d.message.clone(),
            });
        }
        report.text.push_str(&format!("=== {} ===\n", w.name));
        report.text.push_str(&lint::render(&w.program, &diags));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_cover_the_paper_systems() {
        // Tiny budget: this checks the row structure, not synthesis success.
        let rows = table1(20_000);
        let names: Vec<&str> = rows.iter().map(|r| r.system.as_str()).collect();
        for expected in ["sqlite", "hawknl", "ghttpd", "paste", "mknod", "mkdir", "mkfifo", "tac"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn quick_crash_rows_synthesize_and_replay() {
        let w = all_real_bugs().into_iter().find(|w| w.name == "mkfifo").unwrap();
        let row = run_table1_row(&w, 2_000_000);
        assert!(row.esd_secs.is_some());
        assert!(row.playback_ok);
    }

    #[test]
    fn fig3_rows_report_kloc_monotonically() {
        let rows = fig3(&[16, 64], 1_500_000, 10_000, FrontierKind::Proximity, 1);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].kloc < rows[1].kloc);
    }

    /// Every frontier is selectable through the bench plumbing (tiny budgets:
    /// this checks the wiring, not synthesis success).
    #[test]
    fn all_frontiers_are_selectable() {
        let w = all_real_bugs().into_iter().find(|w| w.name == "mkfifo").unwrap();
        for frontier in [
            FrontierKind::Dfs,
            FrontierKind::Bfs,
            FrontierKind::Random,
            FrontierKind::Proximity,
            FrontierKind::beam(),
        ] {
            // Two engine threads on the beam run exercise the worker-pool
            // path end to end through the bench plumbing.
            let row = run_fig2_row(&w, 20_000, 1_000, frontier, 2);
            assert_eq!(row.system, "mkfifo");
        }
    }
}
