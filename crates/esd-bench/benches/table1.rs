//! Regenerates Table 1 of the paper (ESD synthesis time per real bug).
fn main() {
    let rows = esd_bench::table1(esd_bench::ESD_BUDGET);
    esd_bench::print_table1(&rows);
}
