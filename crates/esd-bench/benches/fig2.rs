//! Regenerates Figure 2 (ESD vs KC-DFS vs KC-RandPath path-synthesis time).
fn main() {
    let rows = esd_bench::fig2(esd_bench::ESD_BUDGET, esd_bench::KC_CAP);
    esd_bench::print_fig2(&rows);
}
