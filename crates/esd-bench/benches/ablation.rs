//! Ablation of ESD's search heuristics (DESIGN.md design choices).
fn main() {
    let rows = esd_bench::ablation(esd_bench::ESD_BUDGET);
    esd_bench::print_ablation(&rows);
}
