//! The debugging daemon: an [`InProcessService`] behind a socket.
//!
//! One thread does everything, deterministically interleaved: accept new
//! connections, decode request frames, answer them, pump the executor a
//! bounded number of slice batches, stream subscription events. There are
//! no per-connection threads and no async runtime — connections are
//! non-blocking and the loop multiplexes them, the same single-coordinator
//! shape as the executor itself. Because jobs share nothing and the
//! executor's merge order is fixed, serving a job over the wire cannot
//! change what it synthesizes; the e2e tests pin byte-identical execution
//! files against in-process submission.

use crate::api::{ProgressUpdate, Service};
use crate::error::ServiceError;
use crate::inprocess::InProcessService;
use crate::net::{read_available, write_frame, Stream};
use crate::wire::{decode_request, encode_response, FrameDecoder, WireRequest, WireResponse};
use std::net::{SocketAddr, TcpListener};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::time::Duration;

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener, PathBuf),
}

/// One accepted connection: its stream, its incremental frame decoder, and
/// — once it issued `Subscribe` — the ticket it streams events for.
struct Conn {
    stream: Stream,
    decoder: FrameDecoder,
    /// `Some(ticket)` after this connection subscribed; it then receives
    /// `Event` frames and no further requests are expected on it.
    streaming: Option<u64>,
    /// The subscription's terminal `Done` event has been sent.
    stream_done: bool,
    /// Connection is dead and will be dropped at the end of the turn.
    closed: bool,
}

/// A daemon serving one [`InProcessService`] over TCP or UDS.
pub struct Daemon {
    listener: Listener,
    service: InProcessService,
    conns: Vec<Conn>,
    /// Slice batches pumped per loop turn while jobs are runnable.
    pump_per_turn: u64,
    shutdown: bool,
}

impl Daemon {
    /// Binds a TCP daemon (use port 0 for an OS-assigned port, then
    /// [`local_addr`](Self::local_addr)).
    pub fn bind_tcp(addr: &str, service: InProcessService) -> Result<Self, ServiceError> {
        let listener = TcpListener::bind(addr).map_err(ServiceError::transport)?;
        listener.set_nonblocking(true).map_err(ServiceError::transport)?;
        Ok(Daemon::with_listener(Listener::Tcp(listener), service))
    }

    /// Binds a Unix-domain daemon at `path` (removed on drop).
    #[cfg(unix)]
    pub fn bind_uds(
        path: impl AsRef<Path>,
        service: InProcessService,
    ) -> Result<Self, ServiceError> {
        let path = path.as_ref().to_path_buf();
        // A stale socket file from a crashed daemon blocks bind; remove it.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).map_err(ServiceError::transport)?;
        listener.set_nonblocking(true).map_err(ServiceError::transport)?;
        Ok(Daemon::with_listener(Listener::Uds(listener, path), service))
    }

    fn with_listener(listener: Listener, service: InProcessService) -> Self {
        Daemon { listener, service, conns: Vec::new(), pump_per_turn: 4, shutdown: false }
    }

    /// Sets how many slice batches each loop turn pumps (clamped to ≥ 1).
    /// Larger values favor throughput, smaller ones request latency.
    pub fn pump_per_turn(mut self, n: u64) -> Self {
        self.pump_per_turn = n.max(1);
        self
    }

    /// The TCP daemon's bound address.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            Listener::Uds(..) => None,
        }
    }

    /// Serves until a client sends [`WireRequest::Shutdown`]. The shutdown
    /// turn still flushes every subscription stream that can finish
    /// immediately, then drops all connections.
    pub fn run(&mut self) -> Result<(), ServiceError> {
        while !self.shutdown {
            let worked = self.turn()?;
            if !worked {
                // Nothing accepted, read, pumped or streamed: idle.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        Ok(())
    }

    /// One multiplexer turn; `true` if any work happened.
    fn turn(&mut self) -> Result<bool, ServiceError> {
        let mut worked = self.accept_pending();
        worked |= self.serve_requests();
        if self.service.has_work() {
            worked |= self.service.pump(self.pump_per_turn) > 0;
        }
        worked |= self.stream_events();
        self.conns.retain(|c| !c.closed);
        Ok(worked)
    }

    fn accept_pending(&mut self) -> bool {
        let mut accepted = false;
        loop {
            let stream = match &self.listener {
                Listener::Tcp(l) => match l.accept() {
                    Ok((s, _)) => Stream::Tcp(s),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                },
                #[cfg(unix)]
                Listener::Uds(l, _) => match l.accept() {
                    Ok((s, _)) => Stream::Uds(s),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                },
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            stream.tune();
            self.conns.push(Conn {
                stream,
                decoder: FrameDecoder::new(),
                streaming: None,
                stream_done: false,
                closed: false,
            });
            accepted = true;
        }
        accepted
    }

    /// Reads and answers every complete request frame on every connection.
    fn serve_requests(&mut self) -> bool {
        let mut worked = false;
        for i in 0..self.conns.len() {
            let conn = &mut self.conns[i];
            if conn.closed || conn.streaming.is_some() {
                continue;
            }
            let eof = match read_available(&mut conn.stream, &mut conn.decoder) {
                Ok(eof) => eof,
                Err(_) => {
                    conn.closed = true;
                    continue;
                }
            };
            loop {
                let conn = &mut self.conns[i];
                let payload = match conn.decoder.next_frame() {
                    Ok(Some(p)) => p,
                    Ok(None) => break,
                    Err(error) => {
                        // Corrupt frame: the stream cannot be resynchronized.
                        // Tell the peer why, then drop the connection.
                        let _ = write_frame(
                            &mut conn.stream,
                            &encode_response(&WireResponse::Error { error }),
                        );
                        conn.closed = true;
                        break;
                    }
                };
                worked = true;
                let response = match decode_request(&payload) {
                    Ok(request) => self.handle(i, request),
                    Err(error) => WireResponse::Error { error },
                };
                let conn = &mut self.conns[i];
                if write_frame(&mut conn.stream, &encode_response(&response)).is_err() {
                    conn.closed = true;
                    break;
                }
            }
            let conn = &mut self.conns[i];
            if eof && conn.streaming.is_none() {
                conn.closed = true;
            }
        }
        worked
    }

    fn handle(&mut self, conn_idx: usize, request: WireRequest) -> WireResponse {
        match request {
            WireRequest::Submit { request } => match self.service.submit(request) {
                Ok(ticket) => WireResponse::Ticket { ticket: ticket.id },
                Err(error) => WireResponse::Error { error },
            },
            WireRequest::Poll { ticket } => {
                match self.service.poll(crate::api::JobTicket { id: ticket }) {
                    Ok(status) => WireResponse::Status { status },
                    Err(error) => WireResponse::Error { error },
                }
            }
            WireRequest::Cancel { ticket } => {
                match self.service.cancel(crate::api::JobTicket { id: ticket }) {
                    Ok(cancelled) => WireResponse::Cancelled { cancelled },
                    Err(error) => WireResponse::Error { error },
                }
            }
            WireRequest::Take { ticket } => {
                match self.service.take(crate::api::JobTicket { id: ticket }) {
                    Ok(outcome) => WireResponse::Outcome { outcome: Box::new(outcome) },
                    Err(error) => WireResponse::Error { error },
                }
            }
            WireRequest::Subscribe { ticket } => {
                match self.service.poll(crate::api::JobTicket { id: ticket }) {
                    Ok(_) => {
                        self.conns[conn_idx].streaming = Some(ticket);
                        WireResponse::Subscribed
                    }
                    Err(error) => WireResponse::Error { error },
                }
            }
            WireRequest::Shutdown => {
                self.shutdown = true;
                WireResponse::Bye
            }
        }
    }

    /// Forwards buffered progress to subscribed connections; synthesizes
    /// the terminal `Done` event from the job's status if the stream is
    /// still open when the job turns terminal.
    fn stream_events(&mut self) -> bool {
        let mut worked = false;
        for conn in &mut self.conns {
            let Some(ticket) = conn.streaming else { continue };
            if conn.closed || conn.stream_done {
                continue;
            }
            let mut updates = self.service.drain_updates(ticket);
            let drained_done = updates.iter().any(|u| matches!(u, ProgressUpdate::Done { .. }));
            if !drained_done {
                if let Ok(status) = self.service.poll(crate::api::JobTicket { id: ticket }) {
                    if status.is_terminal() {
                        // Subscribed after the observer's Done was consumed
                        // (or the job had no observer event): close the
                        // stream from the authoritative status.
                        updates.push(ProgressUpdate::Done { status });
                    }
                }
            }
            for update in updates {
                let done = matches!(update, ProgressUpdate::Done { .. });
                worked = true;
                if write_frame(&mut conn.stream, &encode_response(&WireResponse::Event { update }))
                    .is_err()
                {
                    conn.closed = true;
                    break;
                }
                if done {
                    conn.stream_done = true;
                    break;
                }
            }
        }
        worked
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Uds(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
    }
}
