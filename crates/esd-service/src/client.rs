//! The wire client: a [`Service`] implementation speaking the framed
//! protocol to a [`crate::Daemon`].
//!
//! Calls are strict request/response on one blocking connection;
//! [`Service::subscribe`] opens a *second* connection dedicated to the
//! event stream (switched to non-blocking), so progress frames never
//! interleave with responses.

use crate::api::{JobRequest, JobTicket, ProgressUpdate, Service, Subscription, SubscriptionInner};
use crate::error::ServiceError;
use crate::net::{read_available, write_frame, Stream};
use crate::wire::{decode_response, encode_request, FrameDecoder, WireRequest, WireResponse};
use esd_core::{JobOutcome, JobStatus};
use std::io::Read;
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};

/// How the client reaches the daemon (kept to open subscription
/// connections).
#[derive(Clone)]
enum Peer {
    Tcp(String),
    #[cfg(unix)]
    Uds(PathBuf),
}

impl Peer {
    fn connect(&self) -> Result<Stream, ServiceError> {
        let stream = match self {
            Peer::Tcp(addr) => {
                Stream::Tcp(TcpStream::connect(addr.as_str()).map_err(ServiceError::transport)?)
            }
            #[cfg(unix)]
            Peer::Uds(path) => {
                Stream::Uds(UnixStream::connect(path).map_err(ServiceError::transport)?)
            }
        };
        stream.tune();
        Ok(stream)
    }
}

/// A remote [`Service`] over TCP or UDS.
pub struct RemoteClient {
    stream: Stream,
    decoder: FrameDecoder,
    peer: Peer,
}

impl RemoteClient {
    /// Connects over TCP (`host:port`).
    pub fn connect_tcp(addr: impl Into<String>) -> Result<Self, ServiceError> {
        let peer = Peer::Tcp(addr.into());
        Ok(RemoteClient { stream: peer.connect()?, decoder: FrameDecoder::new(), peer })
    }

    /// Connects over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_uds(path: impl AsRef<Path>) -> Result<Self, ServiceError> {
        let peer = Peer::Uds(path.as_ref().to_path_buf());
        Ok(RemoteClient { stream: peer.connect()?, decoder: FrameDecoder::new(), peer })
    }

    /// One blocking request/response round-trip.
    fn call(&mut self, request: &WireRequest) -> Result<WireResponse, ServiceError> {
        write_frame(&mut self.stream, &encode_request(request))?;
        let payload = read_frame_blocking(&mut self.stream, &mut self.decoder)?;
        let response = decode_response(&payload)?;
        if let WireResponse::Error { error } = response {
            return Err(error);
        }
        Ok(response)
    }

    /// Asks the daemon to shut down; consumes the client (the connection
    /// is useless afterwards).
    pub fn shutdown_server(mut self) -> Result<(), ServiceError> {
        match self.call(&WireRequest::Shutdown)? {
            WireResponse::Bye => Ok(()),
            other => Err(unexpected("Bye", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &WireResponse) -> ServiceError {
    ServiceError::protocol(format!("expected {wanted} response, got {got:?}"))
}

/// Blocking read of one complete frame.
fn read_frame_blocking(
    stream: &mut Stream,
    decoder: &mut FrameDecoder,
) -> Result<Vec<u8>, ServiceError> {
    loop {
        if let Some(payload) = decoder.next_frame()? {
            return Ok(payload);
        }
        let mut buf = [0u8; 16 * 1024];
        match stream.read(&mut buf) {
            Ok(0) => return Err(ServiceError::Disconnected),
            Ok(n) => decoder.feed(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ServiceError::transport(e)),
        }
    }
}

impl Service for RemoteClient {
    fn submit(&mut self, request: JobRequest) -> Result<JobTicket, ServiceError> {
        match self.call(&WireRequest::Submit { request })? {
            WireResponse::Ticket { ticket } => Ok(JobTicket { id: ticket }),
            other => Err(unexpected("Ticket", &other)),
        }
    }

    fn poll(&mut self, ticket: JobTicket) -> Result<JobStatus, ServiceError> {
        match self.call(&WireRequest::Poll { ticket: ticket.id })? {
            WireResponse::Status { status } => Ok(status),
            other => Err(unexpected("Status", &other)),
        }
    }

    fn cancel(&mut self, ticket: JobTicket) -> Result<bool, ServiceError> {
        match self.call(&WireRequest::Cancel { ticket: ticket.id })? {
            WireResponse::Cancelled { cancelled } => Ok(cancelled),
            other => Err(unexpected("Cancelled", &other)),
        }
    }

    fn take(&mut self, ticket: JobTicket) -> Result<Option<JobOutcome>, ServiceError> {
        match self.call(&WireRequest::Take { ticket: ticket.id })? {
            WireResponse::Outcome { outcome } => Ok(*outcome),
            other => Err(unexpected("Outcome", &other)),
        }
    }

    fn subscribe(&mut self, ticket: JobTicket) -> Result<Subscription, ServiceError> {
        // Dedicated connection: the daemon turns it into an event stream.
        let mut stream = self.peer.connect()?;
        let mut decoder = FrameDecoder::new();
        write_frame(&mut stream, &encode_request(&WireRequest::Subscribe { ticket: ticket.id }))?;
        let payload = read_frame_blocking(&mut stream, &mut decoder)?;
        match decode_response(&payload)? {
            WireResponse::Subscribed => {}
            WireResponse::Error { error } => return Err(error),
            other => return Err(unexpected("Subscribed", &other)),
        }
        stream.set_nonblocking(true).map_err(ServiceError::transport)?;
        Ok(Subscription {
            inner: SubscriptionInner::Remote(EventStream { stream, decoder, eof: false }),
            finished: false,
        })
    }
}

/// The receiving half of a remote subscription: a non-blocking connection
/// the daemon pushes `Event` frames onto.
pub(crate) struct EventStream {
    stream: Stream,
    decoder: FrameDecoder,
    eof: bool,
}

impl EventStream {
    /// Every update the daemon has streamed so far (non-blocking).
    pub(crate) fn drain(&mut self) -> Result<Vec<ProgressUpdate>, ServiceError> {
        if !self.eof {
            self.eof = read_available(&mut self.stream, &mut self.decoder)?;
        }
        let mut updates = Vec::new();
        while let Some(payload) = self.decoder.next_frame()? {
            match decode_response(&payload)? {
                WireResponse::Event { update } => updates.push(update),
                WireResponse::Error { error } => return Err(error),
                other => return Err(unexpected("Event", &other)),
            }
        }
        Ok(updates)
    }
}
