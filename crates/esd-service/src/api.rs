//! The transport-agnostic service surface: [`JobRequest`] in,
//! [`JobTicket`] out, one [`JobStatus`] everywhere.
//!
//! The [`Service`] trait is implemented by the in-process backend
//! ([`crate::InProcessService`], a thin wrapper over
//! [`esd_core::JobExecutor`]) and by the wire client
//! ([`crate::RemoteClient`], which speaks the framed protocol of
//! [`crate::wire`] to a [`crate::Daemon`]). Client code written against the
//! trait cannot tell the two apart — the determinism tests pin that the
//! synthesized execution files are byte-identical either way.

use crate::error::ServiceError;
use esd_core::{EsdOptions, JobOutcome, JobSpec, JobStatus, ProgressEvent};
use esd_ir::Program;
use esd_symex::GoalSpec;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A submission to the debugging service: the program under debug, the
/// goal to synthesize an execution for, and the scheduling knobs of
/// [`JobSpec`] — minus anything that cannot cross a process boundary (job
/// observers are replaced by [`Service::subscribe`] streams).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct JobRequest {
    /// Human-readable label, echoed in statuses and outcomes.
    pub label: String,
    /// The program under debug.
    pub program: Program,
    /// The goal to synthesize an execution for.
    pub goal: GoalSpec,
    /// Portfolio members as `(label, options)`; empty means one default
    /// member (exactly like [`JobSpec`]).
    pub members: Vec<(String, EsdOptions)>,
    /// Scheduling priority (see [`JobSpec::priority`]).
    pub priority: u32,
    /// Scheduling-deadline hint, measured from submission.
    pub deadline: Option<Duration>,
}

impl JobRequest {
    /// A single-member request with default options and priority 1.
    pub fn new(label: impl Into<String>, program: &Program, goal: GoalSpec) -> Self {
        JobRequest {
            label: label.into(),
            program: program.clone(),
            goal,
            members: Vec::new(),
            priority: 1,
            deadline: None,
        }
    }

    /// Replaces the default member's options (single-member requests).
    pub fn options(mut self, options: EsdOptions) -> Self {
        self.members = vec![("default".to_string(), options)];
        self
    }

    /// Adds a portfolio member.
    pub fn member(mut self, label: impl Into<String>, options: EsdOptions) -> Self {
        self.members.push((label.into(), options));
        self
    }

    /// Sets the scheduling priority.
    pub fn priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the scheduling-deadline hint.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Lowers the request into the executor's [`JobSpec`].
    pub(crate) fn into_spec(self) -> JobSpec {
        let mut spec = JobSpec::new(self.label, &self.program, self.goal).priority(self.priority);
        if let Some(deadline) = self.deadline {
            spec = spec.deadline(deadline);
        }
        for (label, options) in self.members {
            spec = spec.member(label, options);
        }
        spec
    }
}

/// The service's receipt for a submitted job; every other [`Service`] call
/// takes one. Tickets are dense per-service indices (the in-process backend
/// reuses them as [`esd_core::JobHandle`] values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct JobTicket {
    /// The service-assigned job id.
    pub id: u64,
}

/// One element of a [`Subscription`] stream.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum ProgressUpdate {
    /// The job advanced by a slice; the engine's progress snapshot.
    Progress {
        /// The progress snapshot of the member that just ran.
        event: ProgressEvent,
    },
    /// The job reached a terminal state; always the stream's last element.
    Done {
        /// The terminal [`JobStatus`].
        status: JobStatus,
    },
}

/// The front door to the debugging service (the paper's usage model:
/// developers ship a bug report, the synthesizer finds an execution).
///
/// All methods take `&mut self`: backends either mutate an executor or a
/// connection. Errors are always typed [`ServiceError`]s — in particular,
/// submitting past the backend's admission bound returns
/// [`ServiceError::Overloaded`] instead of buffering without limit.
pub trait Service {
    /// Submits a job, subject to admission control.
    fn submit(&mut self, request: JobRequest) -> Result<JobTicket, ServiceError>;

    /// The job's current [`JobStatus`] — the same enum the executor and the
    /// wire protocol use.
    fn poll(&mut self, ticket: JobTicket) -> Result<JobStatus, ServiceError>;

    /// Cancels a job; `true` if it was still queued or running.
    fn cancel(&mut self, ticket: JobTicket) -> Result<bool, ServiceError>;

    /// Extracts the terminal [`JobOutcome`] (with the synthesized
    /// execution). `None` until the job is terminal, and again after the
    /// outcome has been taken.
    fn take(&mut self, ticket: JobTicket) -> Result<Option<JobOutcome>, ServiceError>;

    /// Opens a progress stream for the job: [`ProgressUpdate::Progress`]
    /// per dispatched slice, then exactly one [`ProgressUpdate::Done`].
    fn subscribe(&mut self, ticket: JobTicket) -> Result<Subscription, ServiceError>;
}

/// A per-job event feed shared between the executor-side observer (writer)
/// and subscriptions / the daemon streamer (readers). Bounded: the oldest
/// [`ProgressUpdate::Progress`] entries are dropped once
/// [`EVENT_BUFFER_CAP`] is reached, `Done` is never dropped.
pub(crate) type EventFeed = Arc<Mutex<VecDeque<ProgressUpdate>>>;

/// Progress entries buffered per job before the oldest are dropped.
pub(crate) const EVENT_BUFFER_CAP: usize = 256;

/// A progress stream opened by [`Service::subscribe`].
///
/// Subscriptions are pull-based and non-blocking: [`drain`](Self::drain)
/// returns every update available right now. For the in-process backend new
/// updates appear when the executor is pumped; for the wire client they
/// appear as the daemon streams event frames on the subscription's
/// dedicated connection.
pub struct Subscription {
    pub(crate) inner: SubscriptionInner,
    pub(crate) finished: bool,
}

pub(crate) enum SubscriptionInner {
    /// Shares the in-process backend's per-job feed.
    Local(EventFeed),
    /// Reads event frames from a dedicated daemon connection.
    Remote(crate::client::EventStream),
}

impl Subscription {
    /// Every update available right now, in order. After the stream's
    /// [`ProgressUpdate::Done`] has been returned, always empty.
    pub fn drain(&mut self) -> Result<Vec<ProgressUpdate>, ServiceError> {
        if self.finished {
            return Ok(Vec::new());
        }
        let updates = match &mut self.inner {
            SubscriptionInner::Local(feed) => {
                feed.lock().expect("event feed poisoned").drain(..).collect()
            }
            SubscriptionInner::Remote(stream) => stream.drain()?,
        };
        if updates.iter().any(|u| matches!(u, ProgressUpdate::Done { .. })) {
            self.finished = true;
        }
        Ok(updates)
    }

    /// True once the stream's terminal [`ProgressUpdate::Done`] has been
    /// drained.
    pub fn finished(&self) -> bool {
        self.finished
    }
}
