//! Debugging as a service: the single front door over the cross-job
//! parallel executor.
//!
//! The paper's usage model is a *service* — developers ship a bug report,
//! the synthesizer finds an execution. This crate is that front door:
//!
//! * [`Service`] — the transport-agnostic trait: [`Service::submit`] a
//!   [`JobRequest`] for a [`JobTicket`], [`Service::poll`] the unified
//!   [`esd_core::JobStatus`], [`Service::cancel`], [`Service::take`] the
//!   outcome, and [`Service::subscribe`] a stream of [`ProgressUpdate`]s.
//! * [`InProcessService`] — the embedded backend: a
//!   [`esd_core::JobExecutor`] plus admission control (a bounded submit
//!   queue whose overflow is the typed [`ServiceError::Overloaded`], never
//!   an unbounded buffer).
//! * [`wire`] — the hand-rolled protocol: length+FNV-1a-checksum frames
//!   around compact JSON messages, the same framing discipline as the
//!   executor's durable journal. Total decoding: torn frames wait, corrupt
//!   frames are typed errors, nothing panics.
//! * [`Daemon`] / [`RemoteClient`] — the protocol's two ends over TCP or
//!   Unix-domain sockets; the client implements [`Service`] so callers
//!   cannot tell remote from embedded.
//!
//! The determinism contract extends across the wire: a job's synthesized
//! execution file is byte-identical whether submitted in-process or over a
//! socket, at any executor pool size — see `tests/service.rs`.

// Documentation enforcement (see ARCHITECTURE.md, "Documentation policy"):
// every public item must carry rustdoc.
#![deny(missing_docs)]

pub mod api;
pub mod client;
pub mod daemon;
pub mod error;
pub mod inprocess;
mod net;
pub mod wire;

pub use api::{JobRequest, JobTicket, ProgressUpdate, Service, Subscription};
pub use client::RemoteClient;
pub use daemon::Daemon;
pub use error::ServiceError;
pub use inprocess::{InProcessService, DEFAULT_MAX_PENDING};
pub use wire::{WireRequest, WireResponse};
