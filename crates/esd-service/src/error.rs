//! The service layer's typed error surface.
//!
//! [`ServiceError`] crosses the wire verbatim (it is a serde type like
//! every other wire message), so a remote client observes exactly the
//! errors an in-process caller would — including the backpressure contract:
//! a full admission queue is a typed [`ServiceError::Overloaded`] with a
//! retry hint, never an unbounded buffer or a blocked submitter.

use std::fmt;

/// Why a [`crate::Service`] call failed.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ServiceError {
    /// Admission control rejected the submission: the bounded submit queue
    /// is full. Retry after the backend has dispatched roughly
    /// `retry_after_slices` more slices (the backlog that must drain).
    Overloaded {
        /// How many executor slices the current backlog needs before a
        /// retry is likely to be admitted.
        retry_after_slices: u64,
    },
    /// The ticket does not name a job on this service.
    UnknownTicket {
        /// The offending ticket id.
        ticket: u64,
    },
    /// The transport failed (connect, read or write).
    Transport {
        /// The underlying I/O error, rendered.
        detail: String,
    },
    /// The peer violated the wire protocol: a corrupt frame, an
    /// undecodable payload, or a response of the wrong kind.
    Protocol {
        /// What was wrong.
        detail: String,
    },
    /// The peer closed the connection mid-conversation.
    Disconnected,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { retry_after_slices } => write!(
                f,
                "service overloaded: submit queue full, retry after ~{retry_after_slices} slices"
            ),
            ServiceError::UnknownTicket { ticket } => {
                write!(f, "unknown job ticket {ticket}")
            }
            ServiceError::Transport { detail } => write!(f, "transport error: {detail}"),
            ServiceError::Protocol { detail } => write!(f, "wire protocol violation: {detail}"),
            ServiceError::Disconnected => write!(f, "peer closed the connection"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl ServiceError {
    /// Wraps an I/O error as [`ServiceError::Transport`].
    pub fn transport(err: impl fmt::Display) -> Self {
        ServiceError::Transport { detail: err.to_string() }
    }

    /// Wraps a description as [`ServiceError::Protocol`].
    pub fn protocol(detail: impl Into<String>) -> Self {
        ServiceError::Protocol { detail: detail.into() }
    }
}
