//! Transport plumbing shared by the daemon and the client: one `Stream`
//! type over TCP and Unix-domain sockets.
//!
//! Sockets are used in non-blocking mode on the daemon side (one thread
//! serves every connection) and blocking mode on the client side; writes
//! ride [`write_frame`], which retries `WouldBlock` so short bursts of
//! socket backpressure never drop half a frame.

use crate::error::ServiceError;
use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// A connected byte stream over either transport.
pub(crate) enum Stream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Stream {
    pub(crate) fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(on),
            #[cfg(unix)]
            Stream::Uds(s) => s.set_nonblocking(on),
        }
    }

    /// Disables Nagle batching on TCP (frames are latency-sensitive
    /// request/response units); no-op on UDS.
    pub(crate) fn tune(&self) {
        if let Stream::Tcp(s) = self {
            let _ = s.set_nodelay(true);
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Uds(s) => s.flush(),
        }
    }
}

/// Writes a whole frame, riding out `WouldBlock` on non-blocking sockets
/// with a short backoff. Any other I/O error is a typed transport error.
pub(crate) fn write_frame(stream: &mut Stream, frame: &[u8]) -> Result<(), ServiceError> {
    let mut written = 0;
    while written < frame.len() {
        match stream.write(&frame[written..]) {
            Ok(0) => return Err(ServiceError::Disconnected),
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ServiceError::transport(e)),
        }
    }
    stream.flush().map_err(ServiceError::transport)
}

/// Reads whatever the socket has right now into `sink`. Returns `true` if
/// the peer closed the stream. `WouldBlock` means "nothing right now" on a
/// non-blocking socket and is not an error.
pub(crate) fn read_available(
    stream: &mut Stream,
    sink: &mut crate::wire::FrameDecoder,
) -> Result<bool, ServiceError> {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return Ok(true),
            Ok(n) => sink.feed(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ServiceError::transport(e)),
        }
    }
}
