//! The in-process backend: a [`Service`] that owns a [`JobExecutor`].
//!
//! This is both the backend library users embed directly and the engine
//! room of the [`crate::Daemon`] — the daemon is nothing but this service
//! plus the wire. Admission control is enforced *in front of* the
//! executor's own `max_running` cap: at most
//! [`max_pending`](InProcessService::max_pending) jobs may sit in the
//! queued state; further submissions get a typed
//! [`ServiceError::Overloaded`] with a drain estimate, so a traffic spike
//! can neither exhaust memory nor block the submitter.

use crate::api::{
    EventFeed, JobRequest, JobTicket, ProgressUpdate, Service, Subscription, SubscriptionInner,
    EVENT_BUFFER_CAP,
};
use crate::error::ServiceError;
use esd_core::{
    JobExecutor, JobHandle, JobOutcome, JobStatus, JobVerdict, Observer, ProgressEvent,
    SessionStatus,
};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Pushes each job's progress into its [`EventFeed`], bounded.
struct FeedObserver(EventFeed);

impl Observer for FeedObserver {
    fn on_progress(&mut self, event: &ProgressEvent) {
        let mut feed = self.0.lock().expect("event feed poisoned");
        if feed.len() >= EVENT_BUFFER_CAP {
            feed.pop_front();
        }
        feed.push_back(ProgressUpdate::Progress { event: event.clone() });
    }

    fn on_finish(&mut self, status: &SessionStatus) {
        // Map the winning (or first) member's terminal session status onto
        // the job-level JobStatus the stream promises as its last element.
        let status = match status {
            SessionStatus::Found(_) => JobStatus::Finished { verdict: JobVerdict::Found },
            SessionStatus::Cancelled(_) => JobStatus::Cancelled,
            _ => JobStatus::Finished { verdict: JobVerdict::Unsatisfied },
        };
        self.0.lock().expect("event feed poisoned").push_back(ProgressUpdate::Done { status });
    }
}

/// The in-process [`Service`] backend wrapping a [`JobExecutor`].
pub struct InProcessService {
    executor: JobExecutor,
    max_pending: usize,
    /// One feed per submitted job, indexed by ticket id.
    feeds: Vec<EventFeed>,
}

/// Default bound on the submit queue.
pub const DEFAULT_MAX_PENDING: usize = 64;

impl InProcessService {
    /// Wraps an executor with the default submit-queue bound.
    pub fn new(executor: JobExecutor) -> Self {
        InProcessService { executor, max_pending: DEFAULT_MAX_PENDING, feeds: Vec::new() }
    }

    /// Sets the admission bound: the maximum number of jobs allowed to wait
    /// in the queued state (clamped to at least 1). Submissions beyond it
    /// are rejected with [`ServiceError::Overloaded`].
    pub fn max_pending(mut self, n: usize) -> Self {
        self.max_pending = n.max(1);
        self
    }

    /// The current admission bound.
    pub fn pending_bound(&self) -> usize {
        self.max_pending
    }

    /// Drives the executor by up to `slices` slice batches; returns how
    /// many actually ran. In-process users pump explicitly; the daemon
    /// pumps between I/O turns.
    pub fn pump(&mut self, slices: u64) -> u64 {
        let mut ran = 0;
        while ran < slices && self.executor.run_slice() {
            ran += 1;
        }
        ran
    }

    /// Pumps until the executor is idle.
    pub fn run_until_idle(&mut self) {
        self.executor.run_until_idle();
    }

    /// True while any job is queued or running.
    pub fn has_work(&self) -> bool {
        self.executor.has_work()
    }

    /// Read access to the wrapped executor (statistics, snapshots).
    pub fn executor(&self) -> &JobExecutor {
        &self.executor
    }

    /// Drains the job's buffered updates (the daemon's event streamer).
    pub(crate) fn drain_updates(&mut self, ticket: u64) -> Vec<ProgressUpdate> {
        match self.feeds.get(ticket as usize) {
            Some(feed) => feed.lock().expect("event feed poisoned").drain(..).collect(),
            None => Vec::new(),
        }
    }

    fn handle(&self, ticket: JobTicket) -> Result<JobHandle, ServiceError> {
        if (ticket.id as usize) < self.feeds.len() {
            Ok(JobHandle::from_id(ticket.id))
        } else {
            Err(ServiceError::UnknownTicket { ticket: ticket.id })
        }
    }
}

impl Service for InProcessService {
    fn submit(&mut self, request: JobRequest) -> Result<JobTicket, ServiceError> {
        let stats = self.executor.stats();
        if stats.queued >= self.max_pending {
            // The backlog that must drain before a retry can be admitted:
            // every queued job needs at least one slice to start, so the
            // queue length is the floor of the wait.
            return Err(ServiceError::Overloaded { retry_after_slices: stats.queued as u64 });
        }
        let feed: EventFeed = Arc::new(Mutex::new(VecDeque::new()));
        let spec = request.into_spec().observer(Box::new(FeedObserver(feed.clone())));
        let handle = self.executor.submit(spec);
        debug_assert_eq!(handle.id() as usize, self.feeds.len());
        self.feeds.push(feed);
        Ok(JobTicket { id: handle.id() })
    }

    fn poll(&mut self, ticket: JobTicket) -> Result<JobStatus, ServiceError> {
        let handle = self.handle(ticket)?;
        Ok(self.executor.status(handle))
    }

    fn cancel(&mut self, ticket: JobTicket) -> Result<bool, ServiceError> {
        let handle = self.handle(ticket)?;
        Ok(self.executor.cancel(handle))
    }

    fn take(&mut self, ticket: JobTicket) -> Result<Option<JobOutcome>, ServiceError> {
        let handle = self.handle(ticket)?;
        Ok(self.executor.take(handle))
    }

    fn subscribe(&mut self, ticket: JobTicket) -> Result<Subscription, ServiceError> {
        let handle = self.handle(ticket)?;
        let feed = self.feeds[handle.id() as usize].clone();
        Ok(Subscription { inner: SubscriptionInner::Local(feed), finished: false })
    }
}
