//! The hand-rolled wire protocol: length+checksum framing around compact
//! JSON payloads.
//!
//! Frames reuse the journal's discipline exactly
//! (see `esd_core::journal`): `[len: u32 LE][checksum: u64 LE =
//! FNV-1a(payload)][payload]`. Decoding is *total* — torn frames wait for
//! more bytes, bit-flipped frames and oversized length prefixes are typed
//! [`ServiceError`]s, never panics — which is what the wire-protocol
//! property tests pin.
//!
//! Payloads are the [`WireRequest`] / [`WireResponse`] enums, one frame per
//! message, encoded with the same vendored serde the rest of the system
//! uses (the environment is offline; there is no tonic and no crates.io
//! serde_json).

use crate::api::{JobRequest, ProgressUpdate};
use crate::error::ServiceError;
use esd_core::snapshot::fnv1a64;
use esd_core::{JobOutcome, JobStatus};

/// Frame header size: 4-byte length prefix + 8-byte FNV-1a checksum.
pub const FRAME_HEADER: usize = 4 + 8;

/// Upper bound on a frame's payload length. A length prefix beyond this is
/// treated as corruption — the decoder must never allocate unbounded
/// buffers on garbage input.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Everything a client asks of a daemon. One request per frame; the daemon
/// answers each with exactly one [`WireResponse`] frame on the same
/// connection.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum WireRequest {
    /// [`crate::Service::submit`].
    Submit {
        /// The job to run.
        request: JobRequest,
    },
    /// [`crate::Service::poll`].
    Poll {
        /// The ticket id.
        ticket: u64,
    },
    /// [`crate::Service::cancel`].
    Cancel {
        /// The ticket id.
        ticket: u64,
    },
    /// [`crate::Service::take`].
    Take {
        /// The ticket id.
        ticket: u64,
    },
    /// [`crate::Service::subscribe`]: turns this connection into a
    /// dedicated event stream for the job.
    Subscribe {
        /// The ticket id.
        ticket: u64,
    },
    /// Asks the daemon to finish streaming, close connections and return
    /// from its accept loop.
    Shutdown,
}

/// Everything a daemon says to a client.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum WireResponse {
    /// Answer to [`WireRequest::Submit`].
    Ticket {
        /// The assigned ticket id.
        ticket: u64,
    },
    /// Answer to [`WireRequest::Poll`] — the same [`JobStatus`] enum the
    /// executor returns in-process.
    Status {
        /// The job's status.
        status: JobStatus,
    },
    /// Answer to [`WireRequest::Cancel`].
    Cancelled {
        /// Whether the job was still queued or running.
        cancelled: bool,
    },
    /// Answer to [`WireRequest::Take`].
    Outcome {
        /// The extracted outcome, if the job was terminal and untaken.
        outcome: Box<Option<JobOutcome>>,
    },
    /// Answer to [`WireRequest::Subscribe`]; event frames follow.
    Subscribed,
    /// One element of a subscription stream (only on subscribed
    /// connections).
    Event {
        /// The update.
        update: ProgressUpdate,
    },
    /// Answer to any request that failed; the typed error crosses the wire
    /// unchanged.
    Error {
        /// What went wrong.
        error: ServiceError,
    },
    /// Answer to [`WireRequest::Shutdown`].
    Bye,
}

/// Wraps a payload in a `[len][fnv1a64][payload]` frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Encodes a request as one frame.
pub fn encode_request(request: &WireRequest) -> Vec<u8> {
    encode_frame(serde_json::to_string(request).expect("wire requests serialize").as_bytes())
}

/// Encodes a response as one frame.
pub fn encode_response(response: &WireResponse) -> Vec<u8> {
    encode_frame(serde_json::to_string(response).expect("wire responses serialize").as_bytes())
}

/// Decodes a frame payload as a [`WireRequest`].
pub fn decode_request(payload: &[u8]) -> Result<WireRequest, ServiceError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| ServiceError::protocol(format!("request payload is not UTF-8: {e}")))?;
    serde_json::from_str(text)
        .map_err(|e| ServiceError::protocol(format!("request payload does not decode: {e:?}")))
}

/// Decodes a frame payload as a [`WireResponse`].
pub fn decode_response(payload: &[u8]) -> Result<WireResponse, ServiceError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| ServiceError::protocol(format!("response payload is not UTF-8: {e}")))?;
    serde_json::from_str(text)
        .map_err(|e| ServiceError::protocol(format!("response payload does not decode: {e:?}")))
}

/// An incremental frame decoder over a byte stream.
///
/// [`feed`](Self::feed) appends whatever the socket produced;
/// [`next_frame`](Self::next_frame) yields complete, checksum-verified
/// payloads. A partial frame simply waits for more bytes (the stream
/// analogue of the journal's *torn tail*); a checksum mismatch or an insane
/// length prefix is a typed [`ServiceError::Protocol`] (the analogue of
/// *corrupt*), after which the stream cannot be resynchronized and the
/// connection should be dropped.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted opportunistically.
    pos: usize,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends raw bytes from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `pos` is consumed.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// The next complete frame's payload, `Ok(None)` if more bytes are
    /// needed, or a typed error on corruption.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ServiceError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < FRAME_HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[0..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_LEN {
            return Err(ServiceError::protocol(format!(
                "frame length {len} exceeds the {MAX_FRAME_LEN}-byte bound"
            )));
        }
        if avail.len() < FRAME_HEADER + len {
            return Ok(None);
        }
        let stored = u64::from_le_bytes(avail[4..12].try_into().expect("8 bytes"));
        let payload = &avail[FRAME_HEADER..FRAME_HEADER + len];
        let actual = fnv1a64(payload);
        if stored != actual {
            return Err(ServiceError::protocol(format!(
                "frame checksum mismatch: stored {stored:#x}, actual {actual:#x}"
            )));
        }
        let payload = payload.to_vec();
        self.pos += FRAME_HEADER + len;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_an_incremental_decoder() {
        let payloads: Vec<&[u8]> = vec![b"", b"x", b"hello wire", &[0xff; 300]];
        let mut bytes = Vec::new();
        for p in &payloads {
            bytes.extend_from_slice(&encode_frame(p));
        }
        // Feed one byte at a time: torn prefixes must yield Ok(None).
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for b in bytes {
            decoder.feed(&[b]);
            while let Some(frame) = decoder.next_frame().expect("clean stream") {
                decoded.push(frame);
            }
        }
        assert_eq!(decoded, payloads);
    }

    #[test]
    fn bit_flips_are_typed_errors_not_panics() {
        let clean = encode_frame(b"a payload worth protecting");
        for i in 0..clean.len() {
            let mut damaged = clean.clone();
            damaged[i] ^= 0x40;
            let mut decoder = FrameDecoder::new();
            decoder.feed(&damaged);
            // Every single-bit flip either fails typed or (length-prefix
            // flips that enlarge the frame) waits for bytes that never
            // arrive — no decode may panic and none may return the
            // original payload unnoticed.
            match decoder.next_frame() {
                Err(ServiceError::Protocol { .. }) => {}
                Ok(None) => {}
                Ok(Some(frame)) => {
                    assert_ne!(frame, clean[FRAME_HEADER..].to_vec(), "corruption went unnoticed")
                }
                Err(other) => panic!("unexpected error kind {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_without_allocating() {
        let mut frame = encode_frame(b"ok");
        frame[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut decoder = FrameDecoder::new();
        decoder.feed(&frame);
        assert!(matches!(decoder.next_frame(), Err(ServiceError::Protocol { .. })));
    }
}
