//! The append-only commit log of executor decisions, and crash recovery.
//!
//! A durable [`JobExecutor`] persists itself
//! as `reduce(snapshot, journal)`: a periodic [`ExecutorSnapshot`]
//! (see [`crate::snapshot`] for the envelope) plus an append-only journal of
//! every scheduling decision taken since that snapshot. Because the executor
//! is deterministic — policies are pure functions of their views and the
//! engines are deterministic in their seeds — replaying the journal against
//! the restored snapshot rebuilds the exact pre-crash state.
//!
//! ## Frame format
//!
//! Each record is one length-prefixed, checksummed frame:
//!
//! ```text
//! [len: u32 LE] [checksum: u64 LE = FNV-1a(payload)] [payload: compact JSON]
//! ```
//!
//! The writer appends a whole frame and flushes before the decision it
//! records takes effect (write-ahead), so a crash can tear at most the final
//! frame. The [`scan`] reader stops at the first torn or corrupt frame and
//! reports what it found; recovery replays the longest valid prefix and
//! never panics on damaged input (pinned by the `properties` suite).
//!
//! [`ExecutorSnapshot`]: crate::executor::ExecutorSnapshot

use crate::executor::{JobExecutor, JobVerdict};
use crate::snapshot::{fnv1a64, SnapshotError};
use crate::synth::EsdOptions;
use esd_ir::Program;
use esd_symex::GoalSpec;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::time::Duration;

/// Bytes of frame header preceding each payload (length + checksum).
const FRAME_HEADER: usize = 4 + 8;

/// One durable executor decision.
///
/// The four variants cover everything that changes executor state between
/// checkpoints; everything else (engine progress) is a deterministic
/// consequence of replaying them in order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A job was submitted. Carries the full ingredients (program, goal,
    /// member configurations) so recovery can resubmit it verbatim.
    Submit {
        /// The handle the executor assigned (dense submit order; replay
        /// verifies it assigns the same one).
        handle: u64,
        /// The job's label.
        label: String,
        /// The program under synthesis.
        program: Program,
        /// The goal the job searches for.
        goal: GoalSpec,
        /// The member configurations (label, options), portfolio-style.
        members: Vec<(String, EsdOptions)>,
        /// The job's scheduling priority.
        priority: u32,
        /// The job's scheduling-deadline hint, measured from submission.
        /// Replay re-anchors it at recovery time — it orders fairness, it
        /// is not part of the synthesized result.
        deadline: Option<Duration>,
    },
    /// The fairness policy granted a slice to a job. Written *before* the
    /// slice runs (write-ahead); replay re-drives the policy and verifies
    /// it makes the identical grant.
    SliceGrant {
        /// The chosen job's handle.
        handle: u64,
        /// The granted slice length in search rounds.
        rounds: u64,
    },
    /// The fairness policy granted a whole batch of slices to distinct jobs
    /// (executors with `batch_width > 1`). Written *before* any slice runs;
    /// replay re-plans the batch with the restored policy and verifies the
    /// identical grant vector.
    BatchGrant {
        /// `(handle, rounds)` per grant, in planning order.
        grants: Vec<(u64, u64)>,
    },
    /// A job was cancelled.
    Cancel {
        /// The cancelled job's handle.
        handle: u64,
    },
    /// A job reached a terminal state. Purely a consistency check for
    /// replay: the finalization itself is a deterministic consequence of
    /// the preceding grant or cancellation.
    Finalize {
        /// The finished job's handle.
        handle: u64,
        /// How the job ended.
        verdict: JobVerdict,
    },
}

/// What stopped a [`scan`] before the end of the journal bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalDamage {
    /// The final frame is incomplete — a crash tore the last append.
    Torn {
        /// Byte offset of the torn frame's header.
        offset: usize,
    },
    /// A complete frame failed its checksum or did not decode — the file
    /// was corrupted at rest.
    Corrupt {
        /// Byte offset of the corrupt frame's header.
        offset: usize,
    },
}

impl fmt::Display for JournalDamage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalDamage::Torn { offset } => {
                write!(f, "journal torn at byte {offset}: the final frame is incomplete")
            }
            JournalDamage::Corrupt { offset } => {
                write!(f, "journal corrupt at byte {offset}: a complete frame failed its checksum")
            }
        }
    }
}

impl std::error::Error for JournalDamage {}

/// The result of [`scan`]ning journal bytes: the longest valid prefix of
/// records, how many bytes it covers, and what (if anything) stopped the
/// scan.
#[derive(Debug)]
pub struct JournalScan {
    /// Every record of the longest valid prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes covered by the valid prefix (a writer reopening the journal
    /// after damage can truncate to this length).
    pub valid_len: usize,
    /// `None` for a clean journal; otherwise why the scan stopped early.
    pub damage: Option<JournalDamage>,
}

/// Encodes one record as a framed byte sequence.
pub fn encode_frame(record: &JournalRecord) -> Vec<u8> {
    let payload = serde_json::to_string(record).expect("journal record serializes");
    let payload = payload.as_bytes();
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Decodes a journal byte stream into the longest valid prefix of records.
/// Never panics: torn tails and corrupt frames stop the scan and are
/// reported in [`JournalScan::damage`].
pub fn scan(bytes: &[u8]) -> JournalScan {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut damage = None;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < FRAME_HEADER {
            damage = Some(JournalDamage::Torn { offset });
            break;
        }
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let checksum =
            u64::from_le_bytes(bytes[offset + 4..offset + 12].try_into().expect("8 bytes"));
        if remaining - FRAME_HEADER < len {
            damage = Some(JournalDamage::Torn { offset });
            break;
        }
        let payload = &bytes[offset + FRAME_HEADER..offset + FRAME_HEADER + len];
        if fnv1a64(payload) != checksum {
            damage = Some(JournalDamage::Corrupt { offset });
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            damage = Some(JournalDamage::Corrupt { offset });
            break;
        };
        let Ok(record) = serde_json::from_str::<JournalRecord>(text) else {
            damage = Some(JournalDamage::Corrupt { offset });
            break;
        };
        records.push(record);
        offset += FRAME_HEADER + len;
    }
    JournalScan { records, valid_len: offset, damage }
}

/// Reads and [`scan`]s a journal file. A missing file is an empty, clean
/// journal (the executor may crash before its first append).
pub fn load(path: &Path) -> Result<JournalScan, RecoveryError> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(scan(&bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            Ok(JournalScan { records: Vec::new(), valid_len: 0, damage: None })
        }
        Err(e) => Err(RecoveryError::Io(e.to_string())),
    }
}

/// Appends framed [`JournalRecord`]s to a journal file, flushing each frame
/// so at most the in-flight frame can be lost to a crash.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Creates (truncating) a journal at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JournalWriter { file: File::create(path)? })
    }

    /// Opens a journal for appending, creating it if absent.
    pub fn open_append(path: &Path) -> std::io::Result<Self> {
        Ok(JournalWriter { file: OpenOptions::new().create(true).append(true).open(path)? })
    }

    /// Appends one framed record and flushes it to the OS.
    pub fn append(&mut self, record: &JournalRecord) -> std::io::Result<()> {
        self.file.write_all(&encode_frame(record))?;
        self.file.flush()
    }
}

/// Why a crashed executor could not be recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// The snapshot envelope failed to load or verify.
    Snapshot(SnapshotError),
    /// Reading durable state failed.
    Io(String),
    /// The snapshot names a fairness policy this build cannot rebuild
    /// (recovery supports the built-in policies).
    UnknownPolicy(String),
    /// Replay re-drove the restored policy and it made a different decision
    /// than the journal records — the durable state is inconsistent with
    /// this build.
    Divergence(String),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Snapshot(e) => write!(f, "recovery snapshot error: {e}"),
            RecoveryError::Io(e) => write!(f, "recovery io error: {e}"),
            RecoveryError::UnknownPolicy(name) => {
                write!(f, "cannot rebuild unknown fairness policy {name:?}")
            }
            RecoveryError::Divergence(e) => write!(f, "journal replay diverged: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<SnapshotError> for RecoveryError {
    fn from(e: SnapshotError) -> Self {
        RecoveryError::Snapshot(e)
    }
}

/// Rebuilds a crashed [`JobExecutor`] from its durable state — the
/// `reduce(snapshot, journal)` of the module docs.
pub struct Recovery;

impl Recovery {
    /// Restores the snapshot and replays the journal's valid prefix on top
    /// of it, returning an executor equal to the pre-crash one (minus
    /// observers, which are live callbacks and not durable state). The
    /// returned executor is not yet durable; [`JobExecutor::recover`]
    /// re-attaches the durable directory.
    pub fn replay(
        snapshot: &crate::executor::ExecutorSnapshot,
        records: &[JournalRecord],
    ) -> Result<JobExecutor, RecoveryError> {
        crate::executor::replay_records(snapshot, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grant(handle: u64, rounds: u64) -> JournalRecord {
        JournalRecord::SliceGrant { handle, rounds }
    }

    #[test]
    fn scan_round_trips_clean_journals() {
        let mut bytes = Vec::new();
        for i in 0..5 {
            bytes.extend_from_slice(&encode_frame(&grant(i, 100 + i)));
        }
        let scan = scan(&bytes);
        assert!(scan.damage.is_none());
        assert_eq!(scan.valid_len, bytes.len());
        assert_eq!(scan.records.len(), 5);
        match &scan.records[3] {
            JournalRecord::SliceGrant { handle, rounds } => {
                assert_eq!((*handle, *rounds), (3, 103))
            }
            other => panic!("unexpected record {other:?}"),
        }
    }

    #[test]
    fn scan_stops_at_a_torn_tail() {
        let mut bytes = encode_frame(&grant(0, 1));
        let full = encode_frame(&grant(1, 2));
        let keep = bytes.len();
        bytes.extend_from_slice(&full[..full.len() - 3]);
        let scan = scan(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, keep);
        assert_eq!(scan.damage, Some(JournalDamage::Torn { offset: keep }));
    }

    #[test]
    fn scan_stops_at_a_corrupt_frame() {
        let mut bytes = encode_frame(&grant(0, 1));
        let keep = bytes.len();
        bytes.extend_from_slice(&encode_frame(&grant(1, 2)));
        let flip = keep + FRAME_HEADER + 2;
        bytes[flip] ^= 0x40;
        let scan = scan(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, keep);
        assert_eq!(scan.damage, Some(JournalDamage::Corrupt { offset: keep }));
    }
}
